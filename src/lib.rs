//! # intersection-joins
//!
//! A reproduction of *"The Complexity of Boolean Conjunctive Queries with
//! Intersection Joins"* (PODS 2022) as a Rust workspace.  This umbrella crate
//! re-exports the public API of the member crates; see `README.md` for the
//! architecture and `DESIGN.md` / `EXPERIMENTS.md` for the mapping from the
//! paper's results to code.
//!
//! The most convenient entry point is the engine prelude:
//!
//! ```
//! use intersection_joins::prelude::*;
//!
//! let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
//! let engine = IntersectionJoinEngine::with_defaults();
//! let analysis = engine.analyze(&q);
//! assert!((analysis.ij_width.value - 1.5).abs() < 1e-9); // ijw(Q△) = 3/2
//! ```

pub use ij_engine::prelude;

/// Segment trees, intervals and bitstrings (paper Section 3, Appendix B).
pub use ij_segtree as segtree;

/// Hypergraphs, acyclicity notions and the structural reduction (Sections 4 and 6).
pub use ij_hypergraph as hypergraph;

/// Width measures: ρ*, fhtw, subw bounds and the ij-width (Definition 4.14).
pub use ij_widths as widths;

/// Values, relations, databases and the query AST (Definition 3.3).
pub use ij_relation as relation;

/// The equality-join engine (generic WCOJ, Yannakakis, width-guided evaluation).
pub use ij_ejoin as ejoin;

/// The FAQ-AI comparator: inequality joins, relaxed decompositions and
/// relaxed widths (Appendix F).
pub use ij_faqai as faqai;

/// The forward and backward reductions (Sections 4 and 5).
pub use ij_reduction as reduction;

/// The end-to-end intersection-join engine.
pub use ij_engine as engine;

/// Classical baselines: plane sweep, binary-join cascades, nested loops.
pub use ij_baselines as baselines;

/// Synthetic workload generators.
pub use ij_workloads as workloads;
