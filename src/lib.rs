//! # intersection-joins
//!
//! A reproduction of *"The Complexity of Boolean Conjunctive Queries with
//! Intersection Joins"* (Abo Khamis, Chichirim, Kormpa, Olteanu — PODS 2022)
//! as a Rust workspace.  This umbrella crate re-exports the public API of
//! the member crates; `README.md` at the workspace root has the quickstart,
//! the crate map and the benchmark index.
//!
//! The most convenient entry point is the engine prelude:
//!
//! ```
//! use intersection_joins::prelude::*;
//!
//! let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
//! let engine = IntersectionJoinEngine::with_defaults();
//! let analysis = engine.analyze(&q);
//! assert!((analysis.ij_width.value - 1.5).abs() < 1e-9); // ijw(Q△) = 3/2
//! ```
//!
//! # Architecture
//!
//! ## Crate map
//!
//! | Crate | Role |
//! |---|---|
//! | [`segtree`] | Intervals, bitstrings, segment trees — arena, interval-tree and flat index-arithmetic layouts (Section 3, Appendix B) |
//! | [`hypergraph`] | Hypergraphs, acyclicity, the structural reduction τ(H) (Sections 4, 6) |
//! | [`widths`] | ρ*, fhtw, subw bounds, ij-width (Definition 4.14) |
//! | [`relation`] | Values, the **value dictionary** behind scoped `SharedDictionary` handles, interned columnar relations, query AST |
//! | [`ejoin`] | EJ engine: id-keyed WCOJ tries in two layouts (hash nodes / flat CSR leapfrog), bytes-accounted `TrieCache` with per-tenant ledgers and quotas, Yannakakis, width-guided evaluation |
//! | [`reduction`] | Forward (IJ→EJ) and backward (EJ→IJ) data reductions (Sections 4, 5) |
//! | [`engine`] | End-to-end engine with `Workspace`-owned state, `Tenant` accounting sub-handles, parallel disjunct evaluation, cooperative cancellation/deadlines and panic-isolated workers |
//! | [`faqai`] | The FAQ-AI comparator (Appendix F) |
//! | [`baselines`] | Plane sweep, binary-join cascades, nested loops, the segment-tree baseline evaluator |
//! | [`workloads`] | Synthetic workload generators + the interval-native scenario suite |
//!
//! ## Data flow of the interned pipeline
//!
//! Every `Value` (point, interval or bitstring) is interned exactly once into
//! a dictionary of [`relation`]; relations store dense `u32` id columns and
//! every downstream layer operates on ids.  The dictionary is owned by a
//! `SharedDictionary` handle carried by each relation: plain constructors
//! use the process-global handle, while a `Workspace` ([`engine`]) scopes a
//! dictionary (plus one shared trie cache warming every engine built from
//! the workspace) so that dropping the workspace reclaims its interned
//! values:
//!
//! ```text
//!  Workspace { SharedDictionary, shared TrieCache }  ← or the global shim
//!        │
//!        ▼
//!  Query + Database (columnar: Vec<ValueId> per column, workspace dictionary)
//!        │
//!        ▼
//!  ij_reduction::forward_reduction          Segment trees per interval var;
//!        │   carried columns pass ids       tuples expand into bitstring-id
//!        │   through; bitstring parts       rows (no Value rows materialised)
//!        │   interned once per distinct
//!        ▼
//!  ForwardReduction { D̃ (id columns), ⋁ Q̃ᵢ }
//!        │
//!        ▼
//!  ij_engine::evaluate_reduction            dedup disjuncts → batches
//!        │   (EngineConfig::parallelism     (grouped by shared transformed
//!        │    workers pull whole batches,   relations) → worker pool with
//!        │    AtomicBool early exit; all    AtomicBool early exit; built
//!        ▼    workers share one TrieCache)  tries reused across disjuncts
//!  ij_ejoin per disjunct:
//!     · α-acyclic   → Yannakakis semijoins (id-tuple keys, fast hasher)
//!     · cyclic      → bag materialisation (id tries) + Yannakakis
//!     · fallback    → generic WCOJ over per-atom tries in one of two
//!       layouts (EngineConfig::trie_layout): HashMap<u32, TrieNode>
//!       nodes, or flat CSR sorted-id arrays intersected by a galloping
//!       leapfrog (Auto picks per atom by relation size)
//!     tries served from the workspace's shared TrieCache (content-
//!     fingerprint + resolved-layout keys, LRU-evicted against entry and
//!     byte budgets) and optionally hash-sharded: per-shard sub-tries
//!     built on scoped threads, search fanned out shard by shard
//!     (EngineConfig::trie_shards)
//!        │
//!        ▼
//!  Boolean answer (identical for every parallelism/cache/shard setting)
//! ```
//!
//! Values are resolved back out of the dictionary only at API boundaries
//! (`Relation::tuples`, CSV export, error messages); the join hot paths
//! hash and compare nothing wider than a `u32`.

pub use ij_engine::prelude;

/// Segment trees, intervals and bitstrings (paper Section 3, Appendix B).
pub use ij_segtree as segtree;

/// Hypergraphs, acyclicity notions and the structural reduction (Sections 4 and 6).
pub use ij_hypergraph as hypergraph;

/// Width measures: ρ*, fhtw, subw bounds and the ij-width (Definition 4.14).
pub use ij_widths as widths;

/// Values, the value dictionary, interned columnar relations, databases and
/// the query AST (Definition 3.3).
pub use ij_relation as relation;

/// The equality-join engine (generic WCOJ over id-keyed tries, Yannakakis,
/// width-guided evaluation).
pub use ij_ejoin as ejoin;

/// The FAQ-AI comparator: inequality joins, relaxed decompositions and
/// relaxed widths (Appendix F).
pub use ij_faqai as faqai;

/// The forward and backward reductions (Sections 4 and 5).
pub use ij_reduction as reduction;

/// The end-to-end intersection-join engine with parallel disjunct evaluation.
pub use ij_engine as engine;

/// Classical baselines: plane sweep, binary-join cascades, nested loops and
/// the segment-tree baseline evaluator.
pub use ij_baselines as baselines;

/// Synthetic workload generators and the interval-native scenario suite.
pub use ij_workloads as workloads;
