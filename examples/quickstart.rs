//! Quickstart: the full pipeline on the triangle query of Section 1.1.
//!
//! The triangle `Q△ = R([A],[B]) ∧ S([B],[C]) ∧ T([A],[C])` is the paper's
//! running example: the simplest cyclic intersection-join query, with
//! ij-width 3/2 (Example 4.16) and therefore an `O(N^1.5 polylog N)`
//! evaluation through the forward reduction of Section 4.  This example
//! walks every stage — static analysis, reduction, batched/cached disjunct
//! evaluation inside a scoped `Workspace`, cross-engine cache warmth, and a
//! differential check against the naive evaluator — and prints what each
//! number means.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use intersection_joins::prelude::*;

fn main() {
    // The Boolean triangle query with intersection joins:
    //   Q△ = R([A],[B]) ∧ S([B],[C]) ∧ T([A],[C])
    let query = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").expect("valid query");

    // All cross-evaluation state — the value dictionary the databases intern
    // into and the trie cache every engine shares — is owned by a Workspace.
    // Dropping the workspace reclaims everything it interned; a service
    // would hold one workspace per tenant or per database.
    let workspace = Workspace::new();

    // A small interval database, interned into the workspace.  The first R
    // tuple, the S tuple and the T tuple pairwise intersect on A, B and C,
    // so the query is true.
    let iv = |lo: f64, hi: f64| Value::interval(lo, hi);
    let mut db = workspace.database();
    db.insert_tuples(
        "R",
        2,
        vec![
            vec![iv(0.0, 4.0), iv(10.0, 14.0)],
            vec![iv(100.0, 105.0), iv(200.0, 205.0)],
        ],
    );
    db.insert_tuples("S", 2, vec![vec![iv(12.0, 13.0), iv(20.0, 25.0)]]);
    db.insert_tuples("T", 2, vec![vec![iv(3.0, 5.0), iv(24.0, 26.0)]]);

    let engine = workspace.engine(EngineConfig::new());

    println!("The triangle query of Section 1.1, over a 4-tuple interval database:");
    println!();
    println!("  query     {query}");
    println!(
        "  database  {} relations, {} tuples ({} distinct values interned in the workspace)",
        db.num_relations(),
        db.total_tuples(),
        workspace.dictionary_len()
    );

    // 1. Static analysis: acyclicity class (Section 6) and ij-width
    //    (Definition 4.14) — data-independent, they only read the query.
    let analysis = engine.analyze(&query);
    println!();
    println!("1. Static analysis (Sections 4.4 and 6):");
    println!("   {}", analysis.summary());
    println!(
        "   The forward reduction will produce {} EJ queries in {} isomorphism classes.",
        analysis.ij_width.num_reduced_queries,
        analysis.ij_width.classes.len()
    );

    // 2. Evaluation through the forward reduction (Section 4): the IJ query
    //    becomes a disjunction of EJ queries over segment-tree bitstrings;
    //    the engine deduplicates the disjuncts, groups them into batches by
    //    the transformed relations they share, and evaluates with the
    //    workspace's shared trie cache (early exit on the first true
    //    disjunct).  The reduction interns its bitstrings into the workspace
    //    too — the process-global dictionary is never touched.
    let stats = engine
        .evaluate_with_stats(&query, &db)
        .expect("evaluation succeeds");
    println!();
    println!("2. Evaluation through the forward reduction (Theorem 4.13):");
    print_indented(&stats.summary());

    // 3. Cache warmth is a *workspace* property, not an engine property: a
    //    brand-new engine built from the same workspace — the per-request
    //    engine of a server — is served warm on its very first evaluation.
    let fresh_engine = workspace.engine(EngineConfig::new());
    let warm = fresh_engine
        .evaluate_with_stats(&query, &db)
        .expect("evaluation succeeds");
    println!();
    println!("3. A fresh engine on the same workspace starts warm (shared trie cache):");
    print_indented(&warm.summary());
    assert_eq!(
        warm.trie_cache.misses, 0,
        "warm evaluation must not rebuild"
    );

    // 4. Multi-tenant accounting: tenants of one workspace share the cache
    //    (and the dictionary) but are metered separately — exact per-tenant
    //    hits/misses/resident bytes, and an optional byte quota capping what
    //    one tenant may keep resident (an over-quota tenant evicts its own
    //    LRU entries, never a neighbor's warmth).  The workspace itself
    //    reports its dictionary residency in bytes, so an operator can alert
    //    on a growing tenant before it OOMs.
    let tenant = workspace.tenant("analytics");
    let tenant_engine = tenant.engine(EngineConfig::new());
    let _ = tenant_engine
        .evaluate(&query, &db)
        .expect("evaluation succeeds");
    let ledger = tenant.cache_stats();
    println!();
    println!("4. Per-tenant accounting on the shared cache (exact, even under concurrency):");
    println!(
        "   tenant `{}`: {} hits / {} misses, {} entries resident ({:.1} KiB, quota {})",
        tenant.name(),
        ledger.hits,
        ledger.misses,
        ledger.entries,
        ledger.resident_bytes as f64 / 1024.0,
        if ledger.quota_bytes == 0 {
            "none".to_string()
        } else {
            format!("{:.1} KiB", ledger.quota_bytes as f64 / 1024.0)
        },
    );
    println!("   workspace: {}", workspace.stats());

    // 5. Cross-check with the naive reference evaluator (exhaustive
    //    backtracking over Definition 3.3).
    let naive = engine
        .evaluate_naive(&query, &db)
        .expect("naive evaluation succeeds");
    assert_eq!(stats.answer, naive);
    println!();
    println!("5. Differential check: the naive evaluator agrees (answer = {naive}).");
}

/// Prints a multi-line summary indented under its section header.
fn print_indented(text: &str) {
    for line in text.lines() {
        println!("   {line}");
    }
}
