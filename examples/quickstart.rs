//! Quickstart: the full pipeline on the triangle query of Section 1.1.
//!
//! The triangle `Q△ = R([A],[B]) ∧ S([B],[C]) ∧ T([A],[C])` is the paper's
//! running example: the simplest cyclic intersection-join query, with
//! ij-width 3/2 (Example 4.16) and therefore an `O(N^1.5 polylog N)`
//! evaluation through the forward reduction of Section 4.  This example
//! walks every stage — static analysis, reduction, batched/cached disjunct
//! evaluation, and a differential check against the naive evaluator — and
//! prints what each number means.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use intersection_joins::prelude::*;

fn main() {
    // The Boolean triangle query with intersection joins:
    //   Q△ = R([A],[B]) ∧ S([B],[C]) ∧ T([A],[C])
    let query = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").expect("valid query");

    // A small interval database.  The first R tuple, the S tuple and the T
    // tuple pairwise intersect on A, B and C, so the query is true.
    let iv = |lo: f64, hi: f64| Value::interval(lo, hi);
    let mut db = Database::new();
    db.insert_tuples(
        "R",
        2,
        vec![
            vec![iv(0.0, 4.0), iv(10.0, 14.0)],
            vec![iv(100.0, 105.0), iv(200.0, 205.0)],
        ],
    );
    db.insert_tuples("S", 2, vec![vec![iv(12.0, 13.0), iv(20.0, 25.0)]]);
    db.insert_tuples("T", 2, vec![vec![iv(3.0, 5.0), iv(24.0, 26.0)]]);

    let engine = IntersectionJoinEngine::with_defaults();

    println!("The triangle query of Section 1.1, over a 4-tuple interval database:");
    println!();
    println!("  query     {query}");
    println!(
        "  database  {} relations, {} tuples",
        db.num_relations(),
        db.total_tuples()
    );

    // 1. Static analysis: acyclicity class (Section 6) and ij-width
    //    (Definition 4.14) — data-independent, they only read the query.
    let analysis = engine.analyze(&query);
    println!();
    println!("1. Static analysis (Sections 4.4 and 6):");
    println!("   {}", analysis.summary());
    println!(
        "   The forward reduction will produce {} EJ queries in {} isomorphism classes.",
        analysis.ij_width.num_reduced_queries,
        analysis.ij_width.classes.len()
    );

    // 2. Evaluation through the forward reduction (Section 4): the IJ query
    //    becomes a disjunction of EJ queries over segment-tree bitstrings;
    //    the engine deduplicates the disjuncts, groups them into batches by
    //    the transformed relations they share, and evaluates with a shared
    //    trie cache (early exit on the first true disjunct).
    let stats = engine
        .evaluate_with_stats(&query, &db)
        .expect("evaluation succeeds");
    println!();
    println!("2. Evaluation through the forward reduction (Theorem 4.13):");
    println!("   answer = {}", stats.answer);
    println!(
        "   {} transformed tuples; {}/{} EJ disjuncts evaluated (early exit) in {} batches",
        stats.reduction.transformed_tuples,
        stats.ej_queries_evaluated,
        stats.ej_queries_total,
        stats.ej_query_batches
    );
    println!(
        "   trie cache: {} hits / {} misses ({:.0}% of trie builds were shared)",
        stats.trie_cache.hits,
        stats.trie_cache.misses,
        100.0 * stats.trie_cache.hit_rate()
    );

    // 3. The trie cache is persistent: it belongs to the engine, not to one
    //    evaluation, so asking the same query again is served warm — every
    //    trie build becomes a cache hit.
    let warm = engine
        .evaluate_with_stats(&query, &db)
        .expect("evaluation succeeds");
    println!();
    println!("3. Re-evaluation through the engine's persistent trie cache:");
    println!(
        "   answer = {} (identical); this pass: {} hits / {} misses, {} tries resident",
        warm.answer, warm.trie_cache.hits, warm.trie_cache.misses, warm.trie_cache.entries
    );

    // 4. Cross-check with the naive reference evaluator (exhaustive
    //    backtracking over Definition 3.3).
    let naive = engine
        .evaluate_naive(&query, &db)
        .expect("naive evaluation succeeds");
    assert_eq!(stats.answer, naive);
    println!();
    println!("4. Differential check: the naive evaluator agrees (answer = {naive}).");
}
