//! Quickstart: analyse and evaluate the triangle intersection-join query of
//! Section 1.1.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use intersection_joins::prelude::*;

fn main() {
    // The Boolean triangle query with intersection joins:
    //   Q△ = R([A],[B]) ∧ S([B],[C]) ∧ T([A],[C])
    let query = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").expect("valid query");

    // A small interval database.  The first R tuple, the S tuple and the T
    // tuple pairwise intersect on A, B and C, so the query is true.
    let iv = |lo: f64, hi: f64| Value::interval(lo, hi);
    let mut db = Database::new();
    db.insert_tuples(
        "R",
        2,
        vec![
            vec![iv(0.0, 4.0), iv(10.0, 14.0)],
            vec![iv(100.0, 105.0), iv(200.0, 205.0)],
        ],
    );
    db.insert_tuples("S", 2, vec![vec![iv(12.0, 13.0), iv(20.0, 25.0)]]);
    db.insert_tuples("T", 2, vec![vec![iv(3.0, 5.0), iv(24.0, 26.0)]]);

    let engine = IntersectionJoinEngine::with_defaults();

    // 1. Static analysis: acyclicity class and ij-width.
    let analysis = engine.analyze(&query);
    println!("query      : {query}");
    println!("analysis   : {}", analysis.summary());
    println!(
        "reduction  : {} EJ queries, {} isomorphism classes",
        analysis.ij_width.num_reduced_queries,
        analysis.ij_width.classes.len()
    );

    // 2. Evaluation through the forward reduction.
    let stats = engine
        .evaluate_with_stats(&query, &db)
        .expect("evaluation succeeds");
    println!("answer     : {}", stats.answer);
    println!(
        "evaluated  : {}/{} EJ disjuncts (early exit), {} transformed tuples",
        stats.ej_queries_evaluated, stats.ej_queries_total, stats.reduction.transformed_tuples
    );

    // 3. Cross-check with the naive reference evaluator.
    let naive = engine
        .evaluate_naive(&query, &db)
        .expect("naive evaluation succeeds");
    assert_eq!(stats.answer, naive);
    println!("naive check: {naive} (agrees)");
}
