//! Temporal-database scenario: three-way session overlap.
//!
//! Temporal databases attach validity intervals to tuples; temporal joins
//! match tuples that are valid at the same time (Section 2 of the paper).
//! Here three relations hold user sessions, meetings and device-activity
//! windows, and we ask whether some user session, some meeting and some
//! device activity were all active at the same instant:
//!
//! ```text
//!   Q = Sessions([T]) ∧ Meetings([T]) ∧ Devices([T])
//! ```
//!
//! The query is a star on a single interval variable, hence ι-acyclic: the
//! engine guarantees near-linear evaluation (Theorem 6.6).
//!
//! ```text
//! cargo run --example temporal_overlap
//! ```

use ij_baselines::binary_join_cascade;
use ij_workloads::temporal_sessions;
use intersection_joins::prelude::*;

fn main() {
    let query = Query::parse("Sessions([T]) & Meetings([T]) & Devices([T])").expect("valid query");
    let engine = IntersectionJoinEngine::with_defaults();

    let analysis = engine.analyze(&query);
    println!("query    : {query}");
    println!("analysis : {}", analysis.summary());
    assert!(
        analysis.linear_time,
        "a star of intersection joins is iota-acyclic"
    );

    // A synthetic temporal workload: n sessions per relation.
    for n in [100usize, 1000] {
        let db = temporal_sessions(&["Sessions", "Meetings", "Devices"], n, 0xC0FFEE);
        let stats = engine
            .evaluate_with_stats(&query, &db)
            .expect("evaluation succeeds");
        let (cascade_answer, max_intermediate) =
            binary_join_cascade(&query, &db).expect("baseline succeeds");
        assert_eq!(stats.answer, cascade_answer);
        println!(
            "n = {n:>5}: answer = {}, transformed tuples = {}, \
             EJ disjuncts evaluated = {}/{}, cascade max intermediate = {}",
            stats.answer,
            stats.reduction.transformed_tuples,
            stats.ej_queries_evaluated,
            stats.ej_queries_total,
            max_intermediate
        );
    }

    // The same question restricted to a quiet period at the very end of the
    // horizon is false; both evaluators agree.
    let mut db = temporal_sessions(&["Sessions", "Meetings"], 200, 7);
    db.insert_tuples(
        "Devices",
        1,
        vec![vec![Value::interval(1.0e9, 1.0e9 + 1.0)]],
    );
    let answer = engine.evaluate(&query, &db).expect("evaluation succeeds");
    let naive = engine.evaluate_naive(&query, &db).expect("naive succeeds");
    assert_eq!(answer, naive);
    println!("quiet-period probe: answer = {answer} (naive agrees)");
}
