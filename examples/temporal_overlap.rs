//! Temporal-database scenario: three-way session overlap.
//!
//! Temporal databases attach validity intervals to tuples; temporal joins
//! match tuples that are valid at the same time (Section 2 of the paper).
//! The [`ScenarioFamily::TemporalOverlap`] generator models a calendar: user
//! sessions, meetings and on-call windows with skewed durations, and we ask
//! whether some session, some meeting and some on-call shift were all active
//! at the same instant:
//!
//! ```text
//!   Q = Sessions([T]) ∧ Meetings([T]) ∧ Oncall([T])
//! ```
//!
//! The query is a star on a single interval variable, hence ι-acyclic: the
//! engine guarantees near-linear evaluation (Theorem 6.6).  Three evaluators
//! answer every instance and must agree: the reduction-based engine, the
//! segment-tree baseline (no reduction) and the binary-join cascade.
//!
//! ```text
//! cargo run --example temporal_overlap
//! ```

use ij_baselines::{binary_join_cascade, SegtreeBaseline};
use ij_workloads::{build_scenario, PlantedAnswer, ScenarioConfig, ScenarioFamily};
use intersection_joins::prelude::*;

fn main() {
    let engine = IntersectionJoinEngine::with_defaults();
    let family = ScenarioFamily::TemporalOverlap;
    let query = family.query();

    let analysis = engine.analyze(&query);
    println!("query    : {query}");
    println!("analysis : {}", analysis.summary());
    assert!(
        analysis.linear_time,
        "a star of intersection joins is iota-acyclic"
    );

    // Scale the calendar up; all three evaluators must keep agreeing.  The
    // selectivity is a fraction of the whole horizon, so a realistic
    // calendar (sessions of minutes against a horizon of months) sits at a
    // low value — which also keeps the cascade's materialised intermediates
    // small enough to print.
    for n in [100usize, 400] {
        let scenario = build_scenario(
            &ScenarioConfig::new(family)
                .with_tuples(n)
                .with_seed(0xC0FFEE)
                .with_selectivity(0.05)
                .with_skew(2.0),
        );
        let stats = engine
            .evaluate_with_stats(&scenario.query, &scenario.database)
            .expect("evaluation succeeds");
        let baseline =
            SegtreeBaseline::build(&scenario.query, &scenario.database).expect("baseline builds");
        let (cascade_answer, max_intermediate) =
            binary_join_cascade(&scenario.query, &scenario.database).expect("baseline succeeds");
        assert_eq!(stats.answer, baseline.evaluate_boolean());
        assert_eq!(stats.answer, cascade_answer);
        println!(
            "{}: answer = {}, transformed tuples = {}, \
             EJ disjuncts evaluated = {}/{}, cascade max intermediate = {}",
            scenario.name,
            stats.answer,
            stats.reduction.transformed_tuples,
            stats.ej_queries_evaluated,
            stats.ej_queries_total,
            max_intermediate
        );
    }

    // Planted-answer modes force each outcome regardless of the knobs: a
    // shared witness instant, or relations shifted into disjoint windows
    // (a quiet period for every pair).
    for (planted, expected) in [
        (PlantedAnswer::Satisfiable, true),
        (PlantedAnswer::Unsatisfiable, false),
    ] {
        let scenario = build_scenario(
            &ScenarioConfig::new(family)
                .with_tuples(200)
                .with_seed(7)
                .with_planted(planted),
        );
        let answer = engine
            .evaluate(&scenario.query, &scenario.database)
            .expect("evaluation succeeds");
        let baseline =
            SegtreeBaseline::build(&scenario.query, &scenario.database).expect("baseline builds");
        assert_eq!(answer, expected, "planted answer must hold");
        assert_eq!(answer, baseline.evaluate_boolean());
        println!(
            "{}: answer = {answer} (segtree baseline agrees)",
            scenario.name
        );
    }
}
