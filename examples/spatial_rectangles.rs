//! Spatial-database scenario: rectangle overlap via intersection joins.
//!
//! Spatial joins approximate objects by minimum bounding rectangles and match
//! rectangles that overlap (Section 2).  A rectangle is a pair of intervals
//! (its x- and y-extent), so multi-way overlap questions become IJ queries.
//!
//! Two queries are analysed:
//!
//! 1. **Three-layer overlap** — do a building footprint, a flood-risk zone
//!    and a planned coverage area share a common point?
//!    `Buildings([X],[Y]) ∧ FloodZones([X],[Y]) ∧ Coverage([X],[Y])`.
//!    Only two interval variables occur, so the hypergraph has no Berge cycle
//!    longer than two: the query is ι-acyclic and runs in near-linear time
//!    (Theorem 6.6), even though it looks like a "triangle" of relations.
//!
//! 2. **Spatial-temporal triangle** — is there a building whose x-extent
//!    overlaps a flood zone, whose construction period overlaps a coverage
//!    roll-out, while the flood zone and the roll-out overlap on the y-axis?
//!    `Buildings([X],[T]) ∧ FloodZones([X],[Y]) ∧ Coverage([Y],[T])`.
//!    This is exactly the triangle query of Section 1.1: not ι-acyclic,
//!    ij-width 3/2.
//!
//! ```text
//! cargo run --release --example spatial_rectangles
//! ```

use ij_baselines::{binary_join_cascade, plane_sweep_pairs};
use ij_segtree::Interval;
use ij_workloads::spatial_boxes;
use intersection_joins::prelude::*;

fn main() {
    let engine = IntersectionJoinEngine::with_defaults();

    // ---------------------------------------------------------------- 1 ---
    let overlap3 = Query::parse("Buildings([X],[Y]) & FloodZones([X],[Y]) & Coverage([X],[Y])")
        .expect("valid query");
    let analysis = engine.analyze(&overlap3);
    println!("query    : {overlap3}");
    println!("analysis : {}", analysis.summary());
    assert!(
        analysis.linear_time,
        "two shared interval variables cannot form a long Berge cycle"
    );

    let db = spatial_boxes(
        &["Buildings", "FloodZones", "Coverage"],
        500,
        99,
        10_000.0,
        400.0,
    );
    let stats = engine
        .evaluate_with_stats(&overlap3, &db)
        .expect("evaluation succeeds");
    let (cascade_answer, max_intermediate) =
        binary_join_cascade(&overlap3, &db).expect("baseline succeeds");
    assert_eq!(stats.answer, cascade_answer);
    println!(
        "n = 500 boxes/relation: answer = {}, EJ disjuncts = {}/{}, cascade max intermediate = {}",
        stats.answer, stats.ej_queries_evaluated, stats.ej_queries_total, max_intermediate
    );

    // For the binary sub-problem (which pairs of buildings and flood zones
    // overlap on the x-axis?) the classical plane sweep is the right tool —
    // it is also one of the building blocks of the cascade baseline.
    let buildings_x: Vec<Interval> = db
        .relation("Buildings")
        .unwrap()
        .column(0)
        .map(|v| v.as_interval().unwrap())
        .collect();
    let flood_x: Vec<Interval> = db
        .relation("FloodZones")
        .unwrap()
        .column(0)
        .map(|v| v.as_interval().unwrap())
        .collect();
    let pairs = plane_sweep_pairs(&buildings_x, &flood_x);
    println!(
        "x-overlapping (building, flood-zone) pairs: {}\n",
        pairs.len()
    );

    // ---------------------------------------------------------------- 2 ---
    let triangle = Query::parse("Buildings([X],[T]) & FloodZones([X],[Y]) & Coverage([Y],[T])")
        .expect("valid query");
    let analysis = engine.analyze(&triangle);
    println!("query    : {triangle}");
    println!("analysis : {}", analysis.summary());
    assert!(
        !analysis.linear_time,
        "three pairwise-shared interval variables form a Berge cycle"
    );
    assert!((analysis.ij_width.value - 1.5).abs() < 1e-9);

    // Reuse the generated extents: x-extents stay, the second column doubles
    // as the y-extent or the validity period depending on the relation.
    let mut db2 = Database::new();
    db2.insert(db.relation("Buildings").unwrap().clone());
    db2.insert(db.relation("FloodZones").unwrap().clone());
    db2.insert(db.relation("Coverage").unwrap().clone());
    let stats = engine
        .evaluate_with_stats(&triangle, &db2)
        .expect("evaluation succeeds");
    let naive = engine
        .evaluate_naive(&triangle, &db2)
        .expect("naive succeeds");
    assert_eq!(stats.answer, naive);
    println!(
        "n = 500 boxes/relation: answer = {} (naive agrees), EJ disjuncts = {}/{}",
        stats.answer, stats.ej_queries_evaluated, stats.ej_queries_total
    );
}
