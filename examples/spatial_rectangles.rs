//! Spatial-database scenario: rectangle overlap via intersection joins.
//!
//! Spatial joins approximate objects by minimum bounding rectangles and match
//! rectangles that overlap (Section 2).  A rectangle is a pair of intervals,
//! so multi-way overlap questions become IJ queries.  The
//! [`ScenarioFamily::SpatialRectangles`] generator produces three layers of
//! axis-aligned rectangles over a shared world; two queries are analysed on
//! the same database:
//!
//! 1. **Spatial triangle** (the scenario family's own query) — a building
//!    and a flood zone overlap on one axis, the flood zone and a coverage
//!    area on a second, the coverage area and the building on a third:
//!    `Buildings([X],[Y]) ∧ FloodZones([Y],[Z]) ∧ Coverage([X],[Z])`.
//!    This is the triangle of Section 1.1: not ι-acyclic, ij-width 3/2.
//!
//! 2. **Three-layer overlap** — do a building footprint, a flood-risk zone
//!    and a planned coverage area share a common point?
//!    `Buildings([X],[Y]) ∧ FloodZones([X],[Y]) ∧ Coverage([X],[Y])`.
//!    Only two interval variables occur, so the hypergraph has no Berge
//!    cycle longer than two: ι-acyclic and near-linear (Theorem 6.6), even
//!    though it looks like a "triangle" of relations.
//!
//! ```text
//! cargo run --release --example spatial_rectangles
//! ```

use ij_baselines::{plane_sweep_pairs, SegtreeBaseline};
use ij_segtree::Interval;
use ij_workloads::{build_scenario, PlantedAnswer, ScenarioConfig, ScenarioFamily};
use intersection_joins::prelude::*;

fn main() {
    let engine = IntersectionJoinEngine::with_defaults();
    let family = ScenarioFamily::SpatialRectangles;

    // ---------------------------------------------------------------- 1 ---
    let triangle = family.query();
    let analysis = engine.analyze(&triangle);
    println!("query    : {triangle}");
    println!("analysis : {}", analysis.summary());
    assert!(
        !analysis.linear_time,
        "three pairwise-shared interval variables form a Berge cycle"
    );
    assert!((analysis.ij_width.value - 1.5).abs() < 1e-9);

    let scenario = build_scenario(
        &ScenarioConfig::new(family)
            .with_tuples(250)
            .with_seed(99)
            .with_selectivity(0.2),
    );
    let stats = engine
        .evaluate_with_stats(&scenario.query, &scenario.database)
        .expect("evaluation succeeds");
    let baseline =
        SegtreeBaseline::build(&scenario.query, &scenario.database).expect("baseline builds");
    assert_eq!(stats.answer, baseline.evaluate_boolean());
    println!(
        "{}: answer = {} (segtree baseline agrees), EJ disjuncts = {}/{}",
        scenario.name, stats.answer, stats.ej_queries_evaluated, stats.ej_queries_total
    );

    // Planted modes pin the answer on the same family.
    for (planted, expected) in [
        (PlantedAnswer::Satisfiable, true),
        (PlantedAnswer::Unsatisfiable, false),
    ] {
        let planted_scenario = build_scenario(
            &ScenarioConfig::new(family)
                .with_tuples(150)
                .with_seed(3)
                .with_planted(planted),
        );
        let answer = engine
            .evaluate(&planted_scenario.query, &planted_scenario.database)
            .expect("evaluation succeeds");
        let planted_baseline =
            SegtreeBaseline::build(&planted_scenario.query, &planted_scenario.database)
                .expect("baseline builds");
        assert_eq!(answer, expected, "planted answer must hold");
        assert_eq!(answer, planted_baseline.evaluate_boolean());
        println!(
            "{}: answer = {answer} (segtree baseline agrees)",
            planted_scenario.name
        );
    }

    // For the binary sub-problem (which buildings and flood zones overlap on
    // the shared axis?) the classical plane sweep is the right tool — it is
    // also one of the building blocks of the cascade baseline.
    let buildings_y: Vec<Interval> = scenario
        .database
        .relation("Buildings")
        .unwrap()
        .column(1)
        .map(|v| v.as_interval().unwrap())
        .collect();
    let flood_y: Vec<Interval> = scenario
        .database
        .relation("FloodZones")
        .unwrap()
        .column(0)
        .map(|v| v.as_interval().unwrap())
        .collect();
    let pairs = plane_sweep_pairs(&buildings_y, &flood_y);
    println!(
        "y-overlapping (building, flood-zone) pairs: {}\n",
        pairs.len()
    );

    // ---------------------------------------------------------------- 2 ---
    let overlap3 = Query::parse("Buildings([X],[Y]) & FloodZones([X],[Y]) & Coverage([X],[Y])")
        .expect("valid query");
    let analysis = engine.analyze(&overlap3);
    println!("query    : {overlap3}");
    println!("analysis : {}", analysis.summary());
    assert!(
        analysis.linear_time,
        "two shared interval variables cannot form a long Berge cycle"
    );

    // Reuse the scenario's rectangles: the same columns reinterpreted as a
    // common (x, y) frame for all three layers.
    let stats = engine
        .evaluate_with_stats(&overlap3, &scenario.database)
        .expect("evaluation succeeds");
    let baseline = SegtreeBaseline::build(&overlap3, &scenario.database).expect("baseline builds");
    assert_eq!(stats.answer, baseline.evaluate_boolean());
    println!(
        "n = 250 boxes/relation: answer = {} (segtree baseline agrees), EJ disjuncts = {}/{}",
        stats.answer, stats.ej_queries_evaluated, stats.ej_queries_total
    );
}
