//! Width and acyclicity analysis of every query named in the paper.
//!
//! Prints, for each catalog query, its acyclicity class (Section 6), the
//! number of EJ queries produced by the forward reduction, the number of
//! isomorphism classes after dropping singleton variables (Appendix E.4/F)
//! and the ij-width — i.e. the analytic content of Figures 4/5/9 and
//! Tables 1/2.
//!
//! ```text
//! cargo run --release --example width_analysis
//! ```

use ij_hypergraph::{named_catalog, AcyclicityReport};
use ij_widths::ij_width;

fn main() {
    println!(
        "{:<22} {:<14} {:>10} {:>9} {:>8} {:>8}  runtime",
        "query", "class", "#EJ", "#classes", "ijw", "exact"
    );
    println!("{}", "-".repeat(92));
    for entry in named_catalog() {
        let h = &entry.hypergraph;
        if !h.is_ij() {
            continue; // the catalog also contains EJ comparison queries
        }
        let report = AcyclicityReport::of(h);
        let widths = ij_width(h);
        let runtime = if widths.is_linear_time() {
            "O(N polylog N)".to_string()
        } else {
            format!("O(N^{:.3} polylog N)", widths.value)
        };
        println!(
            "{:<22} {:<14} {:>10} {:>9} {:>8.3} {:>8}  {}",
            entry.name,
            report.class.to_string(),
            widths.num_reduced_queries,
            widths.classes.len(),
            widths.value,
            widths.exact,
            runtime
        );
    }
    println!();
    println!("(reference: Section 1.1, Table 1/2, Example 6.5 and Appendix E.4/F of the paper)");
}
