//! Compares the reduction-based intersection-join engine against the FAQ-AI
//! comparator on a temporal-overlap workload — the empirical counterpart of
//! Appendix F, where the paper reformulates IJ queries as disjunctions of
//! inequality-join conjuncts and bounds them by the relaxed submodular
//! width (the analytic half of Tables 1/2).
//!
//! ```text
//! cargo run --release --example faqai_comparison
//! ```

use intersection_joins::faqai::{analyze_disjunction, evaluate_faqai, faqai_disjunction};
use intersection_joins::prelude::*;
use intersection_joins::workloads::{generate_for_query, IntervalDistribution, WorkloadConfig};

fn main() {
    // Three services log sessions with validity intervals; the triangle query
    // asks whether some triple of sessions was simultaneously active pairwise
    // on shared resources (the temporal-join motivation of Section 2).
    let query = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").expect("valid query");

    // Static analysis: both the ij-width (our approach, Theorem 4.15) and the
    // relaxed width of the FAQ-AI reformulation (Appendix F).
    let engine = IntersectionJoinEngine::with_defaults();
    let analysis = engine.analyze(&query);
    let faqai = analyze_disjunction(&faqai_disjunction(&query).expect("pure IJ query"));
    println!("query:            {query}");
    println!("our analysis:     {}", analysis.summary());
    println!(
        "FAQ-AI analysis:  {} over {} conjuncts",
        faqai.runtime(),
        faqai.conjuncts.len()
    );

    // Evaluate both on growing synthetic workloads and report the answer and
    // wall-clock times.
    println!(
        "\n{:>8}  {:>8}  {:>12}  {:>12}",
        "N", "answer", "ours [ms]", "FAQ-AI [ms]"
    );
    for n in [50usize, 100, 200] {
        let db = generate_for_query(
            &query,
            &WorkloadConfig {
                tuples_per_relation: n,
                seed: 42,
                distribution: IntervalDistribution::GridAligned {
                    span: 4.0 * n as f64,
                    cells: (2 * n) as u32,
                    max_cells: 3,
                },
            },
        );
        let start = std::time::Instant::now();
        let ours = engine.evaluate(&query, &db).expect("engine evaluation");
        let t_ours = start.elapsed();

        let start = std::time::Instant::now();
        let stats = evaluate_faqai(&query, &db).expect("FAQ-AI evaluation");
        let t_faqai = start.elapsed();

        assert_eq!(ours, stats.answer, "the two evaluators must agree");
        println!(
            "{:>8}  {:>8}  {:>12.2}  {:>12.2}",
            n,
            ours,
            t_ours.as_secs_f64() * 1e3,
            t_faqai.as_secs_f64() * 1e3
        );
    }
    println!(
        "\nThe FAQ-AI route materialises a quadratic bag; the reduction route stays near N^1.5."
    );
}
