//! Width measures for Boolean conjunctive queries.
//!
//! This crate implements the width machinery the paper builds on
//! (Appendix A.2) and its new ij-width (Definition 4.14):
//!
//! * [`fractional_edge_cover`] / [`fractional_edge_cover_number`] — the
//!   fractional edge cover number ρ* of a vertex set (the AGM exponent when
//!   applied to all variables), solved with a small built-in simplex;
//! * [`fractional_hypertree_width`] and [`optimal_tree_decomposition`] —
//!   exact fhtw via dynamic programming over vertex elimination orders;
//! * [`submodular_width_estimate`] — lower/upper bounds for the submodular
//!   width with the published values for the paper's query classes;
//! * [`ij_width`] — the ij-width report: the maximum submodular width over
//!   the hypergraphs produced by the forward reduction, grouped into
//!   isomorphism classes as in Appendix E.4/F.
//!
//! # Example
//!
//! ```
//! use ij_hypergraph::triangle_ij;
//! use ij_widths::ij_width;
//!
//! let report = ij_width(&triangle_ij());
//! assert!((report.value - 1.5).abs() < 1e-9); // Section 1.1: ijw(Q△) = 3/2
//! ```

mod cover;
mod decomposition;
mod ijw;
mod lp;
mod subw;

pub use cover::{
    agm_exponent, fractional_edge_cover, fractional_edge_cover_number, vertex_degrees,
    FractionalEdgeCover,
};
pub use decomposition::{
    decomposition_from_order, elimination_width, fractional_hypertree_width,
    optimal_tree_decomposition, TreeDecomposition, MAX_DP_VERTICES,
};
pub use ijw::{ij_width, ClassReport, IjWidthReport};
pub use lp::{solve_packing_lp, LpOutcome, LpSolution};
pub use subw::{
    modular_lower_bound, paper_catalog, paper_catalog_subw, submodular_width_estimate,
    SubmodularWidthEstimate, SubwSource,
};
