//! Submodular width bounds (Definition A.16) and the catalog of values
//! published in the paper.
//!
//! Computing the submodular width exactly for arbitrary hypergraphs is a hard
//! optimisation problem (a max–min–max over the polymatroid polytope and all
//! tree decompositions) and is not needed to reproduce the paper.  We report:
//!
//! * an **upper bound**: the fractional hypertree width (`subw ≤ fhtw`,
//!   Appendix A.2.2);
//! * a **lower bound**: the best value of `min over decompositions of max
//!   over bags h(bag)` over a family of edge-dominated *modular* polymatroids
//!   `h(X) = Σ_{v ∈ X} w_v` — exactly the certificates the paper uses in
//!   Appendix F (e.g. `h(X) = |X|/4` for the triangle, `|X|/6` for LW4);
//! * the **published value** when the hypergraph is isomorphic (after
//!   dropping singleton variables) to one of the query classes analysed in
//!   Appendix E.4 / F, cross-checked against the bounds.

use crate::decomposition::{elimination_width, fractional_hypertree_width};
use ij_hypergraph::{are_isomorphic, Hypergraph};

/// How a submodular-width estimate was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubwSource {
    /// Lower and upper bounds coincide, so the value is exact.
    BoundsCoincide,
    /// The hypergraph matches a class analysed in the paper; the published
    /// value is reported (and is consistent with the computed bounds).
    PaperCatalog,
    /// Only bounds are known.
    BoundsOnly,
}

/// Submodular width bounds for a hypergraph.
#[derive(Debug, Clone)]
pub struct SubmodularWidthEstimate {
    /// A lower bound on `subw(H)`.
    pub lower: f64,
    /// An upper bound on `subw(H)` (the fractional hypertree width).
    pub upper: f64,
    /// The best point estimate: the exact value when known, otherwise the
    /// upper bound (a sound upper bound on the runtime exponent).
    pub value: f64,
    /// Provenance of `value`.
    pub source: SubwSource,
}

impl SubmodularWidthEstimate {
    /// True if the value is known exactly.
    pub fn is_exact(&self) -> bool {
        matches!(
            self.source,
            SubwSource::BoundsCoincide | SubwSource::PaperCatalog
        )
    }
}

/// Computes submodular width bounds (and the exact value when available) for
/// a hypergraph.
pub fn submodular_width_estimate(h: &Hypergraph) -> SubmodularWidthEstimate {
    let upper = fractional_hypertree_width(h);
    let lower = modular_lower_bound(h);
    if (upper - lower).abs() < 1e-6 {
        return SubmodularWidthEstimate {
            lower,
            upper,
            value: upper,
            source: SubwSource::BoundsCoincide,
        };
    }
    if let Some(published) = paper_catalog_subw(h) {
        debug_assert!(
            published <= upper + 1e-6 && published >= lower - 1e-6,
            "catalog value {published} outside computed bounds [{lower}, {upper}]"
        );
        return SubmodularWidthEstimate {
            lower: lower.max(published),
            upper,
            value: published,
            source: SubwSource::PaperCatalog,
        };
    }
    SubmodularWidthEstimate {
        lower,
        upper,
        value: upper,
        source: SubwSource::BoundsOnly,
    }
}

/// The best lower bound on `subw(H)` obtainable from edge-dominated modular
/// polymatroids drawn from a small family of candidate weight vectors:
///
/// * for every hyperedge `e`: the uniform weights `1/|e|` on `e`;
/// * the uniform weights `1/(max |e|)` on all vertices;
/// * the optimal fractional vertex packing of the whole vertex set.
///
/// Every candidate is edge-dominated by construction, so
/// `min over decompositions of max over bags h(bag)` (computed exactly by the
/// elimination DP) is a valid lower bound on the submodular width.
pub fn modular_lower_bound(h: &Hypergraph) -> f64 {
    let n = h.num_vertices();
    if n == 0 || h.num_edges() == 0 {
        return 0.0;
    }
    let mut candidates: Vec<Vec<f64>> = Vec::new();
    // Per-edge uniform weights.
    for e in h.edges() {
        if e.vertices.is_empty() {
            continue;
        }
        let mut w = vec![0.0; n];
        for &v in &e.vertices {
            w[v] = 1.0 / e.vertices.len() as f64;
        }
        candidates.push(w);
    }
    // Globally uniform weights.
    let max_edge = h
        .edges()
        .iter()
        .map(|e| e.vertices.len())
        .max()
        .unwrap_or(1)
        .max(1);
    candidates.push(vec![1.0 / max_edge as f64; n]);
    // Optimal fractional vertex packing of V (its constraints are exactly
    // edge domination).
    if let Some(packing) = optimal_vertex_packing(h) {
        candidates.push(packing);
    }

    let mut best: f64 = 0.0;
    for w in candidates {
        // Clamp tiny numerical noise and verify edge domination.
        let dominated = h
            .edges()
            .iter()
            .all(|e| e.vertices.iter().map(|&v| w[v]).sum::<f64>() <= 1.0 + 1e-7);
        if !dominated {
            continue;
        }
        let (value, _) = elimination_width(h, |bag| bag.iter().map(|&v| w[v]).sum());
        best = best.max(value);
    }
    best
}

/// The optimal fractional vertex packing weights of the whole vertex set
/// (maximise Σ y_v subject to Σ_{v ∈ e} y_v ≤ 1 for every edge).
fn optimal_vertex_packing(h: &Hypergraph) -> Option<Vec<f64>> {
    use crate::lp::{solve_packing_lp, LpOutcome};
    let n = h.num_vertices();
    if n == 0 {
        return None;
    }
    let a: Vec<Vec<f64>> = h
        .edges()
        .iter()
        .map(|e| {
            (0..n)
                .map(|v| if e.vertices.contains(&v) { 1.0 } else { 0.0 })
                .collect()
        })
        .collect();
    let b = vec![1.0; h.num_edges()];
    let c = vec![1.0; n];
    match solve_packing_lp(&a, &b, &c) {
        LpOutcome::Optimal(sol) => Some(sol.primal),
        LpOutcome::Unbounded => None,
    }
}

/// Published submodular widths for the query classes analysed in the paper,
/// looked up by hypergraph isomorphism.  Only classes where the published
/// value differs from what the bounds already pin down matter in practice,
/// but the full list doubles as a regression test of the reduction.
pub fn paper_catalog_subw(h: &Hypergraph) -> Option<f64> {
    for (graph, value) in paper_catalog() {
        if are_isomorphic(h, &graph) {
            return Some(value);
        }
    }
    None
}

/// The catalog of (hypergraph, published submodular width) pairs from
/// Appendix E.4 and Appendix F.  The hypergraphs are written exactly as the
/// paper presents them (singleton variables already dropped).
pub fn paper_catalog() -> Vec<(Hypergraph, f64)> {
    fn ej(atoms: &[(&str, &[&str])]) -> Hypergraph {
        let mut h = Hypergraph::new();
        for (label, vars) in atoms {
            let ids: Vec<_> = vars
                .iter()
                .map(|name| {
                    h.vertex_by_name(name)
                        .unwrap_or_else(|| h.add_point_var(*name))
                })
                .collect();
            h.add_edge(*label, ids);
        }
        h
    }
    vec![
        // Appendix F.2.2 — Loomis-Whitney 4, classes 1..6 (equations 27, 31-35).
        (
            ej(&[
                ("R", &["A1", "B1", "C1", "B2", "C2"]),
                ("S", &["B1", "C1", "D1", "C2", "D2"]),
                ("T", &["C1", "D1", "A1", "D2", "A2"]),
                ("U", &["D1", "A1", "B1", "A2", "B2"]),
            ]),
            1.5,
        ),
        (
            ej(&[
                ("R", &["A1", "B1", "C1", "A2"]),
                ("S", &["B1", "C1", "D1", "B2", "C2"]),
                ("T", &["C1", "D1", "A1", "C2", "D2"]),
                ("U", &["D1", "A1", "B1", "D2", "A2", "B2"]),
            ]),
            5.0 / 3.0,
        ),
        (
            ej(&[
                ("R", &["A1", "B1", "C1"]),
                ("S", &["B1", "C1", "D1", "B2", "C2"]),
                ("T", &["C1", "D1", "A1", "C2", "D2", "A2"]),
                ("U", &["D1", "A1", "B1", "D2", "A2", "B2"]),
            ]),
            1.5,
        ),
        (
            ej(&[
                ("R", &["A1", "B1", "C1", "B2"]),
                ("S", &["B1", "C1", "D1", "C2"]),
                ("T", &["C1", "D1", "A1", "C2", "D2", "A2"]),
                ("U", &["D1", "A1", "B1", "D2", "A2", "B2"]),
            ]),
            1.5,
        ),
        (
            ej(&[
                ("R", &["A1", "B1", "C1", "A2", "B2"]),
                ("S", &["B1", "C1", "D1", "C2"]),
                ("T", &["C1", "D1", "A1", "C2", "D2"]),
                ("U", &["D1", "A1", "B1", "D2", "A2", "B2"]),
            ]),
            1.5,
        ),
        (
            ej(&[
                ("R", &["A1", "B1", "C1", "B2", "C2"]),
                ("S", &["B1", "C1", "D1", "B2", "C2"]),
                ("T", &["C1", "D1", "A1", "D2", "A2"]),
                ("U", &["D1", "A1", "B1", "D2", "A2"]),
            ]),
            1.5,
        ),
        // Appendix F.3.2 — 4-clique, classes 1..6 (equations 40-45), all 2.0.
        (
            ej(&[
                ("R", &["A1", "B1"]),
                ("S", &["A1", "C1", "A2"]),
                ("T", &["A1", "D1", "A2"]),
                ("U", &["B1", "C1", "B2", "C2"]),
                ("V", &["B1", "D1", "B2", "D2"]),
                ("W", &["C1", "D1", "C2", "D2"]),
            ]),
            2.0,
        ),
        (
            ej(&[
                ("R", &["A1", "B1", "B2"]),
                ("S", &["A1", "C1", "A2"]),
                ("T", &["A1", "D1", "A2"]),
                ("U", &["B1", "C1", "C2"]),
                ("V", &["B1", "D1", "B2", "D2"]),
                ("W", &["C1", "D1", "C2", "D2"]),
            ]),
            2.0,
        ),
        (
            ej(&[
                ("R", &["A1", "B1", "A2", "B2"]),
                ("S", &["A1", "C1"]),
                ("T", &["A1", "D1", "A2"]),
                ("U", &["B1", "C1", "C2"]),
                ("V", &["B1", "D1", "B2", "D2"]),
                ("W", &["C1", "D1", "C2", "D2"]),
            ]),
            2.0,
        ),
        (
            ej(&[
                ("R", &["A1", "B1", "A2", "B2"]),
                ("S", &["A1", "C1", "A2"]),
                ("T", &["A1", "D1"]),
                ("U", &["B1", "C1", "C2"]),
                ("V", &["B1", "D1", "B2", "D2"]),
                ("W", &["C1", "D1", "C2", "D2"]),
            ]),
            2.0,
        ),
        (
            ej(&[
                ("R", &["A1", "B1", "A2", "B2"]),
                ("S", &["A1", "C1", "A2", "C2"]),
                ("T", &["A1", "D1"]),
                ("U", &["B1", "C1"]),
                ("V", &["B1", "D1", "B2", "D2"]),
                ("W", &["C1", "D1", "C2", "D2"]),
            ]),
            2.0,
        ),
        (
            ej(&[
                ("R", &["A1", "B1", "A2", "B2"]),
                ("S", &["A1", "C1", "C2"]),
                ("T", &["A1", "D1", "A2"]),
                ("U", &["B1", "C1", "B2"]),
                ("V", &["B1", "D1", "D2"]),
                ("W", &["C1", "D1", "C2", "D2"]),
            ]),
            2.0,
        ),
        // Appendix E.4.1 — Figure 9a, class 3 (the only class with width 1.5).
        (
            ej(&[
                ("R", &["A1", "B1", "C1", "A2", "B2"]),
                ("S", &["A1", "B1", "C1", "A2", "C2"]),
                ("T", &["A1", "B1", "C1", "B2", "C2"]),
            ]),
            1.5,
        ),
        // Appendix E.4.2 — Figure 9b, class 2.
        (
            ej(&[
                ("R", &["A1", "B1", "C1", "A2"]),
                ("S", &["A1", "B1", "C1", "B2"]),
                ("T", &["A1", "B1", "A2", "B2"]),
            ]),
            1.5,
        ),
        // Appendix E.4.3 — Figure 9c, class 1 (= Example 6.5's H1).
        (
            ej(&[
                ("R", &["A1", "B1", "C1"]),
                ("S", &["B1", "C1", "B2"]),
                ("T", &["A1", "B1", "B2"]),
            ]),
            1.5,
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_hypergraph::{four_clique_ej, loomis_whitney_4_ej, triangle_ej, Hypergraph};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn triangle_subw_is_exact_via_bounds() {
        // For the EJ triangle the modular certificate |X|/2 is tight, so the
        // bounds coincide at 3/2 without consulting the catalog.
        let est = submodular_width_estimate(&triangle_ej());
        assert!(est.is_exact());
        assert!(close(est.value, 1.5));
        assert_eq!(est.source, SubwSource::BoundsCoincide);
    }

    #[test]
    fn lw4_ej_subw_is_four_thirds() {
        let est = submodular_width_estimate(&loomis_whitney_4_ej());
        assert!(close(est.upper, 4.0 / 3.0));
        assert!(est.value <= 4.0 / 3.0 + 1e-9);
    }

    #[test]
    fn four_clique_ej_subw_estimate_is_two() {
        let est = submodular_width_estimate(&four_clique_ej());
        assert!(close(est.upper, 2.0));
        assert!(
            est.lower >= 1.5 - 1e-6,
            "modular bound should reach at least 3/2, got {}",
            est.lower
        );
    }

    #[test]
    fn lower_bound_never_exceeds_upper_bound_on_catalog() {
        for (h, published) in paper_catalog() {
            let upper = fractional_hypertree_width(&h);
            let lower = modular_lower_bound(&h);
            assert!(lower <= upper + 1e-6, "bounds crossed for {h}");
            assert!(
                published <= upper + 1e-6,
                "published {published} above fhtw {upper} for {h}"
            );
            assert!(published >= 1.0 - 1e-9);
        }
    }

    #[test]
    fn lw4_class_1_matches_the_four_cycle_analysis() {
        // Appendix F.2.2 class 1: fhtw = 2 but subw = 1.5.
        let (h, value) = &paper_catalog()[0];
        assert!(close(*value, 1.5));
        assert!(close(fractional_hypertree_width(h), 2.0));
        let est = submodular_width_estimate(h);
        assert_eq!(est.source, SubwSource::PaperCatalog);
        assert!(close(est.value, 1.5));
        assert!(close(est.upper, 2.0));
    }

    #[test]
    fn lw4_class_2_value_is_five_thirds() {
        let (h, value) = &paper_catalog()[1];
        assert!(close(*value, 5.0 / 3.0));
        assert!(close(fractional_hypertree_width(h), 5.0 / 3.0));
        let est = submodular_width_estimate(h);
        assert!(close(est.value, 5.0 / 3.0));
        assert!(est.is_exact());
    }

    #[test]
    fn acyclic_hypergraphs_have_subw_one() {
        let mut h = Hypergraph::new();
        let a = h.add_point_var("A");
        let b = h.add_point_var("B");
        let c = h.add_point_var("C");
        h.add_edge("R", vec![a, b]);
        h.add_edge("S", vec![b, c]);
        let est = submodular_width_estimate(&h);
        assert!(est.is_exact());
        assert!(close(est.value, 1.0));
    }

    #[test]
    fn modular_lower_bound_is_edge_dominated() {
        // Sanity check: the bound never exceeds the number of edges (a very
        // loose sanity cap) and is at least 1 for non-empty hypergraphs.
        for (h, _) in paper_catalog() {
            let lb = modular_lower_bound(&h);
            assert!(lb >= 1.0 - 1e-9);
            assert!(lb <= h.num_edges() as f64 + 1e-9);
        }
        assert!(close(modular_lower_bound(&Hypergraph::new()), 0.0));
    }

    #[test]
    fn catalog_lookup_is_isomorphism_invariant() {
        // Rename the variables of LW4 class 1 and look it up again.
        let mut h = Hypergraph::new();
        let names = ["p", "q", "r", "s", "t", "u", "v", "w"];
        let ids: Vec<_> = names.iter().map(|n| h.add_point_var(*n)).collect();
        // Same structure as class 1 with A1→p, B1→q, C1→r, D1→s, A2→t, B2→u, C2→v, D2→w.
        h.add_edge("e1", vec![ids[0], ids[1], ids[2], ids[5], ids[6]]);
        h.add_edge("e2", vec![ids[1], ids[2], ids[3], ids[6], ids[7]]);
        h.add_edge("e3", vec![ids[2], ids[3], ids[0], ids[7], ids[4]]);
        h.add_edge("e4", vec![ids[3], ids[0], ids[1], ids[4], ids[5]]);
        assert_eq!(paper_catalog_subw(&h), Some(1.5));
    }
}
