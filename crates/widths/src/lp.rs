//! A small dense simplex solver for the covering/packing LPs used by the
//! width computations.
//!
//! The only LP shape we need is the standard packing form
//!
//! ```text
//!   maximise  c · y
//!   subject   A y ≤ b,   y ≥ 0,   b ≥ 0
//! ```
//!
//! whose dual is the covering LP (minimise `b · x` subject to `Aᵀ x ≥ c`,
//! `x ≥ 0`).  The fractional edge cover number ρ*(S) of a vertex set is the
//! optimum of the covering LP with one variable per hyperedge; we solve its
//! dual (the fractional vertex packing) with the tableau simplex below and
//! read the cover weights off the reduced costs of the slack variables.
//!
//! The solver uses Bland's rule, so it terminates on every input; problem
//! sizes here are tiny (tens of variables and constraints).

/// Result of a packing LP solve.
#[derive(Debug, Clone)]
pub struct LpSolution {
    /// The optimal objective value.
    pub value: f64,
    /// The optimal primal solution `y`.
    pub primal: Vec<f64>,
    /// The optimal dual solution `x` (one entry per constraint); for the
    /// packing LP of ρ* these are the fractional edge-cover weights.
    pub dual: Vec<f64>,
}

/// Outcome of [`solve_packing_lp`].
#[derive(Debug, Clone)]
pub enum LpOutcome {
    /// A finite optimum was found.
    Optimal(LpSolution),
    /// The LP is unbounded (the dual covering LP is infeasible).
    Unbounded,
}

const EPS: f64 = 1e-9;

/// Solves `maximise c·y subject to A·y ≤ b, y ≥ 0` with `b ≥ 0`.
///
/// # Panics
///
/// Panics if dimensions are inconsistent or some `b[i] < 0`.
pub fn solve_packing_lp(a: &[Vec<f64>], b: &[f64], c: &[f64]) -> LpOutcome {
    let m = a.len();
    let n = c.len();
    assert_eq!(b.len(), m, "row count mismatch");
    for row in a {
        assert_eq!(row.len(), n, "column count mismatch");
    }
    assert!(
        b.iter().all(|&x| x >= 0.0),
        "the packing solver requires b >= 0"
    );

    // Tableau: m rows × (n + m + 1) columns. Columns 0..n are the decision
    // variables, n..n+m the slacks, the last column the RHS.  Row `m` is the
    // objective row (stored separately below).
    let cols = n + m + 1;
    let mut tableau: Vec<Vec<f64>> = vec![vec![0.0; cols]; m];
    for i in 0..m {
        tableau[i][..n].copy_from_slice(&a[i]);
        tableau[i][n + i] = 1.0;
        tableau[i][cols - 1] = b[i];
    }
    // Objective row holds the negated reduced costs: start with -c.
    let mut obj: Vec<f64> = vec![0.0; cols];
    for j in 0..n {
        obj[j] = -c[j];
    }
    // Basis: initially the slack variables.
    let mut basis: Vec<usize> = (n..n + m).collect();

    // The explicit `loop`/`break` (rather than `while let`) keeps the pivot
    // bookkeeping below at one indentation level per simplex step.
    #[allow(clippy::while_let_loop, clippy::needless_range_loop)]
    loop {
        // Bland's rule: entering variable = smallest index with negative
        // reduced cost.
        let entering = match (0..n + m).find(|&j| obj[j] < -EPS) {
            Some(j) => j,
            None => break,
        };
        // Ratio test: smallest ratio, ties broken by smallest basis variable
        // index (Bland).
        let mut leaving: Option<usize> = None;
        let mut best_ratio = f64::INFINITY;
        for i in 0..m {
            if tableau[i][entering] > EPS {
                let ratio = tableau[i][cols - 1] / tableau[i][entering];
                let better = ratio < best_ratio - EPS
                    || ((ratio - best_ratio).abs() <= EPS
                        && leaving.map(|l| basis[i] < basis[l]).unwrap_or(false));
                if better {
                    best_ratio = ratio;
                    leaving = Some(i);
                }
            }
        }
        let Some(pivot_row) = leaving else {
            return LpOutcome::Unbounded;
        };
        // Pivot.
        let pivot = tableau[pivot_row][entering];
        for v in tableau[pivot_row].iter_mut() {
            *v /= pivot;
        }
        for i in 0..m {
            if i != pivot_row && tableau[i][entering].abs() > EPS {
                let factor = tableau[i][entering];
                for j in 0..cols {
                    tableau[i][j] -= factor * tableau[pivot_row][j];
                }
            }
        }
        if obj[entering].abs() > EPS {
            let factor = obj[entering];
            for j in 0..cols {
                obj[j] -= factor * tableau[pivot_row][j];
            }
        }
        basis[pivot_row] = entering;
    }

    // Extract the solution.
    let mut primal = vec![0.0; n];
    for (i, &bv) in basis.iter().enumerate() {
        if bv < n {
            primal[bv] = tableau[i][cols - 1];
        }
    }
    // Dual values are the reduced costs of the slack columns.
    let dual: Vec<f64> = (0..m).map(|i| obj[n + i].max(0.0)).collect();
    let value = obj[cols - 1];
    LpOutcome::Optimal(LpSolution {
        value,
        primal,
        dual,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_packing() {
        // maximise y1 + y2 s.t. y1 ≤ 1, y2 ≤ 1, y1 + y2 ≤ 1.5
        let a = vec![vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]];
        let b = vec![1.0, 1.0, 1.5];
        let c = vec![1.0, 1.0];
        let LpOutcome::Optimal(sol) = solve_packing_lp(&a, &b, &c) else {
            panic!("unbounded")
        };
        assert_close(sol.value, 1.5);
        assert_close(sol.primal[0] + sol.primal[1], 1.5);
    }

    #[test]
    fn triangle_vertex_packing_and_edge_cover() {
        // Triangle query: three vertices A,B,C; edges AB, BC, AC.
        // Packing LP: maximise y_A + y_B + y_C s.t. each edge sums to ≤ 1.
        // Optimum 1.5 with y = (0.5, 0.5, 0.5); the dual gives the fractional
        // edge cover weights (0.5, 0.5, 0.5).
        let a = vec![
            vec![1.0, 1.0, 0.0],
            vec![0.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0],
        ];
        let b = vec![1.0; 3];
        let c = vec![1.0; 3];
        let LpOutcome::Optimal(sol) = solve_packing_lp(&a, &b, &c) else {
            panic!("unbounded")
        };
        assert_close(sol.value, 1.5);
        let dual_sum: f64 = sol.dual.iter().sum();
        assert_close(dual_sum, 1.5);
        // Dual feasibility: every vertex covered with total weight >= 1.
        assert!(sol.dual[0] + sol.dual[2] >= 1.0 - 1e-6); // A in edges 0 and 2
        assert!(sol.dual[0] + sol.dual[1] >= 1.0 - 1e-6); // B in edges 0 and 1
        assert!(sol.dual[1] + sol.dual[2] >= 1.0 - 1e-6); // C in edges 1 and 2
    }

    #[test]
    fn unbounded_when_a_variable_is_unconstrained() {
        // maximise y1 + y2 with only y1 ≤ 1: y2 unbounded.
        let a = vec![vec![1.0, 0.0]];
        let b = vec![1.0];
        let c = vec![1.0, 1.0];
        assert!(matches!(solve_packing_lp(&a, &b, &c), LpOutcome::Unbounded));
    }

    #[test]
    fn zero_objective_is_trivially_optimal() {
        let a = vec![vec![1.0]];
        let b = vec![5.0];
        let c = vec![0.0];
        let LpOutcome::Optimal(sol) = solve_packing_lp(&a, &b, &c) else {
            panic!("unbounded")
        };
        assert_close(sol.value, 0.0);
    }

    #[test]
    fn degenerate_constraints_terminate() {
        // Multiple identical constraints (degenerate) — Bland's rule must not cycle.
        let a = vec![
            vec![1.0, 1.0],
            vec![1.0, 1.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
        ];
        let b = vec![1.0, 1.0, 1.0, 1.0];
        let c = vec![1.0, 1.0];
        let LpOutcome::Optimal(sol) = solve_packing_lp(&a, &b, &c) else {
            panic!("unbounded")
        };
        assert_close(sol.value, 1.0);
    }

    #[test]
    fn lw4_style_packing() {
        // Four vertices, four ternary edges (Loomis-Whitney 4): packing value 4/3.
        let a = vec![
            vec![1.0, 1.0, 1.0, 0.0],
            vec![0.0, 1.0, 1.0, 1.0],
            vec![1.0, 0.0, 1.0, 1.0],
            vec![1.0, 1.0, 0.0, 1.0],
        ];
        let b = vec![1.0; 4];
        let c = vec![1.0; 4];
        let LpOutcome::Optimal(sol) = solve_packing_lp(&a, &b, &c) else {
            panic!("unbounded")
        };
        assert_close(sol.value, 4.0 / 3.0);
    }
}
