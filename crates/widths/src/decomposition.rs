//! Tree decompositions and the fractional hypertree width (Appendix A.2.1).
//!
//! The fractional hypertree width `fhtw(H)` is the minimum over tree
//! decompositions of the maximum fractional edge cover number of a bag
//! (Definition A.15).  Every tree decomposition can be turned into one whose
//! bags are induced by a vertex elimination order without enlarging any bag,
//! so for any bag-monotone cost function
//!
//! ```text
//! min over decompositions of max over bags  =  min over orders of max over elimination bags,
//! ```
//!
//! which we compute exactly by dynamic programming over vertex subsets
//! (exponential in the number of vertices — the hypergraphs of queries and of
//! their reductions are tiny).

use crate::cover::fractional_edge_cover_number;
use ij_hypergraph::{Hypergraph, VarId};
use std::collections::{BTreeSet, HashMap};

/// Maximum number of vertices supported by the exact subset DP.
pub const MAX_DP_VERTICES: usize = 20;

/// A tree decomposition of a hypergraph.
#[derive(Debug, Clone)]
pub struct TreeDecomposition {
    /// The bags.
    pub bags: Vec<BTreeSet<VarId>>,
    /// Tree edges between bag indices.
    pub edges: Vec<(usize, usize)>,
    /// `max_t ρ*(χ(t))` for this decomposition.
    pub width: f64,
}

impl TreeDecomposition {
    /// Checks the two tree-decomposition properties of Definition A.12:
    /// every hyperedge is covered by some bag, and for every vertex the bags
    /// containing it form a connected subtree.
    pub fn is_valid(&self, h: &Hypergraph) -> bool {
        // Property 1: edge coverage.
        for e in h.edges() {
            if !self
                .bags
                .iter()
                .any(|bag| e.vertices.iter().all(|v| bag.contains(v)))
            {
                return false;
            }
        }
        // Property 2: connectivity, checked per vertex with a union-find over
        // the bags containing it.
        let n = self.bags.len();
        let mut adjacency: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in &self.edges {
            adjacency[a].push(b);
            adjacency[b].push(a);
        }
        // The tree must be connected and have n - 1 edges (unless n <= 1).
        if n > 1 && self.edges.len() != n - 1 {
            return false;
        }
        for v in 0..h.num_vertices() {
            let containing: Vec<usize> = (0..n).filter(|&i| self.bags[i].contains(&v)).collect();
            if containing.len() <= 1 {
                continue;
            }
            // BFS within the subgraph induced by `containing`.
            let allowed: BTreeSet<usize> = containing.iter().copied().collect();
            let mut seen = BTreeSet::new();
            let mut stack = vec![containing[0]];
            while let Some(b) = stack.pop() {
                if !seen.insert(b) {
                    continue;
                }
                for &next in &adjacency[b] {
                    if allowed.contains(&next) && !seen.contains(&next) {
                        stack.push(next);
                    }
                }
            }
            if seen.len() != containing.len() {
                return false;
            }
        }
        true
    }

    /// The largest bag cardinality (the classical treewidth plus one).
    pub fn max_bag_size(&self) -> usize {
        self.bags.iter().map(|b| b.len()).max().unwrap_or(0)
    }
}

/// `min` over elimination orders of `max` over elimination bags of `cost(bag)`
/// for an arbitrary bag cost function, together with an optimal elimination
/// order.  This is the work-horse behind [`fractional_hypertree_width`] and
/// the modular lower bounds on the submodular width.
pub fn elimination_width<F>(h: &Hypergraph, mut cost: F) -> (f64, Vec<VarId>)
where
    F: FnMut(&BTreeSet<VarId>) -> f64,
{
    let n = h.num_vertices();
    assert!(
        n <= MAX_DP_VERTICES,
        "exact width DP supports at most {MAX_DP_VERTICES} vertices"
    );
    if n == 0 {
        return (0.0, Vec::new());
    }
    let adj = h.primal_graph();
    let full: u32 = if n == 32 { u32::MAX } else { (1u32 << n) - 1 };

    // Cache bag costs by bag bitmask.
    let mut bag_cost: HashMap<u32, f64> = HashMap::new();
    let mut cost_of = |bag_mask: u32, bag: &BTreeSet<VarId>| -> f64 {
        *bag_cost.entry(bag_mask).or_insert_with(|| cost(bag))
    };

    // best[mask] = minimal achievable max-cost when the vertices of `mask`
    // are eliminated first (in some order); choice[mask] = last vertex of
    // that prefix in an optimal order.
    let mut best: Vec<f64> = vec![f64::INFINITY; (full as usize) + 1];
    let mut choice: Vec<usize> = vec![usize::MAX; (full as usize) + 1];
    best[0] = 0.0;

    for mask in 1..=full {
        let mut best_here = f64::INFINITY;
        let mut best_v = usize::MAX;
        for v in 0..n {
            if mask & (1 << v) == 0 {
                continue;
            }
            let prev = mask & !(1 << v);
            if best[prev as usize].is_infinite() {
                continue;
            }
            let (bag_mask, bag) = elimination_bag(&adj, n, v, prev);
            let c = cost_of(bag_mask, &bag);
            let value = best[prev as usize].max(c);
            // `best_v == usize::MAX` keeps the choice well defined even when
            // every candidate cost is infinite (e.g. an uncovered vertex).
            if value < best_here || best_v == usize::MAX {
                best_here = value;
                best_v = v;
            }
        }
        best[mask as usize] = best_here;
        choice[mask as usize] = best_v;
    }

    // Reconstruct an optimal order (first eliminated first).
    let mut order_rev = Vec::with_capacity(n);
    let mut mask = full;
    while mask != 0 {
        let v = choice[mask as usize];
        order_rev.push(v);
        mask &= !(1 << v);
    }
    order_rev.reverse();
    (best[full as usize], order_rev)
}

/// The elimination bag of `v` when the vertices of `eliminated` have already
/// been eliminated: `{v}` plus every non-eliminated vertex reachable from `v`
/// through eliminated vertices in the primal graph.
fn elimination_bag(
    adj: &[Vec<bool>],
    n: usize,
    v: usize,
    eliminated: u32,
) -> (u32, BTreeSet<VarId>) {
    let mut bag_mask: u32 = 1 << v;
    let mut visited: u32 = 1 << v;
    let mut stack = vec![v];
    while let Some(u) = stack.pop() {
        #[allow(clippy::needless_range_loop)]
        for w in 0..n {
            if !adj[u][w] || visited & (1 << w) != 0 {
                continue;
            }
            visited |= 1 << w;
            if eliminated & (1 << w) != 0 {
                // Traverse through already-eliminated vertices.
                stack.push(w);
            } else {
                bag_mask |= 1 << w;
            }
        }
    }
    let bag: BTreeSet<VarId> = (0..n).filter(|&i| bag_mask & (1 << i) != 0).collect();
    (bag_mask, bag)
}

/// The fractional hypertree width `fhtw(H)`.
///
/// Returns `f64::INFINITY` when some vertex is not covered by any hyperedge.
pub fn fractional_hypertree_width(h: &Hypergraph) -> f64 {
    elimination_width(h, |bag| fractional_edge_cover_number(h, bag)).0
}

/// Builds a tree decomposition realising the fractional hypertree width.
pub fn optimal_tree_decomposition(h: &Hypergraph) -> TreeDecomposition {
    let (_, order) = elimination_width(h, |bag| fractional_edge_cover_number(h, bag));
    decomposition_from_order(h, &order)
}

/// Builds the tree decomposition induced by a vertex elimination order.
pub fn decomposition_from_order(h: &Hypergraph, order: &[VarId]) -> TreeDecomposition {
    let n = h.num_vertices();
    assert_eq!(order.len(), n, "the order must cover every vertex");
    if n == 0 {
        return TreeDecomposition {
            bags: vec![BTreeSet::new()],
            edges: Vec::new(),
            width: 0.0,
        };
    }
    let adj = h.primal_graph();
    let position: HashMap<VarId, usize> = order.iter().enumerate().map(|(i, &v)| (v, i)).collect();

    let mut bags: Vec<BTreeSet<VarId>> = Vec::with_capacity(n);
    let mut eliminated: u32 = 0;
    for &v in order {
        let (_, bag) = elimination_bag(&adj, n, v, eliminated);
        bags.push(bag);
        eliminated |= 1 << v;
    }
    // Connect bag i to the bag of the first vertex of bag_i \ {v_i}
    // eliminated after v_i; bags without later neighbours attach to the next
    // bag in the order (keeps the structure a tree).
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for (i, &v) in order.iter().enumerate() {
        if i + 1 == n {
            break;
        }
        let successor = bags[i]
            .iter()
            .filter(|&&u| u != v)
            .map(|&u| position[&u])
            .filter(|&p| p > i)
            .min()
            .unwrap_or(i + 1);
        edges.push((i, successor));
    }
    let width = bags
        .iter()
        .map(|bag| fractional_edge_cover_number(h, bag))
        .fold(0.0_f64, f64::max);
    TreeDecomposition { bags, edges, width }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_hypergraph::{four_clique_ej, k_cycle_ej, loomis_whitney_4_ej, triangle_ej, Hypergraph};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn triangle_fhtw_is_three_halves() {
        let h = triangle_ej();
        assert!(close(fractional_hypertree_width(&h), 1.5));
        let td = optimal_tree_decomposition(&h);
        assert!(td.is_valid(&h));
        assert!(close(td.width, 1.5));
    }

    #[test]
    fn acyclic_queries_have_fhtw_one() {
        // A path R(A,B) ∧ S(B,C) ∧ T(C,D).
        let mut h = Hypergraph::new();
        let a = h.add_point_var("A");
        let b = h.add_point_var("B");
        let c = h.add_point_var("C");
        let d = h.add_point_var("D");
        h.add_edge("R", vec![a, b]);
        h.add_edge("S", vec![b, c]);
        h.add_edge("T", vec![c, d]);
        assert!(close(fractional_hypertree_width(&h), 1.0));
        let td = optimal_tree_decomposition(&h);
        assert!(td.is_valid(&h));
        assert!(close(td.width, 1.0));
    }

    #[test]
    fn lw4_fhtw_is_four_thirds() {
        // The EJ Loomis-Whitney query has fhtw = AGM exponent = 4/3.
        let h = loomis_whitney_4_ej();
        assert!(close(fractional_hypertree_width(&h), 4.0 / 3.0));
    }

    #[test]
    fn four_clique_fhtw_is_two() {
        let h = four_clique_ej();
        assert!(close(fractional_hypertree_width(&h), 2.0));
    }

    #[test]
    fn four_cycle_fhtw_is_two() {
        // The 4-cycle is the classic separation example: its fractional
        // hypertree width is 2 (every tree decomposition has a bag whose
        // fractional edge cover number is 2) although its submodular width is
        // only 3/2 — exactly the situation of LW4 class 1 in Appendix F.2.1.
        assert!(close(fractional_hypertree_width(&k_cycle_ej(4)), 2.0));
        // Longer cycles stay at most 2 (a single bag covers everything with
        // alternating edges) and at least 3/2.
        let w6 = fractional_hypertree_width(&k_cycle_ej(6));
        assert!((1.5 - 1e-9..=2.0 + 1e-9).contains(&w6));
    }

    #[test]
    fn decompositions_from_arbitrary_orders_are_valid() {
        let h = four_clique_ej();
        let n = h.num_vertices();
        let order: Vec<VarId> = (0..n).collect();
        let td = decomposition_from_order(&h, &order);
        assert!(td.is_valid(&h));
        assert!(td.width >= fractional_hypertree_width(&h) - 1e-9);
        let reversed: Vec<VarId> = (0..n).rev().collect();
        let td2 = decomposition_from_order(&h, &reversed);
        assert!(td2.is_valid(&h));
    }

    #[test]
    fn elimination_width_with_cardinality_cost_is_treewidth_plus_one() {
        // Using |bag| as the cost gives treewidth + 1: triangle → 3,
        // 4-cycle → 3, path → 2.
        let (w, order) = elimination_width(&triangle_ej(), |bag| bag.len() as f64);
        assert!(close(w, 3.0));
        assert_eq!(order.len(), 3);
        let (w4, _) = elimination_width(&k_cycle_ej(4), |bag| bag.len() as f64);
        assert!(close(w4, 3.0));
    }

    #[test]
    fn empty_hypergraph() {
        let h = Hypergraph::new();
        assert!(close(fractional_hypertree_width(&h), 0.0));
    }

    #[test]
    fn isolated_vertex_makes_width_infinite() {
        let mut h = Hypergraph::new();
        let a = h.add_point_var("A");
        let b = h.add_point_var("B");
        h.add_edge("R", vec![a]);
        let _ = b;
        assert!(fractional_hypertree_width(&h).is_infinite());
    }

    #[test]
    fn single_edge_decomposition_is_one_bag_wide() {
        let mut h = Hypergraph::new();
        let vars: Vec<VarId> = (0..4).map(|i| h.add_point_var(format!("X{i}"))).collect();
        h.add_edge("R", vars.clone());
        let td = optimal_tree_decomposition(&h);
        assert!(td.is_valid(&h));
        assert!(close(td.width, 1.0));
        assert!(td.max_bag_size() >= 4 || td.bags.iter().any(|b| b.len() == 4));
    }
}
