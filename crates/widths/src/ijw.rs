//! The ij-width of an IJ query (Definition 4.14).
//!
//! `ijw(H) = max over H̃ ∈ τ(H) of subw(H̃)`: the complexity of an IJ query is
//! that of the most expensive EJ query produced by the forward reduction
//! (Theorem 4.15 gives the matching `O(N^{ijw} polylog N)` upper bound,
//! Theorem 5.2 the matching lower bound).
//!
//! The report groups the reduced hypergraphs into isomorphism classes (after
//! dropping singleton variables, which affects neither fhtw nor subw) exactly
//! like Appendix E.4 and Appendix F, and reports per-class widths.

use crate::decomposition::fractional_hypertree_width;
use crate::subw::{submodular_width_estimate, SubmodularWidthEstimate};
use ij_hypergraph::{full_reduction, group_into_isomorphism_classes, Hypergraph};

/// Width analysis of one isomorphism class of reduced EJ queries.
#[derive(Debug, Clone)]
pub struct ClassReport {
    /// A representative hypergraph (singleton variables dropped).
    pub representative: Hypergraph,
    /// Number of reduced EJ queries in this class.
    pub size: usize,
    /// Fractional hypertree width of the representative.
    pub fhtw: f64,
    /// Submodular width estimate of the representative.
    pub subw: SubmodularWidthEstimate,
}

/// The ij-width report of an IJ (or mixed EIJ) query hypergraph.
#[derive(Debug, Clone)]
pub struct IjWidthReport {
    /// Total number of EJ queries produced by the full reduction
    /// (`∏_[X] |E_[X]|!`).
    pub num_reduced_queries: usize,
    /// Number of distinct reduced queries after dropping singleton variables.
    pub num_distinct_after_dropping_singletons: usize,
    /// Isomorphism classes of the reduced queries with per-class widths.
    pub classes: Vec<ClassReport>,
    /// Lower bound on the ij-width.
    pub lower: f64,
    /// Upper bound on the ij-width (max fhtw over the classes).
    pub upper: f64,
    /// The best point estimate (max of the per-class point estimates).
    pub value: f64,
    /// Whether every class width is known exactly (making `value` exact).
    pub exact: bool,
}

impl IjWidthReport {
    /// `O(N^w polylog N)` — the runtime exponent guaranteed by Theorem 4.15.
    pub fn runtime_exponent(&self) -> f64 {
        self.value
    }

    /// True if the query is computable in near-linear time through the
    /// reduction (every reduced class has width 1) — by Theorem 6.6 this
    /// coincides with ι-acyclicity of the input hypergraph.
    pub fn is_linear_time(&self) -> bool {
        self.exact && (self.value - 1.0).abs() < 1e-9
    }
}

/// Computes the ij-width report of a hypergraph.
///
/// The full reduction is exponential in the query size (never in the data),
/// exactly as in the paper; queries with many high-degree interval variables
/// therefore take a while (the 4-clique produces 1296 reduced hypergraphs,
/// which group into 6 classes).
pub fn ij_width(h: &Hypergraph) -> IjWidthReport {
    let reduced = full_reduction(h);
    let num_reduced_queries = reduced.len();

    // Drop singleton variables and deduplicate identical hypergraphs before
    // the (more expensive) isomorphism grouping.
    let mut dropped: Vec<Hypergraph> = Vec::new();
    for r in &reduced {
        let g = r.hypergraph.drop_singleton_vertices();
        if !dropped.contains(&g) {
            dropped.push(g);
        }
    }
    let num_distinct = dropped.len();

    let classes_idx = group_into_isomorphism_classes(&dropped);
    let mut classes: Vec<ClassReport> = Vec::new();
    for members in &classes_idx {
        let representative = dropped[members[0]].clone();
        let fhtw = fractional_hypertree_width(&representative);
        let subw = submodular_width_estimate(&representative);
        classes.push(ClassReport {
            representative,
            size: members.len(),
            fhtw,
            subw,
        });
    }

    let lower = classes.iter().map(|c| c.subw.lower).fold(0.0_f64, f64::max);
    let upper = classes.iter().map(|c| c.fhtw).fold(0.0_f64, f64::max);
    let value = classes.iter().map(|c| c.subw.value).fold(0.0_f64, f64::max);
    let exact = classes.iter().all(|c| c.subw.is_exact());
    IjWidthReport {
        num_reduced_queries,
        num_distinct_after_dropping_singletons: num_distinct,
        classes,
        lower,
        upper,
        value,
        exact,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_hypergraph::{
        figure_9a, figure_9b, figure_9c, figure_9d, figure_9e, figure_9f, four_clique_ij,
        loomis_whitney_4_ij, triangle_ij,
    };

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    #[test]
    fn triangle_ij_width_is_three_halves() {
        // Section 1.1: ijw(Q△) = 3/2.
        let report = ij_width(&triangle_ij());
        assert_eq!(report.num_reduced_queries, 8);
        assert!(report.exact, "triangle ij-width should be exact");
        assert!(close(report.value, 1.5), "got {}", report.value);
        // After dropping singleton variables every reduced query collapses to
        // the EJ triangle, so there is a single isomorphism class.
        assert_eq!(report.classes.len(), 1);
        assert_eq!(report.classes[0].size, 1);
    }

    #[test]
    fn figure_9_widths_match_appendix_e4() {
        // Appendix E.4: ijw = 3/2 for Figures 9a-9c and 1 for Figures 9d-9f.
        for (h, expected, name) in [
            (figure_9a(), 1.5, "9a"),
            (figure_9b(), 1.5, "9b"),
            (figure_9c(), 1.5, "9c"),
            (figure_9d(), 1.0, "9d"),
            (figure_9e(), 1.0, "9e"),
            (figure_9f(), 1.0, "9f"),
        ] {
            let report = ij_width(&h);
            assert!(
                close(report.value, expected),
                "figure {name}: got {}",
                report.value
            );
            assert!(report.exact, "figure {name} should have an exact ij-width");
            assert_eq!(report.is_linear_time(), expected == 1.0, "figure {name}");
        }
    }

    #[test]
    fn figure_9c_has_three_distinct_reduced_queries() {
        // Appendix E.4.3: 24 reduced queries, 3 distinct after dropping
        // singleton variables (the paper's cases 1-3), with widths 1.5, 1.0
        // and 1.0.  Cases 2 and 3 are isomorphic to each other (swap A1 and
        // C1), so there are two isomorphism classes.
        let report = ij_width(&figure_9c());
        assert_eq!(report.num_reduced_queries, 24);
        assert_eq!(report.num_distinct_after_dropping_singletons, 3);
        assert_eq!(report.classes.len(), 2);
        let mut widths: Vec<f64> = report.classes.iter().map(|c| c.subw.value).collect();
        widths.sort_by(f64::total_cmp);
        assert!(close(widths[0], 1.0));
        assert!(close(widths[1], 1.5));
        // The class of width 1.0 contains the two isomorphic cases.
        let sizes: Vec<usize> = report.classes.iter().map(|c| c.size).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 3);
    }

    #[test]
    fn figure_9a_has_27_distinct_reduced_queries() {
        // Appendix E.4.1: 216 reduced queries, 27 distinct after dropping
        // singleton variables, 3 isomorphism classes.
        let report = ij_width(&figure_9a());
        assert_eq!(report.num_reduced_queries, 216);
        assert_eq!(report.num_distinct_after_dropping_singletons, 27);
        assert_eq!(report.classes.len(), 3);
    }

    #[test]
    fn figure_9b_has_9_distinct_reduced_queries() {
        // Appendix E.4.2: 72 reduced queries, 9 distinct, 3 classes.
        let report = ij_width(&figure_9b());
        assert_eq!(report.num_reduced_queries, 72);
        assert_eq!(report.num_distinct_after_dropping_singletons, 9);
        assert_eq!(report.classes.len(), 3);
    }

    #[test]
    fn loomis_whitney_4_ij_width_is_five_thirds() {
        // Table 1 / Appendix F.2: ijw = 5/3 with 81 distinct reduced queries
        // in 6 isomorphism classes.
        let report = ij_width(&loomis_whitney_4_ij());
        assert_eq!(report.num_reduced_queries, 1296);
        assert_eq!(report.num_distinct_after_dropping_singletons, 81);
        assert_eq!(report.classes.len(), 6);
        assert!(close(report.value, 5.0 / 3.0), "got {}", report.value);
        assert!(report.exact);
    }

    #[test]
    fn four_clique_ij_width_is_two() {
        // Table 1 / Appendix F.3: ijw = 2 with 81 distinct reduced queries in
        // 6 isomorphism classes.
        let report = ij_width(&four_clique_ij());
        assert_eq!(report.num_reduced_queries, 1296);
        assert_eq!(report.num_distinct_after_dropping_singletons, 81);
        assert_eq!(report.classes.len(), 6);
        assert!(close(report.value, 2.0), "got {}", report.value);
        assert!(report.exact);
    }
}
