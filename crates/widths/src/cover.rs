//! Fractional edge covers (Definition A.11).
//!
//! The fractional edge cover number `ρ*_E(S)` of a vertex set `S` is the
//! optimum of the covering LP that assigns a non-negative weight to every
//! hyperedge such that every vertex of `S` is covered with total weight at
//! least one.  By LP duality it equals the optimum of the fractional vertex
//! packing LP, which is what we solve (see [`crate::lp`]); the cover weights
//! are recovered from the dual.

use crate::lp::{solve_packing_lp, LpOutcome};
use ij_hypergraph::{Hypergraph, VarId};
use std::collections::BTreeSet;

/// A fractional edge cover of a vertex set.
#[derive(Debug, Clone)]
pub struct FractionalEdgeCover {
    /// The fractional edge cover number `ρ*`.
    pub value: f64,
    /// One weight per hyperedge of the hypergraph (in edge order).
    pub weights: Vec<f64>,
}

/// Computes `ρ*_E(S)` together with optimal edge weights.  Returns `None` if
/// some vertex of `S` is not covered by any hyperedge (the cover LP is then
/// infeasible and the number is `+∞`).
pub fn fractional_edge_cover(h: &Hypergraph, s: &BTreeSet<VarId>) -> Option<FractionalEdgeCover> {
    if s.is_empty() {
        return Some(FractionalEdgeCover {
            value: 0.0,
            weights: vec![0.0; h.num_edges()],
        });
    }
    let vars: Vec<VarId> = s.iter().copied().collect();
    // Infeasibility check: every vertex of S must occur in some edge.
    for &v in &vars {
        if h.degree(v) == 0 {
            return None;
        }
    }
    // Packing LP: one variable per vertex of S, one constraint per edge.
    let a: Vec<Vec<f64>> = h
        .edges()
        .iter()
        .map(|e| {
            vars.iter()
                .map(|&v| if e.vertices.contains(&v) { 1.0 } else { 0.0 })
                .collect()
        })
        .collect();
    let b = vec![1.0; h.num_edges()];
    let c = vec![1.0; vars.len()];
    match solve_packing_lp(&a, &b, &c) {
        LpOutcome::Optimal(sol) => Some(FractionalEdgeCover {
            value: sol.value,
            weights: sol.dual,
        }),
        LpOutcome::Unbounded => None,
    }
}

/// The fractional edge cover number `ρ*_E(S)`, or `f64::INFINITY` if `S`
/// contains an uncovered vertex.
pub fn fractional_edge_cover_number(h: &Hypergraph, s: &BTreeSet<VarId>) -> f64 {
    fractional_edge_cover(h, s)
        .map(|c| c.value)
        .unwrap_or(f64::INFINITY)
}

/// The fractional edge cover number of the whole vertex set — the exponent of
/// the AGM bound on the output size of the full join.
pub fn agm_exponent(h: &Hypergraph) -> f64 {
    let all: BTreeSet<VarId> = (0..h.num_vertices()).collect();
    fractional_edge_cover_number(h, &all)
}

/// The degree of every vertex (the number of hyperedges containing it), in
/// vertex order.  A cheap structural statistic: the adaptive per-disjunct
/// planner (`ij_ejoin`) uses it as a tie-break — between equally small
/// variables, the one touching more atoms constrains the search harder.
pub fn vertex_degrees(h: &Hypergraph) -> Vec<usize> {
    (0..h.num_vertices()).map(|v| h.degree(v)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_hypergraph::{four_clique_ej, loomis_whitney_4_ej, triangle_ej, Hypergraph};

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-6
    }

    fn all_vars(h: &Hypergraph) -> BTreeSet<VarId> {
        (0..h.num_vertices()).collect()
    }

    #[test]
    fn triangle_cover_number_is_three_halves() {
        let h = triangle_ej();
        let cover = fractional_edge_cover(&h, &all_vars(&h)).unwrap();
        assert!(close(cover.value, 1.5));
        // The optimal cover puts weight 1/2 on each edge.
        assert_eq!(cover.weights.len(), 3);
        let total: f64 = cover.weights.iter().sum();
        assert!(close(total, 1.5));
        // Feasibility: every vertex covered.
        for v in 0..h.num_vertices() {
            let covered: f64 = h
                .edges()
                .iter()
                .zip(&cover.weights)
                .filter(|(e, _)| e.vertices.contains(&v))
                .map(|(_, w)| w)
                .sum();
            assert!(covered >= 1.0 - 1e-6);
        }
    }

    #[test]
    fn lw4_cover_number_is_four_thirds() {
        let h = loomis_whitney_4_ej();
        assert!(close(agm_exponent(&h), 4.0 / 3.0));
    }

    #[test]
    fn four_clique_cover_number_is_two() {
        let h = four_clique_ej();
        assert!(close(agm_exponent(&h), 2.0));
    }

    #[test]
    fn subset_cover_is_cheaper() {
        let h = triangle_ej();
        let a = h.vertex_by_name("A").unwrap();
        let b = h.vertex_by_name("B").unwrap();
        let single: BTreeSet<VarId> = [a].into_iter().collect();
        let pair: BTreeSet<VarId> = [a, b].into_iter().collect();
        assert!(close(fractional_edge_cover_number(&h, &single), 1.0));
        assert!(close(fractional_edge_cover_number(&h, &pair), 1.0));
        assert!(close(
            fractional_edge_cover_number(&h, &BTreeSet::new()),
            0.0
        ));
    }

    #[test]
    fn uncovered_vertex_yields_infinity() {
        let mut h = Hypergraph::new();
        let a = h.add_point_var("A");
        let b = h.add_point_var("B");
        h.add_edge("R", vec![a]);
        let s: BTreeSet<VarId> = [a, b].into_iter().collect();
        assert!(fractional_edge_cover_number(&h, &s).is_infinite());
        assert!(fractional_edge_cover(&h, &s).is_none());
    }

    #[test]
    fn single_edge_covers_its_vertices_with_weight_one() {
        let mut h = Hypergraph::new();
        let a = h.add_point_var("A");
        let b = h.add_point_var("B");
        let c = h.add_point_var("C");
        h.add_edge("R", vec![a, b, c]);
        let cover = fractional_edge_cover(&h, &all_vars(&h)).unwrap();
        assert!(close(cover.value, 1.0));
        assert!(close(cover.weights[0], 1.0));
    }
}
