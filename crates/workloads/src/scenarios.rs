//! Interval-native scenario generators.
//!
//! Where [`generate_for_query`](crate::generate_for_query) fills an arbitrary
//! query with one configured distribution, the scenario suite goes the other
//! way: each [`ScenarioFamily`] fixes a realistic query shape *and* a
//! domain-specific interval distribution, and exposes the same three knobs
//! everywhere — size, selectivity, skew — plus a planted-answer mode.  The
//! four families cover the paper's Section 2 motivations and differ
//! structurally (star, full matching, path, cyclic triangle), so a harness
//! sweeping them exercises ι-acyclic and cyclic plans, unary and binary
//! atoms, wide and degenerate point intervals.
//!
//! Every scenario is deterministic given its [`ScenarioConfig`] — the config
//! *is* the reproduction recipe, which is what lets the differential harness
//! shrink a failing configuration instead of a failing dataset.

use ij_hypergraph::VarKind;
use ij_relation::{Database, Query, Relation, Value};
use ij_segtree::Interval;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The scenario families of the interval-native suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ScenarioFamily {
    /// Calendars/sessions sharing a time axis: three unary relations joined
    /// on one interval variable (a star, ι-acyclic).  Durations are
    /// heavy-tailed under skew — a few marathon sessions overlap everything.
    TemporalOverlap,
    /// Firewall-style range matching: rules, flows, and a watchlist joined
    /// on source *and* destination address ranges.  Rules and watchlist
    /// entries are CIDR-aligned blocks (power-of-two sizes); flows are
    /// degenerate point addresses, exercising membership-join semantics.
    IpRanges,
    /// Genome annotation overlap: genes–reads–enhancers form a path query
    /// (α-acyclic).  Under skew the positions cluster around a few hotspot
    /// loci, producing the dense pile-ups typical of real coverage data.
    GenomicOverlap,
    /// Axis-aligned rectangles joined pairwise per axis: a cyclic triangle
    /// over two-interval-column relations (ij-width 3/2), the MBR spatial
    /// join of Section 2.
    SpatialRectangles,
}

impl ScenarioFamily {
    /// All families, in a stable sweep order.
    pub const ALL: [ScenarioFamily; 4] = [
        ScenarioFamily::TemporalOverlap,
        ScenarioFamily::IpRanges,
        ScenarioFamily::GenomicOverlap,
        ScenarioFamily::SpatialRectangles,
    ];

    /// Stable kebab-case name (used in scenario labels and bench ids).
    pub fn name(self) -> &'static str {
        match self {
            ScenarioFamily::TemporalOverlap => "temporal-overlap",
            ScenarioFamily::IpRanges => "ip-ranges",
            ScenarioFamily::GenomicOverlap => "genomic-overlap",
            ScenarioFamily::SpatialRectangles => "spatial-rectangles",
        }
    }

    /// The family's fixed query text (bracketed variables are intervals).
    pub fn query_text(self) -> &'static str {
        match self {
            ScenarioFamily::TemporalOverlap => "Sessions([T]) & Meetings([T]) & Oncall([T])",
            ScenarioFamily::IpRanges => "Rules([S],[D]) & Flows([S],[D]) & Watchlist([S],[D])",
            ScenarioFamily::GenomicOverlap => "Genes([G]) & Reads([G],[E]) & Enhancers([E])",
            ScenarioFamily::SpatialRectangles => {
                "Buildings([X],[Y]) & FloodZones([Y],[Z]) & Coverage([X],[Z])"
            }
        }
    }

    /// The family's parsed query.
    pub fn query(self) -> Query {
        Query::parse(self.query_text()).expect("scenario query text parses")
    }

    /// A per-family salt so equal seeds do not produce correlated draws
    /// across families.
    fn salt(self) -> u64 {
        match self {
            ScenarioFamily::TemporalOverlap => 0x74656d70,
            ScenarioFamily::IpRanges => 0x69707234,
            ScenarioFamily::GenomicOverlap => 0x67656e6f,
            ScenarioFamily::SpatialRectangles => 0x73706174,
        }
    }
}

/// Planted-answer modes for a scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlantedAnswer {
    /// No planting: the Boolean answer is whatever the random draw yields.
    Natural,
    /// One witness row is appended per relation, all sharing a common
    /// intersection point — the Boolean answer is guaranteed `true`.
    Satisfiable,
    /// Every relation's values are shifted into a window disjoint from every
    /// other relation's window, so no join variable can ever be matched —
    /// the Boolean answer is guaranteed `false`.
    Unsatisfiable,
    /// Adversarially unsatisfiable: only the *last* atom's relation is
    /// shifted out of range, leaving the natural overlap structure of every
    /// earlier atom intact.  The Boolean answer is guaranteed `false` (every
    /// scenario query's last atom shares a variable with an earlier atom),
    /// but every proper prefix of the atom list keeps its matches — the
    /// worst case for evaluators that materialise or backtrack through
    /// partial matches before discovering the final atom never closes them.
    NearMiss,
}

/// The full recipe for one scenario instance.  Two equal configs always
/// produce identical databases; the differential harness shrinks failing
/// configs field by field.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScenarioConfig {
    /// Which family to generate.
    pub family: ScenarioFamily,
    /// Number of tuples per relation (before any planted witness row).
    pub tuples_per_relation: usize,
    /// RNG seed; generation is deterministic given the full config.
    pub seed: u64,
    /// Overlap density knob in `(0, 1]`: larger values produce longer
    /// intervals / wider blocks relative to the domain, hence more matches.
    /// Values outside the range are clamped.
    pub selectivity: f64,
    /// Length/position skew knob in `[0, 4]`: `0` is uniform; larger values
    /// heavy-tail the interval lengths (and, for [`ScenarioFamily::GenomicOverlap`],
    /// concentrate positions around hotspots).  Values outside are clamped.
    pub skew: f64,
    /// Planted-answer mode.
    pub planted: PlantedAnswer,
}

impl ScenarioConfig {
    /// A mid-density, mildly skewed, natural-answer config for `family`.
    pub fn new(family: ScenarioFamily) -> Self {
        ScenarioConfig {
            family,
            tuples_per_relation: 64,
            seed: 42,
            selectivity: 0.5,
            skew: 1.0,
            planted: PlantedAnswer::Natural,
        }
    }

    /// Sets the number of tuples per relation.
    pub fn with_tuples(mut self, tuples: usize) -> Self {
        self.tuples_per_relation = tuples;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the selectivity knob (clamped to `(0, 1]` at generation time).
    pub fn with_selectivity(mut self, selectivity: f64) -> Self {
        self.selectivity = selectivity;
        self
    }

    /// Sets the skew knob (clamped to `[0, 4]` at generation time).
    pub fn with_skew(mut self, skew: f64) -> Self {
        self.skew = skew;
        self
    }

    /// Sets the planted-answer mode.
    pub fn with_planted(mut self, planted: PlantedAnswer) -> Self {
        self.planted = planted;
        self
    }

    fn clamped_selectivity(&self) -> f64 {
        self.selectivity.clamp(1e-3, 1.0)
    }

    fn clamped_skew(&self) -> f64 {
        self.skew.clamp(0.0, 4.0)
    }
}

/// A generated scenario: the family's query plus a database built from one
/// [`ScenarioConfig`].
#[derive(Debug, Clone, PartialEq)]
pub struct Scenario {
    /// Human-readable label encoding the config (family, size, seed, mode).
    pub name: String,
    /// The family's query.
    pub query: Query,
    /// The generated database.
    pub database: Database,
}

/// Builds the scenario described by `cfg`.  Deterministic: equal configs
/// yield equal scenarios.
pub fn build_scenario(cfg: &ScenarioConfig) -> Scenario {
    let query = cfg.family.query();
    let mut rng =
        StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x9e3779b97f4a7c15) ^ cfg.family.salt());
    let n = cfg.tuples_per_relation;
    let selectivity = cfg.clamped_selectivity();
    let skew = cfg.clamped_skew();

    let mut database = match cfg.family {
        ScenarioFamily::TemporalOverlap => temporal_overlap(&mut rng, n, selectivity, skew),
        ScenarioFamily::IpRanges => ip_ranges(&mut rng, n, selectivity, skew),
        ScenarioFamily::GenomicOverlap => genomic_overlap(&mut rng, n, selectivity, skew),
        ScenarioFamily::SpatialRectangles => spatial_rectangles(&mut rng, n, selectivity, skew),
    };

    match cfg.planted {
        PlantedAnswer::Natural => {}
        PlantedAnswer::Satisfiable => plant_witness(&query, &mut database),
        PlantedAnswer::Unsatisfiable => separate_windows(&query, &mut database),
        PlantedAnswer::NearMiss => shift_last_atom(&query, &mut database),
    }

    Scenario {
        name: format!(
            "{}/n{}/seed{}/sel{}/skew{}/{:?}",
            cfg.family.name(),
            n,
            cfg.seed,
            selectivity,
            skew,
            cfg.planted
        ),
        query,
        database,
    }
}

/// A checked interval from generator arithmetic: the generators only ever
/// combine finite draws, so a failure here is a generator bug — surface it
/// with the offending endpoints instead of silently clamping.
fn checked_interval(lo: f64, hi: f64) -> Value {
    Value::Interval(
        Interval::try_new(lo, hi)
            .unwrap_or_else(|e| panic!("scenario generator produced {e} (lo={lo}, hi={hi})")),
    )
}

/// Draws a non-negative length with scale `base`: `skew = 0` is uniform in
/// `[0, 2 * base]`; larger skew is Pareto-like with heavier and heavier
/// tails (a few draws approach `cap`).  Always finite and `<= cap`.
fn skewed_length(rng: &mut StdRng, base: f64, skew: f64, cap: f64) -> f64 {
    let len = if skew <= 0.0 {
        rng.gen_range(0.0..=(2.0 * base))
    } else {
        let alpha = 2.0 / (1.0 + skew);
        let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
        base * (u.powf(-1.0 / alpha) - 1.0)
    };
    len.min(cap)
}

/// Three unary calendars over one horizon; selectivity is the expected
/// fraction of the horizon each session covers (domain-relative, so the
/// per-pair overlap probability is independent of `n` — at full selectivity
/// the pairwise match count grows quadratically, the regime where the
/// forward reduction's equality joins beat pairwise index probing).
fn temporal_overlap(rng: &mut StdRng, n: usize, selectivity: f64, skew: f64) -> Database {
    let mut db = Database::new();
    let horizon = (n.max(1) as f64) * 20.0;
    let base_len = selectivity * horizon / 8.0 + 0.25;
    for name in ["Sessions", "Meetings", "Oncall"] {
        let mut rel = Relation::new(name, 1);
        for _ in 0..n {
            let start = rng.gen_range(0.0..horizon);
            let len = skewed_length(rng, base_len, skew, horizon);
            rel.push(vec![checked_interval(start, start + len)]);
        }
        db.insert(rel);
    }
    db
}

/// CIDR-aligned source/destination blocks for rules and watchlist entries;
/// point addresses for flows.  Selectivity widens the maximum block (up to
/// /8); skew biases the prefix-length draw toward wider blocks.
fn ip_ranges(rng: &mut StdRng, n: usize, selectivity: f64, skew: f64) -> Database {
    const SPACE_BITS: u32 = 32;
    let max_block_bits = (8.0 + selectivity * 16.0).round() as u32; // 8..=24
    let cidr_block = |rng: &mut StdRng| -> (f64, f64) {
        let u: f64 = rng.gen_range(0.0f64..1.0);
        // skew > 0 pushes u^(1/(1+skew)) toward 1, i.e. toward wide blocks.
        let bits = (u.powf(1.0 / (1.0 + skew)) * max_block_bits as f64).floor() as u32;
        let bits = bits.min(max_block_bits);
        let size = 1u64 << bits;
        let blocks = 1u64 << (SPACE_BITS - bits);
        let lo = rng.gen_range(0..blocks) * size;
        (lo as f64, (lo + size - 1) as f64)
    };
    let mut db = Database::new();
    for name in ["Rules", "Watchlist"] {
        let mut rel = Relation::new(name, 2);
        for _ in 0..n {
            let (slo, shi) = cidr_block(rng);
            let (dlo, dhi) = cidr_block(rng);
            rel.push(vec![checked_interval(slo, shi), checked_interval(dlo, dhi)]);
        }
        db.insert(rel);
    }
    let mut flows = Relation::new("Flows", 2);
    let space = (1u64 << SPACE_BITS) as f64;
    for _ in 0..n {
        let src = rng.gen_range(0.0..space).floor();
        let dst = rng.gen_range(0.0..space).floor();
        flows.push(vec![checked_interval(src, src), checked_interval(dst, dst)]);
    }
    db.insert(flows);
    db
}

/// Genes, reads and enhancers over one genome; skew concentrates positions
/// around a few hotspot loci (clustered pile-ups), selectivity scales the
/// annotation lengths.
fn genomic_overlap(rng: &mut StdRng, n: usize, selectivity: f64, skew: f64) -> Database {
    let genome = (n.max(1) as f64) * 100.0;
    let hotspots: Vec<f64> = (0..(n / 8).max(1))
        .map(|_| rng.gen_range(0.0..genome))
        .collect();
    let cluster_prob = skew / (1.0 + skew);
    let spread = genome / (hotspots.len() as f64 * 4.0);
    let position = |rng: &mut StdRng| -> f64 {
        if rng.gen_range(0.0f64..1.0) < cluster_prob {
            let center = hotspots[rng.gen_range(0..hotspots.len())];
            // Triangular offset around the hotspot.
            let offset = (rng.gen_range(-1.0f64..1.0) + rng.gen_range(-1.0f64..1.0)) * spread / 2.0;
            (center + offset).clamp(0.0, genome)
        } else {
            rng.gen_range(0.0..genome)
        }
    };
    // Genes are long, reads medium, enhancers short.
    let schemas: [(&str, &[f64]); 3] = [
        ("Genes", &[4.0]),
        ("Reads", &[1.0, 1.0]),
        ("Enhancers", &[0.5]),
    ];
    let base_len = selectivity * 40.0 + 0.25;
    let mut db = Database::new();
    for (name, scales) in schemas {
        let mut rel = Relation::new(name, scales.len());
        for _ in 0..n {
            let row: Vec<Value> = scales
                .iter()
                .map(|scale| {
                    let lo = position(rng);
                    let len = skewed_length(rng, base_len * scale, skew, genome);
                    checked_interval(lo, lo + len)
                })
                .collect();
            rel.push(row);
        }
        db.insert(rel);
    }
    db
}

/// Axis-aligned rectangles as (x-extent, y-extent) interval pairs joined in
/// a triangle; selectivity scales the sides relative to the world.
fn spatial_rectangles(rng: &mut StdRng, n: usize, selectivity: f64, skew: f64) -> Database {
    let world = (n.max(1) as f64) * 10.0;
    let base_side = selectivity * 25.0 + 0.25;
    let mut db = Database::new();
    for name in ["Buildings", "FloodZones", "Coverage"] {
        let mut rel = Relation::new(name, 2);
        for _ in 0..n {
            let row: Vec<Value> = (0..2)
                .map(|_| {
                    let lo = rng.gen_range(0.0..world);
                    let side = skewed_length(rng, base_side, skew, world);
                    checked_interval(lo, lo + side)
                })
                .collect();
            rel.push(row);
        }
        db.insert(rel);
    }
    db
}

/// Appends one witness row per relation whose interval columns all hold the
/// same unit interval (and point columns the same point), guaranteeing a
/// satisfying combination regardless of the random part.
fn plant_witness(query: &Query, db: &mut Database) {
    let witness_interval = Value::interval(0.25, 1.25);
    let witness_point = Value::point(0.5);
    for atom in query.atoms() {
        let row: Vec<Value> = atom
            .vars
            .iter()
            .map(|v| match query.var_kind(v) {
                Some(VarKind::Interval) => witness_interval,
                _ => witness_point,
            })
            .collect();
        if let Some(rel) = db.relation_mut(&atom.relation) {
            rel.push(row);
        }
    }
}

/// The largest absolute endpoint across all relations the query touches
/// (endpoints are `>= 0` by construction in every family, but the shift
/// helpers stay correct for arbitrary signs).
fn data_span(query: &Query, db: &Database) -> f64 {
    let mut span = 0.0f64;
    for atom in query.atoms() {
        if let Some(rel) = db.relation(&atom.relation) {
            for tuple in rel.tuples() {
                for value in tuple {
                    if let Some(iv) = value.to_interval() {
                        span = span.max(iv.hi().abs()).max(iv.lo().abs());
                    }
                }
            }
        }
    }
    span
}

/// Shifts every value of `relation` by `offset` (intervals endpoint-wise,
/// points directly).
fn shift_relation(db: &mut Database, relation: &str, offset: f64) {
    let Some(rel) = db.relation_mut(relation) else {
        return;
    };
    let arity = rel.arity();
    let shifted: Vec<Vec<Value>> = rel
        .tuples()
        .iter()
        .map(|t| {
            t.iter()
                .map(|v| match v.as_interval() {
                    Some(iv) => checked_interval(iv.lo() + offset, iv.hi() + offset),
                    None => Value::point(v.as_point().unwrap_or(0.0) + offset),
                })
                .collect()
        })
        .collect();
    *rel = ij_relation::Relation::from_tuples(rel.name().to_string(), arity, shifted);
}

/// Shifts each relation's values into a window disjoint from every other
/// relation's window.  Every scenario query has each atom sharing a variable
/// with another atom, so some join constraint is violated by every tuple
/// combination and the Boolean answer is `false`.
fn separate_windows(query: &Query, db: &mut Database) {
    // Window width from the actual generated data: all values live in
    // `[-span, span]`, so steps of `2 * span + 1` keep the windows disjoint
    // whatever the signs.
    let window = 2.0 * data_span(query, db) + 1.0;
    for (i, atom) in query.atoms().iter().enumerate() {
        shift_relation(db, &atom.relation, window * (i as f64 + 1.0));
    }
}

/// Shifts only the last atom's relation out of the data's range: the final
/// join constraint can never close, so the answer is `false`, but every
/// earlier atom keeps its natural matches (the near-miss worst case).
fn shift_last_atom(query: &Query, db: &mut Database) {
    let window = 2.0 * data_span(query, db) + 1.0;
    if let Some(atom) = query.atoms().last() {
        shift_relation(db, &atom.relation, window);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(family: ScenarioFamily) -> ScenarioConfig {
        ScenarioConfig::new(family).with_tuples(12).with_seed(7)
    }

    #[test]
    fn generation_is_deterministic_given_the_config() {
        for family in ScenarioFamily::ALL {
            let cfg = small(family);
            let a = build_scenario(&cfg);
            let b = build_scenario(&cfg);
            assert_eq!(a, b, "{}", family.name());
            let c = build_scenario(&cfg.with_seed(8));
            assert_ne!(a.database, c.database, "{}", family.name());
        }
    }

    #[test]
    fn scenarios_match_their_query_schemas() {
        for family in ScenarioFamily::ALL {
            let scenario = build_scenario(&small(family));
            for atom in scenario.query.atoms() {
                let rel = scenario
                    .database
                    .relation(&atom.relation)
                    .unwrap_or_else(|| panic!("{}: missing {}", family.name(), atom.relation));
                assert_eq!(rel.arity(), atom.vars.len(), "{}", family.name());
                assert_eq!(rel.len(), 12, "{}", family.name());
                for tuple in rel.tuples() {
                    for value in tuple {
                        let iv = value.to_interval().expect("interval-convertible value");
                        assert!(iv.lo().is_finite() && iv.hi().is_finite());
                        assert!(iv.lo() >= 0.0, "{}: negative endpoint", family.name());
                    }
                }
            }
        }
    }

    #[test]
    fn ip_ranges_blocks_are_cidr_aligned_and_flows_are_points() {
        let scenario = build_scenario(&small(ScenarioFamily::IpRanges).with_tuples(40));
        for name in ["Rules", "Watchlist"] {
            for tuple in scenario.database.relation(name).unwrap().tuples() {
                for value in tuple {
                    let iv = value.as_interval().unwrap();
                    let size = iv.hi() - iv.lo() + 1.0;
                    assert_eq!(size.log2().fract(), 0.0, "block size {size} not 2^k");
                    assert_eq!(iv.lo() % size, 0.0, "block not aligned to its size");
                }
            }
        }
        for tuple in scenario.database.relation("Flows").unwrap().tuples() {
            for value in tuple {
                assert!(value.as_interval().unwrap().is_point());
            }
        }
    }

    #[test]
    fn selectivity_scales_interval_lengths() {
        for family in [
            ScenarioFamily::TemporalOverlap,
            ScenarioFamily::GenomicOverlap,
            ScenarioFamily::SpatialRectangles,
        ] {
            let total_length = |selectivity: f64| -> f64 {
                let cfg = ScenarioConfig::new(family)
                    .with_tuples(64)
                    .with_skew(0.0)
                    .with_selectivity(selectivity);
                let scenario = build_scenario(&cfg);
                scenario
                    .query
                    .atoms()
                    .iter()
                    .flat_map(|a| scenario.database.relation(&a.relation).unwrap().tuples())
                    .flat_map(|t| t.into_iter().map(|v| v.to_interval().unwrap().length()))
                    .sum()
            };
            assert!(
                total_length(0.05) < total_length(0.9),
                "{}: selectivity did not scale lengths",
                family.name()
            );
        }
    }

    #[test]
    fn skew_produces_heavier_tails() {
        let max_length = |skew: f64| -> f64 {
            let cfg = ScenarioConfig::new(ScenarioFamily::TemporalOverlap)
                .with_tuples(128)
                .with_skew(skew);
            let scenario = build_scenario(&cfg);
            scenario
                .database
                .relation("Sessions")
                .unwrap()
                .tuples()
                .iter()
                .map(|t| t[0].to_interval().unwrap().length())
                .fold(0.0, f64::max)
        };
        assert!(max_length(0.0) < max_length(3.5));
    }

    #[test]
    fn planted_satisfiable_appends_a_shared_witness() {
        for family in ScenarioFamily::ALL {
            let cfg = small(family).with_planted(PlantedAnswer::Satisfiable);
            let scenario = build_scenario(&cfg);
            for atom in scenario.query.atoms() {
                let rel = scenario.database.relation(&atom.relation).unwrap();
                assert_eq!(rel.len(), 13, "{}", family.name());
                for value in rel.row(rel.len() - 1) {
                    assert_eq!(value.as_interval().unwrap(), Interval::new(0.25, 1.25));
                }
            }
        }
    }

    #[test]
    fn planted_unsatisfiable_separates_every_relation_pair() {
        for family in ScenarioFamily::ALL {
            let cfg = small(family).with_planted(PlantedAnswer::Unsatisfiable);
            let scenario = build_scenario(&cfg);
            let names: Vec<&str> = scenario
                .query
                .atoms()
                .iter()
                .map(|a| a.relation.as_str())
                .collect();
            for (i, a) in names.iter().enumerate() {
                for b in names.iter().skip(i + 1) {
                    let ra = scenario.database.relation(a).unwrap();
                    let rb = scenario.database.relation(b).unwrap();
                    for ta in ra.tuples() {
                        for tb in rb.tuples() {
                            for va in &ta {
                                for vb in &tb {
                                    assert!(
                                        !va.to_interval()
                                            .unwrap()
                                            .intersects(vb.to_interval().unwrap()),
                                        "{}: {a} and {b} overlap",
                                        family.name()
                                    );
                                }
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn planted_near_miss_shifts_only_the_last_relation() {
        for family in ScenarioFamily::ALL {
            let natural = build_scenario(&small(family));
            let near_miss = build_scenario(&small(family).with_planted(PlantedAnswer::NearMiss));
            let atoms = near_miss.query.atoms();
            let (last, prefix) = atoms.split_last().expect("scenario queries have atoms");
            // Every earlier relation keeps its natural tuples...
            for atom in prefix {
                assert_eq!(
                    natural.database.relation(&atom.relation),
                    near_miss.database.relation(&atom.relation),
                    "{}: prefix relation {} changed",
                    family.name(),
                    atom.relation
                );
            }
            // ...while the last relation is disjoint from all of them.
            let shifted = near_miss.database.relation(&last.relation).unwrap();
            for atom in prefix {
                let rel = near_miss.database.relation(&atom.relation).unwrap();
                for ta in rel.tuples() {
                    for tb in shifted.tuples() {
                        for va in &ta {
                            for vb in &tb {
                                assert!(
                                    !va.to_interval()
                                        .unwrap()
                                        .intersects(vb.to_interval().unwrap()),
                                    "{}: {} overlaps shifted {}",
                                    family.name(),
                                    atom.relation,
                                    last.relation
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn knobs_are_clamped_not_rejected() {
        let cfg = ScenarioConfig::new(ScenarioFamily::TemporalOverlap)
            .with_tuples(4)
            .with_selectivity(42.0)
            .with_skew(-3.0);
        // Must not panic; clamped to selectivity 1.0, skew 0.0.
        let scenario = build_scenario(&cfg);
        assert_eq!(scenario.database.relation("Sessions").unwrap().len(), 4);
    }

    #[test]
    fn names_encode_the_config() {
        let cfg = small(ScenarioFamily::GenomicOverlap);
        let scenario = build_scenario(&cfg);
        assert!(scenario.name.contains("genomic-overlap"));
        assert!(scenario.name.contains("n12"));
        assert!(scenario.name.contains("seed7"));
    }
}
