//! Synthetic interval workloads for the test and benchmark harnesses.
//!
//! The paper has no experimental section and therefore no datasets; the
//! workloads below are synthetic substitutes that exercise the same code
//! paths (documented in `DESIGN.md`).  All generators are deterministic given
//! a seed.
//!
//! * [`generate_for_query`] — for an arbitrary query, one relation per atom
//!   filled with intervals (and points for point variables) drawn from an
//!   [`IntervalDistribution`];
//! * [`build_scenario`] — the interval-native scenario suite: four
//!   [`ScenarioFamily`] generators (temporal overlap, IP range matching,
//!   genomic overlap, spatial rectangles) with size/selectivity/skew knobs
//!   and planted-answer modes, driven by one [`ScenarioConfig`] recipe;
//! * [`temporal_sessions`] — a temporal-database style workload (sessions
//!   with start/end timestamps, Section 2's motivation);
//! * [`spatial_boxes`] — minimum-bounding-rectangle projections (two interval
//!   columns per tuple), the spatial-join motivation of Section 2;
//! * [`point_intervals`] — degenerate point intervals, for which intersection
//!   joins coincide with equality joins (Section 1).

#![warn(missing_docs)]

mod generators;
mod scenarios;

pub use generators::{
    generate_for_query, planted_satisfiable, planted_unsatisfiable, point_intervals, spatial_boxes,
    temporal_sessions, IntervalDistribution, WorkloadConfig,
};
pub use scenarios::{build_scenario, PlantedAnswer, Scenario, ScenarioConfig, ScenarioFamily};
