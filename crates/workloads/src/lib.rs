//! Synthetic interval workloads for the benchmark harness.
//!
//! The paper has no experimental section and therefore no datasets; the
//! workloads below are synthetic substitutes that exercise the same code
//! paths (documented in `DESIGN.md`).  All generators are deterministic given
//! a seed.
//!
//! * [`generate_for_query`] — for an arbitrary query, one relation per atom
//!   filled with intervals (and points for point variables) drawn from an
//!   [`IntervalDistribution`];
//! * [`temporal_sessions`] — a temporal-database style workload (sessions
//!   with start/end timestamps, Section 2's motivation);
//! * [`spatial_boxes`] — minimum-bounding-rectangle projections (two interval
//!   columns per tuple), the spatial-join motivation of Section 2;
//! * [`point_intervals`] — degenerate point intervals, for which intersection
//!   joins coincide with equality joins (Section 1).

mod generators;

pub use generators::{
    generate_for_query, planted_satisfiable, planted_unsatisfiable, point_intervals, spatial_boxes,
    temporal_sessions, IntervalDistribution, WorkloadConfig,
};
