//! Workload generators.

use ij_hypergraph::VarKind;
use ij_relation::{Database, Query, Relation, Value};
use ij_segtree::Interval;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds an interval value through [`Interval::try_new`], so a generator
/// bug (reversed or non-finite endpoints from drifting arithmetic) fails
/// loudly with the offending endpoints instead of a bare assert.
fn checked_interval(lo: f64, hi: f64) -> Value {
    Value::Interval(
        Interval::try_new(lo, hi)
            .unwrap_or_else(|e| panic!("workload generator produced {e} (lo={lo}, hi={hi})")),
    )
}

/// How interval endpoints are drawn.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IntervalDistribution {
    /// Left endpoints uniform in `[0, span)`, lengths uniform in `[0, max_len]`.
    Uniform {
        /// Extent of the left-endpoint domain.
        span: f64,
        /// Maximum interval length.
        max_len: f64,
    },
    /// Left endpoints uniform, lengths heavy-tailed (Pareto-like with shape
    /// `alpha`); a few very long intervals intersect almost everything.
    HeavyTailed {
        /// Extent of the left-endpoint domain.
        span: f64,
        /// Pareto shape parameter (> 0); smaller means heavier tails.
        alpha: f64,
        /// Length scale.
        scale: f64,
    },
    /// Degenerate point intervals with integer coordinates in `[0, domain)`;
    /// intersection joins become equality joins.
    Points {
        /// Number of distinct points.
        domain: u64,
    },
    /// Intervals aligned to a grid of `cells` cells over `[0, span)`: each
    /// interval covers a contiguous run of `1..=max_cells` cells.  Aligned
    /// intervals keep canonical partitions small, which makes large-`N`
    /// benchmark runs affordable.
    GridAligned {
        /// Extent of the domain.
        span: f64,
        /// Number of grid cells.
        cells: u32,
        /// Maximum number of covered cells.
        max_cells: u32,
    },
}

impl IntervalDistribution {
    fn sample(&self, rng: &mut StdRng) -> (f64, f64) {
        match *self {
            IntervalDistribution::Uniform { span, max_len } => {
                let lo = rng.gen_range(0.0..span);
                let len = rng.gen_range(0.0..=max_len);
                (lo, lo + len)
            }
            IntervalDistribution::HeavyTailed { span, alpha, scale } => {
                let lo = rng.gen_range(0.0..span);
                let u: f64 = rng.gen_range(0.0f64..1.0).max(1e-12);
                let len = scale * (u.powf(-1.0 / alpha) - 1.0);
                (lo, lo + len.min(span))
            }
            IntervalDistribution::Points { domain } => {
                let p = rng.gen_range(0..domain) as f64;
                (p, p)
            }
            IntervalDistribution::GridAligned {
                span,
                cells,
                max_cells,
            } => {
                let width = span / cells as f64;
                let start = rng.gen_range(0..cells);
                let run = rng.gen_range(1..=max_cells.max(1));
                let end = (start + run).min(cells);
                (start as f64 * width, end as f64 * width)
            }
        }
    }
}

/// Configuration of a generated workload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadConfig {
    /// Number of tuples per relation.
    pub tuples_per_relation: usize,
    /// RNG seed (generation is deterministic given the seed).
    pub seed: u64,
    /// Distribution of interval values.
    pub distribution: IntervalDistribution,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            tuples_per_relation: 1000,
            seed: 42,
            distribution: IntervalDistribution::Uniform {
                span: 1000.0,
                max_len: 20.0,
            },
        }
    }
}

/// Generates a database for an arbitrary query: one relation per atom, with
/// `tuples_per_relation` tuples whose interval columns follow the configured
/// distribution and whose point columns take uniform integer values.
pub fn generate_for_query(q: &Query, cfg: &WorkloadConfig) -> Database {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut db = Database::new();
    for atom in q.atoms() {
        // Skip duplicate relation names (self-joins reuse the same relation).
        if db.relation(&atom.relation).is_some() {
            continue;
        }
        let mut rel = Relation::new(atom.relation.clone(), atom.vars.len());
        for _ in 0..cfg.tuples_per_relation {
            let mut row = Vec::with_capacity(atom.vars.len());
            for v in &atom.vars {
                match q.var_kind(v) {
                    Some(VarKind::Interval) => {
                        let (lo, hi) = cfg.distribution.sample(&mut rng);
                        row.push(checked_interval(lo, hi));
                    }
                    _ => {
                        let p = rng.gen_range(0..cfg.tuples_per_relation.max(1)) as f64;
                        row.push(Value::point(p));
                    }
                }
            }
            rel.push(row);
        }
        db.insert(rel);
    }
    db
}

/// A workload that is guaranteed to satisfy the query: the random database of
/// [`generate_for_query`] plus one *planted witness* tuple per relation whose
/// interval columns all hold the same unit interval and whose point columns
/// all hold the same value.  Every intersection and equality join is
/// satisfied by the planted tuples, so the Boolean query is true regardless
/// of the random part.  Used by the differential tests to guarantee coverage
/// of the `true` outcome.
pub fn planted_satisfiable(q: &Query, cfg: &WorkloadConfig) -> Database {
    let mut db = generate_for_query(q, cfg);
    let witness_interval = Value::interval(0.25, 1.25);
    let witness_point = Value::point(0.5);
    for atom in q.atoms() {
        let row: Vec<Value> = atom
            .vars
            .iter()
            .map(|v| match q.var_kind(v) {
                Some(VarKind::Interval) => witness_interval,
                _ => witness_point,
            })
            .collect();
        if let Some(rel) = db.relation_mut(&atom.relation) {
            rel.push(row);
        }
    }
    db
}

/// A workload that is guaranteed *not* to satisfy the query: the values of
/// the `i`-th relation are confined to a window disjoint from every other
/// relation's window, so no join variable occurring in two different
/// relations can ever be matched.  Used by the differential tests to
/// guarantee coverage of the `false` outcome.
///
/// # Panics
///
/// Panics if the query is not self-join-free or has no variable occurring in
/// at least two atoms (such a query is satisfied by any non-empty database
/// and cannot be planted false).
pub fn planted_unsatisfiable(q: &Query, cfg: &WorkloadConfig) -> Database {
    assert!(
        q.is_self_join_free(),
        "planted_unsatisfiable requires a self-join-free query"
    );
    let has_join_var = q
        .variables()
        .iter()
        .any(|v| q.atoms().iter().filter(|a| a.vars.contains(v)).count() >= 2);
    assert!(
        has_join_var,
        "planted_unsatisfiable requires at least one join variable"
    );

    let span = match cfg.distribution {
        IntervalDistribution::Uniform { span, max_len } => span + max_len,
        IntervalDistribution::HeavyTailed { span, .. } => 2.0 * span,
        IntervalDistribution::Points { domain } => domain as f64,
        IntervalDistribution::GridAligned { span, .. } => span,
    };
    let window = span + cfg.tuples_per_relation as f64 + 1.0;

    let mut db = generate_for_query(q, cfg);
    for (i, atom) in q.atoms().iter().enumerate() {
        let offset = window * (i as f64 + 1.0);
        let Some(rel) = db.relation_mut(&atom.relation) else {
            continue;
        };
        let arity = rel.arity();
        let shifted: Vec<Vec<Value>> = rel
            .tuples()
            .iter()
            .map(|t| {
                t.iter()
                    .map(|v| match v.as_interval() {
                        Some(iv) => checked_interval(iv.lo() + offset, iv.hi() + offset),
                        None => Value::point(v.as_point().unwrap_or(0.0) + offset),
                    })
                    .collect()
            })
            .collect();
        *rel = Relation::from_tuples(rel.name().to_string(), arity, shifted);
    }
    db
}

/// A temporal workload: every relation holds `n` sessions `[start, end]`
/// with exponential-ish durations, mimicking validity intervals in temporal
/// databases (Section 2).
pub fn temporal_sessions(relation_names: &[&str], n: usize, seed: u64) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    let horizon = (n as f64) * 10.0;
    for name in relation_names {
        let mut rel = Relation::new(*name, 1);
        for _ in 0..n {
            let start = rng.gen_range(0.0..horizon);
            let duration = -(rng.gen_range(0.0f64..1.0).max(1e-12)).ln() * 30.0;
            rel.push(vec![checked_interval(start, start + duration)]);
        }
        db.insert(rel);
    }
    db
}

/// A spatial workload: every relation holds `n` axis-aligned rectangles as a
/// pair of intervals (x-extent, y-extent), the classical MBR encoding of
/// spatial joins (Section 2).
pub fn spatial_boxes(
    relation_names: &[&str],
    n: usize,
    seed: u64,
    world: f64,
    max_side: f64,
) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for name in relation_names {
        let mut rel = Relation::new(*name, 2);
        for _ in 0..n {
            let x = rng.gen_range(0.0..world);
            let y = rng.gen_range(0.0..world);
            let w = rng.gen_range(0.0..=max_side);
            let h = rng.gen_range(0.0..=max_side);
            rel.push(vec![checked_interval(x, x + w), checked_interval(y, y + h)]);
        }
        db.insert(rel);
    }
    db
}

/// Point intervals with integer coordinates — intersection joins over this
/// workload coincide with equality joins (Section 1), which is useful for
/// differential tests against a plain equality-join engine.
pub fn point_intervals(
    relation_names: &[(&str, usize)],
    n: usize,
    domain: u64,
    seed: u64,
) -> Database {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = Database::new();
    for (name, arity) in relation_names {
        let mut rel = Relation::new(*name, *arity);
        for _ in 0..n {
            let row: Vec<Value> = (0..*arity)
                .map(|_| {
                    let p = rng.gen_range(0..domain) as f64;
                    Value::Interval(ij_segtree::Interval::point(p))
                })
                .collect();
            rel.push(row);
        }
        db.insert(rel);
    }
    db
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_given_the_seed() {
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let cfg = WorkloadConfig {
            tuples_per_relation: 50,
            seed: 7,
            ..WorkloadConfig::default()
        };
        let a = generate_for_query(&q, &cfg);
        let b = generate_for_query(&q, &cfg);
        assert_eq!(a, b);
        let c = generate_for_query(&q, &WorkloadConfig { seed: 8, ..cfg });
        assert_ne!(a, c);
    }

    #[test]
    fn generated_relations_match_query_schemas() {
        let q = Query::parse("R([A],[B]) & S([B],C)").unwrap();
        let cfg = WorkloadConfig {
            tuples_per_relation: 20,
            ..WorkloadConfig::default()
        };
        let db = generate_for_query(&q, &cfg);
        assert_eq!(db.num_relations(), 2);
        let r = db.relation("R").unwrap();
        assert_eq!(r.arity(), 2);
        assert_eq!(r.len(), 20);
        // S has an interval column (B) and a point column (C).
        let s = db.relation("S").unwrap();
        for t in s.tuples() {
            assert!(t[0].as_interval().is_some());
            assert!(t[1].as_point().is_some());
        }
    }

    #[test]
    fn self_joins_share_one_relation() {
        let q = Query::parse("R([A],[B]) & R([B],[C])").unwrap();
        let db = generate_for_query(
            &q,
            &WorkloadConfig {
                tuples_per_relation: 5,
                ..Default::default()
            },
        );
        assert_eq!(db.num_relations(), 1);
    }

    #[test]
    fn distributions_produce_valid_intervals() {
        let distributions = [
            IntervalDistribution::Uniform {
                span: 100.0,
                max_len: 10.0,
            },
            IntervalDistribution::HeavyTailed {
                span: 100.0,
                alpha: 1.5,
                scale: 5.0,
            },
            IntervalDistribution::Points { domain: 50 },
            IntervalDistribution::GridAligned {
                span: 100.0,
                cells: 32,
                max_cells: 4,
            },
        ];
        let mut rng = StdRng::seed_from_u64(1);
        for d in distributions {
            for _ in 0..200 {
                let (lo, hi) = d.sample(&mut rng);
                assert!(lo <= hi, "{d:?} produced an inverted interval");
                assert!(lo.is_finite() && hi.is_finite());
            }
        }
    }

    #[test]
    fn points_distribution_yields_point_intervals() {
        let q = Query::parse("R([A])").unwrap();
        let cfg = WorkloadConfig {
            tuples_per_relation: 30,
            seed: 3,
            distribution: IntervalDistribution::Points { domain: 5 },
        };
        let db = generate_for_query(&q, &cfg);
        for t in db.relation("R").unwrap().tuples() {
            let iv = t[0].as_interval().unwrap();
            assert!(iv.is_point());
        }
    }

    #[test]
    fn planted_satisfiable_contains_a_witness_row_per_relation() {
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let cfg = WorkloadConfig {
            tuples_per_relation: 7,
            seed: 3,
            distribution: IntervalDistribution::Uniform {
                span: 500.0,
                max_len: 5.0,
            },
        };
        let db = planted_satisfiable(&q, &cfg);
        for name in ["R", "S", "T"] {
            let rel = db.relation(name).unwrap();
            assert_eq!(rel.len(), 8);
            let witness = rel.row(rel.len() - 1);
            for v in witness {
                assert_eq!(
                    v.as_interval().unwrap(),
                    ij_segtree::Interval::new(0.25, 1.25)
                );
            }
        }
    }

    #[test]
    fn planted_unsatisfiable_separates_relations_into_disjoint_windows() {
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let cfg = WorkloadConfig {
            tuples_per_relation: 6,
            seed: 1,
            distribution: IntervalDistribution::Uniform {
                span: 50.0,
                max_len: 10.0,
            },
        };
        let db = planted_unsatisfiable(&q, &cfg);
        // No interval of R intersects any interval of S or T (and so on).
        let names = ["R", "S", "T"];
        for (i, a) in names.iter().enumerate() {
            for b in names.iter().skip(i + 1) {
                for ta in db.relation(a).unwrap().tuples() {
                    for tb in db.relation(b).unwrap().tuples() {
                        for va in &ta {
                            for vb in &tb {
                                assert!(!va
                                    .as_interval()
                                    .unwrap()
                                    .intersects(vb.as_interval().unwrap()));
                            }
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "join variable")]
    fn planted_unsatisfiable_rejects_queries_without_join_variables() {
        let q = Query::parse("R([A])").unwrap();
        planted_unsatisfiable(&q, &WorkloadConfig::default());
    }

    #[test]
    fn named_workloads_have_expected_shapes() {
        let temporal = temporal_sessions(&["R", "S"], 25, 1);
        assert_eq!(temporal.num_relations(), 2);
        assert_eq!(temporal.total_tuples(), 50);

        let spatial = spatial_boxes(&["Boxes"], 10, 2, 1000.0, 50.0);
        let rel = spatial.relation("Boxes").unwrap();
        assert_eq!(rel.arity(), 2);
        for t in rel.tuples() {
            assert!(t[0].as_interval().unwrap().length() <= 50.0);
        }

        let points = point_intervals(&[("R", 2), ("S", 1)], 12, 9, 5);
        assert_eq!(points.relation("R").unwrap().arity(), 2);
        assert_eq!(points.relation("S").unwrap().len(), 12);
    }
}
