//! Flat (CSR-style) leapfrog tries: sorted-array levels with child-range
//! offsets instead of per-node hash maps.
//!
//! A [`FlatTrie`] stores one sorted [`ValueId`] array per trie level plus a
//! child-range offset array per non-leaf level — the compressed-sparse-row
//! discipline: entry `i` of level `l` owns the values
//! `levels[l+1].values[child_start[i] .. child_start[i+1]]`, so the whole
//! trie is a handful of contiguous allocations with no per-node boxes and no
//! hash probes.  The candidate sets the generic join intersects become
//! **sorted runs**, which is what unlocks the galloping multi-way
//! intersection kernels of [`ij_relation::kernels`]
//! ([`leapfrog_next`](kernels::leapfrog_next),
//! [`gallop_seek`](kernels::gallop_seek)): candidate generation walks arrays
//! in cache order instead of chasing `HashMap` buckets.
//!
//! The build is column-wise: surviving row indices (after the same
//! repeated-variable kernel mask the hash build uses) are sorted
//! lexicographically by the level columns, and one linear pass emits the CSR
//! arrays, collapsing duplicate paths.  Sharded builds reuse the exact
//! [`shard_of`](crate::shard_of) row partition of the hash layout, so a flat
//! shard holds precisely the rows its hash twin would — which is what keeps
//! answers bit-identical across [`TrieLayout`] settings.
//!
//! The hash trie ([`AtomTrie`](crate::AtomTrie)) remains the behavioural
//! reference; `tests/flat_trie_properties.rs` holds the two layouts (and the
//! naive oracle) to identical answers across shard counts and cache
//! configurations.

use crate::trie::{
    build_shards_isolated, effective_shard_count, partition_rows_by_shard, TriePlan,
};
use crate::BoundAtom;
use ij_hypergraph::VarId;
use ij_relation::{faults, kernels, CancelTicker, CancellationToken, EvalError, ValueId};

/// Below this many rows, [`TrieLayout::Auto`] keeps the hash layout: the
/// flat build's sort and permutation bookkeeping cannot pay for itself when
/// even the root fan-out — at most the row count — fits a few cache lines of
/// hash-map entries.
pub const FLAT_MIN_ROWS: usize = 64;

/// The trie layout the generic join indexes its atoms with.
///
/// Every layout is answer-preserving: the Boolean and enumerated results are
/// bit-identical for every setting (the flat layout changes *how* candidate
/// values are intersected — sorted-run leapfrogging instead of hash probes —
/// never *which* values intersect).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TrieLayout {
    /// Hash tries ([`AtomTrie`](crate::AtomTrie)): one `HashMap` per node.
    /// The behavioural reference, and the better choice for tiny relations.
    Hash,
    /// Flat CSR tries ([`FlatTrie`]): sorted value arrays per level with
    /// child-range offsets, searched by galloping intersection.
    Flat,
    /// Choose per atom at build time from the relation size: relations with
    /// fewer than [`FLAT_MIN_ROWS`] rows — whose estimated per-level fan-out
    /// `rows^(1/levels)` is tiny at every level — keep the hash layout,
    /// everything else gets the flat layout.
    #[default]
    Auto,
}

impl TrieLayout {
    /// The concrete layout chosen for a relation of `rows` rows indexed as a
    /// trie of `levels` levels: `Hash` and `Flat` return themselves, `Auto`
    /// resolves per the size heuristic above (zero-level guard atoms always
    /// resolve to `Hash` — there is nothing to lay out flat).  Pure, so cache
    /// keys derived from the resolved layout are stable, and an `Auto`
    /// request shares its cache entry with the matching explicit layout.
    pub fn resolve(self, rows: usize, levels: usize) -> TrieLayout {
        match self {
            TrieLayout::Auto => {
                if levels == 0 || rows < FLAT_MIN_ROWS {
                    TrieLayout::Hash
                } else {
                    TrieLayout::Flat
                }
            }
            fixed => fixed,
        }
    }
}

/// One level of a [`FlatTrie`].
#[derive(Debug)]
struct FlatLevel {
    /// The level's values: the concatenation of every parent's sorted,
    /// deduplicated child run (level 0 is one run — the root's children).
    values: Box<[ValueId]>,
    /// CSR offsets into the **next** level: entry `i`'s children are
    /// `next.values[child_start[i] .. child_start[i + 1]]`.  Length
    /// `values.len() + 1`; empty for the deepest level.
    child_start: Box<[u32]>,
}

/// A flat trie over one atom, with levels ordered by the global variable
/// order — the CSR twin of [`AtomTrie`](crate::AtomTrie) (see the module
/// docs for the layout and its invariants).
#[derive(Debug)]
pub struct FlatTrie {
    /// The atom's distinct variables in global order — the trie levels.
    pub level_vars: Vec<VarId>,
    levels: Vec<FlatLevel>,
}

impl FlatTrie {
    /// Builds the flat trie of `atom` with levels sorted according to
    /// `global_order` — the exact level order, repeated-variable filtering
    /// and duplicate collapsing of [`AtomTrie::build`](crate::AtomTrie::build),
    /// in the CSR layout.
    pub fn build(atom: &BoundAtom<'_>, global_order: &[VarId]) -> Self {
        let plan = TriePlan::new(atom, global_order);
        // ij-analysis: allow(panic) — infallible: no cancel token or deadline is supplied
        FlatTrie::from_plan(&plan, None, None).expect("tokenless builds cannot be cancelled")
    }

    /// Builds the flat trie of `atom` split into sub-tries by
    /// [`shard_of`](crate::shard_of) on the first level variable's value —
    /// the same row partition as
    /// [`AtomTrie::build_sharded`](crate::AtomTrie::build_sharded), each
    /// shard's CSR arrays built on its own scoped thread.  Every returned
    /// trie carries the same `level_vars`; their union over shards equals
    /// [`FlatTrie::build`].  Per-atom sizing ([`effective_shard_count`]) and
    /// the zero-level degenerate case behave exactly like the hash build.
    ///
    /// Cancellation and isolation mirror
    /// [`AtomTrie::build_sharded`](crate::AtomTrie::build_sharded): the CSR
    /// emission loop polls `token` every
    /// [`check_interval`](CancellationToken::check_interval) rows, shard
    /// workers run under `catch_unwind`, and a panicking worker cancels its
    /// siblings through a build-local child token and surfaces as
    /// [`EvalError::WorkerPanicked`].
    ///
    /// # Errors
    ///
    /// [`EvalError::Cancelled`] / [`EvalError::DeadlineExceeded`] when the
    /// token fires mid-build, [`EvalError::WorkerPanicked`] when a shard
    /// worker panics.
    ///
    /// # Panics
    ///
    /// Panics if the relation has more than `u32::MAX` rows (row indices and
    /// CSR offsets are `u32`).
    pub fn build_sharded(
        atom: &BoundAtom<'_>,
        global_order: &[VarId],
        num_shards: usize,
        token: Option<&CancellationToken>,
    ) -> Result<Vec<Self>, EvalError> {
        assert!(
            atom.relation.len() <= u32::MAX as usize,
            "flat trie build supports at most 2^32 rows per relation"
        );
        let num_shards = effective_shard_count(atom.relation.len(), num_shards);
        let plan = TriePlan::new(atom, global_order);
        if num_shards <= 1 || plan.level_columns.is_empty() {
            return Ok(vec![FlatTrie::from_plan(&plan, None, token)?]);
        }
        let shard_rows = partition_rows_by_shard(atom, &plan, num_shards);
        // Build-local child token: lets a panicking shard worker cancel its
        // siblings without the cancellation leaking into the caller's token.
        let local = token.map(|t| t.child());
        build_shards_isolated(atom.relation.name(), local.as_ref(), &shard_rows, {
            let plan = &plan;
            move |rows, tok| FlatTrie::from_plan(plan, Some(rows), tok)
        })
    }

    /// The column-wise CSR build: sort the surviving rows lexicographically
    /// by the level columns, then emit every level's value and offset arrays
    /// in one pass over the sorted permutation (a row extends the arrays from
    /// the first level where its path diverges from its predecessor's;
    /// fully-equal paths — duplicate tuples — are skipped).  The emission
    /// loop polls `token` every `check_interval` rows; the lexicographic sort
    /// itself runs to completion (it is a single `sort_unstable_by`, bounded
    /// and allocation-free).
    fn from_plan(
        plan: &TriePlan<'_>,
        rows: Option<&[u32]>,
        token: Option<&CancellationToken>,
    ) -> Result<Self, EvalError> {
        faults::point("trie-build");
        let mut ticker = CancelTicker::new(token);
        let k = plan.level_columns.len();
        let num_rows = plan
            .level_columns
            .first()
            .map(|c| c.len())
            .unwrap_or_default();
        // Surviving row indices: the given shard partition (already
        // mask-filtered), or the mask's survivors, or everything.
        let mut perm: Vec<u32> = match rows {
            Some(rows) => rows.to_vec(),
            None => match &plan.pass {
                Some(mask) => {
                    let mut surviving = Vec::new();
                    kernels::select_indices(mask, 0, &mut surviving);
                    surviving
                }
                None => (0..num_rows as u32).collect(),
            },
        };
        let columns = &plan.level_columns;
        perm.sort_unstable_by(|&a, &b| {
            let (a, b) = (a as usize, b as usize);
            columns
                .iter()
                .map(|col| col[a].cmp(&col[b]))
                .find(|o| o.is_ne())
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut values: Vec<Vec<ValueId>> = vec![Vec::new(); k];
        let mut child_start: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut prev: Option<usize> = None;
        for &row in &perm {
            ticker.tick()?;
            let row = row as usize;
            // First level where this row's path diverges from its
            // predecessor's; `k` means a duplicate path.
            let diverge = match prev {
                None => 0,
                Some(p) => columns
                    .iter()
                    .position(|col| col[row] != col[p])
                    .unwrap_or(k),
            };
            for level in diverge..k {
                if level + 1 < k {
                    // The new entry's children begin at the next level's
                    // current end (its own entries are pushed right after,
                    // while the prefix stays equal).
                    child_start[level].push(values[level + 1].len() as u32);
                }
                values[level].push(columns[level][row]);
            }
            prev = Some(row);
        }
        // Closing sentinels: entry `i`'s children end where entry `i + 1`'s
        // begin, so each offset array carries one final end-of-level mark.
        for level in 0..k.saturating_sub(1) {
            child_start[level].push(values[level + 1].len() as u32);
        }
        Ok(FlatTrie {
            level_vars: plan.level_vars.clone(),
            levels: values
                .into_iter()
                .zip(child_start)
                .map(|(values, child_start)| FlatLevel {
                    values: values.into_boxed_slice(),
                    child_start: child_start.into_boxed_slice(),
                })
                .collect(),
        })
    }

    /// The sorted, distinct child run `lo..hi` of `level`'s value array (the
    /// root run is `0..self.level_len(0)`; descend through
    /// [`FlatTrie::child_range`]).
    pub fn run(&self, level: usize, lo: u32, hi: u32) -> &[ValueId] {
        &self.levels[level].values[lo as usize..hi as usize]
    }

    /// Number of values stored at `level` across all runs.
    pub fn level_len(&self, level: usize) -> u32 {
        self.levels[level].values.len() as u32
    }

    /// The half-open range of the next level's value array holding the
    /// children of the entry at absolute `index` of `level`.
    ///
    /// # Panics
    ///
    /// Panics (via indexing) when called on the deepest level, whose entries
    /// have no children.
    pub fn child_range(&self, level: usize, index: u32) -> (u32, u32) {
        let offsets = &self.levels[level].child_start;
        (offsets[index as usize], offsets[index as usize + 1])
    }

    /// True if a trie with at least one level holds no tuples (possible for
    /// individual shards, and for atoms whose repeated-variable filter
    /// rejects every row).  Zero-level tries always report non-empty, exactly
    /// like the hash layout.
    pub fn is_empty(&self) -> bool {
        self.levels.first().is_some_and(|l| l.values.is_empty())
    }

    /// Number of levels (distinct variables).
    pub fn depth(&self) -> usize {
        self.levels.len()
    }

    /// Estimated heap footprint in bytes.  Unlike the hash layout's
    /// capacity-based estimate, the CSR arrays are exact-sized boxed slices,
    /// so this is essentially the true allocation; the byte-budgeted
    /// [`TrieCache`](crate::TrieCache) sums it over a build's shards once per
    /// insert.
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.level_vars.capacity() * std::mem::size_of::<VarId>()
            + self
                .levels
                .iter()
                .map(|l| {
                    std::mem::size_of::<FlatLevel>()
                        + l.values.len() * std::mem::size_of::<ValueId>()
                        + l.child_start.len() * std::mem::size_of::<u32>()
                })
                .sum::<usize>()
    }
}

/// The tries built for one atom — one per shard — in whichever layout the
/// build resolved to.  This is the unit the [`TrieCache`](crate::TrieCache)
/// stores and the generic join's search indexes: hash- and flat-layout builds
/// of the same atom are distinct cache entries (the key carries the resolved
/// layout), so the two layouts never alias.
#[derive(Debug)]
pub enum TrieBuild {
    /// Hash tries, one per shard.
    Hash(Vec<crate::AtomTrie>),
    /// Flat CSR tries, one per shard.
    Flat(Vec<FlatTrie>),
}

impl TrieBuild {
    /// Builds `atom`'s tries under `global_order` into
    /// [`effective_shard_count`]`(rows, num_shards)` shards, in the layout
    /// `layout` resolves to for this atom ([`TrieLayout::resolve`]).
    ///
    /// # Errors
    ///
    /// Propagates the underlying layout build's [`EvalError`]: cancellation
    /// or deadline expiry of `token`, or a shard worker panic.
    pub fn build_sharded(
        atom: &BoundAtom<'_>,
        global_order: &[VarId],
        num_shards: usize,
        layout: TrieLayout,
        token: Option<&CancellationToken>,
    ) -> Result<TrieBuild, EvalError> {
        Ok(
            match layout.resolve(atom.relation.len(), atom.var_set().len()) {
                TrieLayout::Flat => TrieBuild::Flat(FlatTrie::build_sharded(
                    atom,
                    global_order,
                    num_shards,
                    token,
                )?),
                _ => TrieBuild::Hash(crate::AtomTrie::build_sharded(
                    atom,
                    global_order,
                    num_shards,
                    token,
                )?),
            },
        )
    }

    /// The (resolved) layout this build used.
    pub fn layout(&self) -> TrieLayout {
        match self {
            TrieBuild::Hash(_) => TrieLayout::Hash,
            TrieBuild::Flat(_) => TrieLayout::Flat,
        }
    }

    /// Number of shards (1 = unsharded).
    pub fn shard_count(&self) -> usize {
        match self {
            TrieBuild::Hash(tries) => tries.len(),
            TrieBuild::Flat(tries) => tries.len(),
        }
    }

    /// The level variables (identical across shards).
    pub fn level_vars(&self) -> &[VarId] {
        match self {
            TrieBuild::Hash(tries) => &tries[0].level_vars,
            TrieBuild::Flat(tries) => &tries[0].level_vars,
        }
    }

    /// True if the sub-trie for `shard` holds no tuples.
    pub fn shard_is_empty(&self, shard: usize) -> bool {
        match self {
            TrieBuild::Hash(tries) => tries[shard].is_empty(),
            TrieBuild::Flat(tries) => tries[shard].is_empty(),
        }
    }

    /// Estimated heap footprint of the build in bytes, summed over shards.
    pub fn heap_bytes(&self) -> usize {
        match self {
            TrieBuild::Hash(tries) => tries.iter().map(crate::AtomTrie::heap_bytes).sum(),
            TrieBuild::Flat(tries) => tries.iter().map(FlatTrie::heap_bytes).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trie::{shard_of, AtomTrie, TrieNode, MIN_ROWS_PER_SHARD};
    use ij_relation::{Relation, Value};

    fn rel(name: &str, rows: Vec<Vec<f64>>) -> Relation {
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        Relation::from_tuples(
            name,
            arity,
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::point).collect())
                .collect(),
        )
    }

    /// Collects every full-depth root-to-leaf path of a hash trie.
    fn hash_paths(
        node: &TrieNode,
        depth: usize,
        prefix: &mut Vec<ValueId>,
        out: &mut Vec<Vec<ValueId>>,
    ) {
        if prefix.len() == depth {
            out.push(prefix.clone());
            return;
        }
        for (id, child) in node.children() {
            prefix.push(id);
            hash_paths(child, depth, prefix, out);
            prefix.pop();
        }
    }

    /// Collects every full-depth root-to-leaf path of a flat trie (also
    /// asserting that every run is sorted and distinct).
    fn flat_paths(trie: &FlatTrie) -> Vec<Vec<ValueId>> {
        fn rec(
            trie: &FlatTrie,
            level: usize,
            lo: u32,
            hi: u32,
            prefix: &mut Vec<ValueId>,
            out: &mut Vec<Vec<ValueId>>,
        ) {
            let run = trie.run(level, lo, hi);
            assert!(
                run.windows(2).all(|w| w[0] < w[1]),
                "runs must be sorted and distinct"
            );
            for (i, &v) in run.iter().enumerate() {
                prefix.push(v);
                if level + 1 < trie.depth() {
                    let (clo, chi) = trie.child_range(level, lo + i as u32);
                    rec(trie, level + 1, clo, chi, prefix, out);
                } else {
                    out.push(prefix.clone());
                }
                prefix.pop();
            }
        }
        let mut out = Vec::new();
        if trie.depth() > 0 {
            rec(trie, 0, 0, trie.level_len(0), &mut Vec::new(), &mut out);
        }
        out
    }

    #[test]
    fn flat_paths_equal_hash_paths() {
        let mut seed = 11u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) % 7) as f64
        };
        let rows: Vec<Vec<f64>> = (0..200).map(|_| vec![next(), next(), next()]).collect();
        let r = rel("R", rows);
        // Plain bindings, a permuted level order, and a repeated variable.
        for vars in [vec![0, 1, 2], vec![2, 0, 1], vec![0, 1, 0]] {
            let atom = BoundAtom::new(&r, vars.clone());
            let order = [1, 2, 0];
            let hash = AtomTrie::build(&atom, &order);
            let flat = FlatTrie::build(&atom, &order);
            assert_eq!(flat.level_vars, hash.level_vars, "vars {vars:?}");
            assert_eq!(flat.depth(), hash.depth());
            assert_eq!(flat.is_empty(), hash.is_empty());
            let mut expected = Vec::new();
            hash_paths(hash.root(), hash.depth(), &mut Vec::new(), &mut expected);
            expected.sort_unstable();
            let got = flat_paths(&flat);
            // Flat enumeration is already lexicographically sorted.
            assert!(got.windows(2).all(|w| w[0] < w[1]));
            assert_eq!(got, expected, "vars {vars:?}");
        }
    }

    #[test]
    fn sharded_flat_build_partitions_the_unsharded_trie() {
        let mut seed = 3u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) % 9) as f64
        };
        let n = 4 * MIN_ROWS_PER_SHARD;
        let rows: Vec<Vec<f64>> = (0..n).map(|_| vec![next(), next()]).collect();
        let r = rel("R", rows);
        for vars in [vec![5, 2], vec![5, 5]] {
            let atom = BoundAtom::new(&r, vars);
            let order = [2, 5];
            let full = flat_paths(&FlatTrie::build(&atom, &order));
            for num_shards in [2usize, 4] {
                let shards = FlatTrie::build_sharded(&atom, &order, num_shards, None).unwrap();
                assert_eq!(shards.len(), num_shards);
                let mut union = Vec::new();
                for (index, shard) in shards.iter().enumerate() {
                    // Every first-level value in this shard hashes to it.
                    for &id in shard.run(0, 0, shard.level_len(0)) {
                        assert_eq!(shard_of(id, num_shards), index);
                    }
                    union.extend(flat_paths(shard));
                }
                union.sort_unstable();
                assert_eq!(union, full, "shards {num_shards}");
            }
        }
        // Small relations degrade to one unsharded trie.
        let small = rel("S", (0..10).map(|i| vec![i as f64]).collect());
        let atom = BoundAtom::new(&small, vec![0]);
        assert_eq!(
            FlatTrie::build_sharded(&atom, &[0], 8, None).unwrap().len(),
            1
        );
    }

    #[test]
    fn duplicates_collapse_and_repeated_variables_filter() {
        let r = rel(
            "R",
            vec![
                vec![1.0, 1.0],
                vec![1.0, 1.0], // duplicate path
                vec![1.0, 2.0], // rejected by A == A filter
                vec![3.0, 3.0],
            ],
        );
        let atom = BoundAtom::new(&r, vec![0, 0]);
        let flat = FlatTrie::build(&atom, &[0]);
        assert_eq!(flat.depth(), 1);
        assert_eq!(flat.level_len(0), 2, "values {{1.0, 3.0}} survive");
        // A filter that rejects everything leaves an empty (non-zero-level)
        // trie.
        let none = rel("N", vec![vec![1.0, 2.0]]);
        let empty = FlatTrie::build(&BoundAtom::new(&none, vec![0, 0]), &[0]);
        assert!(empty.is_empty());
        // Zero-level guard atoms report non-empty.
        let mut guard = Relation::new("G", 0);
        guard.push(vec![]);
        let zero = FlatTrie::build(&BoundAtom::new(&guard, vec![]), &[]);
        assert_eq!(zero.depth(), 0);
        assert!(!zero.is_empty());
    }

    #[test]
    fn heap_bytes_track_flat_trie_size() {
        let small = rel("S", vec![vec![1.0]]);
        let small_trie = FlatTrie::build(&BoundAtom::new(&small, vec![0]), &[0]);
        assert!(small_trie.heap_bytes() > std::mem::size_of::<FlatTrie>());
        let rows: Vec<Vec<f64>> = (0..256).map(|i| vec![i as f64, -(i as f64)]).collect();
        let big = rel("B", rows);
        let big_trie = FlatTrie::build(&BoundAtom::new(&big, vec![0, 1]), &[0, 1]);
        assert!(big_trie.heap_bytes() > 8 * small_trie.heap_bytes());
        // The CSR layout is dramatically denser than per-node hash maps.
        let hash_trie = AtomTrie::build(&BoundAtom::new(&big, vec![0, 1]), &[0, 1]);
        assert!(big_trie.heap_bytes() < hash_trie.heap_bytes());
    }

    #[test]
    fn auto_layout_resolves_by_size_and_explicit_layouts_stick() {
        assert_eq!(TrieLayout::Auto.resolve(FLAT_MIN_ROWS, 2), TrieLayout::Flat);
        assert_eq!(
            TrieLayout::Auto.resolve(FLAT_MIN_ROWS - 1, 2),
            TrieLayout::Hash
        );
        assert_eq!(TrieLayout::Auto.resolve(1 << 20, 0), TrieLayout::Hash);
        assert_eq!(TrieLayout::Hash.resolve(1 << 20, 3), TrieLayout::Hash);
        assert_eq!(TrieLayout::Flat.resolve(1, 1), TrieLayout::Flat);
    }

    #[test]
    fn trie_build_dispatches_on_the_resolved_layout() {
        let tiny = rel("T", vec![vec![1.0, 2.0]]);
        let atom = BoundAtom::new(&tiny, vec![0, 1]);
        let auto = TrieBuild::build_sharded(&atom, &[0, 1], 1, TrieLayout::Auto, None).unwrap();
        assert_eq!(auto.layout(), TrieLayout::Hash, "tiny relations stay hash");
        let forced = TrieBuild::build_sharded(&atom, &[0, 1], 1, TrieLayout::Flat, None).unwrap();
        assert_eq!(forced.layout(), TrieLayout::Flat);
        assert_eq!(forced.shard_count(), 1);
        assert_eq!(forced.level_vars(), &[0, 1]);
        assert!(!forced.shard_is_empty(0));
        assert!(forced.heap_bytes() > 0);
    }
}
