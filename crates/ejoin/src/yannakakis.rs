//! Yannakakis' algorithm for α-acyclic Boolean conjunctive queries \[35\].
//!
//! For a Boolean query it suffices to run the bottom-up semijoin pass of the
//! full reducer over a join tree: each relation is semijoin-reduced by its
//! children (in a leaves-first order); the query is true if and only if the
//! root relation is non-empty at the end.  The pass costs time linear in the
//! total size of the relations (with hashing), which is what makes ι-acyclic
//! IJ queries near-linear after the forward reduction (Theorem 6.6).
//!
//! # Implementation: alive-row lists over scan kernels
//!
//! The pass never materialises intermediate relations.  Each atom carries an
//! **alive-row list** (`None` = all rows alive); one semijoin step gathers
//! the parent's and child's key columns at their alive rows
//! ([`kernels::gather_ids`]), probes them through the packed-key mask of
//! `semijoin_mask` (the kernel-backed probe core shared with
//! [`semijoin`](crate::semijoin)), and shrinks the parent's list with the
//! chunked selection kernel — column copies are limited to the key columns
//! actually probed, instead of cloning and re-gathering whole relations per
//! step.

use crate::atom::{hypergraph_of, BoundAtom};
use crate::generic::semijoin_mask;
use ij_hypergraph::{join_tree, VarId};
use ij_relation::{kernels, ValueId};

/// Evaluates an α-acyclic Boolean query with Yannakakis' algorithm.
///
/// Returns `None` if the atom set is not α-acyclic (no join tree exists);
/// callers fall back to another strategy in that case.
///
/// # Panics
///
/// Panics if a relation has more than `u32::MAX` rows (alive-row lists store
/// row indices as `u32`; a silent wrap would corrupt the pass).
pub fn yannakakis_boolean(atoms: &[BoundAtom<'_>]) -> Option<bool> {
    assert!(
        atoms.iter().all(|a| a.relation.len() <= u32::MAX as usize),
        "Yannakakis pass supports at most 2^32 rows per relation"
    );
    if atoms.is_empty() {
        return Some(true);
    }
    if atoms.iter().any(|a| a.relation.is_empty()) {
        return Some(false);
    }
    let (h, _) = hypergraph_of(atoms);
    let tree = join_tree(&h)?;

    // Alive rows per atom (`None` = every row).  Rows only ever leave.
    let mut alive: Vec<Option<Vec<u32>>> = vec![None; atoms.len()];
    let alive_count = |alive: &Option<Vec<u32>>, atom: &BoundAtom<'_>| match alive {
        Some(rows) => rows.len(),
        None => atom.relation.len(),
    };

    // The key columns of `atom` for the given shared variables, restricted
    // to its alive rows.  With every row alive the relation's columns are
    // borrowed as-is (no copy); once a filter exists, the surviving rows are
    // gathered into `scratch`, one buffer per column.
    fn key_columns<'a, 's>(
        atom: &BoundAtom<'a>,
        alive: &Option<Vec<u32>>,
        shared: &[VarId],
        scratch: &'s mut Vec<Vec<ValueId>>,
    ) -> Vec<&'s [ValueId]>
    where
        'a: 's,
    {
        let column_of = |v: VarId| {
            let c = atom.vars.iter().position(|&u| u == v).unwrap();
            atom.relation.column_ids(c)
        };
        match alive {
            None => shared.iter().map(|&v| column_of(v)).collect(),
            Some(rows) => {
                scratch.clear();
                for &v in shared {
                    let mut gathered = Vec::new();
                    kernels::gather_ids(column_of(v), rows, &mut gathered);
                    scratch.push(gathered);
                }
                scratch.iter().map(|c| c.as_slice()).collect()
            }
        }
    }

    // Bottom-up pass: `tree.order` lists children before parents.
    let mut parent_scratch: Vec<Vec<ValueId>> = Vec::new();
    let mut child_scratch: Vec<Vec<ValueId>> = Vec::new();
    for &child in &tree.order {
        let Some(parent) = tree.parent[child] else {
            continue;
        };
        let shared: Vec<VarId> = atoms[parent]
            .var_set()
            .intersection(&atoms[child].var_set())
            .copied()
            .collect();
        if shared.is_empty() {
            // No shared variables: the child only contributes an emptiness
            // check (a join tree normally connects on shared variables, but
            // disconnected queries degenerate here).
            if alive_count(&alive[child], &atoms[child]) == 0 {
                return Some(false);
            }
            continue;
        }
        let left_cols = key_columns(&atoms[parent], &alive[parent], &shared, &mut parent_scratch);
        let right_cols = key_columns(&atoms[child], &alive[child], &shared, &mut child_scratch);
        let mask = semijoin_mask(&left_cols, &right_cols);
        let mut surviving: Vec<u32> = Vec::new();
        kernels::select_indices(&mask, 0, &mut surviving);
        // `surviving` indexes the parent's *alive list*; map back to rows.
        let new_alive: Vec<u32> = match &alive[parent] {
            Some(rows) => surviving.iter().map(|&i| rows[i as usize]).collect(),
            None => surviving,
        };
        if new_alive.is_empty() {
            return Some(false);
        }
        alive[parent] = Some(new_alive);
    }
    Some(alive_count(&alive[tree.root], &atoms[tree.root]) > 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_relation::{Relation, Value};

    fn rel(name: &str, rows: Vec<Vec<f64>>) -> Relation {
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        Relation::from_tuples(
            name,
            arity,
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::point).collect())
                .collect(),
        )
    }

    #[test]
    fn path_query_true_and_false() {
        // R(A,B) ∧ S(B,C) ∧ T(C,D)
        let r = rel("R", vec![vec![1.0, 2.0], vec![9.0, 9.0]]);
        let s = rel("S", vec![vec![2.0, 3.0]]);
        let t_yes = rel("T", vec![vec![3.0, 4.0]]);
        let t_no = rel("T", vec![vec![7.0, 4.0]]);
        let atoms_yes = vec![
            BoundAtom::new(&r, vec![0, 1]),
            BoundAtom::new(&s, vec![1, 2]),
            BoundAtom::new(&t_yes, vec![2, 3]),
        ];
        assert_eq!(yannakakis_boolean(&atoms_yes), Some(true));
        let atoms_no = vec![
            BoundAtom::new(&r, vec![0, 1]),
            BoundAtom::new(&s, vec![1, 2]),
            BoundAtom::new(&t_no, vec![2, 3]),
        ];
        assert_eq!(yannakakis_boolean(&atoms_no), Some(false));
    }

    #[test]
    fn cyclic_queries_are_rejected() {
        let r = rel("R", vec![vec![1.0, 2.0]]);
        let s = rel("S", vec![vec![2.0, 3.0]]);
        let t = rel("T", vec![vec![1.0, 3.0]]);
        let atoms = vec![
            BoundAtom::new(&r, vec![0, 1]),
            BoundAtom::new(&s, vec![1, 2]),
            BoundAtom::new(&t, vec![0, 2]),
        ];
        assert_eq!(yannakakis_boolean(&atoms), None);
    }

    #[test]
    fn star_query_with_selective_leaves() {
        // Center R(A,B,C) with leaves S(A), T(B), U(C).
        let r = rel(
            "R",
            vec![
                vec![1.0, 2.0, 3.0],
                vec![4.0, 5.0, 6.0],
                vec![1.0, 5.0, 3.0],
            ],
        );
        let s = rel("S", vec![vec![1.0]]);
        let t = rel("T", vec![vec![5.0]]);
        let u = rel("U", vec![vec![3.0]]);
        let atoms = vec![
            BoundAtom::new(&r, vec![0, 1, 2]),
            BoundAtom::new(&s, vec![0]),
            BoundAtom::new(&t, vec![1]),
            BoundAtom::new(&u, vec![2]),
        ];
        // Only (1,5,3) survives all three semijoins.
        assert_eq!(yannakakis_boolean(&atoms), Some(true));

        let t_miss = rel("T", vec![vec![9.0]]);
        let atoms_miss = vec![
            BoundAtom::new(&r, vec![0, 1, 2]),
            BoundAtom::new(&s, vec![0]),
            BoundAtom::new(&t_miss, vec![1]),
            BoundAtom::new(&u, vec![2]),
        ];
        assert_eq!(yannakakis_boolean(&atoms_miss), Some(false));
    }

    #[test]
    fn empty_relation_is_false_even_for_acyclic_queries() {
        let r = rel("R", vec![vec![1.0, 2.0]]);
        let empty = Relation::new("S", 2);
        let atoms = vec![
            BoundAtom::new(&r, vec![0, 1]),
            BoundAtom::new(&empty, vec![1, 2]),
        ];
        assert_eq!(yannakakis_boolean(&atoms), Some(false));
    }

    #[test]
    fn no_atoms_is_true() {
        assert_eq!(yannakakis_boolean(&[]), Some(true));
    }

    #[test]
    fn agrees_with_generic_join_on_random_acyclic_instances() {
        use crate::generic::generic_join_boolean;
        // Small pseudo-random path instances.
        let mut seed = 42u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) % 7) as f64
        };
        for _ in 0..50 {
            let rows = |n: usize, next: &mut dyn FnMut() -> f64| {
                (0..n).map(|_| vec![next(), next()]).collect::<Vec<_>>()
            };
            let r = rel("R", rows(6, &mut next));
            let s = rel("S", rows(6, &mut next));
            let t = rel("T", rows(6, &mut next));
            let atoms = vec![
                BoundAtom::new(&r, vec![0, 1]),
                BoundAtom::new(&s, vec![1, 2]),
                BoundAtom::new(&t, vec![2, 3]),
            ];
            assert_eq!(
                yannakakis_boolean(&atoms),
                Some(generic_join_boolean(&atoms, None))
            );
        }
    }
}
