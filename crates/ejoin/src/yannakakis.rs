//! Yannakakis' algorithm for α-acyclic Boolean conjunctive queries \[35\].
//!
//! For a Boolean query it suffices to run the bottom-up semijoin pass of the
//! full reducer over a join tree: each relation is semijoin-reduced by its
//! children (in a leaves-first order); the query is true if and only if the
//! root relation is non-empty at the end.  The pass costs time linear in the
//! total size of the relations (with hashing), which is what makes ι-acyclic
//! IJ queries near-linear after the forward reduction (Theorem 6.6).

use crate::atom::{hypergraph_of, BoundAtom};
use crate::generic::semijoin;
use ij_hypergraph::join_tree;
use ij_relation::Relation;

/// Evaluates an α-acyclic Boolean query with Yannakakis' algorithm.
///
/// Returns `None` if the atom set is not α-acyclic (no join tree exists);
/// callers fall back to another strategy in that case.
pub fn yannakakis_boolean(atoms: &[BoundAtom<'_>]) -> Option<bool> {
    if atoms.is_empty() {
        return Some(true);
    }
    if atoms.iter().any(|a| a.relation.is_empty()) {
        return Some(false);
    }
    let (h, _) = hypergraph_of(atoms);
    let tree = join_tree(&h)?;

    // Working copies of the relations (they shrink during the pass).
    let mut current: Vec<Relation> = atoms.iter().map(|a| a.relation.clone()).collect();

    // Bottom-up pass: `tree.order` lists children before parents.
    for &child in &tree.order {
        let Some(parent) = tree.parent[child] else {
            continue;
        };
        let child_atom = BoundAtom::new(&current[child], atoms[child].vars.clone());
        let parent_atom = BoundAtom::new(&current[parent], atoms[parent].vars.clone());
        let reduced = semijoin(&parent_atom, &child_atom);
        if reduced.is_empty() {
            return Some(false);
        }
        current[parent] = reduced;
    }
    Some(!current[tree.root].is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_relation::{Relation, Value};

    fn rel(name: &str, rows: Vec<Vec<f64>>) -> Relation {
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        Relation::from_tuples(
            name,
            arity,
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::point).collect())
                .collect(),
        )
    }

    #[test]
    fn path_query_true_and_false() {
        // R(A,B) ∧ S(B,C) ∧ T(C,D)
        let r = rel("R", vec![vec![1.0, 2.0], vec![9.0, 9.0]]);
        let s = rel("S", vec![vec![2.0, 3.0]]);
        let t_yes = rel("T", vec![vec![3.0, 4.0]]);
        let t_no = rel("T", vec![vec![7.0, 4.0]]);
        let atoms_yes = vec![
            BoundAtom::new(&r, vec![0, 1]),
            BoundAtom::new(&s, vec![1, 2]),
            BoundAtom::new(&t_yes, vec![2, 3]),
        ];
        assert_eq!(yannakakis_boolean(&atoms_yes), Some(true));
        let atoms_no = vec![
            BoundAtom::new(&r, vec![0, 1]),
            BoundAtom::new(&s, vec![1, 2]),
            BoundAtom::new(&t_no, vec![2, 3]),
        ];
        assert_eq!(yannakakis_boolean(&atoms_no), Some(false));
    }

    #[test]
    fn cyclic_queries_are_rejected() {
        let r = rel("R", vec![vec![1.0, 2.0]]);
        let s = rel("S", vec![vec![2.0, 3.0]]);
        let t = rel("T", vec![vec![1.0, 3.0]]);
        let atoms = vec![
            BoundAtom::new(&r, vec![0, 1]),
            BoundAtom::new(&s, vec![1, 2]),
            BoundAtom::new(&t, vec![0, 2]),
        ];
        assert_eq!(yannakakis_boolean(&atoms), None);
    }

    #[test]
    fn star_query_with_selective_leaves() {
        // Center R(A,B,C) with leaves S(A), T(B), U(C).
        let r = rel(
            "R",
            vec![
                vec![1.0, 2.0, 3.0],
                vec![4.0, 5.0, 6.0],
                vec![1.0, 5.0, 3.0],
            ],
        );
        let s = rel("S", vec![vec![1.0]]);
        let t = rel("T", vec![vec![5.0]]);
        let u = rel("U", vec![vec![3.0]]);
        let atoms = vec![
            BoundAtom::new(&r, vec![0, 1, 2]),
            BoundAtom::new(&s, vec![0]),
            BoundAtom::new(&t, vec![1]),
            BoundAtom::new(&u, vec![2]),
        ];
        // Only (1,5,3) survives all three semijoins.
        assert_eq!(yannakakis_boolean(&atoms), Some(true));

        let t_miss = rel("T", vec![vec![9.0]]);
        let atoms_miss = vec![
            BoundAtom::new(&r, vec![0, 1, 2]),
            BoundAtom::new(&s, vec![0]),
            BoundAtom::new(&t_miss, vec![1]),
            BoundAtom::new(&u, vec![2]),
        ];
        assert_eq!(yannakakis_boolean(&atoms_miss), Some(false));
    }

    #[test]
    fn empty_relation_is_false_even_for_acyclic_queries() {
        let r = rel("R", vec![vec![1.0, 2.0]]);
        let empty = Relation::new("S", 2);
        let atoms = vec![
            BoundAtom::new(&r, vec![0, 1]),
            BoundAtom::new(&empty, vec![1, 2]),
        ];
        assert_eq!(yannakakis_boolean(&atoms), Some(false));
    }

    #[test]
    fn no_atoms_is_true() {
        assert_eq!(yannakakis_boolean(&[]), Some(true));
    }

    #[test]
    fn agrees_with_generic_join_on_random_acyclic_instances() {
        use crate::generic::generic_join_boolean;
        // Small pseudo-random path instances.
        let mut seed = 42u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) % 7) as f64
        };
        for _ in 0..50 {
            let rows = |n: usize, next: &mut dyn FnMut() -> f64| {
                (0..n).map(|_| vec![next(), next()]).collect::<Vec<_>>()
            };
            let r = rel("R", rows(6, &mut next));
            let s = rel("S", rows(6, &mut next));
            let t = rel("T", rows(6, &mut next));
            let atoms = vec![
                BoundAtom::new(&r, vec![0, 1]),
                BoundAtom::new(&s, vec![1, 2]),
                BoundAtom::new(&t, vec![2, 3]),
            ];
            assert_eq!(
                yannakakis_boolean(&atoms),
                Some(generic_join_boolean(&atoms, None))
            );
        }
    }
}
