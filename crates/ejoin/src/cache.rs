//! A shared cache of built atom tries — hash-layout [`AtomTrie`]s or flat
//! [`FlatTrie`](crate::FlatTrie)s, bundled as [`TrieBuild`]s — keyed by
//! content fingerprints.
//!
//! [`AtomTrie`]: crate::AtomTrie
//! [`AtomTrie::build_sharded`]: crate::AtomTrie::build_sharded
//!
//! The forward reduction turns one intersection-join query into a disjunction
//! of equality-join queries whose atoms overwhelmingly *share* transformed
//! relations: the relation materialised for an atom depends only on the level
//! assigned to each of its interval variables, not on the full permutation
//! that produced the disjunct.  Without a cache, every disjunct rebuilds the
//! same tries from scratch; with one, the first disjunct to need a trie
//! builds it and every later disjunct (on any worker thread) reuses it.
//!
//! # Keying
//!
//! A trie's content is fully determined by
//!
//! 1. the relation's **data** — captured as a 128-bit fingerprint of the id
//!    columns ([`relation_fingerprint`]), so caching is sound for any
//!    relation with the same content regardless of name or provenance
//!    (top-level transformed relations and the per-disjunct projections
//!    derived from them alike);
//! 2. the **column→variable binding** of the atom — this encodes both the
//!    column permutation and the repeated-variable filters;
//! 3. the induced **level order** (the atom's distinct variables sorted by
//!    the global join order);
//! 4. the **effective shard count** of the build (the requested count after
//!    per-atom sizing — see [`AtomTrie::build_sharded`] and
//!    [`effective_shard_count`]);
//! 5. the **resolved trie layout** ([`TrieLayout`], after `Auto` resolution)
//!    — a hash-layout and a flat-layout build of the same atom are different
//!    data structures, so they never collide; and because the tag is the
//!    *resolved* layout, an `Auto` request shares the entry of whichever
//!    explicit layout it resolves to.
//!
//! This is exactly the (relation identity, column permutation, filter)
//! fingerprint that the engine's disjunct deduplication reasons about at the
//! query level, pushed down to the data level.
//!
//! # Lifetime and eviction
//!
//! A cache may outlive a single evaluation: the engine owns one **persistent**
//! cache per engine instance (and a `Workspace` shares one across every
//! engine built from it), shared by every `evaluate_reduction` call — sound
//! because the key starts from the relation *content* fingerprint, so a
//! different database can never alias a cached trie.  Boundedness across
//! that open-ended lifetime comes from **LRU eviction** against two
//! independent budgets ([`TrieCache::with_limits`]):
//!
//! * an **entry budget** — at most `capacity` resident entries;
//! * a **byte budget** — every entry carries the estimated heap size of its
//!   tries ([`TrieBuild::heap_bytes`], summed over shards), the cache tracks
//!   the resident total ([`TrieCacheStats::resident_bytes`]), and inserting
//!   past the budget evicts least-recently-used entries until the new entry
//!   fits.  A single build larger than the whole byte budget is handed to
//!   the caller *uncached* — the budget is an upper bound on resident
//!   bytes, never exceeded to accommodate an oversized entry.
//!
//! Every entry carries a last-used stamp from a relaxed global clock; an
//! insert over either budget evicts the least-recently-used entries first
//! (counted in [`TrieCacheStats::evictions`]).  Eviction only ever drops
//! *reuse*, never correctness: a future lookup of an evicted key rebuilds
//! the trie from the relation.
//!
//! # Concurrency
//!
//! The cache is a read-mostly `RwLock<HashMap<_, _>>`: lookups take the read
//! lock (bumping the recency stamp with a relaxed atomic store), a miss
//! builds the trie *outside* any lock and then races to insert (the first
//! insertion wins; a losing builder adopts the winner's trie, so all workers
//! always probe structurally identical tries).  Hit, miss and eviction
//! counters are relaxed atomics exposed through [`TrieCache::stats`].
//!
//! # Ownership: tenants, quotas and exact attribution
//!
//! Every lookup carries an **owner** ([`TenantId`], threaded down through
//! [`EvalContext::tenant`]).  The cache keeps a per-tenant ledger —
//! hit/miss/eviction counters plus the resident bytes of the entries that
//! tenant inserted ([`TrieCache::tenant_stats`]) — and enforces an optional
//! **per-tenant byte quota** ([`TrieCache::set_tenant_quota`]): an insert
//! that would push its owner over quota first evicts that owner's *own*
//! least-recently-used entries, so a noisy tenant sheds its own warmth
//! instead of everyone else's.  The pooled entry/byte budgets stay the hard
//! ceiling, enforced by the shared LRU across all owners.
//!
//! Attribution of per-evaluation statistics is **exact under any
//! concurrency**: an evaluation passes its own [`CacheActivity`] accumulator
//! down through [`EvalContext::activity`] and every lookup it performs bumps
//! those local counters — no before/after snapshots of the shared counters,
//! so concurrent evaluations on one cache can never steal each other's hits,
//! misses or evictions.

use crate::flat::{TrieBuild, TrieLayout};
use crate::trie::effective_shard_count;
use crate::BoundAtom;
use ij_hypergraph::VarId;
use ij_relation::sync::{read_recover, write_recover};

/// Lock class of the cache's key → slot map (`sync::lock_order`).  The
/// recorded nesting is `trie-cache-map` → `trie-cache-tenants`
/// (`remove_slot` settles the evicted owner's ledger under the map's
/// write lock); the reverse never occurs — `ledger()` drops the tenants
/// lock before returning.
const CACHE_MAP: &str = "trie-cache-map";
/// Lock class of the tenant-ledger registry (see [`CACHE_MAP`]).
const CACHE_TENANTS: &str = "trie-cache-tenants";
use ij_relation::{faults, CancellationToken, EvalError, Relation};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// A 128-bit content fingerprint of a relation's id columns.
///
/// Two relations with equal arity, row count and column ids (in order) get
/// the same fingerprint; the two independent 64-bit mixing lanes make an
/// accidental collision between *different* contents astronomically unlikely
/// (~2⁻¹²⁸), which is what lets the trie cache treat the fingerprint as
/// identity.  Names are deliberately ignored: a projection recomputed by two
/// disjuncts under different names still shares one trie.
///
/// The value is memoized per relation ([`Relation::fingerprint_with`]), so
/// repeated cache lookups against the same relation hash its columns once.
pub fn relation_fingerprint(relation: &Relation) -> (u64, u64) {
    relation.fingerprint_with(compute_fingerprint)
}

fn compute_fingerprint(relation: &Relation) -> (u64, u64) {
    const M1: u64 = 0x9E37_79B9_7F4A_7C15;
    const M2: u64 = 0xC2B2_AE3D_27D4_EB4F;
    let mix = |state: u64, v: u64, m: u64| ((state ^ v).wrapping_mul(m)).rotate_left(29);
    let mut a = 0x243F_6A88_85A3_08D3u64;
    let mut b = 0x4528_21E6_38D0_1377u64;
    a = mix(a, relation.arity() as u64, M1);
    b = mix(b, relation.arity() as u64, M2);
    a = mix(a, relation.len() as u64, M1);
    b = mix(b, relation.len() as u64, M2);
    for col in 0..relation.arity() {
        a = mix(a, 0xFEED_C01D, M1);
        b = mix(b, 0xFEED_C01D, M2);
        for &id in relation.column_ids(col) {
            a = mix(a, id.raw() as u64, M1);
            b = mix(b, id.raw() as u64, M2);
        }
    }
    (a, b)
}

/// The owner of cache activity: a small dense identifier tagging every
/// lookup (and every resident entry) with the tenant that performed it.
///
/// Tenants are an *accounting* concept, not an isolation one: tenants of one
/// cache share entries (a hit is a hit no matter who inserted the entry), but
/// hits, misses, evictions and resident bytes are metered per tenant
/// ([`TrieCache::tenant_stats`]) and a per-tenant byte quota caps what one
/// tenant may keep resident ([`TrieCache::set_tenant_quota`]).  Engines
/// default to [`TenantId::DEFAULT`]; a multi-tenant service assigns one id
/// per tenant (`Workspace::tenant(name)` in the engine crate hands out
/// registered sub-handles).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct TenantId(u32);

impl TenantId {
    /// The anonymous default owner used when no tenant is configured.
    pub const DEFAULT: TenantId = TenantId(0);

    /// Reconstructs a tenant id from its raw index.
    pub fn from_raw(raw: u32) -> TenantId {
        TenantId(raw)
    }

    /// The raw index.
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// A point-in-time snapshot of one tenant's ledger in a [`TrieCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantCacheStats {
    /// This tenant's lookups answered from the cache (entries inserted by
    /// *any* tenant count — sharing is the point of one cache).
    pub hits: usize,
    /// This tenant's lookups that had to build.
    pub misses: usize,
    /// Entries **owned by** this tenant dropped by LRU eviction — whether
    /// forced by the tenant's own quota or by the pooled budgets.
    pub evictions: usize,
    /// Resident entries this tenant inserted.
    pub entries: usize,
    /// Estimated heap bytes of this tenant's resident entries; never exceeds
    /// [`TenantCacheStats::quota_bytes`] when a quota is set.
    pub resident_bytes: usize,
    /// The tenant's byte quota (`0` = none).
    pub quota_bytes: usize,
}

/// Evaluation-local cache counters: the accumulator an evaluation passes
/// down via [`EvalContext::activity`] so its per-evaluation statistics are
/// **exact** — counted by the lookups the evaluation itself performs —
/// rather than inferred from racy before/after snapshots of the shared
/// cache's counters (which would attribute a concurrent evaluation's
/// activity to whichever windows overlap it).
///
/// The counters are relaxed atomics because one evaluation's disjunct
/// workers and trie-shard builders share the accumulator across threads.
#[derive(Debug, Default)]
pub struct CacheActivity {
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
    hash_atoms: AtomicUsize,
    flat_atoms: AtomicUsize,
}

impl CacheActivity {
    /// A fresh all-zero accumulator.
    pub fn new() -> Self {
        CacheActivity::default()
    }

    /// Lookups answered from the cache.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that had to build.
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Evictions *triggered by* this evaluation's inserts (the evicted
    /// entries may belong to any tenant).
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Records the resolved layout of one atom's tries (cached or built);
    /// called by the generic join once per atom per disjunct, so the counters
    /// report which layout the evaluation's joins actually ran on.
    pub fn record_layout(&self, layout: TrieLayout) {
        match layout {
            TrieLayout::Flat => self.flat_atoms.fetch_add(1, Ordering::Relaxed),
            _ => self.hash_atoms.fetch_add(1, Ordering::Relaxed),
        };
    }

    /// Atom-trie uses that ran on the hash layout.
    pub fn hash_atoms(&self) -> usize {
        self.hash_atoms.load(Ordering::Relaxed)
    }

    /// Atom-trie uses that ran on the flat (CSR leapfrog) layout.
    pub fn flat_atoms(&self) -> usize {
        self.flat_atoms.load(Ordering::Relaxed)
    }
}

/// A resolved per-tenant accounting identity on one [`TrieCache`]: the
/// tenant id plus a direct reference to its ledger.
///
/// Obtained from [`TrieCache::tenant_handle`] and carried through
/// [`EvalContext::tenant`]: resolving the ledger once per evaluation keeps
/// the per-lookup hit path free of the tenant-registry lock.  The handle is
/// only meaningful on the cache that produced it.
#[derive(Debug, Clone)]
pub struct TenantHandle {
    id: TenantId,
    ledger: Arc<TenantLedger>,
}

impl TenantHandle {
    /// The tenant this handle meters as.
    pub fn id(&self) -> TenantId {
        self.id
    }
}

/// One tenant's mutable ledger inside the cache: activity counters (relaxed
/// atomics, bumped on the lookup paths) plus resident-byte accounting and
/// the byte quota.  `resident_bytes` is only mutated under the map's write
/// lock, exactly like the cache-wide total.
#[derive(Debug, Default)]
struct TenantLedger {
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
    resident_bytes: AtomicUsize,
    /// Byte quota (`0` = none); enforced against `resident_bytes` on every
    /// insert, and immediately when (re)set lower than the current residency.
    quota: AtomicUsize,
}

/// The cache key: everything a trie's content depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TrieKey {
    fingerprint: (u64, u64),
    /// Column→variable binding (permutation + repeated-variable filters).
    vars: Vec<VarId>,
    /// The atom's distinct variables in global join order (the trie levels).
    levels: Vec<VarId>,
    /// Shard count of the build (1 = unsharded).
    shards: usize,
    /// The **resolved** layout of the build — hash and flat builds of one
    /// atom are distinct entries that never alias.
    layout: TrieLayout,
}

/// A point-in-time snapshot of a [`TrieCache`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrieCacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that had to build (includes both builders of an insert race).
    pub misses: usize,
    /// Entries dropped by LRU eviction to stay within the entry or byte
    /// budget.
    pub evictions: usize,
    /// Entries currently resident.
    pub entries: usize,
    /// Estimated heap bytes of the resident entries
    /// ([`TrieBuild::heap_bytes`] summed over every cached build).  Never
    /// exceeds a configured byte budget ([`TrieCache::with_limits`]).
    pub resident_bytes: usize,
}

impl TrieCacheStats {
    /// Hits as a fraction of all lookups (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The activity between an `earlier` snapshot of the same cache and this
    /// one: hit/miss/eviction counters become deltas, `entries` and
    /// `resident_bytes` stay the current resident state.
    ///
    /// A delta over the *shared* counters attributes every concurrent
    /// evaluation's activity to whichever windows overlap it, so the engine
    /// no longer reports per-evaluation statistics this way — it accumulates
    /// exact local counters through [`CacheActivity`] instead.  The method
    /// remains useful for windowed monitoring of one cache as a whole.
    pub fn delta_since(&self, earlier: &TrieCacheStats) -> TrieCacheStats {
        TrieCacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            entries: self.entries,
            resident_bytes: self.resident_bytes,
        }
    }
}

/// One resident cache entry: the built tries, their estimated heap size
/// (fixed at insert time), the tenant that inserted them (for per-tenant
/// byte accounting and quota eviction), and a last-used stamp for the LRU
/// policy (bumped with a relaxed store on every hit, so recency tracking
/// never needs the write lock).
#[derive(Debug)]
struct CacheSlot {
    tries: Arc<TrieBuild>,
    bytes: usize,
    owner: TenantId,
    last_used: AtomicU64,
}

/// A thread-safe cache of built tries, shared across the disjuncts of one
/// evaluation *and* — because keys start from content fingerprints — across
/// any number of evaluations (see the module docs for keying, lifetime and
/// concurrency).
///
/// The engine owns one cache per engine instance and hands it to every
/// disjunct worker of every [`evaluate_reduction`] call; standalone users of
/// the ejoin crate can share one across any sequence of
/// [`evaluate_ej_boolean_with`] calls (the cache stores owned tries, so
/// there is no borrow coupling to the source relations).
///
/// [`evaluate_reduction`]: https://docs.rs/ij-engine
/// [`evaluate_ej_boolean_with`]: crate::evaluate_ej_boolean_with
#[derive(Debug, Default)]
pub struct TrieCache {
    /// Maximum resident entries; `0` means unbounded.  When full, inserting
    /// a new entry evicts the least-recently-used one.
    capacity: usize,
    /// Maximum resident heap bytes (estimated); `0` means unbounded.
    byte_budget: usize,
    map: RwLock<HashMap<TrieKey, CacheSlot>>,
    /// Per-tenant ledgers, registered lazily on first use.  Lock order: the
    /// ledger map is only ever acquired *after* (or without) `map`'s lock,
    /// never before it.
    tenants: RwLock<HashMap<TenantId, Arc<TenantLedger>>>,
    /// Estimated heap bytes of the resident entries; mutated only under the
    /// map's write lock, read relaxed by [`TrieCache::stats`].
    resident_bytes: AtomicUsize,
    /// Monotonic recency clock; every lookup draws a fresh stamp.
    clock: AtomicU64,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
}

impl TrieCache {
    /// An unbounded cache.
    pub fn new() -> Self {
        TrieCache::default()
    }

    /// A cache holding at most `capacity` entries (`0` = unbounded), evicting
    /// least-recently-used entries once full.
    pub fn with_capacity(capacity: usize) -> Self {
        TrieCache::with_limits(capacity, 0)
    }

    /// A cache bounded by both an entry budget and a byte budget (either may
    /// be `0` = unbounded).  `bytes` caps the *estimated* resident heap size
    /// ([`TrieBuild::heap_bytes`]); inserting past either budget evicts
    /// least-recently-used entries first, and a single build larger than the
    /// whole byte budget is returned to the caller uncached.  This is the
    /// knob a service operator actually wants: a memory budget instead of an
    /// entry count whose per-entry size depends on the workload.
    pub fn with_limits(capacity: usize, bytes: usize) -> Self {
        TrieCache {
            capacity,
            byte_budget: bytes,
            ..TrieCache::default()
        }
    }

    /// Snapshot of the hit/miss/eviction counters and the resident entry /
    /// byte state.
    ///
    /// All fields are read under one acquisition of the map's read lock.
    /// `entries`, `resident_bytes` and `evictions` are only mutated under
    /// the map's *write* lock, so the snapshot is internally consistent: a
    /// caller can never observe a torn pair such as `entries == 0` with
    /// `resident_bytes > 0` (which the previous independent relaxed loads
    /// allowed, breaking invariant-checking tests and operators).
    pub fn stats(&self) -> TrieCacheStats {
        let map = read_recover(&self.map, CACHE_MAP);
        TrieCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: map.len(),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
        }
    }

    /// Snapshot of one tenant's ledger: its activity counters, its resident
    /// entries/bytes, and its quota.  Like [`TrieCache::stats`], the
    /// resident state is read under one acquisition of the map's read lock,
    /// so `entries` and `resident_bytes` are never torn.
    pub fn tenant_stats(&self, tenant: TenantId) -> TenantCacheStats {
        let map = read_recover(&self.map, CACHE_MAP);
        let entries = map.values().filter(|slot| slot.owner == tenant).count();
        let ledger = self.ledger(tenant);
        TenantCacheStats {
            hits: ledger.hits.load(Ordering::Relaxed),
            misses: ledger.misses.load(Ordering::Relaxed),
            evictions: ledger.evictions.load(Ordering::Relaxed),
            entries,
            resident_bytes: ledger.resident_bytes.load(Ordering::Relaxed),
            quota_bytes: ledger.quota.load(Ordering::Relaxed),
        }
    }

    /// Sets (or clears, with `0`) `tenant`'s byte quota: the estimated
    /// resident heap bytes of the entries *this tenant inserted* never
    /// exceed it.  An insert that would go over evicts the tenant's **own**
    /// least-recently-used entries first — the pooled byte budget (which
    /// stays the hard ceiling across all tenants) is untouched by a tenant
    /// shedding its own warmth.  Setting a quota below the tenant's current
    /// residency evicts immediately.  Like every budget, quotas bound
    /// memory, never correctness: an over-quota build is handed to the
    /// caller uncached.
    pub fn set_tenant_quota(&self, tenant: TenantId, bytes: usize) {
        let ledger = self.ledger(tenant);
        if bytes == 0 {
            // Clearing a quota only relaxes enforcement; an in-flight insert
            // reading the old (stricter) value is benign.
            ledger.quota.store(0, Ordering::Relaxed);
            return;
        }
        // A nonzero quota is stored — and immediately enforced — under the
        // map's write lock.  That is what synchronizes it with in-flight
        // inserts: `tries_for` re-reads the quota under this same lock, so
        // an insert either committed before we acquired the lock (its bytes
        // are visible to the eviction pass below) or acquires the lock after
        // we release it (and then sees the new quota, never a stale higher
        // one).
        let mut map = write_recover(&self.map, CACHE_MAP);
        ledger.quota.store(bytes, Ordering::Relaxed);
        self.evict_tenant_lru(&mut map, tenant, &ledger, 0, bytes);
    }

    /// The tenant's current byte quota (`0` = none).
    pub fn tenant_quota(&self, tenant: TenantId) -> usize {
        self.ledger(tenant).quota.load(Ordering::Relaxed)
    }

    /// A resolved handle to `tenant`'s ledger.  An evaluation obtains one
    /// handle up front and carries it through [`EvalContext::tenant`], so
    /// its (many) lookups bump the ledger through the handle instead of
    /// re-probing the tenant registry on every cache lookup — the hit
    /// fast-path stays one map read lock plus relaxed atomics.
    pub fn tenant_handle(&self, tenant: TenantId) -> TenantHandle {
        TenantHandle {
            id: tenant,
            ledger: self.ledger(tenant),
        }
    }

    /// The tenant's ledger, registered on first use (read-probe with a write
    /// upgrade on a genuine miss, like the dictionary stripes).
    fn ledger(&self, tenant: TenantId) -> Arc<TenantLedger> {
        if let Some(ledger) = read_recover(&self.tenants, CACHE_TENANTS).get(&tenant) {
            return Arc::clone(ledger);
        }
        Arc::clone(
            write_recover(&self.tenants, CACHE_TENANTS)
                .entry(tenant)
                .or_default(),
        )
    }

    /// The tries for `atom` under `global_order`, built into
    /// [`effective_shard_count`]`(rows, num_shards)` shards — served from the
    /// cache when an identical build was already done, built and retained
    /// (evicting LRU entries if a budget is exceeded) otherwise.
    ///
    /// The lookup is performed **as** `tenant`'s owner (the anonymous
    /// [`TenantId::DEFAULT`] when `None`): the owner's ledger is metered
    /// alongside the cache-wide counters, the owner's byte quota (if any) is
    /// enforced on insert — evicting the owner's own LRU entries first — and
    /// `activity` (if any) accumulates the caller's exact per-evaluation
    /// statistics.
    ///
    /// The key records the *effective* shard count, so a small relation
    /// requested at different shard counts maps to one entry instead of
    /// duplicating its (identical, unsharded) trie; likewise the *resolved*
    /// `layout`, so an `Auto` request shares the entry of the explicit layout
    /// it resolves to.
    ///
    /// A miss builds cooperatively under `token` (if any) and surfaces
    /// cancellation / deadline / builder-panic failures as [`EvalError`].  A
    /// failed build mutates nothing: the `cache-insert` failpoint and every
    /// fallible step sit **before** the first accounting mutation under the
    /// write lock, so the ledgers and resident-byte totals always describe
    /// exactly the resident entries (see `ij_relation::sync`).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn tries_for(
        &self,
        atom: &BoundAtom<'_>,
        global_order: &[VarId],
        num_shards: usize,
        layout: TrieLayout,
        tenant: Option<&TenantHandle>,
        activity: Option<&CacheActivity>,
        token: Option<&CancellationToken>,
    ) -> Result<Arc<TrieBuild>, EvalError> {
        let num_shards = effective_shard_count(atom.relation.len(), num_shards);
        let levels = crate::trie::trie_level_vars(atom, global_order);
        let layout = layout.resolve(atom.relation.len(), levels.len());
        let key = TrieKey {
            fingerprint: relation_fingerprint(atom.relation),
            vars: atom.vars.clone(),
            levels,
            shards: num_shards,
            layout,
        };
        let fallback;
        let (owner, ledger): (TenantId, &TenantLedger) = match tenant {
            Some(handle) => (handle.id, &handle.ledger),
            None => {
                fallback = self.ledger(TenantId::DEFAULT);
                (TenantId::DEFAULT, &fallback)
            }
        };
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(slot) = read_recover(&self.map, CACHE_MAP).get(&key) {
            slot.last_used.store(now, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            ledger.hits.fetch_add(1, Ordering::Relaxed);
            if let Some(a) = activity {
                a.hits.fetch_add(1, Ordering::Relaxed);
            }
            return Ok(Arc::clone(&slot.tries));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        ledger.misses.fetch_add(1, Ordering::Relaxed);
        if let Some(a) = activity {
            a.misses.fetch_add(1, Ordering::Relaxed);
        }
        let built = Arc::new(TrieBuild::build_sharded(
            atom,
            global_order,
            num_shards,
            layout,
            token,
        )?);
        let new_bytes: usize = built.heap_bytes();
        if self.byte_budget > 0 && new_bytes > self.byte_budget {
            // An entry that alone exceeds the whole byte budget can never be
            // resident within it; hand it to the caller uncached.
            return Ok(built);
        }
        let mut map = write_recover(&self.map, CACHE_MAP);
        // Failpoint before any accounting mutation: an injected panic here
        // poisons the lock but leaves the guarded state untouched, which is
        // exactly the consistency contract the poison-recovering helpers
        // rely on.
        faults::point("cache-insert");
        if let Some(existing) = map.get(&key) {
            // Lost an insert race; adopt the winner so all workers share.
            existing.last_used.store(now, Ordering::Relaxed);
            return Ok(Arc::clone(&existing.tries));
        }
        // The quota is read under the map's write lock, and nonzero quotas
        // are *stored* under the same lock (`set_tenant_quota`): any setter
        // that completed before we acquired the lock is therefore visible
        // here, so a stale read can never override a lowered quota and
        // leave the tenant resident above it.
        let quota = ledger.quota.load(Ordering::Relaxed);
        if quota > 0 && new_bytes > quota {
            // Like the pooled budget: an entry that alone exceeds the
            // owner's quota could only become resident by exceeding it.
            return Ok(built);
        }
        // Quota-aware eviction first: an over-quota owner evicts its *own*
        // least-recently-used entries until the insert fits its quota, so a
        // noisy tenant never pushes its overflow onto its neighbors.
        let mut evicted_now = 0usize;
        if quota > 0 {
            evicted_now += self.evict_tenant_lru(&mut map, owner, ledger, new_bytes, quota);
        }
        // Then the pooled budgets — the hard ceiling across all owners:
        // collect every entry's recency stamp in one pass, sort once, and
        // evict in LRU order until the insert fits.  (The former per-victim
        // `min_by_key` re-scan was O(entries × victims) under the write
        // lock; this is O(entries log entries) regardless of victim count.)
        let over_budget = |map: &HashMap<TrieKey, CacheSlot>| {
            (self.capacity > 0 && map.len() >= self.capacity)
                || (self.byte_budget > 0
                    && self.resident_bytes.load(Ordering::Relaxed) + new_bytes > self.byte_budget)
        };
        if over_budget(&map) {
            let mut victims: Vec<(u64, TrieKey)> = map
                .iter()
                .map(|(k, slot)| (slot.last_used.load(Ordering::Relaxed), k.clone()))
                .collect();
            victims.sort_unstable_by_key(|&(stamp, _)| stamp);
            for (_, victim) in victims {
                if !over_budget(&map) {
                    break;
                }
                self.remove_slot(&mut map, &victim);
                evicted_now += 1;
            }
        }
        if evicted_now > 0 {
            if let Some(a) = activity {
                a.evictions.fetch_add(evicted_now, Ordering::Relaxed);
            }
        }
        self.resident_bytes.fetch_add(new_bytes, Ordering::Relaxed);
        ledger
            .resident_bytes
            .fetch_add(new_bytes, Ordering::Relaxed);
        map.insert(
            key,
            CacheSlot {
                tries: Arc::clone(&built),
                bytes: new_bytes,
                owner,
                last_used: AtomicU64::new(now),
            },
        );
        Ok(built)
    }

    /// Evicts `tenant`'s own entries in LRU order until its resident bytes
    /// plus `headroom` fit within `quota`.  Returns the number of evictions.
    /// Must be called with the map's write lock held (hence the `&mut`).
    fn evict_tenant_lru(
        &self,
        map: &mut HashMap<TrieKey, CacheSlot>,
        tenant: TenantId,
        ledger: &TenantLedger,
        headroom: usize,
        quota: usize,
    ) -> usize {
        if ledger.resident_bytes.load(Ordering::Relaxed) + headroom <= quota {
            return 0;
        }
        let mut own: Vec<(u64, TrieKey)> = map
            .iter()
            .filter(|(_, slot)| slot.owner == tenant)
            .map(|(k, slot)| (slot.last_used.load(Ordering::Relaxed), k.clone()))
            .collect();
        own.sort_unstable_by_key(|&(stamp, _)| stamp);
        let mut evicted = 0usize;
        for (_, victim) in own {
            if ledger.resident_bytes.load(Ordering::Relaxed) + headroom <= quota {
                break;
            }
            self.remove_slot(map, &victim);
            evicted += 1;
        }
        evicted
    }

    /// Removes one entry and settles all accounting: the cache-wide resident
    /// bytes and eviction counter, and the evicted slot's **owner's** ledger
    /// (its bytes shrink and its eviction counter grows — whoever triggered
    /// the eviction).  Must be called with the map's write lock held.
    fn remove_slot(&self, map: &mut HashMap<TrieKey, CacheSlot>, key: &TrieKey) {
        if let Some(slot) = map.remove(key) {
            self.resident_bytes.fetch_sub(slot.bytes, Ordering::Relaxed);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            let owner = self.ledger(slot.owner);
            owner
                .resident_bytes
                .fetch_sub(slot.bytes, Ordering::Relaxed);
            owner.evictions.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// Shared runtime options for one equality-join evaluation: the trie cache
/// (if any), the trie shard count, and the cache-accounting identity —
/// which tenant the lookups are performed as, and which evaluation-local
/// accumulator they are counted into.
///
/// The `*_with` entry points ([`evaluate_ej_boolean_with`],
/// [`generic_join_boolean_with`], …) take an `EvalContext` and thread it down
/// to every trie build of the evaluation — including the per-bag joins of the
/// decomposition-guided strategy.  The plain entry points use
/// `EvalContext::default()`: no cache, no sharding, the default tenant, no
/// local accounting.
///
/// [`evaluate_ej_boolean_with`]: crate::evaluate_ej_boolean_with
/// [`generic_join_boolean_with`]: crate::generic_join_boolean_with
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalContext<'c> {
    /// Trie cache shared across calls; `None` rebuilds tries every time.
    pub cache: Option<&'c TrieCache>,
    /// Trie shard *budget*: `0` = one shard per available hardware thread,
    /// `1` = unsharded, `n` = at most `n` shards.  The budget is the upper
    /// bound a build may use; per-atom sizing ([`effective_shard_count`])
    /// builds relations too small for the budget unsharded instead.  The
    /// answer is identical for every setting.
    pub shards: usize,
    /// The owner every cache lookup of this evaluation is metered as (and
    /// whose byte quota, if any, governs this evaluation's inserts).
    /// Resolved once per evaluation via [`TrieCache::tenant_handle`];
    /// `None` meters as [`TenantId::DEFAULT`].
    pub tenant: Option<&'c TenantHandle>,
    /// Evaluation-local accumulator for exact per-evaluation cache
    /// statistics; `None` skips local accounting (the shared and per-tenant
    /// counters are always maintained).
    pub activity: Option<&'c CacheActivity>,
    /// The trie layout requested for this evaluation's atom builds
    /// ([`TrieLayout::Auto`] by default, resolved per atom at build time).
    /// Like `shards`, the knob is answer-preserving: every setting yields
    /// bit-identical Boolean and enumerated answers.
    pub layout: TrieLayout,
    /// Cooperative cancellation / deadline token polled by the evaluation's
    /// long-running loops (trie builds, candidate intersection, reduction
    /// transforms) every [`CancellationToken::check_interval`] units of
    /// work; `None` runs to completion.
    pub token: Option<&'c CancellationToken>,
    /// How each disjunct's variable order is chosen
    /// ([`PlanMode::Adaptive`](crate::PlanMode) by default; see
    /// [`crate::plan`]).  Answer-preserving like `layout` and `shards`.
    pub plan_mode: crate::plan::PlanMode,
    /// Evaluation-local accumulator for planning statistics (time spent,
    /// disjuncts planned, distinct orders chosen); `None` skips the
    /// accounting.
    pub planning: Option<&'c crate::plan::PlanActivity>,
}

impl<'c> EvalContext<'c> {
    /// The effective shard count (resolves `0` to the hardware parallelism).
    pub fn shard_count(&self) -> usize {
        match self.shards {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_relation::{Relation, Value};

    fn rel(name: &str, rows: Vec<Vec<f64>>) -> Relation {
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        Relation::from_tuples(
            name,
            arity,
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::point).collect())
                .collect(),
        )
    }

    #[test]
    fn fingerprint_ignores_names_but_not_content() {
        let a = rel("A", vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = rel("B", vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let c = rel("C", vec![vec![1.0, 2.0], vec![3.0, 5.0]]);
        assert_eq!(relation_fingerprint(&a), relation_fingerprint(&b));
        assert_ne!(relation_fingerprint(&a), relation_fingerprint(&c));
        // Row order matters (tries collapse duplicates, but a multiset
        // difference must never collide).
        let d = rel("D", vec![vec![3.0, 4.0], vec![1.0, 2.0]]);
        assert_ne!(relation_fingerprint(&a), relation_fingerprint(&d));
    }

    #[test]
    fn identical_builds_hit_distinct_builds_miss() {
        let cache = TrieCache::new();
        let r = rel("R", vec![vec![1.0, 2.0], vec![1.0, 3.0]]);
        let s = rel("S", vec![vec![1.0, 2.0], vec![1.0, 3.0]]);
        let atom_r = BoundAtom::new(&r, vec![0, 1]);
        let first = cache
            .tries_for(&atom_r, &[0, 1], 1, TrieLayout::Auto, None, None, None)
            .unwrap();
        // Same content under a different name: a hit, sharing the same trie.
        let atom_s = BoundAtom::new(&s, vec![0, 1]);
        let second = cache
            .tries_for(&atom_s, &[0, 1], 1, TrieLayout::Auto, None, None, None)
            .unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        // Different binding or level order: separate entries.
        cache
            .tries_for(
                &BoundAtom::new(&r, vec![1, 0]),
                &[0, 1],
                1,
                TrieLayout::Auto,
                None,
                None,
                None,
            )
            .unwrap();
        cache
            .tries_for(&atom_r, &[1, 0], 1, TrieLayout::Auto, None, None, None)
            .unwrap();
        // A different *requested* shard count on a tiny relation sizes down
        // to the same effective (unsharded) build: a hit, not a new entry.
        cache
            .tries_for(&atom_r, &[0, 1], 2, TrieLayout::Auto, None, None, None)
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn full_cache_evicts_least_recently_used() {
        let cache = TrieCache::with_capacity(1);
        let r = rel("R", vec![vec![1.0]]);
        let s = rel("S", vec![vec![2.0]]);
        cache
            .tries_for(
                &BoundAtom::new(&r, vec![0]),
                &[0],
                1,
                TrieLayout::Auto,
                None,
                None,
                None,
            )
            .unwrap();
        // Inserting S evicts R (the only, hence least-recent, entry).
        cache
            .tries_for(
                &BoundAtom::new(&s, vec![0]),
                &[0],
                1,
                TrieLayout::Auto,
                None,
                None,
                None,
            )
            .unwrap();
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().evictions, 1);
        // The resident entry hits; the evicted one rebuilds (a miss).
        cache
            .tries_for(
                &BoundAtom::new(&s, vec![0]),
                &[0],
                1,
                TrieLayout::Auto,
                None,
                None,
                None,
            )
            .unwrap();
        assert_eq!(cache.stats().hits, 1);
        cache
            .tries_for(
                &BoundAtom::new(&r, vec![0]),
                &[0],
                1,
                TrieLayout::Auto,
                None,
                None,
                None,
            )
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn stats_deltas_subtract_counters_but_keep_entries() {
        let a = TrieCacheStats {
            hits: 10,
            misses: 4,
            evictions: 1,
            entries: 3,
            resident_bytes: 1000,
        };
        let b = TrieCacheStats {
            hits: 25,
            misses: 9,
            evictions: 2,
            entries: 5,
            resident_bytes: 1600,
        };
        let d = b.delta_since(&a);
        assert_eq!(d.hits, 15);
        assert_eq!(d.misses, 5);
        assert_eq!(d.evictions, 1);
        assert_eq!(d.entries, 5);
        assert_eq!(d.resident_bytes, 1600);
    }

    #[test]
    fn byte_budget_evicts_to_stay_within_the_budget() {
        // Size the budget from a real build: room for ~3 single-row tries,
        // nowhere near room for 6.
        let probe = rel("P", vec![vec![0.5]]);
        let per_trie = TrieCache::new()
            .tries_for(
                &BoundAtom::new(&probe, vec![0]),
                &[0],
                1,
                TrieLayout::Auto,
                None,
                None,
                None,
            )
            .unwrap()
            .heap_bytes();
        assert!(per_trie > 0);
        let budget = 3 * per_trie + per_trie / 2;
        let cache = TrieCache::with_limits(0, budget);
        let relations: Vec<Relation> = (0..6)
            .map(|i| rel(&format!("R{i}"), vec![vec![100.0 + i as f64]]))
            .collect();
        for r in &relations {
            cache
                .tries_for(
                    &BoundAtom::new(r, vec![0]),
                    &[0],
                    1,
                    TrieLayout::Auto,
                    None,
                    None,
                    None,
                )
                .unwrap();
            let stats = cache.stats();
            assert!(
                stats.resident_bytes <= budget,
                "resident {} exceeds budget {budget}",
                stats.resident_bytes
            );
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "expected evictions, got {stats:?}");
        assert_eq!(stats.entries + stats.evictions, 6);
        // The survivors are the most recently used; re-requesting the last
        // insert hits without growing the resident total.
        let before = cache.stats().resident_bytes;
        cache
            .tries_for(
                &BoundAtom::new(&relations[5], vec![0]),
                &[0],
                1,
                TrieLayout::Auto,
                None,
                None,
                None,
            )
            .unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().resident_bytes, before);
    }

    #[test]
    fn oversized_builds_bypass_the_cache_entirely() {
        // A budget smaller than any single trie: nothing is ever resident,
        // nothing is ever evicted, and lookups still return working tries.
        let cache = TrieCache::with_limits(0, 1);
        let r = rel("R", vec![vec![1.0], vec![2.0]]);
        let first = cache
            .tries_for(
                &BoundAtom::new(&r, vec![0]),
                &[0],
                1,
                TrieLayout::Auto,
                None,
                None,
                None,
            )
            .unwrap();
        let TrieBuild::Hash(tries) = &*first else {
            panic!("tiny relations resolve to the hash layout");
        };
        assert_eq!(tries[0].root().fanout(), 2);
        cache
            .tries_for(
                &BoundAtom::new(&r, vec![0]),
                &[0],
                1,
                TrieLayout::Auto,
                None,
                None,
                None,
            )
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.resident_bytes, 0);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.misses, 2, "uncached lookups rebuild every time");
    }

    #[test]
    fn many_eviction_insert_keeps_byte_accounting_exact() {
        // Regression/perf companion: one insert that evicts *many* small
        // entries (the single-pass victim collection) must leave the byte
        // accounting exact — resident bytes equal the sum of the surviving
        // entries' insert-time sizes, cache-wide and per tenant.
        let probe = rel("P", vec![vec![0.5]]);
        let per_trie = TrieCache::new()
            .tries_for(
                &BoundAtom::new(&probe, vec![0]),
                &[0],
                1,
                TrieLayout::Auto,
                None,
                None,
                None,
            )
            .unwrap()
            .heap_bytes();
        assert!(per_trie > 0);
        // Room for ~8 single-row tries.
        let budget = 8 * per_trie + per_trie / 2;
        let cache = TrieCache::with_limits(0, budget);
        let small: Vec<Relation> = (0..8)
            .map(|i| rel(&format!("S{i}"), vec![vec![10.0 + i as f64]]))
            .collect();
        for r in &small {
            cache
                .tries_for(
                    &BoundAtom::new(r, vec![0]),
                    &[0],
                    1,
                    TrieLayout::Auto,
                    None,
                    None,
                    None,
                )
                .unwrap();
        }
        let before = cache.stats();
        assert_eq!(before.entries, 8);
        assert_eq!(before.evictions, 0);
        // A single large insert (~6 tries worth of distinct values) must
        // evict several small entries at once.
        let big = rel("BIG", (0..12).map(|i| vec![500.0 + i as f64]).collect());
        cache
            .tries_for(
                &BoundAtom::new(&big, vec![0]),
                &[0],
                1,
                TrieLayout::Auto,
                None,
                None,
                None,
            )
            .unwrap();
        let after = cache.stats();
        assert!(
            after.evictions >= 2,
            "one oversized insert should evict several small entries, got {after:?}"
        );
        assert!(after.resident_bytes <= budget);
        // The per-tenant ledger agrees with the cache-wide accounting.
        let tenant_view = cache.tenant_stats(TenantId::DEFAULT);
        assert_eq!(tenant_view.resident_bytes, after.resident_bytes);
        assert_eq!(tenant_view.entries, after.entries);
        assert_eq!(tenant_view.evictions, after.evictions);
        // Exactness: drain *this* cache by dropping its only tenant's quota
        // to one byte — every eviction subtracts its slot's insert-time
        // size, so the resident totals must return to exactly zero (any
        // leak in the multi-victim subtraction above would survive here).
        cache.set_tenant_quota(TenantId::DEFAULT, 1);
        let drained = cache.stats();
        assert_eq!(drained.entries, 0, "{drained:?}");
        assert_eq!(drained.resident_bytes, 0, "{drained:?}");
        assert_eq!(cache.tenant_stats(TenantId::DEFAULT).resident_bytes, 0);
    }

    #[test]
    fn tenant_quota_evicts_the_owners_entries_first() {
        let probe = rel("P", vec![vec![0.5]]);
        let per_trie = TrieCache::new()
            .tries_for(
                &BoundAtom::new(&probe, vec![0]),
                &[0],
                1,
                TrieLayout::Auto,
                None,
                None,
                None,
            )
            .unwrap()
            .heap_bytes();
        let victim = TenantId::from_raw(1);
        let noisy = TenantId::from_raw(2);
        let cache = TrieCache::new(); // no pooled budget: quota acts alone
        let victim_h = cache.tenant_handle(victim);
        let noisy_h = cache.tenant_handle(noisy);
        cache.set_tenant_quota(noisy, 2 * per_trie + per_trie / 2);
        assert_eq!(cache.tenant_quota(noisy), 2 * per_trie + per_trie / 2);

        // The victim inserts first (its entries are the LRU of the pool)…
        let vr = rel("V", vec![vec![1.0]]);
        cache
            .tries_for(
                &BoundAtom::new(&vr, vec![0]),
                &[0],
                1,
                TrieLayout::Auto,
                Some(&victim_h),
                None,
                None,
            )
            .unwrap();
        // …then the noisy tenant floods five distinct entries through a
        // two-entry quota: it must evict only its *own* LRU entries.
        let noisy_rels: Vec<Relation> = (0..5)
            .map(|i| rel(&format!("N{i}"), vec![vec![100.0 + i as f64]]))
            .collect();
        for r in &noisy_rels {
            cache
                .tries_for(
                    &BoundAtom::new(r, vec![0]),
                    &[0],
                    1,
                    TrieLayout::Auto,
                    Some(&noisy_h),
                    None,
                    None,
                )
                .unwrap();
            let ns = cache.tenant_stats(noisy);
            assert!(
                ns.resident_bytes <= ns.quota_bytes,
                "noisy resident {} exceeds quota {}",
                ns.resident_bytes,
                ns.quota_bytes
            );
        }
        let ns = cache.tenant_stats(noisy);
        assert_eq!(ns.misses, 5);
        assert_eq!(ns.evictions, 3, "five inserts through a two-entry quota");
        assert_eq!(ns.entries, 2);
        // The victim's entry survived the neighbor's churn: a repeat lookup
        // hits, and its ledger shows no evictions.
        let vs = cache.tenant_stats(victim);
        assert_eq!(vs.evictions, 0);
        assert_eq!(vs.entries, 1);
        cache
            .tries_for(
                &BoundAtom::new(&vr, vec![0]),
                &[0],
                1,
                TrieLayout::Auto,
                Some(&victim_h),
                None,
                None,
            )
            .unwrap();
        assert_eq!(cache.tenant_stats(victim).hits, 1);
        // A build larger than the quota alone stays uncached.
        let big = rel("BIGN", (0..32).map(|i| vec![900.0 + i as f64]).collect());
        cache
            .tries_for(
                &BoundAtom::new(&big, vec![0]),
                &[0],
                1,
                TrieLayout::Auto,
                Some(&noisy_h),
                None,
                None,
            )
            .unwrap();
        assert_eq!(
            cache.tenant_stats(noisy).entries,
            2,
            "oversized build bypasses"
        );
        // Lowering a quota below current residency evicts immediately.
        cache.set_tenant_quota(noisy, per_trie + per_trie / 2);
        assert_eq!(cache.tenant_stats(noisy).entries, 1);
        assert!(cache.tenant_stats(noisy).resident_bytes <= cache.tenant_quota(noisy));
    }

    #[test]
    fn activity_accumulator_counts_only_its_own_lookups() {
        let cache = TrieCache::with_capacity(1);
        let r = rel("R", vec![vec![1.0]]);
        let s = rel("S", vec![vec![2.0]]);
        // Another caller's activity (no accumulator attached).
        cache
            .tries_for(
                &BoundAtom::new(&r, vec![0]),
                &[0],
                1,
                TrieLayout::Auto,
                None,
                None,
                None,
            )
            .unwrap();
        let mine = CacheActivity::new();
        // My lookups: one miss that evicts R, then one hit.
        cache
            .tries_for(
                &BoundAtom::new(&s, vec![0]),
                &[0],
                1,
                TrieLayout::Auto,
                None,
                Some(&mine),
                None,
            )
            .unwrap();
        cache
            .tries_for(
                &BoundAtom::new(&s, vec![0]),
                &[0],
                1,
                TrieLayout::Auto,
                None,
                Some(&mine),
                None,
            )
            .unwrap();
        assert_eq!(mine.hits(), 1);
        assert_eq!(mine.misses(), 1);
        assert_eq!(mine.evictions(), 1, "my insert evicted the resident entry");
        // The shared counters saw everyone; my accumulator saw only me.
        let total = cache.stats();
        assert_eq!(total.misses, 2);
        assert_eq!(total.hits, 1);
    }

    #[test]
    fn entry_capacity_eviction_keeps_byte_accounting_consistent() {
        let cache = TrieCache::with_limits(1, 0);
        let r = rel("R", vec![vec![1.0]]);
        let s = rel("S", vec![vec![2.0], vec![3.0]]);
        cache
            .tries_for(
                &BoundAtom::new(&r, vec![0]),
                &[0],
                1,
                TrieLayout::Auto,
                None,
                None,
                None,
            )
            .unwrap();
        let with_r = cache.stats().resident_bytes;
        assert!(with_r > 0);
        // Inserting S evicts R; the resident bytes must now describe S only.
        cache
            .tries_for(
                &BoundAtom::new(&s, vec![0]),
                &[0],
                1,
                TrieLayout::Auto,
                None,
                None,
                None,
            )
            .unwrap();
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 1);
        assert!(stats.resident_bytes >= with_r, "S is the larger trie");
    }

    #[test]
    fn layouts_key_separately_and_auto_shares_its_resolution() {
        let cache = TrieCache::new();
        let r = rel("R", vec![vec![1.0, 2.0], vec![1.0, 3.0]]);
        let atom = BoundAtom::new(&r, vec![0, 1]);
        // Explicit hash and flat builds of one atom: two distinct entries.
        let hash = cache
            .tries_for(&atom, &[0, 1], 1, TrieLayout::Hash, None, None, None)
            .unwrap();
        let flat = cache
            .tries_for(&atom, &[0, 1], 1, TrieLayout::Flat, None, None, None)
            .unwrap();
        assert_eq!(hash.layout(), TrieLayout::Hash);
        assert_eq!(flat.layout(), TrieLayout::Flat);
        let stats = cache.stats();
        assert_eq!(stats.misses, 2);
        assert_eq!(stats.entries, 2);
        // Auto on this tiny relation resolves to Hash and *hits* the
        // explicit hash entry instead of inserting a third.
        let auto = cache
            .tries_for(&atom, &[0, 1], 1, TrieLayout::Auto, None, None, None)
            .unwrap();
        assert!(Arc::ptr_eq(&hash, &auto));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().entries, 2);
    }
}
