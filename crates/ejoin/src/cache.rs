//! A shared cache of built [`AtomTrie`]s, keyed by content fingerprints.
//!
//! The forward reduction turns one intersection-join query into a disjunction
//! of equality-join queries whose atoms overwhelmingly *share* transformed
//! relations: the relation materialised for an atom depends only on the level
//! assigned to each of its interval variables, not on the full permutation
//! that produced the disjunct.  Without a cache, every disjunct rebuilds the
//! same tries from scratch; with one, the first disjunct to need a trie
//! builds it and every later disjunct (on any worker thread) reuses it.
//!
//! # Keying
//!
//! A trie's content is fully determined by
//!
//! 1. the relation's **data** — captured as a 128-bit fingerprint of the id
//!    columns ([`relation_fingerprint`]), so caching is sound for any
//!    relation with the same content regardless of name or provenance
//!    (top-level transformed relations and the per-disjunct projections
//!    derived from them alike);
//! 2. the **column→variable binding** of the atom — this encodes both the
//!    column permutation and the repeated-variable filters;
//! 3. the induced **level order** (the atom's distinct variables sorted by
//!    the global join order);
//! 4. the **shard count** of the build (see [`AtomTrie::build_sharded`]).
//!
//! This is exactly the (relation identity, column permutation, filter)
//! fingerprint that the engine's disjunct deduplication reasons about at the
//! query level, pushed down to the data level.
//!
//! # Concurrency
//!
//! The cache is a read-mostly `RwLock<HashMap<_, Arc<_>>>`: lookups take the
//! read lock, a miss builds the trie *outside* any lock and then races to
//! insert (the first insertion wins; a losing builder adopts the winner's
//! trie, so all workers always probe structurally identical tries).  Hit and
//! miss counters are relaxed atomics exposed through [`TrieCache::stats`].

use crate::trie::AtomTrie;
use crate::BoundAtom;
use ij_hypergraph::VarId;
use ij_relation::Relation;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// A 128-bit content fingerprint of a relation's id columns.
///
/// Two relations with equal arity, row count and column ids (in order) get
/// the same fingerprint; the two independent 64-bit mixing lanes make an
/// accidental collision between *different* contents astronomically unlikely
/// (~2⁻¹²⁸), which is what lets the trie cache treat the fingerprint as
/// identity.  Names are deliberately ignored: a projection recomputed by two
/// disjuncts under different names still shares one trie.
///
/// The value is memoized per relation ([`Relation::fingerprint_with`]), so
/// repeated cache lookups against the same relation hash its columns once.
pub fn relation_fingerprint(relation: &Relation) -> (u64, u64) {
    relation.fingerprint_with(compute_fingerprint)
}

fn compute_fingerprint(relation: &Relation) -> (u64, u64) {
    const M1: u64 = 0x9E37_79B9_7F4A_7C15;
    const M2: u64 = 0xC2B2_AE3D_27D4_EB4F;
    let mix = |state: u64, v: u64, m: u64| ((state ^ v).wrapping_mul(m)).rotate_left(29);
    let mut a = 0x243F_6A88_85A3_08D3u64;
    let mut b = 0x4528_21E6_38D0_1377u64;
    a = mix(a, relation.arity() as u64, M1);
    b = mix(b, relation.arity() as u64, M2);
    a = mix(a, relation.len() as u64, M1);
    b = mix(b, relation.len() as u64, M2);
    for col in 0..relation.arity() {
        a = mix(a, 0xFEED_C01D, M1);
        b = mix(b, 0xFEED_C01D, M2);
        for &id in relation.column_ids(col) {
            a = mix(a, id.raw() as u64, M1);
            b = mix(b, id.raw() as u64, M2);
        }
    }
    (a, b)
}

/// The cache key: everything a trie's content depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TrieKey {
    fingerprint: (u64, u64),
    /// Column→variable binding (permutation + repeated-variable filters).
    vars: Vec<VarId>,
    /// The atom's distinct variables in global join order (the trie levels).
    levels: Vec<VarId>,
    /// Shard count of the build (1 = unsharded).
    shards: usize,
}

/// A point-in-time snapshot of a [`TrieCache`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrieCacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that had to build (includes both builders of an insert race).
    pub misses: usize,
    /// Entries currently resident.
    pub entries: usize,
}

impl TrieCacheStats {
    /// Hits as a fraction of all lookups (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A thread-safe cache of built tries shared across the disjuncts of one
/// evaluation (see the module docs for keying and concurrency).
///
/// The engine creates one cache per [`evaluate_reduction`] call and hands it
/// to every disjunct worker; standalone users of the ejoin crate can share
/// one across any sequence of [`evaluate_ej_boolean_with`] calls whose
/// relations are alive for the cache's lifetime (the cache stores owned
/// tries, so there is no borrow coupling — "alive" only matters for hit
/// rates, not safety).
///
/// [`evaluate_reduction`]: https://docs.rs/ij-engine
/// [`evaluate_ej_boolean_with`]: crate::evaluate_ej_boolean_with
#[derive(Debug, Default)]
pub struct TrieCache {
    /// Maximum resident entries; `0` means unbounded.  When full, new tries
    /// are still built and returned but not retained — a deliberately simple
    /// policy that keeps every admitted entry immortal for the (short) life
    /// of an evaluation instead of thrashing an LRU.
    capacity: usize,
    map: RwLock<HashMap<TrieKey, Arc<Vec<AtomTrie>>>>,
    hits: AtomicUsize,
    misses: AtomicUsize,
}

impl TrieCache {
    /// An unbounded cache.
    pub fn new() -> Self {
        TrieCache::default()
    }

    /// A cache holding at most `capacity` entries (`0` = unbounded).
    pub fn with_capacity(capacity: usize) -> Self {
        TrieCache {
            capacity,
            ..TrieCache::default()
        }
    }

    /// Snapshot of the hit/miss counters and the resident entry count.
    pub fn stats(&self) -> TrieCacheStats {
        TrieCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.map.read().unwrap_or_else(|e| e.into_inner()).len(),
        }
    }

    /// The tries for `atom` under `global_order`, built into `num_shards`
    /// shards (1 = unsharded) — served from the cache when an identical
    /// build was already done, built (and, capacity permitting, retained)
    /// otherwise.
    pub(crate) fn tries_for(
        &self,
        atom: &BoundAtom<'_>,
        global_order: &[VarId],
        num_shards: usize,
    ) -> Arc<Vec<AtomTrie>> {
        let levels = crate::trie::trie_level_vars(atom, global_order);
        let key = TrieKey {
            fingerprint: relation_fingerprint(atom.relation),
            vars: atom.vars.clone(),
            levels,
            shards: num_shards.max(1),
        };
        if let Some(tries) = self.map.read().unwrap_or_else(|e| e.into_inner()).get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(tries);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(AtomTrie::build_sharded(atom, global_order, num_shards));
        let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = map.get(&key) {
            // Lost an insert race; adopt the winner so all workers share.
            return Arc::clone(existing);
        }
        if self.capacity == 0 || map.len() < self.capacity {
            map.insert(key, Arc::clone(&built));
        }
        built
    }
}

/// Shared runtime options for one equality-join evaluation: the trie cache
/// (if any) and the trie shard count.
///
/// The `*_with` entry points ([`evaluate_ej_boolean_with`],
/// [`generic_join_boolean_with`], …) take an `EvalContext` and thread it down
/// to every trie build of the evaluation — including the per-bag joins of the
/// decomposition-guided strategy.  The plain entry points use
/// `EvalContext::default()`: no cache, no sharding.
///
/// [`evaluate_ej_boolean_with`]: crate::evaluate_ej_boolean_with
/// [`generic_join_boolean_with`]: crate::generic_join_boolean_with
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalContext<'c> {
    /// Trie cache shared across calls; `None` rebuilds tries every time.
    pub cache: Option<&'c TrieCache>,
    /// Trie shard count: `0` = one shard per available hardware thread,
    /// `1` = unsharded, `n` = exactly `n` shards.  The answer is identical
    /// for every setting.
    pub shards: usize,
}

impl<'c> EvalContext<'c> {
    /// The effective shard count (resolves `0` to the hardware parallelism).
    pub fn shard_count(&self) -> usize {
        match self.shards {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_relation::{Relation, Value};

    fn rel(name: &str, rows: Vec<Vec<f64>>) -> Relation {
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        Relation::from_tuples(
            name,
            arity,
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::point).collect())
                .collect(),
        )
    }

    #[test]
    fn fingerprint_ignores_names_but_not_content() {
        let a = rel("A", vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = rel("B", vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let c = rel("C", vec![vec![1.0, 2.0], vec![3.0, 5.0]]);
        assert_eq!(relation_fingerprint(&a), relation_fingerprint(&b));
        assert_ne!(relation_fingerprint(&a), relation_fingerprint(&c));
        // Row order matters (tries collapse duplicates, but a multiset
        // difference must never collide).
        let d = rel("D", vec![vec![3.0, 4.0], vec![1.0, 2.0]]);
        assert_ne!(relation_fingerprint(&a), relation_fingerprint(&d));
    }

    #[test]
    fn identical_builds_hit_distinct_builds_miss() {
        let cache = TrieCache::new();
        let r = rel("R", vec![vec![1.0, 2.0], vec![1.0, 3.0]]);
        let s = rel("S", vec![vec![1.0, 2.0], vec![1.0, 3.0]]);
        let atom_r = BoundAtom::new(&r, vec![0, 1]);
        let first = cache.tries_for(&atom_r, &[0, 1], 1);
        // Same content under a different name: a hit, sharing the same trie.
        let atom_s = BoundAtom::new(&s, vec![0, 1]);
        let second = cache.tries_for(&atom_s, &[0, 1], 1);
        assert!(Arc::ptr_eq(&first, &second));
        // Different binding, level order or shard count: separate entries.
        cache.tries_for(&BoundAtom::new(&r, vec![1, 0]), &[0, 1], 1);
        cache.tries_for(&atom_r, &[1, 0], 1);
        cache.tries_for(&atom_r, &[0, 1], 2);
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 4);
        assert_eq!(stats.entries, 4);
        assert!((stats.hit_rate() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn capacity_bounds_resident_entries() {
        let cache = TrieCache::with_capacity(1);
        let r = rel("R", vec![vec![1.0]]);
        let s = rel("S", vec![vec![2.0]]);
        cache.tries_for(&BoundAtom::new(&r, vec![0]), &[0], 1);
        cache.tries_for(&BoundAtom::new(&s, vec![0]), &[0], 1);
        assert_eq!(cache.stats().entries, 1);
        // The retained entry still hits.
        cache.tries_for(&BoundAtom::new(&r, vec![0]), &[0], 1);
        assert_eq!(cache.stats().hits, 1);
    }
}
