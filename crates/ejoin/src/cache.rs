//! A shared cache of built [`AtomTrie`]s, keyed by content fingerprints.
//!
//! The forward reduction turns one intersection-join query into a disjunction
//! of equality-join queries whose atoms overwhelmingly *share* transformed
//! relations: the relation materialised for an atom depends only on the level
//! assigned to each of its interval variables, not on the full permutation
//! that produced the disjunct.  Without a cache, every disjunct rebuilds the
//! same tries from scratch; with one, the first disjunct to need a trie
//! builds it and every later disjunct (on any worker thread) reuses it.
//!
//! # Keying
//!
//! A trie's content is fully determined by
//!
//! 1. the relation's **data** — captured as a 128-bit fingerprint of the id
//!    columns ([`relation_fingerprint`]), so caching is sound for any
//!    relation with the same content regardless of name or provenance
//!    (top-level transformed relations and the per-disjunct projections
//!    derived from them alike);
//! 2. the **column→variable binding** of the atom — this encodes both the
//!    column permutation and the repeated-variable filters;
//! 3. the induced **level order** (the atom's distinct variables sorted by
//!    the global join order);
//! 4. the **effective shard count** of the build (the requested count after
//!    per-atom sizing — see [`AtomTrie::build_sharded`] and
//!    [`effective_shard_count`]).
//!
//! This is exactly the (relation identity, column permutation, filter)
//! fingerprint that the engine's disjunct deduplication reasons about at the
//! query level, pushed down to the data level.
//!
//! # Lifetime and eviction
//!
//! A cache may outlive a single evaluation: the engine owns one **persistent**
//! cache per engine instance (and a `Workspace` shares one across every
//! engine built from it), shared by every `evaluate_reduction` call — sound
//! because the key starts from the relation *content* fingerprint, so a
//! different database can never alias a cached trie.  Boundedness across
//! that open-ended lifetime comes from **LRU eviction** against two
//! independent budgets ([`TrieCache::with_limits`]):
//!
//! * an **entry budget** — at most `capacity` resident entries;
//! * a **byte budget** — every entry carries the estimated heap size of its
//!   tries ([`AtomTrie::heap_bytes`], summed over shards), the cache tracks
//!   the resident total ([`TrieCacheStats::resident_bytes`]), and inserting
//!   past the budget evicts least-recently-used entries until the new entry
//!   fits.  A single build larger than the whole byte budget is handed to
//!   the caller *uncached* — the budget is an upper bound on resident
//!   bytes, never exceeded to accommodate an oversized entry.
//!
//! Every entry carries a last-used stamp from a relaxed global clock; an
//! insert over either budget evicts the least-recently-used entries first
//! (counted in [`TrieCacheStats::evictions`]).  Eviction only ever drops
//! *reuse*, never correctness: a future lookup of an evicted key rebuilds
//! the trie from the relation.
//!
//! # Concurrency
//!
//! The cache is a read-mostly `RwLock<HashMap<_, _>>`: lookups take the read
//! lock (bumping the recency stamp with a relaxed atomic store), a miss
//! builds the trie *outside* any lock and then races to insert (the first
//! insertion wins; a losing builder adopts the winner's trie, so all workers
//! always probe structurally identical tries).  Hit, miss and eviction
//! counters are relaxed atomics exposed through [`TrieCache::stats`].

use crate::trie::{effective_shard_count, AtomTrie};
use crate::BoundAtom;
use ij_hypergraph::VarId;
use ij_relation::Relation;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, RwLock};

/// A 128-bit content fingerprint of a relation's id columns.
///
/// Two relations with equal arity, row count and column ids (in order) get
/// the same fingerprint; the two independent 64-bit mixing lanes make an
/// accidental collision between *different* contents astronomically unlikely
/// (~2⁻¹²⁸), which is what lets the trie cache treat the fingerprint as
/// identity.  Names are deliberately ignored: a projection recomputed by two
/// disjuncts under different names still shares one trie.
///
/// The value is memoized per relation ([`Relation::fingerprint_with`]), so
/// repeated cache lookups against the same relation hash its columns once.
pub fn relation_fingerprint(relation: &Relation) -> (u64, u64) {
    relation.fingerprint_with(compute_fingerprint)
}

fn compute_fingerprint(relation: &Relation) -> (u64, u64) {
    const M1: u64 = 0x9E37_79B9_7F4A_7C15;
    const M2: u64 = 0xC2B2_AE3D_27D4_EB4F;
    let mix = |state: u64, v: u64, m: u64| ((state ^ v).wrapping_mul(m)).rotate_left(29);
    let mut a = 0x243F_6A88_85A3_08D3u64;
    let mut b = 0x4528_21E6_38D0_1377u64;
    a = mix(a, relation.arity() as u64, M1);
    b = mix(b, relation.arity() as u64, M2);
    a = mix(a, relation.len() as u64, M1);
    b = mix(b, relation.len() as u64, M2);
    for col in 0..relation.arity() {
        a = mix(a, 0xFEED_C01D, M1);
        b = mix(b, 0xFEED_C01D, M2);
        for &id in relation.column_ids(col) {
            a = mix(a, id.raw() as u64, M1);
            b = mix(b, id.raw() as u64, M2);
        }
    }
    (a, b)
}

/// The cache key: everything a trie's content depends on.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TrieKey {
    fingerprint: (u64, u64),
    /// Column→variable binding (permutation + repeated-variable filters).
    vars: Vec<VarId>,
    /// The atom's distinct variables in global join order (the trie levels).
    levels: Vec<VarId>,
    /// Shard count of the build (1 = unsharded).
    shards: usize,
}

/// A point-in-time snapshot of a [`TrieCache`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrieCacheStats {
    /// Lookups answered from the cache.
    pub hits: usize,
    /// Lookups that had to build (includes both builders of an insert race).
    pub misses: usize,
    /// Entries dropped by LRU eviction to stay within the entry or byte
    /// budget.
    pub evictions: usize,
    /// Entries currently resident.
    pub entries: usize,
    /// Estimated heap bytes of the resident entries
    /// ([`AtomTrie::heap_bytes`] summed over every cached build).  Never
    /// exceeds a configured byte budget ([`TrieCache::with_limits`]).
    pub resident_bytes: usize,
}

impl TrieCacheStats {
    /// Hits as a fraction of all lookups (0.0 when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The activity between an `earlier` snapshot of the same cache and this
    /// one: hit/miss/eviction counters become deltas, `entries` and
    /// `resident_bytes` stay the current resident state.  Used by the engine
    /// to report per-evaluation statistics out of its persistent cache.
    pub fn delta_since(&self, earlier: &TrieCacheStats) -> TrieCacheStats {
        TrieCacheStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            entries: self.entries,
            resident_bytes: self.resident_bytes,
        }
    }
}

/// One resident cache entry: the built tries, their estimated heap size
/// (fixed at insert time), and a last-used stamp for the LRU policy (bumped
/// with a relaxed store on every hit, so recency tracking never needs the
/// write lock).
#[derive(Debug)]
struct CacheSlot {
    tries: Arc<Vec<AtomTrie>>,
    bytes: usize,
    last_used: AtomicU64,
}

/// A thread-safe cache of built tries, shared across the disjuncts of one
/// evaluation *and* — because keys start from content fingerprints — across
/// any number of evaluations (see the module docs for keying, lifetime and
/// concurrency).
///
/// The engine owns one cache per engine instance and hands it to every
/// disjunct worker of every [`evaluate_reduction`] call; standalone users of
/// the ejoin crate can share one across any sequence of
/// [`evaluate_ej_boolean_with`] calls (the cache stores owned tries, so
/// there is no borrow coupling to the source relations).
///
/// [`evaluate_reduction`]: https://docs.rs/ij-engine
/// [`evaluate_ej_boolean_with`]: crate::evaluate_ej_boolean_with
#[derive(Debug, Default)]
pub struct TrieCache {
    /// Maximum resident entries; `0` means unbounded.  When full, inserting
    /// a new entry evicts the least-recently-used one.
    capacity: usize,
    /// Maximum resident heap bytes (estimated); `0` means unbounded.
    byte_budget: usize,
    map: RwLock<HashMap<TrieKey, CacheSlot>>,
    /// Estimated heap bytes of the resident entries; mutated only under the
    /// map's write lock, read relaxed by [`TrieCache::stats`].
    resident_bytes: AtomicUsize,
    /// Monotonic recency clock; every lookup draws a fresh stamp.
    clock: AtomicU64,
    hits: AtomicUsize,
    misses: AtomicUsize,
    evictions: AtomicUsize,
}

impl TrieCache {
    /// An unbounded cache.
    pub fn new() -> Self {
        TrieCache::default()
    }

    /// A cache holding at most `capacity` entries (`0` = unbounded), evicting
    /// least-recently-used entries once full.
    pub fn with_capacity(capacity: usize) -> Self {
        TrieCache::with_limits(capacity, 0)
    }

    /// A cache bounded by both an entry budget and a byte budget (either may
    /// be `0` = unbounded).  `bytes` caps the *estimated* resident heap size
    /// ([`AtomTrie::heap_bytes`]); inserting past either budget evicts
    /// least-recently-used entries first, and a single build larger than the
    /// whole byte budget is returned to the caller uncached.  This is the
    /// knob a service operator actually wants: a memory budget instead of an
    /// entry count whose per-entry size depends on the workload.
    pub fn with_limits(capacity: usize, bytes: usize) -> Self {
        TrieCache {
            capacity,
            byte_budget: bytes,
            ..TrieCache::default()
        }
    }

    /// Snapshot of the hit/miss/eviction counters and the resident entry /
    /// byte state.
    pub fn stats(&self) -> TrieCacheStats {
        TrieCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries: self.map.read().unwrap_or_else(|e| e.into_inner()).len(),
            resident_bytes: self.resident_bytes.load(Ordering::Relaxed),
        }
    }

    /// The tries for `atom` under `global_order`, built into
    /// [`effective_shard_count`]`(rows, num_shards)` shards — served from the
    /// cache when an identical build was already done, built and retained
    /// (evicting the LRU entry if the cache is full) otherwise.
    ///
    /// The key records the *effective* shard count, so a small relation
    /// requested at different shard counts maps to one entry instead of
    /// duplicating its (identical, unsharded) trie.
    pub(crate) fn tries_for(
        &self,
        atom: &BoundAtom<'_>,
        global_order: &[VarId],
        num_shards: usize,
    ) -> Arc<Vec<AtomTrie>> {
        let num_shards = effective_shard_count(atom.relation.len(), num_shards);
        let levels = crate::trie::trie_level_vars(atom, global_order);
        let key = TrieKey {
            fingerprint: relation_fingerprint(atom.relation),
            vars: atom.vars.clone(),
            levels,
            shards: num_shards,
        };
        let now = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        if let Some(slot) = self.map.read().unwrap_or_else(|e| e.into_inner()).get(&key) {
            slot.last_used.store(now, Ordering::Relaxed);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Arc::clone(&slot.tries);
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let built = Arc::new(AtomTrie::build_sharded(atom, global_order, num_shards));
        let new_bytes: usize = built.iter().map(AtomTrie::heap_bytes).sum();
        if self.byte_budget > 0 && new_bytes > self.byte_budget {
            // An entry that alone exceeds the whole byte budget can never be
            // resident within it; hand it to the caller uncached.
            return built;
        }
        let mut map = self.map.write().unwrap_or_else(|e| e.into_inner());
        if let Some(existing) = map.get(&key) {
            // Lost an insert race; adopt the winner so all workers share.
            existing.last_used.store(now, Ordering::Relaxed);
            return Arc::clone(&existing.tries);
        }
        // Evict least-recently-used entries until the new entry fits both
        // budgets.  The linear min-scans run under the write lock but only on
        // insert-over-budget, and the map is bounded by the very budgets the
        // scans enforce.
        let mut resident = self.resident_bytes.load(Ordering::Relaxed);
        while !map.is_empty()
            && ((self.capacity > 0 && map.len() >= self.capacity)
                || (self.byte_budget > 0 && resident + new_bytes > self.byte_budget))
        {
            let victim = map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone())
                .expect("map is non-empty");
            if let Some(slot) = map.remove(&victim) {
                resident = resident.saturating_sub(slot.bytes);
            }
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        self.resident_bytes
            .store(resident + new_bytes, Ordering::Relaxed);
        map.insert(
            key,
            CacheSlot {
                tries: Arc::clone(&built),
                bytes: new_bytes,
                last_used: AtomicU64::new(now),
            },
        );
        built
    }
}

/// Shared runtime options for one equality-join evaluation: the trie cache
/// (if any) and the trie shard count.
///
/// The `*_with` entry points ([`evaluate_ej_boolean_with`],
/// [`generic_join_boolean_with`], …) take an `EvalContext` and thread it down
/// to every trie build of the evaluation — including the per-bag joins of the
/// decomposition-guided strategy.  The plain entry points use
/// `EvalContext::default()`: no cache, no sharding.
///
/// [`evaluate_ej_boolean_with`]: crate::evaluate_ej_boolean_with
/// [`generic_join_boolean_with`]: crate::generic_join_boolean_with
#[derive(Debug, Clone, Copy, Default)]
pub struct EvalContext<'c> {
    /// Trie cache shared across calls; `None` rebuilds tries every time.
    pub cache: Option<&'c TrieCache>,
    /// Trie shard *budget*: `0` = one shard per available hardware thread,
    /// `1` = unsharded, `n` = at most `n` shards.  The budget is the upper
    /// bound a build may use; per-atom sizing ([`effective_shard_count`])
    /// builds relations too small for the budget unsharded instead.  The
    /// answer is identical for every setting.
    pub shards: usize,
}

impl<'c> EvalContext<'c> {
    /// The effective shard count (resolves `0` to the hardware parallelism).
    pub fn shard_count(&self) -> usize {
        match self.shards {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_relation::{Relation, Value};

    fn rel(name: &str, rows: Vec<Vec<f64>>) -> Relation {
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        Relation::from_tuples(
            name,
            arity,
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::point).collect())
                .collect(),
        )
    }

    #[test]
    fn fingerprint_ignores_names_but_not_content() {
        let a = rel("A", vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = rel("B", vec![vec![1.0, 2.0], vec![3.0, 4.0]]);
        let c = rel("C", vec![vec![1.0, 2.0], vec![3.0, 5.0]]);
        assert_eq!(relation_fingerprint(&a), relation_fingerprint(&b));
        assert_ne!(relation_fingerprint(&a), relation_fingerprint(&c));
        // Row order matters (tries collapse duplicates, but a multiset
        // difference must never collide).
        let d = rel("D", vec![vec![3.0, 4.0], vec![1.0, 2.0]]);
        assert_ne!(relation_fingerprint(&a), relation_fingerprint(&d));
    }

    #[test]
    fn identical_builds_hit_distinct_builds_miss() {
        let cache = TrieCache::new();
        let r = rel("R", vec![vec![1.0, 2.0], vec![1.0, 3.0]]);
        let s = rel("S", vec![vec![1.0, 2.0], vec![1.0, 3.0]]);
        let atom_r = BoundAtom::new(&r, vec![0, 1]);
        let first = cache.tries_for(&atom_r, &[0, 1], 1);
        // Same content under a different name: a hit, sharing the same trie.
        let atom_s = BoundAtom::new(&s, vec![0, 1]);
        let second = cache.tries_for(&atom_s, &[0, 1], 1);
        assert!(Arc::ptr_eq(&first, &second));
        // Different binding or level order: separate entries.
        cache.tries_for(&BoundAtom::new(&r, vec![1, 0]), &[0, 1], 1);
        cache.tries_for(&atom_r, &[1, 0], 1);
        // A different *requested* shard count on a tiny relation sizes down
        // to the same effective (unsharded) build: a hit, not a new entry.
        cache.tries_for(&atom_r, &[0, 1], 2);
        let stats = cache.stats();
        assert_eq!(stats.hits, 2);
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.entries, 3);
        assert_eq!(stats.evictions, 0);
        assert!((stats.hit_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn full_cache_evicts_least_recently_used() {
        let cache = TrieCache::with_capacity(1);
        let r = rel("R", vec![vec![1.0]]);
        let s = rel("S", vec![vec![2.0]]);
        cache.tries_for(&BoundAtom::new(&r, vec![0]), &[0], 1);
        // Inserting S evicts R (the only, hence least-recent, entry).
        cache.tries_for(&BoundAtom::new(&s, vec![0]), &[0], 1);
        assert_eq!(cache.stats().entries, 1);
        assert_eq!(cache.stats().evictions, 1);
        // The resident entry hits; the evicted one rebuilds (a miss).
        cache.tries_for(&BoundAtom::new(&s, vec![0]), &[0], 1);
        assert_eq!(cache.stats().hits, 1);
        cache.tries_for(&BoundAtom::new(&r, vec![0]), &[0], 1);
        let stats = cache.stats();
        assert_eq!(stats.misses, 3);
        assert_eq!(stats.evictions, 2);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn stats_deltas_subtract_counters_but_keep_entries() {
        let a = TrieCacheStats {
            hits: 10,
            misses: 4,
            evictions: 1,
            entries: 3,
            resident_bytes: 1000,
        };
        let b = TrieCacheStats {
            hits: 25,
            misses: 9,
            evictions: 2,
            entries: 5,
            resident_bytes: 1600,
        };
        let d = b.delta_since(&a);
        assert_eq!(d.hits, 15);
        assert_eq!(d.misses, 5);
        assert_eq!(d.evictions, 1);
        assert_eq!(d.entries, 5);
        assert_eq!(d.resident_bytes, 1600);
    }

    #[test]
    fn byte_budget_evicts_to_stay_within_the_budget() {
        // Size the budget from a real build: room for ~3 single-row tries,
        // nowhere near room for 6.
        let probe = rel("P", vec![vec![0.5]]);
        let per_trie = TrieCache::new()
            .tries_for(&BoundAtom::new(&probe, vec![0]), &[0], 1)
            .iter()
            .map(AtomTrie::heap_bytes)
            .sum::<usize>();
        assert!(per_trie > 0);
        let budget = 3 * per_trie + per_trie / 2;
        let cache = TrieCache::with_limits(0, budget);
        let relations: Vec<Relation> = (0..6)
            .map(|i| rel(&format!("R{i}"), vec![vec![100.0 + i as f64]]))
            .collect();
        for r in &relations {
            cache.tries_for(&BoundAtom::new(r, vec![0]), &[0], 1);
            let stats = cache.stats();
            assert!(
                stats.resident_bytes <= budget,
                "resident {} exceeds budget {budget}",
                stats.resident_bytes
            );
        }
        let stats = cache.stats();
        assert!(stats.evictions > 0, "expected evictions, got {stats:?}");
        assert_eq!(stats.entries + stats.evictions, 6);
        // The survivors are the most recently used; re-requesting the last
        // insert hits without growing the resident total.
        let before = cache.stats().resident_bytes;
        cache.tries_for(&BoundAtom::new(&relations[5], vec![0]), &[0], 1);
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(cache.stats().resident_bytes, before);
    }

    #[test]
    fn oversized_builds_bypass_the_cache_entirely() {
        // A budget smaller than any single trie: nothing is ever resident,
        // nothing is ever evicted, and lookups still return working tries.
        let cache = TrieCache::with_limits(0, 1);
        let r = rel("R", vec![vec![1.0], vec![2.0]]);
        let first = cache.tries_for(&BoundAtom::new(&r, vec![0]), &[0], 1);
        assert_eq!(first[0].root().fanout(), 2);
        cache.tries_for(&BoundAtom::new(&r, vec![0]), &[0], 1);
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.resident_bytes, 0);
        assert_eq!(stats.evictions, 0);
        assert_eq!(stats.misses, 2, "uncached lookups rebuild every time");
    }

    #[test]
    fn entry_capacity_eviction_keeps_byte_accounting_consistent() {
        let cache = TrieCache::with_limits(1, 0);
        let r = rel("R", vec![vec![1.0]]);
        let s = rel("S", vec![vec![2.0], vec![3.0]]);
        cache.tries_for(&BoundAtom::new(&r, vec![0]), &[0], 1);
        let with_r = cache.stats().resident_bytes;
        assert!(with_r > 0);
        // Inserting S evicts R; the resident bytes must now describe S only.
        cache.tries_for(&BoundAtom::new(&s, vec![0]), &[0], 1);
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.evictions, 1);
        assert!(stats.resident_bytes >= with_r, "S is the larger trie");
    }
}
