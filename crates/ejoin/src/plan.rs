//! Adaptive per-disjunct join planning.
//!
//! The generic join processes variables in a fixed global order; a bad order
//! can make the search explore a huge cross product before the selective
//! atoms ever constrain it.  Historically the order was simply *increasing
//! variable identifier* (whatever the forward reduction's dense renumbering
//! produced) regardless of relation sizes.  This module chooses the order
//! per disjunct from cheap statistics available at batch-build time:
//!
//! * **per-variable minimum atom cardinality** — the smallest relation
//!   containing the variable bounds that variable's candidate fan-out from
//!   above, so small-minimum variables are cheap to bind first;
//! * **vertex degree** ([`ij_widths::vertex_degrees`] over
//!   [`hypergraph_of`]) — between equally small variables, the one touching
//!   more atoms constrains more of the query per candidate;
//! * **connectivity** — after the first variable, only variables sharing an
//!   atom with the chosen prefix are considered (a disconnected pick would
//!   interpose an unconstrained cross product), falling back to a global
//!   pick only when the remainder is genuinely disconnected.
//!
//! The result is a [`DisjunctPlan`]: the variable order plus the
//! [`KernelChoices`] the runtime dispatch resolved to (recorded so an
//! evaluation's stats show which intersection kernels actually served it).
//! Planning never changes answers — any variable order enumerates the same
//! relation — and the plan is computed *before* trie construction, so the
//! per-atom trie cache keys (which embed the induced level order) stay
//! consistent between plans: two disjuncts planned to the same order share
//! cached tries exactly as before.
//!
//! [`PlanMode`] selects the behaviour per evaluation
//! ([`EvalContext::plan_mode`](crate::EvalContext), surfaced as
//! `EngineConfig::plan_mode`): [`PlanMode::Adaptive`] (default) runs the
//! planner; [`PlanMode::Fixed`] reproduces the historical
//! identifier-ordered behaviour bit for bit.

use crate::atom::{all_vars, hypergraph_of, BoundAtom};
use crate::cache::EvalContext;
use ij_hypergraph::VarId;
use ij_relation::kernels::{self, KernelArm};
use ij_relation::sync::lock_recover;

/// Lock class of the deduplicated planned-orders list (`sync::lock_order`);
/// a leaf: nothing else is acquired while it is held.
const PLAN_ACTIVITY: &str = "plan-activity";
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// How the engine chooses each disjunct's variable order.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PlanMode {
    /// Process variables in increasing identifier order (the dense order the
    /// forward reduction assigns by first occurrence) — the historical
    /// behaviour, kept as the differential baseline.
    Fixed,
    /// Plan each disjunct's order from cardinality/degree statistics at
    /// batch-build time (see the module docs).  Answers are identical to
    /// [`PlanMode::Fixed`]; only the search order (and thus the work)
    /// changes.
    #[default]
    Adaptive,
}

impl PlanMode {
    /// A short lowercase label (`"fixed"` / `"adaptive"`).
    pub fn as_str(self) -> &'static str {
        match self {
            PlanMode::Fixed => "fixed",
            PlanMode::Adaptive => "adaptive",
        }
    }
}

impl std::fmt::Display for PlanMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The intersection-kernel configuration a plan runs under.  Resolved from
/// the process-wide dispatch (not chosen per disjunct — the dispatch is
/// uniform per process), recorded in the plan so stats can report it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KernelChoices {
    /// The dispatch arm serving the sorted-run kernels
    /// ([`ij_relation::kernels::kernel_arm`]).
    pub arm: KernelArm,
    /// The linear-probe span of the galloping seek
    /// ([`ij_relation::kernels::GALLOP_LINEAR_SPAN`]).
    pub gallop_linear_span: usize,
}

impl KernelChoices {
    /// The choices the current process resolved to.
    pub fn current() -> Self {
        KernelChoices {
            arm: kernels::kernel_arm(),
            gallop_linear_span: kernels::GALLOP_LINEAR_SPAN,
        }
    }
}

/// One disjunct's evaluation plan: the variable order the generic join will
/// follow and the kernel configuration it will run under.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DisjunctPlan {
    /// The variable order (every distinct variable of the disjunct's atoms,
    /// any pinned output prefix first).
    pub var_order: Vec<VarId>,
    /// The kernel configuration recorded at plan time.
    pub kernel_choices: KernelChoices,
}

/// Evaluation-local planning ledger, mirroring `CacheActivity`: the engine
/// hangs one off the [`EvalContext`] so concurrent evaluations sharing a
/// workspace still report exact per-evaluation planning stats.
#[derive(Debug, Default)]
pub struct PlanActivity {
    nanos: AtomicU64,
    plans: AtomicUsize,
    orders: Mutex<Vec<Vec<VarId>>>,
}

impl PlanActivity {
    /// A fresh ledger with all counters zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one planned disjunct: the time it took and its chosen order
    /// (deduplicated — batches of isomorphic disjuncts plan the same order).
    pub fn record(&self, plan: &DisjunctPlan, nanos: u64) {
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
        self.plans.fetch_add(1, Ordering::Relaxed);
        let mut orders = lock_recover(&self.orders, PLAN_ACTIVITY);
        if !orders.contains(&plan.var_order) {
            orders.push(plan.var_order.clone());
        }
    }

    /// Total time spent planning, in nanoseconds.
    pub fn planning_nanos(&self) -> u64 {
        self.nanos.load(Ordering::Relaxed)
    }

    /// Number of disjuncts planned.
    pub fn plans(&self) -> usize {
        self.plans.load(Ordering::Relaxed)
    }

    /// The distinct variable orders chosen, in first-seen order.
    pub fn orders(&self) -> Vec<Vec<VarId>> {
        lock_recover(&self.orders, PLAN_ACTIVITY).clone()
    }
}

/// The historical fixed order: `prefix` first (as given), then every
/// remaining distinct variable in increasing identifier order.
pub fn fixed_var_order(atoms: &[BoundAtom<'_>], prefix: &[VarId]) -> Vec<VarId> {
    let mut order: Vec<VarId> = prefix.to_vec();
    for v in all_vars(atoms) {
        if !order.contains(&v) {
            order.push(v);
        }
    }
    order
}

/// Plans a variable order for one disjunct: `prefix` is pinned first (the
/// enumeration path pins its output variables so results can stream without
/// buffering full assignments; pass `&[]` for Boolean queries), then the
/// remaining variables are ordered greedily — repeatedly take the variable
/// with the smallest minimum containing-atom cardinality among those
/// connected to the chosen prefix, breaking ties by descending degree, then
/// by identifier.  `O(vars² · atoms)` on hypergraphs whose sizes are query
/// sizes, so planning cost is noise next to a single trie build.
pub fn plan_var_order(atoms: &[BoundAtom<'_>], prefix: &[VarId]) -> Vec<VarId> {
    let vars = all_vars(atoms);
    // Cheap statistics, one pass over the atoms.
    let (h, dense) = hypergraph_of(atoms);
    let degrees = ij_widths::vertex_degrees(&h);
    let stat = |v: VarId| -> (usize, usize) {
        let min_card = atoms
            .iter()
            .filter(|a| a.vars.contains(&v))
            .map(|a| a.relation.len())
            .min()
            .unwrap_or(usize::MAX);
        let degree = dense
            .iter()
            .position(|&u| u == v)
            .map(|i| degrees[i])
            .unwrap_or(0);
        (min_card, degree)
    };
    let mut order: Vec<VarId> = Vec::with_capacity(vars.len());
    for &v in prefix {
        if !order.contains(&v) {
            order.push(v);
        }
    }
    let mut remaining: Vec<VarId> = vars
        .iter()
        .copied()
        .filter(|v| !order.contains(v))
        .collect();
    while !remaining.is_empty() {
        // Variables sharing an atom with the chosen prefix; all of them on
        // the first pick (or when the residual query is disconnected).
        let connected: Vec<VarId> = if order.is_empty() {
            remaining.clone()
        } else {
            let linked: Vec<VarId> = remaining
                .iter()
                .copied()
                .filter(|&v| {
                    atoms
                        .iter()
                        .any(|a| a.vars.contains(&v) && a.vars.iter().any(|u| order.contains(u)))
                })
                .collect();
            if linked.is_empty() {
                remaining.clone()
            } else {
                linked
            }
        };
        let &best = connected
            .iter()
            .min_by_key(|&&v| {
                let (min_card, degree) = stat(v);
                // Smallest bound first; more-constraining (higher-degree)
                // first among equals; identifier last for determinism.
                (min_card, usize::MAX - degree, v)
            })
            .expect("connected set is non-empty");
        order.push(best);
        remaining.retain(|&v| v != best);
    }
    order
}

/// Resolves the variable order one disjunct will run under, honouring the
/// context's [`PlanMode`] and recording into its [`PlanActivity`] (when one
/// is attached).  This is the single entry point both join paths use:
/// Boolean evaluation passes an empty prefix, enumeration pins its output
/// variables.
pub(crate) fn resolve_order(
    atoms: &[BoundAtom<'_>],
    prefix: &[VarId],
    eval: EvalContext<'_>,
) -> Vec<VarId> {
    match eval.plan_mode {
        PlanMode::Fixed => fixed_var_order(atoms, prefix),
        PlanMode::Adaptive => {
            let start = Instant::now();
            let plan = DisjunctPlan {
                var_order: plan_var_order(atoms, prefix),
                kernel_choices: KernelChoices::current(),
            };
            if let Some(activity) = eval.planning {
                activity.record(&plan, start.elapsed().as_nanos() as u64);
            }
            plan.var_order
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_relation::{Relation, Value};

    fn rel(name: &str, n: usize, arity: usize) -> Relation {
        Relation::from_tuples(
            name,
            arity,
            (0..n)
                .map(|i| {
                    (0..arity)
                        .map(|c| Value::point((i * arity + c) as f64))
                        .collect()
                })
                .collect(),
        )
    }

    const A: VarId = 0;
    const B: VarId = 1;
    const C: VarId = 2;

    #[test]
    fn fixed_order_is_prefix_then_increasing_ids() {
        let r = rel("R", 3, 2);
        let s = rel("S", 5, 2);
        let atoms = vec![
            BoundAtom::new(&r, vec![C, A]),
            BoundAtom::new(&s, vec![B, C]),
        ];
        assert_eq!(fixed_var_order(&atoms, &[]), vec![A, B, C]);
        assert_eq!(fixed_var_order(&atoms, &[C]), vec![C, A, B]);
    }

    #[test]
    fn adaptive_order_starts_at_the_smallest_variable() {
        // B only occurs in large atoms; A and C each touch the small T.
        let r = rel("R", 100, 2); // R(B, A)
        let s = rel("S", 100, 2); // S(B, C)
        let t = rel("T", 4, 2); // T(A, C)
        let atoms = vec![
            BoundAtom::new(&r, vec![B, A]),
            BoundAtom::new(&s, vec![B, C]),
            BoundAtom::new(&t, vec![A, C]),
        ];
        let order = plan_var_order(&atoms, &[]);
        // A and C (min card 4) before B (min card 100); fixed order would
        // have started at A but continued B before C.
        assert_eq!(order, vec![A, C, B]);
    }

    #[test]
    fn adaptive_order_stays_connected() {
        // Two components: tiny {D, E} and large {A, B}.  After picking from
        // the tiny component the planner must finish it before jumping.
        let d: VarId = 3;
        let e: VarId = 4;
        let big = rel("Big", 50, 2);
        let tiny = rel("Tiny", 2, 2);
        let atoms = vec![
            BoundAtom::new(&big, vec![A, B]),
            BoundAtom::new(&tiny, vec![d, e]),
        ];
        let order = plan_var_order(&atoms, &[]);
        assert_eq!(order, vec![d, e, A, B]);
    }

    #[test]
    fn degree_breaks_cardinality_ties() {
        // All atoms the same size; B occurs in two atoms, A and C in one
        // each — B binds first.
        let r = rel("R", 10, 2);
        let s = rel("S", 10, 2);
        let atoms = vec![
            BoundAtom::new(&r, vec![A, B]),
            BoundAtom::new(&s, vec![B, C]),
        ];
        assert_eq!(plan_var_order(&atoms, &[])[0], B);
    }

    #[test]
    fn prefix_is_pinned_verbatim() {
        let r = rel("R", 100, 2);
        let s = rel("S", 2, 2);
        let atoms = vec![
            BoundAtom::new(&r, vec![A, B]),
            BoundAtom::new(&s, vec![B, C]),
        ];
        let order = plan_var_order(&atoms, &[A, B]);
        assert_eq!(&order[..2], &[A, B]);
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn plan_activity_dedups_orders() {
        let activity = PlanActivity::new();
        let plan = DisjunctPlan {
            var_order: vec![A, B],
            kernel_choices: KernelChoices::current(),
        };
        activity.record(&plan, 10);
        activity.record(&plan, 5);
        assert_eq!(activity.plans(), 2);
        assert_eq!(activity.planning_nanos(), 15);
        assert_eq!(activity.orders(), vec![vec![A, B]]);
    }
}
