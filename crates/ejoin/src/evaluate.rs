//! Strategy selection for Boolean equality-join evaluation.
//!
//! * α-acyclic queries run Yannakakis' algorithm (linear time);
//! * cyclic queries run the width-guided evaluation: compute an optimal
//!   fractional hypertree decomposition, materialise every bag with the
//!   generic worst-case-optimal join, then run Yannakakis over the bag
//!   relations (the recipe of Appendix A.2.1, giving `O(N^{fhtw} log N)`);
//! * the plain generic join over the whole query is available as a fallback
//!   and for ablation benchmarks.

use crate::atom::{hypergraph_of, BoundAtom};
use crate::cache::EvalContext;
use crate::generic::{generic_join_boolean_with, generic_join_enumerate_with};
use crate::yannakakis::yannakakis_boolean;
use ij_hypergraph::VarId;
use ij_relation::{EvalError, Relation};
use ij_widths::{optimal_tree_decomposition, MAX_DP_VERTICES};

/// The evaluation strategy for Boolean EJ queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EjStrategy {
    /// Pick automatically: Yannakakis when acyclic, otherwise the
    /// decomposition-guided evaluation (falling back to the generic join when
    /// the query has too many variables for the exact decomposition DP).
    #[default]
    Auto,
    /// Force Yannakakis (returns an error for cyclic queries).
    Yannakakis,
    /// Force the plain generic worst-case-optimal join.
    GenericJoin,
    /// Force the decomposition-guided evaluation.
    Decomposition,
}

/// Evaluates a Boolean conjunctive query with equality joins.
///
/// For the `Auto` and `Decomposition` strategies, variables occurring in only
/// one atom are projected away first (they are existential and impose no join
/// condition); this mirrors the "drop singleton variables" step the paper
/// applies analytically in Appendix E.4/F and keeps the per-query
/// decomposition work proportional to the join structure rather than the
/// schema width.
pub fn evaluate_ej_boolean(atoms: &[BoundAtom<'_>], strategy: EjStrategy) -> bool {
    evaluate_ej_boolean_with(atoms, strategy, EvalContext::default())
        .expect("tokenless evaluations cannot be cancelled")
}

/// [`evaluate_ej_boolean`] with an explicit [`EvalContext`]: every trie built
/// anywhere under the chosen strategy (the plain generic join, and the bag
/// materialisations of the decomposition-guided evaluation) is served from
/// the context's cache and sharded per its shard count — and every cache
/// lookup is metered as the context's tenant and counted into the context's
/// evaluation-local [`CacheActivity`](crate::CacheActivity) accumulator, if
/// one is attached.  The answer is identical for every context.
///
/// # Errors
///
/// Propagates the [`EvalError`] of any trie build or join search under the
/// chosen strategy when the context's
/// [`CancellationToken`](ij_relation::CancellationToken) fires or a build
/// worker panics.  Tokenless contexts never fail.
pub fn evaluate_ej_boolean_with(
    atoms: &[BoundAtom<'_>],
    strategy: EjStrategy,
    eval: EvalContext<'_>,
) -> Result<bool, EvalError> {
    match strategy {
        EjStrategy::Auto | EjStrategy::Decomposition => {
            if atoms.is_empty() {
                return Ok(true);
            }
            if atoms.iter().any(|a| a.relation.is_empty()) {
                return Ok(false);
            }
            let (relations, varsets) = project_singleton_variables(atoms);
            let projected: Vec<BoundAtom<'_>> = relations
                .iter()
                .zip(&varsets)
                .map(|(rel, vars)| BoundAtom::new(rel, vars.clone()))
                .collect();
            if strategy == EjStrategy::Auto {
                if let Some(answer) = yannakakis_boolean(&projected) {
                    Ok(answer)
                } else if hypergraph_of(&projected).0.num_vertices() <= MAX_DP_VERTICES {
                    decomposition_boolean_with(&projected, eval)
                } else {
                    generic_join_boolean_with(&projected, None, eval)
                }
            } else {
                decomposition_boolean_with(&projected, eval)
            }
        }
        EjStrategy::Yannakakis => {
            Ok(yannakakis_boolean(atoms)
                .expect("Yannakakis strategy requires an alpha-acyclic query"))
        }
        EjStrategy::GenericJoin => generic_join_boolean_with(atoms, None, eval),
    }
}

/// Projects every atom onto its variables that occur in at least two atoms.
/// Variables private to a single atom are existential in a Boolean query, so
/// dropping their columns (and deduplicating) preserves the answer; an atom
/// whose variables are all private degenerates to a non-emptiness check
/// (arity-0 relation with a single empty tuple).
fn project_singleton_variables(atoms: &[BoundAtom<'_>]) -> (Vec<Relation>, Vec<Vec<VarId>>) {
    use std::collections::HashMap;
    let mut atom_count: HashMap<VarId, usize> = HashMap::new();
    for atom in atoms {
        for v in atom.var_set() {
            *atom_count.entry(v).or_insert(0) += 1;
        }
    }
    let mut relations = Vec::with_capacity(atoms.len());
    let mut varsets = Vec::with_capacity(atoms.len());
    for atom in atoms {
        // First column of each shared variable.
        let mut cols: Vec<usize> = Vec::new();
        let mut vars: Vec<VarId> = Vec::new();
        for (c, &v) in atom.vars.iter().enumerate() {
            if atom_count[&v] >= 2 && !vars.contains(&v) {
                vars.push(v);
                cols.push(c);
            }
        }
        let mut projected = atom
            .relation
            .project(&cols, atom.relation.name().to_string());
        projected.dedup();
        relations.push(projected);
        varsets.push(vars);
    }
    (relations, varsets)
}

/// Width-guided evaluation: materialise the bags of an optimal fractional
/// hypertree decomposition with the generic join, then run Yannakakis over
/// the (acyclic) bag query.
pub fn decomposition_boolean(atoms: &[BoundAtom<'_>]) -> bool {
    decomposition_boolean_with(atoms, EvalContext::default())
        .expect("tokenless evaluations cannot be cancelled")
}

/// [`decomposition_boolean`] with an explicit [`EvalContext`] threaded into
/// every bag materialisation (and the generic-join fallback).
///
/// # Errors
///
/// Propagates any bag materialisation's [`EvalError`] — a cancelled bag would
/// under-approximate the join, so the whole evaluation fails instead.
pub fn decomposition_boolean_with(
    atoms: &[BoundAtom<'_>],
    eval: EvalContext<'_>,
) -> Result<bool, EvalError> {
    if atoms.is_empty() {
        return Ok(true);
    }
    if atoms.iter().any(|a| a.relation.is_empty()) {
        return Ok(false);
    }
    let (h, dense_to_caller) = hypergraph_of(atoms);
    // The reduction of a single IJ query evaluates many EJ disjuncts sharing
    // a handful of hypergraph shapes; memoise the (purely structural) optimal
    // decomposition per shape so the subset DP and its LPs run once per shape
    // rather than once per disjunct.  The cache is process-global (not
    // thread-local) so the short-lived workers of the parallel disjunct
    // evaluation share it instead of each recomputing the decompositions.
    let td = {
        use std::collections::HashMap;
        use std::sync::{OnceLock, RwLock};
        type TdCache = RwLock<HashMap<Vec<Vec<usize>>, ij_widths::TreeDecomposition>>;
        static TD_CACHE: OnceLock<TdCache> = OnceLock::new();
        let cache = TD_CACHE.get_or_init(|| RwLock::new(HashMap::new()));
        let key: Vec<Vec<usize>> = h
            .edges()
            .iter()
            .map(|e| e.vertices.iter().copied().collect())
            .collect();
        let cached = cache
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(&key)
            .cloned();
        match cached {
            Some(td) => td,
            None => {
                let td = optimal_tree_decomposition(&h);
                cache
                    .write()
                    .unwrap_or_else(|e| e.into_inner())
                    .entry(key)
                    .or_insert_with(|| td.clone());
                td
            }
        }
    };

    // Materialise every bag over the caller's variable identifiers.
    let bags: Vec<(Relation, Vec<VarId>)> = td
        .bags
        .iter()
        .enumerate()
        .map(|(i, bag)| {
            let bag_vars: Vec<VarId> = bag.iter().map(|&dense| dense_to_caller[dense]).collect();
            Ok((
                materialise_bag_with(atoms, &bag_vars, &format!("bag{i}"), eval)?,
                bag_vars,
            ))
        })
        .collect::<Result<_, EvalError>>()?;
    if bags
        .iter()
        .any(|(rel, vars)| rel.is_empty() && !vars.is_empty())
    {
        return Ok(false);
    }

    // The bag query is acyclic by construction; evaluate it with Yannakakis.
    let bag_atoms: Vec<BoundAtom<'_>> = bags
        .iter()
        .map(|(rel, vars)| BoundAtom::new(rel, vars.clone()))
        .collect();
    match yannakakis_boolean(&bag_atoms) {
        Some(answer) => Ok(answer),
        None => generic_join_boolean_with(&bag_atoms, None, eval),
    }
}

/// Materialises one bag: the join of the projections of every overlapping
/// atom onto the bag (atoms fully contained in the bag are enforced exactly;
/// the others act as semijoin filters).
pub fn materialise_bag(atoms: &[BoundAtom<'_>], bag_vars: &[VarId], name: &str) -> Relation {
    materialise_bag_with(atoms, bag_vars, name, EvalContext::default())
        .expect("tokenless evaluations cannot be cancelled")
}

/// [`materialise_bag`] with an explicit [`EvalContext`] for the underlying
/// generic-join enumeration.  The projections computed here are deterministic
/// functions of the atoms and the bag, so when the same bag recurs across the
/// disjuncts of a reduction, the context's cache serves the projection tries
/// without rebuilding them.
///
/// # Errors
///
/// Propagates the underlying enumeration's [`EvalError`] (cancellation,
/// deadline expiry, or a trie-build worker panic).
pub fn materialise_bag_with(
    atoms: &[BoundAtom<'_>],
    bag_vars: &[VarId],
    name: &str,
    eval: EvalContext<'_>,
) -> Result<Relation, EvalError> {
    // Project each overlapping atom onto the bag.
    let mut projected: Vec<(Relation, Vec<VarId>)> = Vec::new();
    for atom in atoms {
        let keep: Vec<usize> = (0..atom.vars.len())
            .filter(|&c| bag_vars.contains(&atom.vars[c]))
            .collect();
        if keep.is_empty() {
            continue;
        }
        // Deduplicate columns bound to the same variable.
        let mut cols: Vec<usize> = Vec::new();
        let mut seen: Vec<VarId> = Vec::new();
        for &c in &keep {
            if !seen.contains(&atom.vars[c]) {
                seen.push(atom.vars[c]);
                cols.push(c);
            }
        }
        let mut proj = atom
            .relation
            .project(&cols, format!("{}|{name}", atom.relation.name()));
        proj.dedup();
        let proj_vars: Vec<VarId> = cols.iter().map(|&c| atom.vars[c]).collect();
        projected.push((proj, proj_vars));
    }
    let proj_atoms: Vec<BoundAtom<'_>> = projected
        .iter()
        .map(|(rel, vars)| BoundAtom::new(rel, vars.clone()))
        .collect();
    generic_join_enumerate_with(&proj_atoms, bag_vars, name, eval)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_relation::{Relation, Value};

    fn rel(name: &str, rows: Vec<Vec<f64>>) -> Relation {
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        Relation::from_tuples(
            name,
            arity,
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::point).collect())
                .collect(),
        )
    }

    const A: VarId = 0;
    const B: VarId = 1;
    const C: VarId = 2;
    const D: VarId = 3;

    fn triangle_atoms<'a>(r: &'a Relation, s: &'a Relation, t: &'a Relation) -> Vec<BoundAtom<'a>> {
        vec![
            BoundAtom::new(r, vec![A, B]),
            BoundAtom::new(s, vec![B, C]),
            BoundAtom::new(t, vec![A, C]),
        ]
    }

    #[test]
    fn all_strategies_agree_on_the_triangle() {
        let r = rel("R", vec![vec![1.0, 2.0], vec![5.0, 6.0], vec![1.0, 6.0]]);
        let s = rel("S", vec![vec![2.0, 3.0], vec![6.0, 7.0]]);
        let t = rel("T", vec![vec![1.0, 3.0], vec![5.0, 9.0]]);
        let atoms = triangle_atoms(&r, &s, &t);
        let expected = true;
        assert_eq!(evaluate_ej_boolean(&atoms, EjStrategy::Auto), expected);
        assert_eq!(
            evaluate_ej_boolean(&atoms, EjStrategy::GenericJoin),
            expected
        );
        assert_eq!(
            evaluate_ej_boolean(&atoms, EjStrategy::Decomposition),
            expected
        );
    }

    #[test]
    fn decomposition_handles_negative_instances() {
        let r = rel("R", vec![vec![1.0, 2.0]]);
        let s = rel("S", vec![vec![2.0, 3.0]]);
        let t = rel("T", vec![vec![4.0, 3.0]]);
        let atoms = triangle_atoms(&r, &s, &t);
        assert!(!evaluate_ej_boolean(&atoms, EjStrategy::Decomposition));
        assert!(!evaluate_ej_boolean(&atoms, EjStrategy::Auto));
        assert!(!evaluate_ej_boolean(&atoms, EjStrategy::GenericJoin));
    }

    #[test]
    fn acyclic_queries_use_yannakakis_in_auto_mode() {
        let r = rel("R", vec![vec![1.0, 2.0]]);
        let s = rel("S", vec![vec![2.0, 3.0]]);
        let atoms = vec![
            BoundAtom::new(&r, vec![A, B]),
            BoundAtom::new(&s, vec![B, C]),
        ];
        assert!(evaluate_ej_boolean(&atoms, EjStrategy::Auto));
        assert!(evaluate_ej_boolean(&atoms, EjStrategy::Yannakakis));
    }

    #[test]
    fn materialise_bag_computes_the_projection_join() {
        // Bag {A, B, C} of the triangle: the classic ABC join of the three
        // binary projections.
        let r = rel("R", vec![vec![1.0, 2.0], vec![1.0, 9.0]]);
        let s = rel("S", vec![vec![2.0, 3.0]]);
        let t = rel("T", vec![vec![1.0, 3.0]]);
        let atoms = triangle_atoms(&r, &s, &t);
        let bag = materialise_bag(&atoms, &[A, B, C], "bag");
        assert_eq!(bag.len(), 1);
        assert_eq!(
            bag.tuples()[0],
            vec![Value::point(1.0), Value::point(2.0), Value::point(3.0)]
        );
    }

    #[test]
    fn four_cycle_agreement_between_strategies() {
        // R(A,B) ∧ S(B,C) ∧ T(C,D) ∧ U(D,A) on small random-ish data.
        let mut seed = 7u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) % 5) as f64
        };
        for _ in 0..30 {
            let rows = |n: usize, next: &mut dyn FnMut() -> f64| {
                (0..n).map(|_| vec![next(), next()]).collect::<Vec<_>>()
            };
            let r = rel("R", rows(5, &mut next));
            let s = rel("S", rows(5, &mut next));
            let t = rel("T", rows(5, &mut next));
            let u = rel("U", rows(5, &mut next));
            let atoms = vec![
                BoundAtom::new(&r, vec![A, B]),
                BoundAtom::new(&s, vec![B, C]),
                BoundAtom::new(&t, vec![C, D]),
                BoundAtom::new(&u, vec![D, A]),
            ];
            let generic = evaluate_ej_boolean(&atoms, EjStrategy::GenericJoin);
            let decomp = evaluate_ej_boolean(&atoms, EjStrategy::Decomposition);
            let auto = evaluate_ej_boolean(&atoms, EjStrategy::Auto);
            assert_eq!(generic, decomp);
            assert_eq!(generic, auto);
        }
    }

    #[test]
    fn empty_inputs() {
        assert!(evaluate_ej_boolean(&[], EjStrategy::Auto));
        assert!(evaluate_ej_boolean(&[], EjStrategy::Decomposition));
        let empty = Relation::new("R", 1);
        let atoms = vec![BoundAtom::new(&empty, vec![A])];
        assert!(!evaluate_ej_boolean(&atoms, EjStrategy::Auto));
        assert!(!evaluate_ej_boolean(&atoms, EjStrategy::Decomposition));
    }
}
