//! Atoms bound to relations.
//!
//! The equality-join engine is independent of the query AST: callers pass a
//! list of [`BoundAtom`]s, each binding the columns of a relation to global
//! variable identifiers.  The same variable may occur in several atoms (that
//! is the join) and several times within one atom (a filter).

use ij_hypergraph::{Hypergraph, VarId};
use ij_relation::Relation;
use std::collections::BTreeSet;

/// A relation whose columns are bound to global variables.
#[derive(Debug, Clone)]
pub struct BoundAtom<'a> {
    /// The relation holding the data.
    pub relation: &'a Relation,
    /// For every column of the relation, the global variable it binds.
    pub vars: Vec<VarId>,
}

impl<'a> BoundAtom<'a> {
    /// Creates a bound atom.
    ///
    /// # Panics
    ///
    /// Panics if the number of variables differs from the relation arity.
    pub fn new(relation: &'a Relation, vars: Vec<VarId>) -> Self {
        assert_eq!(
            relation.arity(),
            vars.len(),
            "column/variable count mismatch"
        );
        BoundAtom { relation, vars }
    }

    /// The distinct variables of the atom (sorted).
    pub fn var_set(&self) -> BTreeSet<VarId> {
        self.vars.iter().copied().collect()
    }
}

/// The set of distinct variables across all atoms (sorted).
pub fn all_vars(atoms: &[BoundAtom<'_>]) -> Vec<VarId> {
    let mut vars: BTreeSet<VarId> = BTreeSet::new();
    for a in atoms {
        vars.extend(a.vars.iter().copied());
    }
    vars.into_iter().collect()
}

/// Builds the (EJ) hypergraph of a set of bound atoms.  Variables are
/// renumbered densely; the returned vector maps dense vertex identifiers back
/// to the caller's variable identifiers.
pub fn hypergraph_of(atoms: &[BoundAtom<'_>]) -> (Hypergraph, Vec<VarId>) {
    let vars = all_vars(atoms);
    let mut h = Hypergraph::new();
    for &v in &vars {
        h.add_point_var(format!("v{v}"));
    }
    let index_of = |v: VarId| vars.binary_search(&v).expect("variable present");
    for (i, a) in atoms.iter().enumerate() {
        let vs: Vec<usize> = a.var_set().iter().map(|&v| index_of(v)).collect();
        h.add_edge(format!("{}#{i}", a.relation.name()), vs);
    }
    (h, vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_relation::{Relation, Value};

    fn rel(name: &str, arity: usize, rows: Vec<Vec<f64>>) -> Relation {
        Relation::from_tuples(
            name,
            arity,
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::point).collect())
                .collect(),
        )
    }

    #[test]
    fn bound_atom_tracks_vars() {
        let r = rel("R", 2, vec![vec![1.0, 2.0]]);
        let atom = BoundAtom::new(&r, vec![7, 3]);
        assert_eq!(atom.var_set(), [3, 7].into_iter().collect());
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn arity_mismatch_panics() {
        let r = rel("R", 2, vec![]);
        let _ = BoundAtom::new(&r, vec![0]);
    }

    #[test]
    fn hypergraph_of_atoms_renumbers_densely() {
        let r = rel("R", 2, vec![]);
        let s = rel("S", 2, vec![]);
        let atoms = vec![
            BoundAtom::new(&r, vec![10, 20]),
            BoundAtom::new(&s, vec![20, 30]),
        ];
        assert_eq!(all_vars(&atoms), vec![10, 20, 30]);
        let (h, back) = hypergraph_of(&atoms);
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 2);
        assert_eq!(back, vec![10, 20, 30]);
    }
}
