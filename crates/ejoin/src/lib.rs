//! The equality-join engine.
//!
//! The forward reduction turns an intersection-join query into a disjunction
//! of Boolean conjunctive queries with equality joins; this crate evaluates
//! those queries:
//!
//! * [`generic_join_boolean`] / [`generic_join_enumerate`] — the generic
//!   worst-case-optimal join (attribute-at-a-time over per-atom tries),
//!   following Ngo–Porat–Ré–Rudra \[27\] and Leapfrog Triejoin \[34\].  Tries
//!   come in two layouts ([`TrieLayout`]): hash-map nodes ([`AtomTrie`], the
//!   behavioural reference) and flat CSR sorted arrays ([`FlatTrie`]) whose
//!   candidate intersection is a galloping leapfrog over sorted runs;
//! * [`yannakakis_boolean`] — Yannakakis' linear-time algorithm for
//!   α-acyclic Boolean queries \[35\];
//! * [`decomposition_boolean`] — the width-guided evaluation of
//!   Appendix A.2.1: materialise the bags of an optimal fractional hypertree
//!   decomposition with the generic join, then run Yannakakis over the bag
//!   tree (runtime `O(N^{fhtw} · polylog N)`);
//! * [`evaluate_ej_boolean`] — strategy dispatch ([`EjStrategy`]).
//!
//! Relations are bound to query variables through [`BoundAtom`]; the engine
//! is agnostic to whether the values are numbers or the bitstrings produced
//! by the reduction.
//!
//! # Shared tries and sharded builds
//!
//! The `*_with` entry points ([`evaluate_ej_boolean_with`], …) take an
//! [`EvalContext`] carrying an optional [`TrieCache`] — so the disjuncts of
//! one reduction share built tries instead of rebuilding them — and a trie
//! shard count: atoms containing the first join variable are built as
//! hash-partitioned sub-tries on scoped threads and the search fans out
//! shard by shard ([`AtomTrie::build_sharded`], or its flat-layout twin
//! [`FlatTrie::build_sharded`]).  Answers are bit-identical for every
//! cache/shard/layout setting.
//!
//! The context also carries the cache-accounting identity: a [`TenantId`]
//! metering every lookup into a per-tenant ledger (with optional per-tenant
//! byte quotas — [`TrieCache::set_tenant_quota`]), and an optional
//! [`CacheActivity`] accumulator giving the evaluation **exact** local
//! hit/miss/eviction counts under any concurrency.
//!
//! # Cancellation and fault isolation
//!
//! The context finally carries an optional
//! [`CancellationToken`](ij_relation::CancellationToken): trie builds and
//! the candidate-intersection loops poll it at a bounded interval, so the
//! fallible `*_with` entry points return
//! [`EvalError`](ij_relation::EvalError)`::Cancelled` /
//! `DeadlineExceeded` promptly instead of running to completion.  Sharded
//! build workers run panic-isolated (`catch_unwind`); a panicking worker
//! cancels its siblings and surfaces as `EvalError::WorkerPanicked` without
//! poisoning the shared cache (see `ij_relation::sync`).

#![warn(missing_docs)]

mod atom;
mod cache;
mod evaluate;
mod flat;
mod generic;
pub mod plan;
mod trie;
mod yannakakis;

pub use atom::{all_vars, hypergraph_of, BoundAtom};
pub use cache::{
    relation_fingerprint, CacheActivity, EvalContext, TenantCacheStats, TenantHandle, TenantId,
    TrieCache, TrieCacheStats,
};
pub use evaluate::{
    decomposition_boolean, decomposition_boolean_with, evaluate_ej_boolean,
    evaluate_ej_boolean_with, materialise_bag, materialise_bag_with, EjStrategy,
};
pub use flat::{FlatTrie, TrieBuild, TrieLayout, FLAT_MIN_ROWS};
pub use generic::{
    generic_join_boolean, generic_join_boolean_with, generic_join_enumerate,
    generic_join_enumerate_with, semijoin,
};
pub use plan::{
    fixed_var_order, plan_var_order, DisjunctPlan, KernelChoices, PlanActivity, PlanMode,
};
pub use trie::{effective_shard_count, shard_of, AtomTrie, TrieNode, MIN_ROWS_PER_SHARD};
pub use yannakakis::yannakakis_boolean;
