//! The equality-join engine.
//!
//! The forward reduction turns an intersection-join query into a disjunction
//! of Boolean conjunctive queries with equality joins; this crate evaluates
//! those queries:
//!
//! * [`generic_join_boolean`] / [`generic_join_enumerate`] — the generic
//!   worst-case-optimal join (attribute-at-a-time with hash tries), following
//!   Ngo–Porat–Ré–Rudra [27] and Leapfrog Triejoin [34];
//! * [`yannakakis_boolean`] — Yannakakis' linear-time algorithm for
//!   α-acyclic Boolean queries [35];
//! * [`decomposition_boolean`] — the width-guided evaluation of
//!   Appendix A.2.1: materialise the bags of an optimal fractional hypertree
//!   decomposition with the generic join, then run Yannakakis over the bag
//!   tree (runtime `O(N^{fhtw} · polylog N)`);
//! * [`evaluate_ej_boolean`] — strategy dispatch ([`EjStrategy`]).
//!
//! Relations are bound to query variables through [`BoundAtom`]; the engine
//! is agnostic to whether the values are numbers or the bitstrings produced
//! by the reduction.

mod atom;
mod evaluate;
mod generic;
mod trie;
mod yannakakis;

pub use atom::{all_vars, hypergraph_of, BoundAtom};
pub use evaluate::{decomposition_boolean, evaluate_ej_boolean, materialise_bag, EjStrategy};
pub use generic::{generic_join_boolean, generic_join_enumerate, semijoin};
pub use trie::{AtomTrie, TrieNode};
pub use yannakakis::yannakakis_boolean;
