//! Hash tries over relations, keyed by a global variable order.
//!
//! The generic worst-case-optimal join processes one variable at a time; each
//! atom is indexed as a trie whose levels are the atom's variables sorted by
//! the global variable order.  Repeated variables within an atom are checked
//! at insertion time (tuples whose repeated columns disagree are filtered
//! out) so the trie has one level per *distinct* variable.

use crate::BoundAtom;
use ij_hypergraph::VarId;
use ij_relation::Value;
use std::collections::HashMap;

/// One node of a hash trie.
#[derive(Debug, Default)]
pub struct TrieNode {
    children: HashMap<Value, TrieNode>,
}

impl TrieNode {
    /// The child for a value, if present.
    pub fn child(&self, v: &Value) -> Option<&TrieNode> {
        self.children.get(v)
    }

    /// Number of children.
    pub fn fanout(&self) -> usize {
        self.children.len()
    }

    /// Iterates over the children.
    pub fn children(&self) -> impl Iterator<Item = (&Value, &TrieNode)> {
        self.children.iter()
    }

    fn insert_path(&mut self, values: &[Value]) {
        if let Some((first, rest)) = values.split_first() {
            self.children.entry(*first).or_default().insert_path(rest);
        }
    }
}

/// A trie over one atom, with levels ordered by the global variable order.
#[derive(Debug)]
pub struct AtomTrie {
    /// The atom's distinct variables in global order — the trie levels.
    pub level_vars: Vec<VarId>,
    root: TrieNode,
}

impl AtomTrie {
    /// Builds the trie of `atom` with levels sorted according to
    /// `global_order` (a total order over all query variables, e.g. the
    /// elimination order of the chosen decomposition).
    pub fn build(atom: &BoundAtom<'_>, global_order: &[VarId]) -> Self {
        let position = |v: VarId| {
            global_order.iter().position(|&u| u == v).expect("variable missing from global order")
        };
        // Distinct variables of the atom in global order.
        let mut level_vars: Vec<VarId> = atom.var_set().into_iter().collect();
        level_vars.sort_by_key(|&v| position(v));

        // For each level variable, the first column of the atom bound to it;
        // plus the list of (col_a, col_b) pairs that must agree (repeated
        // variables inside the atom).
        let first_col: Vec<usize> = level_vars
            .iter()
            .map(|&v| atom.vars.iter().position(|&u| u == v).expect("column exists"))
            .collect();
        let mut equal_pairs: Vec<(usize, usize)> = Vec::new();
        for (i, &v) in atom.vars.iter().enumerate() {
            let first = atom.vars.iter().position(|&u| u == v).unwrap();
            if first != i {
                equal_pairs.push((first, i));
            }
        }

        let mut root = TrieNode::default();
        'tuples: for t in atom.relation.tuples() {
            for &(a, b) in &equal_pairs {
                if t[a] != t[b] {
                    continue 'tuples;
                }
            }
            let path: Vec<Value> = first_col.iter().map(|&c| t[c]).collect();
            root.insert_path(&path);
        }
        AtomTrie { level_vars, root }
    }

    /// The root node.
    pub fn root(&self) -> &TrieNode {
        &self.root
    }

    /// Number of levels (distinct variables).
    pub fn depth(&self) -> usize {
        self.level_vars.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_relation::{Relation, Value};

    fn rel(name: &str, rows: Vec<Vec<f64>>) -> Relation {
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        Relation::from_tuples(
            name,
            arity,
            rows.into_iter().map(|r| r.into_iter().map(Value::point).collect()).collect(),
        )
    }

    #[test]
    fn trie_levels_follow_global_order() {
        let r = rel("R", vec![vec![1.0, 2.0], vec![1.0, 3.0], vec![4.0, 2.0]]);
        let atom = BoundAtom::new(&r, vec![5, 2]);
        // Global order puts variable 2 before variable 5.
        let trie = AtomTrie::build(&atom, &[2, 5]);
        assert_eq!(trie.level_vars, vec![2, 5]);
        // Root fanout: distinct values of column bound to var 2 (the second
        // column): {2.0, 3.0}.
        assert_eq!(trie.root().fanout(), 2);
        let node = trie.root().child(&Value::point(2.0)).unwrap();
        // Under 2.0 the values of var 5 are {1.0, 4.0}.
        assert_eq!(node.fanout(), 2);
        assert!(node.child(&Value::point(1.0)).is_some());
    }

    #[test]
    fn repeated_variables_filter_tuples() {
        let r = rel("R", vec![vec![1.0, 1.0], vec![1.0, 2.0], vec![3.0, 3.0]]);
        let atom = BoundAtom::new(&r, vec![0, 0]);
        let trie = AtomTrie::build(&atom, &[0]);
        assert_eq!(trie.depth(), 1);
        // Only the tuples with equal columns survive: values {1.0, 3.0}.
        assert_eq!(trie.root().fanout(), 2);
        assert!(trie.root().child(&Value::point(2.0)).is_none());
    }

    #[test]
    fn duplicate_tuples_collapse() {
        let r = rel("R", vec![vec![1.0], vec![1.0], vec![1.0]]);
        let atom = BoundAtom::new(&r, vec![9]);
        let trie = AtomTrie::build(&atom, &[9]);
        assert_eq!(trie.root().fanout(), 1);
    }
}
