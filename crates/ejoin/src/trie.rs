//! Hash tries over relations, keyed by a global variable order.
//!
//! The generic worst-case-optimal join processes one variable at a time; each
//! atom is indexed as a trie whose levels are the atom's variables sorted by
//! the global variable order.  Repeated variables within an atom are checked
//! at insertion time (tuples whose repeated columns disagree are filtered
//! out) so the trie has one level per *distinct* variable.
//!
//! Trie nodes are keyed by the interned [`ValueId`]s of the columnar relation
//! storage with a multiply-mix hasher — the join never hashes or compares a
//! full `Value`; build and probe work entirely on dense `u32` ids read
//! straight out of the column vectors.
//!
//! # Sharded builds
//!
//! [`AtomTrie::build_sharded`] splits the build across threads: rows are
//! partitioned by a deterministic hash of the value bound to the trie's
//! *first* level variable ([`shard_of`]), and one sub-trie is built per shard
//! on a scoped worker thread.  Because a given first-level value lands in
//! exactly one shard, the union of the shard tries equals the unsharded trie,
//! and a join search can be fanned out shard by shard (see
//! `generic.rs`): any full assignment binds the first join variable to one
//! value, hence lives entirely inside one shard.  The row partition itself is
//! computed over [`ColumnsView`](ij_relation::ColumnsView) row-range chunks,
//! so both phases of the build parallelise.  Sharding is sized per atom:
//! relations too small to give every shard [`MIN_ROWS_PER_SHARD`] rows are
//! built unsharded ([`effective_shard_count`]) instead of paying thread-spawn
//! overhead for near-empty shards.
//!
//! The linear passes of the build — the repeated-variable equal-pair filter
//! and the surviving-row selection — run on the chunked scan kernels of
//! [`ij_relation::kernels`].

use crate::BoundAtom;
use ij_hypergraph::VarId;
use ij_relation::{
    faults, kernels, panic_payload_string, CancelTicker, CancellationToken, EvalError, IdHashMap,
    ValueId,
};

/// The shard a first-level value id belongs to, out of `num_shards`.
///
/// The mapping is a fixed multiply-mix of the raw id — deterministic across
/// threads, runs and machines, which keeps sharded evaluation bit-identical
/// to the unsharded one.
pub fn shard_of(id: ValueId, num_shards: usize) -> usize {
    debug_assert!(num_shards > 0);
    let mixed = (id.raw() as u64 ^ 0x9E37_79B9_7F4A_7C15).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
    ((mixed >> 32) % num_shards as u64) as usize
}

/// Minimum number of rows each shard must receive (on average) for a sharded
/// build to be worth its thread-spawn and partition overhead.  Relations
/// smaller than `shards × MIN_ROWS_PER_SHARD` are built unsharded.
pub const MIN_ROWS_PER_SHARD: usize = 1024;

/// Per-atom shard sizing: the shard count a relation of `rows` rows is
/// actually built with when `requested` shards are asked for.
///
/// The decision is all-or-nothing — either the full `requested` count (every
/// shard averages at least [`MIN_ROWS_PER_SHARD`] rows) or `1` (the relation
/// is too small to be worth near-empty shard threads).  All-or-nothing keeps
/// every sharded atom of one join partitioned by the *same* `shard_of`
/// mapping, which is what lets the search index all of them with one shard
/// number; too-small atoms degrade to a single trie shared by every shard of
/// the search.  The function is pure, so cache keys derived from it are
/// stable.
pub fn effective_shard_count(rows: usize, requested: usize) -> usize {
    if requested >= 2 && rows >= requested.saturating_mul(MIN_ROWS_PER_SHARD) {
        requested
    } else {
        1
    }
}

/// One node of a hash trie.
#[derive(Debug, Default)]
pub struct TrieNode {
    children: IdHashMap<ValueId, TrieNode>,
}

impl TrieNode {
    /// The child for an interned value, if present.
    pub fn child(&self, v: ValueId) -> Option<&TrieNode> {
        self.children.get(&v)
    }

    /// Number of children.
    pub fn fanout(&self) -> usize {
        self.children.len()
    }

    /// Iterates over the children.
    pub fn children(&self) -> impl Iterator<Item = (ValueId, &TrieNode)> {
        self.children.iter().map(|(&id, node)| (id, node))
    }

    /// Estimated heap bytes of this node's subtree: every node's child map
    /// is accounted as `capacity × (entry size + 1 control byte)`.  An
    /// estimate from node/entry counts, not an exact allocator measurement —
    /// good enough for a cache byte budget.
    fn heap_bytes(&self) -> usize {
        let own = self.children.capacity()
            * (std::mem::size_of::<(ValueId, TrieNode)>() + std::mem::size_of::<u8>());
        own + self
            .children
            .values()
            .map(TrieNode::heap_bytes)
            .sum::<usize>()
    }

    fn insert_path(&mut self, values: &[ValueId]) {
        if let Some((first, rest)) = values.split_first() {
            self.children.entry(*first).or_default().insert_path(rest);
        }
    }
}

/// A trie over one atom, with levels ordered by the global variable order.
#[derive(Debug)]
pub struct AtomTrie {
    /// The atom's distinct variables in global order — the trie levels.
    pub level_vars: Vec<VarId>,
    root: TrieNode,
}

impl AtomTrie {
    /// Builds the trie of `atom` with levels sorted according to
    /// `global_order` (a total order over all query variables, e.g. the
    /// elimination order of the chosen decomposition).
    pub fn build(atom: &BoundAtom<'_>, global_order: &[VarId]) -> Self {
        let plan = TriePlan::new(atom, global_order);
        let root = plan
            .build_root(None, None)
            .expect("tokenless builds cannot be cancelled");
        AtomTrie {
            level_vars: plan.level_vars,
            root,
        }
    }

    /// Builds the trie of `atom` split into sub-tries by [`shard_of`] on the
    /// first level variable's value, each shard built on its own scoped
    /// thread.  Every returned trie carries the same `level_vars`; their
    /// union over shards equals [`AtomTrie::build`].
    ///
    /// The shard count actually used is
    /// [`effective_shard_count`]`(rows, num_shards)`: relations too small to
    /// give every shard [`MIN_ROWS_PER_SHARD`] rows are built as a single
    /// unsharded trie instead of spawning near-empty shard threads.  The
    /// build also degenerates to one trie when `num_shards <= 1` or the atom
    /// has no levels (arity-zero guard relations).
    ///
    /// The insert loops poll `token` (if any) every
    /// [`check_interval`](CancellationToken::check_interval) rows; shard
    /// workers run under `catch_unwind`, a panicking worker cancels its
    /// siblings (through a build-local child token, so the caller's token is
    /// never signalled), and the panic surfaces as
    /// [`EvalError::WorkerPanicked`] naming the relation.
    ///
    /// # Panics
    ///
    /// Panics if the relation has more than `u32::MAX` rows (the partition
    /// stores row indices as `u32`; a silent wrap would corrupt the shards).
    pub fn build_sharded(
        atom: &BoundAtom<'_>,
        global_order: &[VarId],
        num_shards: usize,
        token: Option<&CancellationToken>,
    ) -> Result<Vec<Self>, EvalError> {
        assert!(
            atom.relation.len() <= u32::MAX as usize,
            "sharded trie build supports at most 2^32 rows per relation"
        );
        let num_shards = effective_shard_count(atom.relation.len(), num_shards);
        let plan = TriePlan::new(atom, global_order);
        if num_shards <= 1 || plan.level_columns.is_empty() {
            let root = plan.build_root(None, token)?;
            return Ok(vec![AtomTrie {
                level_vars: plan.level_vars,
                root,
            }]);
        }
        let shard_rows = partition_rows_by_shard(atom, &plan, num_shards);
        // Phase 2 — build one sub-trie per shard in parallel, each worker
        // panic-isolated and polling a build-local child token.
        let local = token.map(|t| t.child());
        let roots = build_shards_isolated(atom.relation.name(), local.as_ref(), &shard_rows, {
            let plan = &plan;
            move |rows, tok| plan.build_root(Some(rows), tok)
        })?;
        Ok(roots
            .into_iter()
            .map(|root| AtomTrie {
                level_vars: plan.level_vars.clone(),
                root,
            })
            .collect())
    }

    /// The root node.
    pub fn root(&self) -> &TrieNode {
        &self.root
    }

    /// True if a trie with at least one level holds no tuples (possible for
    /// individual shards, and for atoms whose repeated-variable filter
    /// rejects every row).  Zero-level tries (arity-zero guard atoms) carry
    /// no row information and always report non-empty — the join engine
    /// short-circuits empty relations before any trie is built.
    pub fn is_empty(&self) -> bool {
        self.root.children.is_empty() && !self.level_vars.is_empty()
    }

    /// Number of levels (distinct variables).
    pub fn depth(&self) -> usize {
        self.level_vars.len()
    }

    /// Estimated heap footprint of the trie in bytes, from its node and
    /// entry counts (hash-map capacities), plus the level-variable vector.
    /// The walk is `O(nodes)` — cheap relative to the build that produced
    /// the nodes; the byte-budgeted [`TrieCache`](crate::TrieCache) sums
    /// this over a build's shards once per insert.
    pub fn heap_bytes(&self) -> usize {
        std::mem::size_of::<Self>()
            + self.level_vars.capacity() * std::mem::size_of::<VarId>()
            + self.root.heap_bytes()
    }
}

/// The distinct variables of `atom` sorted by their position in
/// `global_order` — the trie levels.  Shared by the build plan below and the
/// trie cache's key computation, so a key always describes the level order
/// the build actually uses.
///
/// # Panics
///
/// Panics if one of the atom's variables is missing from `global_order`.
pub(crate) fn trie_level_vars(atom: &BoundAtom<'_>, global_order: &[VarId]) -> Vec<VarId> {
    let position = |v: VarId| {
        global_order
            .iter()
            .position(|&u| u == v)
            .expect("variable missing from global order")
    };
    let mut level_vars: Vec<VarId> = atom.var_set().into_iter().collect();
    level_vars.sort_by_key(|&v| position(v));
    level_vars
}

/// The shared phase-1 row partition of every sharded trie build (hash and
/// flat layouts alike): hash the first-level column chunk by chunk
/// ([`ColumnsView`](ij_relation::ColumnsView) row-range views on scoped
/// threads), then concatenate the per-chunk shard lists in chunk order.  The
/// partition is a pure function of the ids, so the chunking never affects the
/// result.  Rows rejected by the plan's repeated-variable mask are dropped
/// here, so the per-shard builds only see surviving rows.
pub(crate) fn partition_rows_by_shard(
    atom: &BoundAtom<'_>,
    plan: &TriePlan<'_>,
    num_shards: usize,
) -> Vec<Vec<u32>> {
    let chunks = atom.relation.columns().chunks(num_shards);
    let first_col_index = plan.first_level_column;
    let pass = plan.pass.as_deref();
    let chunk_parts: Vec<Vec<Vec<u32>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|view| {
                scope.spawn(move || {
                    let mut parts: Vec<Vec<u32>> = vec![Vec::new(); num_shards];
                    let base = view.start() as u32;
                    for (i, &id) in view.column(first_col_index).iter().enumerate() {
                        if pass.is_some_and(|m| m[base as usize + i] == 0) {
                            continue;
                        }
                        parts[shard_of(id, num_shards)].push(base + i as u32);
                    }
                    parts
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut shard_rows: Vec<Vec<u32>> = vec![Vec::new(); num_shards];
    for parts in chunk_parts {
        for (shard, mut rows) in parts.into_iter().enumerate() {
            shard_rows[shard].append(&mut rows);
        }
    }
    shard_rows
}

/// The per-atom build recipe shared by the unsharded and sharded builds — of
/// both the hash layout here and the flat layout in `flat.rs`: the level
/// variables in global order, the id column backing each level, and the
/// pre-computed repeated-variable filter mask.
pub(crate) struct TriePlan<'a> {
    pub(crate) level_vars: Vec<VarId>,
    /// Relation column index backing the first level (the shard key column).
    pub(crate) first_level_column: usize,
    pub(crate) level_columns: Vec<&'a [ValueId]>,
    /// Per-row pass mask of the repeated-variable filters (id equality
    /// coincides with value equality), accumulated over every repeated column
    /// pair with the chunked [`kernels::and_equal_mask`] scan instead of
    /// per-row branches inside the insert loop.  `None` when the atom has no
    /// repeated variables (every row passes).
    pub(crate) pass: Option<Vec<u8>>,
}

impl<'a> TriePlan<'a> {
    pub(crate) fn new(atom: &BoundAtom<'a>, global_order: &[VarId]) -> Self {
        let level_vars = trie_level_vars(atom, global_order);
        let column_of = |v: VarId| {
            atom.vars
                .iter()
                .position(|&u| u == v)
                .expect("column exists")
        };
        let level_columns: Vec<&[ValueId]> = level_vars
            .iter()
            .map(|&v| atom.relation.column_ids(column_of(v)))
            .collect();
        let first_level_column = level_vars.first().map(|&v| column_of(v)).unwrap_or(0);
        let mut pass: Option<Vec<u8>> = None;
        for (i, &v) in atom.vars.iter().enumerate() {
            let first = atom.vars.iter().position(|&u| u == v).unwrap();
            if first != i {
                let mask = pass.get_or_insert_with(|| vec![1u8; atom.relation.len()]);
                kernels::and_equal_mask(
                    atom.relation.column_ids(first),
                    atom.relation.column_ids(i),
                    mask,
                );
            }
        }
        TriePlan {
            level_vars,
            first_level_column,
            level_columns,
            pass,
        }
    }

    /// Inserts the given rows (all rows when `None`) into a fresh root,
    /// skipping rows rejected by the repeated-variable mask.  Polls `token`
    /// (if any) every check-interval rows, so a build of any size cancels
    /// with bounded latency.
    fn build_root(
        &self,
        rows: Option<&[u32]>,
        token: Option<&CancellationToken>,
    ) -> Result<TrieNode, EvalError> {
        faults::point("trie-build");
        let mut root = TrieNode::default();
        let mut path: Vec<ValueId> = vec![ValueId::dummy(); self.level_columns.len()];
        let num_rows = self
            .level_columns
            .first()
            .map(|c| c.len())
            .unwrap_or_default();
        let mut ticker = CancelTicker::new(token);
        let mut insert = |row: usize| -> Result<(), EvalError> {
            ticker.tick()?;
            if let Some(mask) = &self.pass {
                if mask[row] == 0 {
                    return Ok(());
                }
            }
            for (slot, col) in path.iter_mut().zip(&self.level_columns) {
                *slot = col[row];
            }
            root.insert_path(&path);
            Ok(())
        };
        match rows {
            Some(rows) => {
                for &r in rows {
                    insert(r as usize)?;
                }
            }
            None => match &self.pass {
                // With a filter mask, walk only the surviving rows (the
                // chunked selection skips fully-rejected row groups).
                Some(mask) => {
                    let mut surviving = Vec::new();
                    kernels::select_indices(mask, 0, &mut surviving);
                    for &r in &surviving {
                        insert(r as usize)?;
                    }
                }
                None => {
                    for r in 0..num_rows {
                        insert(r)?;
                    }
                }
            },
        }
        Ok(root)
    }
}

/// Runs one `build` closure per shard on scoped threads, each isolated by
/// `catch_unwind` — the shared phase-2 harness of both trie layouts.  The
/// `shard-worker` failpoint fires inside the isolation boundary; a panicking
/// worker cancels its siblings through `token` (the caller passes a
/// build-local child token, so the evaluation's own token is never
/// signalled) and is reported as [`EvalError::WorkerPanicked`] naming
/// `atom_name` — preferred over the `Cancelled` it induced in the siblings.
pub(crate) fn build_shards_isolated<T, F>(
    atom_name: &str,
    token: Option<&CancellationToken>,
    shard_rows: &[Vec<u32>],
    build: F,
) -> Result<Vec<T>, EvalError>
where
    T: Send,
    F: Fn(&[u32], Option<&CancellationToken>) -> Result<T, EvalError> + Sync,
{
    let results: Vec<Result<T, EvalError>> = std::thread::scope(|scope| {
        let build = &build;
        let handles: Vec<_> = shard_rows
            .iter()
            .map(|rows| {
                scope.spawn(move || {
                    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        faults::point("shard-worker");
                        build(rows, token)
                    }));
                    match caught {
                        Ok(result) => result,
                        Err(payload) => {
                            // Stop sibling shard builders promptly.
                            if let Some(t) = token {
                                t.cancel();
                            }
                            Err(EvalError::WorkerPanicked {
                                atom: atom_name.to_string(),
                                payload: panic_payload_string(payload.as_ref()),
                            })
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panics are caught"))
            .collect()
    });
    let mut first_err: Option<EvalError> = None;
    let mut out = Vec::with_capacity(results.len());
    for r in results {
        match r {
            Ok(t) => out.push(t),
            Err(e) => {
                let prefer = matches!(
                    (&first_err, &e),
                    (None, _) | (Some(EvalError::Cancelled), EvalError::WorkerPanicked { .. })
                );
                if prefer {
                    first_err = Some(e);
                }
            }
        }
    }
    match first_err {
        Some(e) => Err(e),
        None => Ok(out),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_relation::{Relation, Value, ValueId};

    fn rel(name: &str, rows: Vec<Vec<f64>>) -> Relation {
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        Relation::from_tuples(
            name,
            arity,
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::point).collect())
                .collect(),
        )
    }

    fn id(p: f64) -> ValueId {
        ValueId::intern(Value::point(p))
    }

    #[test]
    fn trie_levels_follow_global_order() {
        let r = rel("R", vec![vec![1.0, 2.0], vec![1.0, 3.0], vec![4.0, 2.0]]);
        let atom = BoundAtom::new(&r, vec![5, 2]);
        // Global order puts variable 2 before variable 5.
        let trie = AtomTrie::build(&atom, &[2, 5]);
        assert_eq!(trie.level_vars, vec![2, 5]);
        // Root fanout: distinct values of column bound to var 2 (the second
        // column): {2.0, 3.0}.
        assert_eq!(trie.root().fanout(), 2);
        let node = trie.root().child(id(2.0)).unwrap();
        // Under 2.0 the values of var 5 are {1.0, 4.0}.
        assert_eq!(node.fanout(), 2);
        assert!(node.child(id(1.0)).is_some());
    }

    #[test]
    fn repeated_variables_filter_tuples() {
        let r = rel("R", vec![vec![1.0, 1.0], vec![1.0, 2.0], vec![3.0, 3.0]]);
        let atom = BoundAtom::new(&r, vec![0, 0]);
        let trie = AtomTrie::build(&atom, &[0]);
        assert_eq!(trie.depth(), 1);
        // Only the tuples with equal columns survive: values {1.0, 3.0}.
        assert_eq!(trie.root().fanout(), 2);
        assert!(trie.root().child(id(2.0)).is_none());
    }

    #[test]
    fn duplicate_tuples_collapse() {
        let r = rel("R", vec![vec![1.0], vec![1.0], vec![1.0]]);
        let atom = BoundAtom::new(&r, vec![9]);
        let trie = AtomTrie::build(&atom, &[9]);
        assert_eq!(trie.root().fanout(), 1);
    }

    /// Collects every full-depth root-to-leaf path of a trie.
    fn paths(
        node: &TrieNode,
        depth: usize,
        prefix: &mut Vec<ValueId>,
        out: &mut Vec<Vec<ValueId>>,
    ) {
        if prefix.len() == depth {
            out.push(prefix.clone());
            return;
        }
        for (id, child) in node.children() {
            prefix.push(id);
            paths(child, depth, prefix, out);
            prefix.pop();
        }
    }

    #[test]
    fn sharded_build_partitions_the_unsharded_trie() {
        let mut seed = 3u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) % 9) as f64
        };
        // Large enough that even 8 requested shards pass the
        // MIN_ROWS_PER_SHARD sizing and actually shard.
        let n = 8 * MIN_ROWS_PER_SHARD;
        let rows: Vec<Vec<f64>> = (0..n).map(|_| vec![next(), next()]).collect();
        let r = rel("R", rows);
        for vars in [vec![5, 2], vec![2, 5], vec![5, 5]] {
            let atom = BoundAtom::new(&r, vars);
            let order = [2, 5];
            let full = AtomTrie::build(&atom, &order);
            let mut full_paths = Vec::new();
            paths(full.root(), full.depth(), &mut Vec::new(), &mut full_paths);
            full_paths.sort_unstable();
            for num_shards in [2usize, 3, 8] {
                let shards = AtomTrie::build_sharded(&atom, &order, num_shards, None).unwrap();
                assert_eq!(shards.len(), effective_shard_count(n, num_shards));
                assert_eq!(shards.len(), num_shards);
                let mut union = Vec::new();
                for (index, shard) in shards.iter().enumerate() {
                    assert_eq!(shard.level_vars, full.level_vars);
                    // Every first-level value in this shard hashes to it.
                    for (id, _) in shard.root().children() {
                        assert_eq!(shard_of(id, num_shards), index);
                    }
                    paths(shard.root(), shard.depth(), &mut Vec::new(), &mut union);
                }
                union.sort_unstable();
                assert_eq!(union, full_paths, "shards {num_shards}");
            }
        }
    }

    #[test]
    fn small_relations_are_built_unsharded() {
        // Below the per-shard row threshold the build must not spawn
        // near-empty shard threads: it degenerates to one full trie.
        let rows: Vec<Vec<f64>> = (0..40).map(|i| vec![i as f64, -(i as f64)]).collect();
        let r = rel("R", rows);
        let atom = BoundAtom::new(&r, vec![0, 1]);
        let full = AtomTrie::build(&atom, &[0, 1]);
        let shards = AtomTrie::build_sharded(&atom, &[0, 1], 8, None).unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].root().fanout(), full.root().fanout());
    }

    #[test]
    fn effective_shard_count_is_all_or_nothing() {
        assert_eq!(effective_shard_count(0, 4), 1);
        assert_eq!(effective_shard_count(MIN_ROWS_PER_SHARD, 1), 1);
        assert_eq!(
            effective_shard_count(4 * MIN_ROWS_PER_SHARD - 1, 4),
            1,
            "one row short of the budget must not shard"
        );
        assert_eq!(effective_shard_count(4 * MIN_ROWS_PER_SHARD, 4), 4);
        assert_eq!(effective_shard_count(1000, usize::MAX), 1);
    }

    #[test]
    fn sharded_build_of_zero_level_atoms_degenerates() {
        let mut r = ij_relation::Relation::new("E", 0);
        r.push(vec![]);
        let atom = BoundAtom::new(&r, vec![]);
        let shards = AtomTrie::build_sharded(&atom, &[], 4, None).unwrap();
        assert_eq!(shards.len(), 1);
        assert_eq!(shards[0].depth(), 0);
        assert!(!shards[0].is_empty());
    }

    #[test]
    fn heap_bytes_track_trie_size() {
        let small = rel("S", vec![vec![1.0]]);
        let small_trie = AtomTrie::build(&BoundAtom::new(&small, vec![0]), &[0]);
        assert!(small_trie.heap_bytes() > std::mem::size_of::<AtomTrie>());
        // 256 two-level paths dwarf a single one-level path.
        let rows: Vec<Vec<f64>> = (0..256).map(|i| vec![i as f64, -(i as f64)]).collect();
        let big = rel("B", rows);
        let big_trie = AtomTrie::build(&BoundAtom::new(&big, vec![0, 1]), &[0, 1]);
        assert!(big_trie.heap_bytes() > 8 * small_trie.heap_bytes());
        // Sharded builds account the same content across their shards: the
        // sum is within map-capacity slack of the unsharded estimate.
        let shards =
            AtomTrie::build_sharded(&BoundAtom::new(&big, vec![0, 1]), &[0, 1], 1, None).unwrap();
        let sharded_sum: usize = shards.iter().map(AtomTrie::heap_bytes).sum();
        assert!(sharded_sum > 0);
    }

    #[test]
    fn trie_children_resolve_back_to_values() {
        let r = rel("R", vec![vec![7.0], vec![8.0]]);
        let atom = BoundAtom::new(&r, vec![0]);
        let trie = AtomTrie::build(&atom, &[0]);
        let mut values: Vec<Value> = trie.root().children().map(|(id, _)| id.resolve()).collect();
        values.sort();
        assert_eq!(values, vec![Value::point(7.0), Value::point(8.0)]);
    }
}
