//! Hash tries over relations, keyed by a global variable order.
//!
//! The generic worst-case-optimal join processes one variable at a time; each
//! atom is indexed as a trie whose levels are the atom's variables sorted by
//! the global variable order.  Repeated variables within an atom are checked
//! at insertion time (tuples whose repeated columns disagree are filtered
//! out) so the trie has one level per *distinct* variable.
//!
//! Trie nodes are keyed by the interned [`ValueId`]s of the columnar relation
//! storage with a multiply-mix hasher — the join never hashes or compares a
//! full `Value`; build and probe work entirely on dense `u32` ids read
//! straight out of the column vectors.

use crate::BoundAtom;
use ij_hypergraph::VarId;
use ij_relation::{IdHashMap, ValueId};

/// One node of a hash trie.
#[derive(Debug, Default)]
pub struct TrieNode {
    children: IdHashMap<ValueId, TrieNode>,
}

impl TrieNode {
    /// The child for an interned value, if present.
    pub fn child(&self, v: ValueId) -> Option<&TrieNode> {
        self.children.get(&v)
    }

    /// Number of children.
    pub fn fanout(&self) -> usize {
        self.children.len()
    }

    /// Iterates over the children.
    pub fn children(&self) -> impl Iterator<Item = (ValueId, &TrieNode)> {
        self.children.iter().map(|(&id, node)| (id, node))
    }

    fn insert_path(&mut self, values: &[ValueId]) {
        if let Some((first, rest)) = values.split_first() {
            self.children.entry(*first).or_default().insert_path(rest);
        }
    }
}

/// A trie over one atom, with levels ordered by the global variable order.
#[derive(Debug)]
pub struct AtomTrie {
    /// The atom's distinct variables in global order — the trie levels.
    pub level_vars: Vec<VarId>,
    root: TrieNode,
}

impl AtomTrie {
    /// Builds the trie of `atom` with levels sorted according to
    /// `global_order` (a total order over all query variables, e.g. the
    /// elimination order of the chosen decomposition).
    pub fn build(atom: &BoundAtom<'_>, global_order: &[VarId]) -> Self {
        let position = |v: VarId| {
            global_order
                .iter()
                .position(|&u| u == v)
                .expect("variable missing from global order")
        };
        // Distinct variables of the atom in global order.
        let mut level_vars: Vec<VarId> = atom.var_set().into_iter().collect();
        level_vars.sort_by_key(|&v| position(v));

        // For each level variable, the id column of the first relation column
        // bound to it; plus the (col_a, col_b) pairs that must agree
        // (repeated variables inside the atom).
        let level_columns: Vec<&[ValueId]> = level_vars
            .iter()
            .map(|&v| {
                let col = atom
                    .vars
                    .iter()
                    .position(|&u| u == v)
                    .expect("column exists");
                atom.relation.column_ids(col)
            })
            .collect();
        let mut equal_pairs: Vec<(&[ValueId], &[ValueId])> = Vec::new();
        for (i, &v) in atom.vars.iter().enumerate() {
            let first = atom.vars.iter().position(|&u| u == v).unwrap();
            if first != i {
                equal_pairs.push((atom.relation.column_ids(first), atom.relation.column_ids(i)));
            }
        }

        let mut root = TrieNode::default();
        let mut path: Vec<ValueId> = vec![ValueId::dummy(); level_columns.len()];
        'tuples: for row in 0..atom.relation.len() {
            for (a, b) in &equal_pairs {
                // Id equality coincides with value equality.
                if a[row] != b[row] {
                    continue 'tuples;
                }
            }
            for (slot, col) in path.iter_mut().zip(&level_columns) {
                *slot = col[row];
            }
            root.insert_path(&path);
        }
        AtomTrie { level_vars, root }
    }

    /// The root node.
    pub fn root(&self) -> &TrieNode {
        &self.root
    }

    /// Number of levels (distinct variables).
    pub fn depth(&self) -> usize {
        self.level_vars.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_relation::{Relation, Value, ValueId};

    fn rel(name: &str, rows: Vec<Vec<f64>>) -> Relation {
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        Relation::from_tuples(
            name,
            arity,
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::point).collect())
                .collect(),
        )
    }

    fn id(p: f64) -> ValueId {
        ValueId::intern(Value::point(p))
    }

    #[test]
    fn trie_levels_follow_global_order() {
        let r = rel("R", vec![vec![1.0, 2.0], vec![1.0, 3.0], vec![4.0, 2.0]]);
        let atom = BoundAtom::new(&r, vec![5, 2]);
        // Global order puts variable 2 before variable 5.
        let trie = AtomTrie::build(&atom, &[2, 5]);
        assert_eq!(trie.level_vars, vec![2, 5]);
        // Root fanout: distinct values of column bound to var 2 (the second
        // column): {2.0, 3.0}.
        assert_eq!(trie.root().fanout(), 2);
        let node = trie.root().child(id(2.0)).unwrap();
        // Under 2.0 the values of var 5 are {1.0, 4.0}.
        assert_eq!(node.fanout(), 2);
        assert!(node.child(id(1.0)).is_some());
    }

    #[test]
    fn repeated_variables_filter_tuples() {
        let r = rel("R", vec![vec![1.0, 1.0], vec![1.0, 2.0], vec![3.0, 3.0]]);
        let atom = BoundAtom::new(&r, vec![0, 0]);
        let trie = AtomTrie::build(&atom, &[0]);
        assert_eq!(trie.depth(), 1);
        // Only the tuples with equal columns survive: values {1.0, 3.0}.
        assert_eq!(trie.root().fanout(), 2);
        assert!(trie.root().child(id(2.0)).is_none());
    }

    #[test]
    fn duplicate_tuples_collapse() {
        let r = rel("R", vec![vec![1.0], vec![1.0], vec![1.0]]);
        let atom = BoundAtom::new(&r, vec![9]);
        let trie = AtomTrie::build(&atom, &[9]);
        assert_eq!(trie.root().fanout(), 1);
    }

    #[test]
    fn trie_children_resolve_back_to_values() {
        let r = rel("R", vec![vec![7.0], vec![8.0]]);
        let atom = BoundAtom::new(&r, vec![0]);
        let trie = AtomTrie::build(&atom, &[0]);
        let mut values: Vec<Value> = trie.root().children().map(|(id, _)| id.resolve()).collect();
        values.sort();
        assert_eq!(values, vec![Value::point(7.0), Value::point(8.0)]);
    }
}
