//! The generic worst-case-optimal join (attribute-at-a-time).
//!
//! The join processes the variables in a fixed global order.  For the current
//! variable it intersects the candidate values offered by every atom whose
//! trie is positioned at that variable (iterating the atom with the smallest
//! fan-out and probing the others), then recurses.  For Boolean queries the
//! recursion stops at the first full assignment; for enumeration it collects
//! the projection of every full assignment onto the requested output
//! variables.
//!
//! This is the standard leapfrog/generic-join scheme of Ngo et al. \[27\] and
//! Veldhuizen \[34\], realised over interned [`ValueId`]s — the search
//! intersects, probes and collects dense `u32` ids end to end and only
//! resolves values at the API boundary.
//!
//! # Trie layouts
//!
//! Each atom's trie is built in one of two layouts
//! ([`TrieLayout`](crate::TrieLayout), selected per atom at build time):
//!
//! * **hash** ([`AtomTrie`](crate::AtomTrie)) — `HashMap` nodes, probed one
//!   candidate at a time; the behavioural reference;
//! * **flat** ([`FlatTrie`]) — CSR-style sorted value arrays per level.  When
//!   every atom participating in a variable is flat, candidate generation is
//!   a true leapfrog: the participating runs are multi-way intersected with
//!   galloping seeks ([`kernels::leapfrog_next`]) and each match descends by
//!   index arithmetic — no hashing, no per-candidate allocation.  Mixed
//!   levels iterate the smallest position's candidates and probe the rest in
//!   whichever layout each atom has (flat probes gallop,
//!   [`kernels::gallop_seek`]).
//!
//! Layouts never change answers, only the intersection machinery; the
//! property suite holds every layout combination to bit-identical results.
//!
//! # Caching and sharding
//!
//! The `*_with` variants take an [`EvalContext`]: tries are served from its
//! [`TrieCache`](crate::TrieCache) when one is attached, and when the shard
//! count exceeds one the atoms containing the first join variable are built
//! as hash-partitioned sub-tries (`build_sharded` in either layout) and the
//! search fans out across shards on scoped threads.  Any full assignment
//! binds the first join variable to a single value, which lives in exactly
//! one shard — so the per-shard searches partition the result space and their
//! disjunction (or union, for enumeration) is bit-identical to the unsharded
//! search.

use crate::atom::BoundAtom;
use crate::cache::EvalContext;
use crate::flat::{FlatTrie, TrieBuild};
use crate::trie::{effective_shard_count, TrieNode};
use ij_hypergraph::VarId;
use ij_relation::sync::lock_recover;

/// Lock class of the per-fanout first-shard-error slot (`sync::lock_order`);
/// a leaf: held only to fold an error value, never around another lock.
const SHARD_ERROR: &str = "shard-error";
use ij_relation::{
    kernels, CancelTicker, EvalError, IdBuildHasher, IdHashSet, Relation, SharedDictionary, Value,
    ValueId,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// Folds a per-shard evaluation error into the shared error slot, keeping the
/// most diagnostic one: a [`EvalError::WorkerPanicked`] or
/// [`EvalError::DeadlineExceeded`] replaces the [`EvalError::Cancelled`] it
/// (or a sibling's bail-out) induced; the first error wins otherwise.
pub(crate) fn fold_shard_error(slot: &mut Option<EvalError>, e: EvalError) {
    let prefer = match (&slot, &e) {
        (None, _) => true,
        (Some(EvalError::Cancelled), other) => !matches!(other, EvalError::Cancelled),
        _ => false,
    };
    if prefer {
        *slot = Some(e);
    }
}

/// A shared context for one generic-join execution.
///
/// `tries[i]` holds either a single trie (atom not sharded — it does not
/// contain the split variable, or sharding is off) or `num_shards` sub-tries
/// partitioned by the split variable's value hash, in whichever layout the
/// build resolved to.
struct JoinContext {
    tries: Vec<Arc<TrieBuild>>,
    order: Vec<VarId>,
    /// For every order position, the atoms whose tries participate in that
    /// variable — precomputed once so the recursion never re-filters (or
    /// re-allocates) the list at every depth of every subtree.
    participating: Vec<Vec<usize>>,
    /// Search fan-out: 1 when nothing is sharded.
    num_shards: usize,
}

impl JoinContext {
    /// Builds (or fetches from the context's cache) every atom's tries.
    /// Fallible: trie builds poll `eval.token` and run panic-isolated, so a
    /// cancellation, deadline expiry or builder panic surfaces here before
    /// the search starts.
    fn new(
        atoms: &[BoundAtom<'_>],
        order: Option<Vec<VarId>>,
        eval: EvalContext<'_>,
    ) -> Result<Self, EvalError> {
        // No explicit order: resolve one per the context's plan mode
        // (adaptive cardinality/degree planning by default, identifier
        // order under `PlanMode::Fixed` — see `crate::plan`).
        let order = order.unwrap_or_else(|| crate::plan::resolve_order(atoms, &[], eval));
        // The split variable: the first variable of the order that occurs in
        // any atom.  Every atom containing it has it as its first trie level
        // (level order follows the global order), so those atoms shard by it;
        // the others are built once and shared by every shard.
        let requested = eval.shard_count();
        let split_var = if requested > 1 {
            order
                .iter()
                .copied()
                .find(|v| atoms.iter().any(|a| a.vars.contains(v)))
        } else {
            None
        };
        // Per-atom sizing: the search only fans out when at least one atom
        // containing the split variable is big enough to shard at the full
        // budget ([`effective_shard_count`] is all-or-nothing, so every
        // sharded atom ends up partitioned by the same `shard_of` mapping).
        // Atoms below the threshold are built unsharded and shared by every
        // shard of the search — `JoinContext::trie` falls back to the single
        // trie, which is correct for any shard number.
        let num_shards = match split_var {
            Some(v)
                if atoms.iter().any(|a| {
                    a.vars.contains(&v)
                        && effective_shard_count(a.relation.len(), requested) == requested
                }) =>
            {
                requested
            }
            _ => 1,
        };
        let tries: Vec<Arc<TrieBuild>> = atoms
            .iter()
            .map(|a| {
                let shards = match split_var {
                    Some(v) if num_shards > 1 && a.vars.contains(&v) => num_shards,
                    _ => 1,
                };
                let t = match eval.cache {
                    Some(cache) => cache.tries_for(
                        a,
                        &order,
                        shards,
                        eval.layout,
                        eval.tenant,
                        eval.activity,
                        eval.token,
                    )?,
                    None => Arc::new(TrieBuild::build_sharded(
                        a,
                        &order,
                        shards,
                        eval.layout,
                        eval.token,
                    )?),
                };
                if let Some(activity) = eval.activity {
                    activity.record_layout(t.layout());
                }
                Ok(t)
            })
            .collect::<Result<_, EvalError>>()?;
        let participating: Vec<Vec<usize>> = order
            .iter()
            .map(|v| {
                (0..tries.len())
                    .filter(|&i| tries[i].level_vars().contains(v))
                    .collect()
            })
            .collect();
        Ok(JoinContext {
            tries,
            order,
            participating,
            num_shards,
        })
    }

    /// The sub-trie index of atom `i` effective in shard `shard` (unsharded
    /// atoms fall back to their single trie, correct for any shard number).
    fn shard_index(&self, i: usize, shard: usize) -> usize {
        if self.tries[i].shard_count() == 1 {
            0
        } else {
            shard
        }
    }

    /// Atom `i`'s root position for one shard.
    fn root_pos(&self, i: usize, shard: usize) -> Pos<'_> {
        let shard = self.shard_index(i, shard);
        match &*self.tries[i] {
            TrieBuild::Hash(tries) => Pos::Hash(tries[shard].root()),
            TrieBuild::Flat(tries) => {
                let trie = &tries[shard];
                if trie.depth() == 0 {
                    Pos::Leaf
                } else {
                    Pos::Flat {
                        trie,
                        level: 0,
                        lo: 0,
                        hi: trie.level_len(0),
                    }
                }
            }
        }
    }

    /// Root positions for one shard.
    fn roots(&self, shard: usize) -> Vec<Pos<'_>> {
        (0..self.tries.len())
            .map(|i| self.root_pos(i, shard))
            .collect()
    }

    /// True if some atom's sub-trie for this shard is empty (the shard's
    /// intersection is necessarily empty, so the search can be skipped).
    fn shard_is_dead(&self, shard: usize) -> bool {
        (0..self.tries.len()).any(|i| self.tries[i].shard_is_empty(self.shard_index(i, shard)))
    }
}

/// One atom's cursor into its trie during the search — the layout-generic
/// "current node".  `Copy`, so saving and restoring a frame's participating
/// positions copies a few words instead of cloning a `Vec` per candidate.
#[derive(Clone, Copy)]
enum Pos<'t> {
    /// A hash-trie node.
    Hash(&'t TrieNode),
    /// A flat-trie run: the candidate values `trie.run(level, lo, hi)` — one
    /// parent's sorted, distinct children.
    Flat {
        /// The trie this cursor ranges over.
        trie: &'t FlatTrie,
        /// Current level.
        level: usize,
        /// Run start (absolute index into the level's value array).
        lo: u32,
        /// Run end (exclusive).
        hi: u32,
    },
    /// Past the deepest level of a flat trie: the atom's full path is
    /// consumed.  Leaf positions never participate in a later variable, so
    /// they are never descended or fanned out.
    Leaf,
}

impl<'t> Pos<'t> {
    /// The number of candidate values this position offers.
    fn fanout(self) -> usize {
        match self {
            Pos::Hash(node) => node.fanout(),
            Pos::Flat { lo, hi, .. } => (hi - lo) as usize,
            Pos::Leaf => 0,
        }
    }

    /// Descends into `value`: the position below it, or `None` if this atom
    /// does not offer `value` here.  Hash positions probe the node map; flat
    /// positions gallop the sorted run ([`kernels::gallop_seek`]).
    fn descend(self, value: ValueId) -> Option<Pos<'t>> {
        match self {
            Pos::Hash(node) => node.child(value).map(Pos::Hash),
            Pos::Flat {
                trie,
                level,
                lo,
                hi,
            } => {
                let run = trie.run(level, lo, hi);
                let at = kernels::gallop_seek(run, 0, value);
                if at < run.len() && run[at] == value {
                    Some(down(trie, level, lo + at as u32))
                } else {
                    None
                }
            }
            Pos::Leaf => None,
        }
    }
}

/// The position below entry `index` of `level`: the child run one level
/// deeper, or [`Pos::Leaf`] when `level` is the deepest.
fn down(trie: &FlatTrie, level: usize, index: u32) -> Pos<'_> {
    if level + 1 < trie.depth() {
        let (lo, hi) = trie.child_range(level, index);
        Pos::Flat {
            trie,
            level: level + 1,
            lo,
            hi,
        }
    } else {
        Pos::Leaf
    }
}

/// Evaluates the Boolean conjunctive query given by `atoms` (all joins are
/// equality joins on the shared variables).  Returns true if the join is
/// non-empty.  An explicit variable order can be supplied; by default the
/// order comes from the context's plan mode — adaptive
/// cardinality/degree-driven planning ([`crate::plan`]) unless
/// [`PlanMode::Fixed`](crate::PlanMode) pins the historical increasing
/// identifier order.
pub fn generic_join_boolean(atoms: &[BoundAtom<'_>], order: Option<Vec<VarId>>) -> bool {
    generic_join_boolean_with(atoms, order, EvalContext::default())
        // ij-analysis: allow(panic) — infallible: the default context carries no cancel token
        .expect("tokenless joins cannot be cancelled")
}

/// [`generic_join_boolean`] with an explicit [`EvalContext`]: tries come from
/// the context's cache (when present) and the search fans out across trie
/// shards (when `shards > 1`).  The answer is identical for every context.
///
/// # Errors
///
/// When the context carries a [`CancellationToken`](ij_relation::CancellationToken),
/// the trie builds and the candidate-intersection loops poll it every
/// [`check_interval`](ij_relation::CancellationToken::check_interval)
/// candidates and surface [`EvalError::Cancelled`] /
/// [`EvalError::DeadlineExceeded`]; a panicking trie-build worker surfaces as
/// [`EvalError::WorkerPanicked`].  A found answer beats a sibling shard's
/// error: `true` is returned even when another shard was cancelled
/// (`true ∨ unknown = true`).
pub fn generic_join_boolean_with(
    atoms: &[BoundAtom<'_>],
    order: Option<Vec<VarId>>,
    eval: EvalContext<'_>,
) -> Result<bool, EvalError> {
    if atoms.iter().any(|a| a.relation.is_empty()) {
        return Ok(false);
    }
    if atoms.is_empty() {
        return Ok(true);
    }
    let ctx = JoinContext::new(atoms, order, eval)?;
    if ctx.num_shards == 1 {
        let mut positions = ctx.roots(0);
        let mut ticker = CancelTicker::new(eval.token);
        return search(&ctx, 0, &mut positions, &mut ticker, None);
    }
    // Fan out: one scoped thread per shard, first success stops the rest.
    let found = AtomicBool::new(false);
    let error: Mutex<Option<EvalError>> = Mutex::new(None);
    std::thread::scope(|scope| {
        for shard in 0..ctx.num_shards {
            if ctx.shard_is_dead(shard) {
                continue;
            }
            let (ctx, found, error) = (&ctx, &found, &error);
            scope.spawn(move || {
                let mut positions = ctx.roots(shard);
                let mut ticker = CancelTicker::new(eval.token);
                match search(ctx, 0, &mut positions, &mut ticker, Some(found)) {
                    Ok(true) => found.store(true, Ordering::Release),
                    Ok(false) => {}
                    Err(e) => fold_shard_error(&mut lock_recover(error, SHARD_ERROR), e),
                }
            });
        }
    });
    if found.load(Ordering::Acquire) {
        // A witness is a witness: the disjunction over shards is true no
        // matter what the cancelled shards would have said.
        return Ok(true);
    }
    let first = lock_recover(&error, SHARD_ERROR).take();
    match first {
        Some(e) => Err(e),
        None => Ok(false),
    }
}

/// Enumerates the projection of the join onto `output_vars`, deduplicated.
/// The variable order used for the join is `output_vars` first (in the given
/// order) followed by the remaining variables; this guarantees that results
/// can be collected without buffering full assignments.
pub fn generic_join_enumerate(
    atoms: &[BoundAtom<'_>],
    output_vars: &[VarId],
    output_name: &str,
) -> Relation {
    generic_join_enumerate_with(atoms, output_vars, output_name, EvalContext::default())
        // ij-analysis: allow(panic) — infallible: the default context carries no cancel token
        .expect("tokenless joins cannot be cancelled")
}

/// [`generic_join_enumerate`] with an explicit [`EvalContext`]: tries come
/// from the context's cache (when present) and each shard is enumerated on
/// its own scoped thread (when `shards > 1`), the per-shard results being
/// merged, sorted and deduplicated — the output relation is identical for
/// every context.
///
/// # Errors
///
/// Same taxonomy as [`generic_join_boolean_with`]; unlike the Boolean case
/// there is no early-true escape, so any shard's error fails the whole
/// enumeration (a partial enumeration would be a wrong answer).
pub fn generic_join_enumerate_with(
    atoms: &[BoundAtom<'_>],
    output_vars: &[VarId],
    output_name: &str,
    eval: EvalContext<'_>,
) -> Result<Relation, EvalError> {
    // The output lives in the input atoms' dictionary (scoped inputs produce
    // scoped outputs; ids pass through without re-interning).
    let dict = atoms
        .first()
        .map(|a| a.relation.dictionary())
        .unwrap_or_else(|| SharedDictionary::global());
    let mut out = Relation::new_in(output_name, output_vars.len(), dict);
    if atoms.is_empty() || atoms.iter().any(|a| a.relation.is_empty()) {
        return Ok(out);
    }
    // Order: output variables first (pinned, so results stream without
    // buffering full assignments), then the rest per the plan mode.
    let order: Vec<VarId> = crate::plan::resolve_order(atoms, output_vars, eval);
    let ctx = JoinContext::new(atoms, Some(order.clone()), eval)?;
    let out_positions: Vec<usize> = output_vars
        .iter()
        // ij-analysis: allow(panic) — infallible: `order` covers every variable by construction
        .map(|v| order.iter().position(|u| u == v).unwrap())
        .collect();

    // Collect assignments of the output prefix; because output variables form
    // a prefix of the order, each time the search reaches depth
    // `output_vars.len()` with a new prefix we record it and prune the rest of
    // that subtree only after establishing at least one full match.
    // Variables constrained by no atom keep the placeholder value, which must
    // be resolvable in case such a variable is part of the output, so it is
    // interned into the atoms' dictionary (once per call — after the first
    // call this is a single stripe read-lock probe, off the search hot path).
    let placeholder = dict.intern(Value::point(0.0));
    let enumerate_shard = |shard: usize| -> Result<Vec<Vec<ValueId>>, EvalError> {
        let mut results: Vec<Vec<ValueId>> = Vec::new();
        if ctx.shard_is_dead(shard) {
            return Ok(results);
        }
        let mut positions = ctx.roots(shard);
        let mut assignment: Vec<ValueId> = vec![placeholder; order.len()];
        let mut ticker = CancelTicker::new(eval.token);
        enumerate_rec(
            &ctx,
            0,
            &mut positions,
            &mut assignment,
            &out_positions,
            &mut results,
            &mut ticker,
        )?;
        Ok(results)
    };
    let mut results: Vec<Vec<ValueId>> = if ctx.num_shards == 1 {
        enumerate_shard(0)?
    } else {
        // Fan out one scoped thread per shard; merging in shard order (and
        // sorting below) keeps the output deterministic.
        let per_shard: Vec<Result<Vec<Vec<ValueId>>, EvalError>> = std::thread::scope(|scope| {
            let enumerate_shard = &enumerate_shard;
            let handles: Vec<_> = (0..ctx.num_shards)
                .map(|shard| scope.spawn(move || enumerate_shard(shard)))
                .collect();
            // ij-analysis: allow(panic) — propagating a worker panic is the intended behaviour
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let mut error: Option<EvalError> = None;
        let mut merged: Vec<Vec<ValueId>> = Vec::new();
        for r in per_shard {
            match r {
                Ok(rows) => merged.extend(rows),
                Err(e) => fold_shard_error(&mut error, e),
            }
        }
        if let Some(e) = error {
            return Err(e);
        }
        merged
    };
    results.sort_unstable();
    results.dedup();
    for r in results {
        out.push_ids(&r);
    }
    Ok(out)
}

/// Intersects the candidate values for `depth` across the participating
/// atoms' positions, invoking `visit` once per value of the intersection with
/// every participating position descended into that value.  Returns `true`
/// the moment `visit` does (the Boolean search's early exit — the whole stack
/// unwinds, so positions need no restoring); otherwise restores the
/// participating positions and returns `false`.
///
/// Only the participating atoms' positions are saved — a `Copy` of a few
/// words each — replacing the old full-`positions` `Vec` clone per candidate.
///
/// Two intersection strategies:
///
/// * **all participating positions flat** — a true leapfrog
///   ([`kernels::leapfrog_next`]): the sorted runs are multi-way intersected
///   with galloping seeks, and each matched value descends every atom by
///   index arithmetic off its aligned cursor, no probing at all;
/// * **otherwise** — iterate the candidates of the smallest position
///   (in whichever layout it has) and probe the remaining atoms' positions
///   per candidate (hash positions probe the node map, flat positions gallop
///   their run).
///
/// The ticker is threaded through every frame of the recursion (lent to
/// `visit` and back), so the cancellation check interval is amortised over
/// the *whole* search — one countdown across all depths — and ticked once per
/// candidate considered, matched or not.
fn intersect_candidates<'t, 'k>(
    ctx: &'t JoinContext,
    depth: usize,
    positions: &mut Vec<Pos<'t>>,
    ticker: &mut CancelTicker<'k>,
    visit: &mut impl FnMut(&mut Vec<Pos<'t>>, &mut CancelTicker<'k>, ValueId) -> Result<bool, EvalError>,
) -> Result<bool, EvalError> {
    let participating = &ctx.participating[depth];
    let saved: Vec<Pos<'t>> = participating.iter().map(|&i| positions[i]).collect();
    if saved.iter().all(|p| matches!(p, Pos::Flat { .. })) {
        let runs: Vec<&[ValueId]> = saved
            .iter()
            .map(|p| match p {
                Pos::Flat {
                    trie,
                    level,
                    lo,
                    hi,
                } => trie.run(*level, *lo, *hi),
                // ij-analysis: allow(panic) — unreachable: guarded by the all-flat check above
                _ => unreachable!("all positions checked flat"),
            })
            .collect();
        let mut cursors = vec![0usize; runs.len()];
        while let Some(value) = kernels::leapfrog_next(&runs, &mut cursors) {
            ticker.tick()?;
            // Every cursor points at `value`; descend by index.
            for (slot, &i) in participating.iter().enumerate() {
                let Pos::Flat {
                    trie, level, lo, ..
                } = saved[slot]
                else {
                    // ij-analysis: allow(panic) — unreachable: guarded by the all-flat check above
                    unreachable!("all positions checked flat")
                };
                positions[i] = down(trie, level, lo + cursors[slot] as u32);
            }
            if visit(positions, ticker, value)? {
                return Ok(true);
            }
            for c in cursors.iter_mut() {
                *c += 1;
            }
        }
        for (slot, &i) in participating.iter().enumerate() {
            positions[i] = saved[slot];
        }
        return Ok(false);
    }
    // Mixed layouts (or pure hash): iterate the smallest candidate set,
    // probe the others.  A failed probe leaves later slots stale, which is
    // harmless: `visit` only ever runs after every slot was freshly written.
    let smallest = (0..saved.len())
        .min_by_key(|&slot| saved[slot].fanout())
        // ij-analysis: allow(panic) — infallible: `participating` is non-empty at this level
        .expect("participating atoms exist");
    let try_value = |positions: &mut Vec<Pos<'t>>, value: ValueId, child: Pos<'t>| -> bool {
        for (slot, &i) in participating.iter().enumerate() {
            if slot == smallest {
                positions[i] = child;
                continue;
            }
            match saved[slot].descend(value) {
                Some(next) => positions[i] = next,
                None => return false,
            }
        }
        true
    };
    match saved[smallest] {
        Pos::Hash(node) => {
            for (value, child) in node.children() {
                ticker.tick()?;
                if try_value(positions, value, Pos::Hash(child)) && visit(positions, ticker, value)?
                {
                    return Ok(true);
                }
            }
        }
        Pos::Flat {
            trie,
            level,
            lo,
            hi,
        } => {
            let run = trie.run(level, lo, hi);
            for (r, &value) in run.iter().enumerate() {
                ticker.tick()?;
                let child = down(trie, level, lo + r as u32);
                if try_value(positions, value, child) && visit(positions, ticker, value)? {
                    return Ok(true);
                }
            }
        }
        // ij-analysis: allow(panic) — unreachable: leaves are filtered out of `participating`
        Pos::Leaf => unreachable!("leaf positions never participate"),
    }
    for (slot, &i) in participating.iter().enumerate() {
        positions[i] = saved[slot];
    }
    Ok(false)
}

/// Core recursive search: `true` as soon as one full assignment exists.  When
/// `stop` is set and flips to true (another shard already found a match), the
/// search bails out with `false` — callers combine per-shard results with the
/// flag itself.
fn search<'t, 'k>(
    ctx: &'t JoinContext,
    depth: usize,
    positions: &mut Vec<Pos<'t>>,
    ticker: &mut CancelTicker<'k>,
    stop: Option<&AtomicBool>,
) -> Result<bool, EvalError> {
    if depth == ctx.order.len() {
        return Ok(true);
    }
    if let Some(flag) = stop {
        if flag.load(Ordering::Acquire) {
            return Ok(false);
        }
    }
    if ctx.participating[depth].is_empty() {
        // No atom constrains this variable (can happen for variables
        // projected away by empty atoms lists); just skip it.
        return search(ctx, depth + 1, positions, ticker, stop);
    }
    intersect_candidates(
        ctx,
        depth,
        positions,
        ticker,
        &mut |positions, ticker, _| search(ctx, depth + 1, positions, ticker, stop),
    )
}

/// Recursive enumeration collecting output prefixes of satisfiable
/// assignments.
fn enumerate_rec<'t, 'k>(
    ctx: &'t JoinContext,
    depth: usize,
    positions: &mut Vec<Pos<'t>>,
    assignment: &mut Vec<ValueId>,
    out_positions: &[usize],
    results: &mut Vec<Vec<ValueId>>,
    ticker: &mut CancelTicker<'k>,
) -> Result<(), EvalError> {
    if depth == ctx.order.len() {
        results.push(out_positions.iter().map(|&p| assignment[p]).collect());
        return Ok(());
    }
    if ctx.participating[depth].is_empty() {
        return enumerate_rec(
            ctx,
            depth + 1,
            positions,
            assignment,
            out_positions,
            results,
            ticker,
        );
    }
    intersect_candidates(
        ctx,
        depth,
        positions,
        ticker,
        &mut |positions, ticker, value| {
            assignment[depth] = value;
            enumerate_rec(
                ctx,
                depth + 1,
                positions,
                assignment,
                out_positions,
                results,
                ticker,
            )?;
            Ok(false)
        },
    )?;
    Ok(())
}

/// Byte mask over the rows of `left_cols` marking the rows whose key tuple
/// (one id per column) also appears as a row of `right_cols`.
///
/// This is the probe core of the Yannakakis semijoin pass, built on the scan
/// kernels: keys are packed row-major into contiguous fixed-width buffers
/// ([`kernels::pack_keys`]) and hashed as `&[ValueId]` windows — no per-row
/// allocation on either side — with a direct id-set fast path for
/// single-column keys.
pub(crate) fn semijoin_mask(left_cols: &[&[ValueId]], right_cols: &[&[ValueId]]) -> Vec<u8> {
    assert_eq!(
        left_cols.len(),
        right_cols.len(),
        "semijoin sides must probe the same key width"
    );
    assert!(
        !left_cols.is_empty(),
        "semijoin_mask requires at least one key column; \
         callers handle the no-shared-variables case themselves"
    );
    let left_len = left_cols[0].len();
    let mut mask = vec![0u8; left_len];
    if left_cols.len() == 1 {
        // Single shared column: probe a plain id set.
        let keys: IdHashSet<ValueId> = right_cols[0].iter().copied().collect();
        for (m, id) in mask.iter_mut().zip(left_cols[0]) {
            *m = u8::from(keys.contains(id));
        }
        return mask;
    }
    let k = left_cols.len();
    let mut right_keys = Vec::new();
    kernels::pack_keys(right_cols, &mut right_keys);
    let keys: std::collections::HashSet<&[ValueId], IdBuildHasher> =
        right_keys.chunks_exact(k).collect();
    let mut left_keys = Vec::new();
    kernels::pack_keys(left_cols, &mut left_keys);
    for (m, key) in mask.iter_mut().zip(left_keys.chunks_exact(k)) {
        *m = u8::from(keys.contains(key));
    }
    mask
}

/// A semijoin `left ⋉ right`: keeps the tuples of `left` whose shared
/// variables have a matching tuple in `right`.  Used by the Yannakakis pass.
/// Keys are tuples of interned ids packed and probed through the scan
/// kernels (`semijoin_mask` above); surviving rows are selected by mask and
/// gathered column-wise without materialising any `Value`.
pub fn semijoin(left: &BoundAtom<'_>, right: &BoundAtom<'_>) -> Relation {
    assert!(
        left.relation.len() <= u32::MAX as usize,
        "semijoin supports at most 2^32 rows per relation (row indices are u32)"
    );
    let shared: Vec<VarId> = left
        .var_set()
        .intersection(&right.var_set())
        .copied()
        .collect();
    let name = left.relation.name().to_string();
    if shared.is_empty() {
        // No shared variables: keep everything if right is non-empty.
        if right.relation.is_empty() {
            return Relation::new_in(name, left.relation.arity(), left.relation.dictionary());
        }
        return left.relation.renamed(name);
    }
    // Key columns in each relation (first column bound to the variable).
    let left_cols: Vec<&[ValueId]> = shared
        .iter()
        .map(|&v| {
            // ij-analysis: allow(panic) — infallible: `shared` is the intersection of both var sets
            let c = left.vars.iter().position(|&u| u == v).unwrap();
            left.relation.column_ids(c)
        })
        .collect();
    let right_cols: Vec<&[ValueId]> = shared
        .iter()
        .map(|&v| {
            // ij-analysis: allow(panic) — infallible: `shared` is the intersection of both var sets
            let c = right.vars.iter().position(|&u| u == v).unwrap();
            right.relation.column_ids(c)
        })
        .collect();
    let mask = semijoin_mask(&left_cols, &right_cols);
    let mut keep: Vec<u32> = Vec::new();
    kernels::select_indices(&mask, 0, &mut keep);
    left.relation.gather32(&keep, name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_relation::{Relation, Value};

    fn rel(name: &str, rows: Vec<Vec<f64>>) -> Relation {
        let arity = rows.first().map(|r| r.len()).unwrap_or(0);
        Relation::from_tuples(
            name,
            arity,
            rows.into_iter()
                .map(|r| r.into_iter().map(Value::point).collect())
                .collect(),
        )
    }

    const A: VarId = 0;
    const B: VarId = 1;
    const C: VarId = 2;

    #[test]
    fn triangle_join_finds_a_triangle() {
        // R(A,B), S(B,C), T(A,C) with exactly one triangle (1,2,3).
        let r = rel("R", vec![vec![1.0, 2.0], vec![4.0, 5.0]]);
        let s = rel("S", vec![vec![2.0, 3.0], vec![5.0, 9.0]]);
        let t = rel("T", vec![vec![1.0, 3.0], vec![7.0, 9.0]]);
        let atoms = vec![
            BoundAtom::new(&r, vec![A, B]),
            BoundAtom::new(&s, vec![B, C]),
            BoundAtom::new(&t, vec![A, C]),
        ];
        assert!(generic_join_boolean(&atoms, None));
        let out = generic_join_enumerate(&atoms, &[A, B, C], "out");
        assert_eq!(out.len(), 1);
        assert_eq!(
            out.tuples()[0],
            vec![Value::point(1.0), Value::point(2.0), Value::point(3.0)]
        );
    }

    #[test]
    fn triangle_join_rejects_near_misses() {
        // Edges exist pairwise but no closed triangle.
        let r = rel("R", vec![vec![1.0, 2.0]]);
        let s = rel("S", vec![vec![2.0, 3.0]]);
        let t = rel("T", vec![vec![1.0, 4.0]]);
        let atoms = vec![
            BoundAtom::new(&r, vec![A, B]),
            BoundAtom::new(&s, vec![B, C]),
            BoundAtom::new(&t, vec![A, C]),
        ];
        assert!(!generic_join_boolean(&atoms, None));
        assert!(generic_join_enumerate(&atoms, &[A], "out").is_empty());
    }

    #[test]
    fn empty_relation_short_circuits() {
        let r = rel("R", vec![vec![1.0, 2.0]]);
        let empty = Relation::new("S", 2);
        let atoms = vec![
            BoundAtom::new(&r, vec![A, B]),
            BoundAtom::new(&empty, vec![B, C]),
        ];
        assert!(!generic_join_boolean(&atoms, None));
    }

    #[test]
    fn no_atoms_means_true() {
        assert!(generic_join_boolean(&[], None));
    }

    #[test]
    fn cartesian_product_when_no_shared_variables() {
        let r = rel("R", vec![vec![1.0], vec![2.0]]);
        let s = rel("S", vec![vec![10.0], vec![20.0], vec![30.0]]);
        let atoms = vec![BoundAtom::new(&r, vec![A]), BoundAtom::new(&s, vec![B])];
        assert!(generic_join_boolean(&atoms, None));
        let out = generic_join_enumerate(&atoms, &[A, B], "out");
        assert_eq!(out.len(), 6);
    }

    #[test]
    fn enumeration_projects_and_deduplicates() {
        let r = rel("R", vec![vec![1.0, 2.0], vec![1.0, 3.0], vec![2.0, 4.0]]);
        let s = rel("S", vec![vec![2.0], vec![3.0], vec![4.0]]);
        let atoms = vec![BoundAtom::new(&r, vec![A, B]), BoundAtom::new(&s, vec![B])];
        let out = generic_join_enumerate(&atoms, &[A], "out");
        // A values with some matching B: {1, 2}.
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn enumeration_with_unconstrained_output_variable_is_resolvable() {
        // An output variable no atom constrains keeps the resolvable
        // placeholder value (regression: a raw dummy id would panic on
        // resolve).
        let r = rel("R", vec![vec![1.0]]);
        let atoms = vec![BoundAtom::new(&r, vec![A])];
        let out = generic_join_enumerate(&atoms, &[A, B], "out");
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0], vec![Value::point(1.0), Value::point(0.0)]);
    }

    #[test]
    fn explicit_variable_order_is_respected() {
        let r = rel("R", vec![vec![1.0, 2.0]]);
        let s = rel("S", vec![vec![2.0, 3.0]]);
        let atoms = vec![
            BoundAtom::new(&r, vec![A, B]),
            BoundAtom::new(&s, vec![B, C]),
        ];
        for order in [vec![A, B, C], vec![C, B, A], vec![B, A, C]] {
            assert!(generic_join_boolean(&atoms, Some(order)));
        }
    }

    #[test]
    fn semijoin_filters_left_tuples() {
        let r = rel("R", vec![vec![1.0, 2.0], vec![5.0, 6.0]]);
        let s = rel("S", vec![vec![2.0, 7.0]]);
        let left = BoundAtom::new(&r, vec![A, B]);
        let right = BoundAtom::new(&s, vec![B, C]);
        let reduced = semijoin(&left, &right);
        assert_eq!(reduced.len(), 1);
        assert_eq!(reduced.tuples()[0][0], Value::point(1.0));
    }

    #[test]
    fn semijoin_with_disjoint_variables_checks_emptiness_only() {
        let r = rel("R", vec![vec![1.0]]);
        let s = rel("S", vec![vec![9.0]]);
        let empty = Relation::new("E", 1);
        let left = BoundAtom::new(&r, vec![A]);
        assert_eq!(semijoin(&left, &BoundAtom::new(&s, vec![B])).len(), 1);
        assert_eq!(semijoin(&left, &BoundAtom::new(&empty, vec![B])).len(), 0);
    }

    #[test]
    fn self_join_pattern_with_repeated_variable() {
        // R(A, A) as a filter for equal columns.
        let r = rel("R", vec![vec![1.0, 1.0], vec![2.0, 3.0]]);
        let atoms = vec![BoundAtom::new(&r, vec![A, A])];
        let out = generic_join_enumerate(&atoms, &[A], "out");
        assert_eq!(out.len(), 1);
        assert_eq!(out.tuples()[0][0], Value::point(1.0));
    }

    #[test]
    fn sharded_and_cached_joins_match_the_unsharded_baseline() {
        use crate::cache::TrieCache;
        use crate::flat::TrieLayout;
        let mut seed = 99u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) % 6) as f64
        };
        let cache = TrieCache::new();
        for _ in 0..20 {
            let rows = |n: usize, next: &mut dyn FnMut() -> f64| {
                (0..n).map(|_| vec![next(), next()]).collect::<Vec<_>>()
            };
            let r = rel("R", rows(8, &mut next));
            let s = rel("S", rows(8, &mut next));
            let t = rel("T", rows(8, &mut next));
            let atoms = vec![
                BoundAtom::new(&r, vec![A, B]),
                BoundAtom::new(&s, vec![B, C]),
                BoundAtom::new(&t, vec![A, C]),
            ];
            let expected = generic_join_boolean(&atoms, None);
            let expected_out = generic_join_enumerate(&atoms, &[A, B, C], "out");
            let layouts = [TrieLayout::Hash, TrieLayout::Flat, TrieLayout::Auto];
            for shards in [1usize, 2, 3, 7] {
                for layout in layouts {
                    for cache_ref in [None, Some(&cache)] {
                        let eval = EvalContext {
                            cache: cache_ref,
                            shards,
                            layout,
                            ..EvalContext::default()
                        };
                        assert_eq!(
                            generic_join_boolean_with(&atoms, None, eval).unwrap(),
                            expected,
                            "boolean, shards {shards}, layout {layout:?}, cached {}",
                            cache_ref.is_some()
                        );
                        let out =
                            generic_join_enumerate_with(&atoms, &[A, B, C], "out", eval).unwrap();
                        assert_eq!(
                            out.tuples(),
                            expected_out.tuples(),
                            "enumerate, shards {shards}, layout {layout:?}, cached {}",
                            cache_ref.is_some()
                        );
                    }
                }
            }
        }
        // The loop re-evaluates identical builds: the cache must have hit.
        assert!(cache.stats().hits > 0);
    }

    #[test]
    fn sharded_search_fans_out_on_large_relations() {
        // Relations above the MIN_ROWS_PER_SHARD budget actually shard (the
        // small-relation tests above exercise the sized-down path).  One
        // planted triangle in sparse noise keeps the expected output tiny.
        use crate::trie::MIN_ROWS_PER_SHARD;
        let n = 2 * MIN_ROWS_PER_SHARD;
        let mut seed = 5u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) % 50_000) as f64 + 10.0
        };
        let noisy = |plant: [f64; 2], next: &mut dyn FnMut() -> f64| {
            let mut rows: Vec<Vec<f64>> = (0..n - 1).map(|_| vec![next(), next()]).collect();
            rows.push(vec![plant[0], plant[1]]);
            rows
        };
        let r = rel("R", noisy([1.0, 2.0], &mut next));
        let s = rel("S", noisy([2.0, 3.0], &mut next));
        let t = rel("T", noisy([1.0, 3.0], &mut next));
        let atoms = vec![
            BoundAtom::new(&r, vec![A, B]),
            BoundAtom::new(&s, vec![B, C]),
            BoundAtom::new(&t, vec![A, C]),
        ];
        let expected = generic_join_boolean(&atoms, None);
        assert!(expected, "the planted triangle must be found");
        let expected_out = generic_join_enumerate(&atoms, &[A, B, C], "out");
        for shards in [2usize, 4] {
            for layout in [
                crate::flat::TrieLayout::Hash,
                crate::flat::TrieLayout::Flat,
                crate::flat::TrieLayout::Auto,
            ] {
                let eval = EvalContext {
                    cache: None,
                    shards,
                    layout,
                    ..EvalContext::default()
                };
                assert_eq!(
                    generic_join_boolean_with(&atoms, None, eval).unwrap(),
                    expected
                );
                let out = generic_join_enumerate_with(&atoms, &[A, B, C], "out", eval).unwrap();
                assert_eq!(
                    out.tuples(),
                    expected_out.tuples(),
                    "shards {shards}, layout {layout:?}"
                );
            }
        }
    }

    #[test]
    fn four_clique_boolean() {
        // A 4-clique on values {1,2,3,4} plus noise.
        let pairs: Vec<Vec<f64>> = (1..=4)
            .flat_map(|i| (1..=4).map(move |j| vec![i as f64, j as f64]))
            .filter(|p| p[0] < p[1])
            .collect();
        let e = rel("E", pairs);
        let d: VarId = 3;
        let atoms = vec![
            BoundAtom::new(&e, vec![A, B]),
            BoundAtom::new(&e, vec![A, C]),
            BoundAtom::new(&e, vec![A, d]),
            BoundAtom::new(&e, vec![B, C]),
            BoundAtom::new(&e, vec![B, d]),
            BoundAtom::new(&e, vec![C, d]),
        ];
        assert!(generic_join_boolean(&atoms, None));
        let out = generic_join_enumerate(&atoms, &[A, B, C, d], "out");
        // Ordered 4-cliques with a < b < c < d: exactly one.
        assert_eq!(out.len(), 1);
    }
}
