//! Workspaces: the explicit owner of cross-evaluation state.
//!
//! A [`Workspace`] owns the two pieces of state that outlive a single
//! evaluation —
//!
//! 1. a **scoped value dictionary** ([`SharedDictionary`]): every database
//!    built through the workspace interns into it, the forward reduction
//!    writes its transformed database into the same dictionary, and dropping
//!    the workspace (together with the relations built in it) reclaims every
//!    value it interned.  Interned residency is bounded per workspace
//!    instead of accreting in the process-global store;
//! 2. a **shared, bytes-accounted trie cache** ([`TrieCache`]): every engine
//!    built from the workspace ([`Workspace::engine`]) evaluates against the
//!    same cache, so independently constructed engines warm one another —
//!    the per-request-engine server pattern gets warm caches for free, with
//!    eviction fairness handled by the single shared LRU running against the
//!    workspace's entry and byte budgets ([`WorkspaceLimits`]).
//!
//! [`Workspace::global`] is the compatibility shim: a workspace over the
//! process-global dictionary, so existing call sites migrate mechanically
//! (`Workspace::global().engine(config)` behaves like per-engine
//! construction except that the cache is shared process-wide).
//!
//! # Example
//!
//! ```
//! use ij_engine::{EngineConfig, Workspace};
//! use ij_relation::{Query, Value};
//!
//! let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
//! let ws = Workspace::new();
//! let mut db = ws.database();
//! let iv = |lo, hi| Value::interval(lo, hi);
//! db.insert_tuples("R", 2, vec![vec![iv(0.0, 4.0), iv(10.0, 14.0)]]);
//! db.insert_tuples("S", 2, vec![vec![iv(12.0, 13.0), iv(20.0, 25.0)]]);
//! db.insert_tuples("T", 2, vec![vec![iv(3.0, 5.0), iv(24.0, 26.0)]]);
//!
//! // Two independently constructed engines share the workspace's cache:
//! // the second engine's first evaluation is served warm.
//! let first = ws.engine(EngineConfig::new());
//! assert!(first.evaluate(&q, &db).unwrap());
//! let second = ws.engine(EngineConfig::new());
//! assert!(second.evaluate(&q, &db).unwrap());
//! assert!(ws.trie_cache_stats().hits > 0);
//!
//! // The workspace's interning never touched the global dictionary.
//! assert!(ws.dictionary_len() > 0);
//! ```

use crate::engine::{EngineConfig, IntersectionJoinEngine};
use ij_ejoin::{TrieCache, TrieCacheStats};
use ij_relation::{Database, Relation, SharedDictionary};
use std::sync::{Arc, OnceLock};

/// Resource limits of a [`Workspace`]'s shared trie cache.
///
/// The dictionary is not budgeted here: its residency is bounded by the
/// workspace's *lifetime* (drop the workspace, reclaim the values), which is
/// the scoping a per-database / per-tenant service wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkspaceLimits {
    /// Entry capacity of the shared trie cache (`0` = unbounded); the
    /// default matches [`EngineConfig::trie_cache_capacity`]'s default of
    /// 4096.
    pub trie_cache_capacity: usize,
    /// Byte budget of the shared trie cache (`0` = unbounded, the default):
    /// the estimated resident heap bytes of the cached tries never exceed
    /// it (see [`EngineConfig::trie_cache_bytes`] for the semantics).
    pub trie_cache_bytes: usize,
}

impl Default for WorkspaceLimits {
    fn default() -> Self {
        WorkspaceLimits {
            trie_cache_capacity: 4096,
            trie_cache_bytes: 0,
        }
    }
}

impl WorkspaceLimits {
    /// The default limits (4096 cache entries, no byte budget).
    pub fn new() -> Self {
        WorkspaceLimits::default()
    }

    /// These limits with an explicit trie-cache entry capacity.
    pub fn with_trie_cache_capacity(mut self, capacity: usize) -> Self {
        self.trie_cache_capacity = capacity;
        self
    }

    /// These limits with an explicit trie-cache byte budget.
    pub fn with_trie_cache_bytes(mut self, bytes: usize) -> Self {
        self.trie_cache_bytes = bytes;
        self
    }
}

/// The owner of cross-evaluation state: a scoped value dictionary plus a
/// shared, bytes-accounted trie cache (see the module docs).
///
/// Cloning is cheap and shares both: clones of one workspace are one
/// workspace.  The state is freed when the last clone *and* the last
/// relation/database built in the workspace drop.
#[derive(Debug, Clone)]
pub struct Workspace {
    dictionary: SharedDictionary,
    trie_cache: Arc<TrieCache>,
    limits: WorkspaceLimits,
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace::new()
    }
}

impl Workspace {
    /// A fresh workspace with the default [`WorkspaceLimits`] and an empty
    /// scoped dictionary.
    pub fn new() -> Self {
        Workspace::with_limits(WorkspaceLimits::default())
    }

    /// A fresh workspace with explicit limits.
    pub fn with_limits(limits: WorkspaceLimits) -> Self {
        Workspace {
            dictionary: SharedDictionary::new(),
            trie_cache: Arc::new(TrieCache::with_limits(
                limits.trie_cache_capacity,
                limits.trie_cache_bytes,
            )),
            limits,
        }
    }

    /// The process-global workspace: the compatibility shim over the global
    /// dictionary, with one process-wide shared trie cache at the default
    /// limits.  Its interned values live for the process — use scoped
    /// workspaces ([`Workspace::new`]) to bound residency.
    pub fn global() -> &'static Workspace {
        static GLOBAL: OnceLock<Workspace> = OnceLock::new();
        GLOBAL.get_or_init(|| Workspace {
            dictionary: SharedDictionary::global().clone(),
            trie_cache: Arc::new(TrieCache::with_limits(
                WorkspaceLimits::default().trie_cache_capacity,
                WorkspaceLimits::default().trie_cache_bytes,
            )),
            limits: WorkspaceLimits::default(),
        })
    }

    /// The limits this workspace was created with.
    pub fn limits(&self) -> WorkspaceLimits {
        self.limits
    }

    /// The workspace's value dictionary.
    pub fn dictionary(&self) -> &SharedDictionary {
        &self.dictionary
    }

    /// Number of distinct values currently interned in the workspace's
    /// dictionary (the workspace's interned residency; bounded by the
    /// workspace lifetime, not by a quota).
    pub fn dictionary_len(&self) -> usize {
        self.dictionary.len()
    }

    /// Cumulative statistics of the workspace's shared trie cache — the sum
    /// of the activity of every engine built from this workspace.
    pub fn trie_cache_stats(&self) -> TrieCacheStats {
        self.trie_cache.stats()
    }

    /// An empty database interning into the workspace's dictionary.
    pub fn database(&self) -> Database {
        Database::new_in(self.dictionary.clone())
    }

    /// An empty relation interning into the workspace's dictionary.
    pub fn relation(&self, name: impl Into<String>, arity: usize) -> Relation {
        Relation::new_in(name, arity, &self.dictionary)
    }

    /// Re-interns a database (typically built against the global dictionary,
    /// e.g. by a workload generator) into this workspace, so its evaluation
    /// stays scoped.  The per-value cost is one resolve + one intern; the
    /// source database is untouched.
    pub fn import_database(&self, db: &Database) -> Database {
        let mut out = self.database();
        for rel in db.relations() {
            out.insert(Relation::from_tuples_in(
                rel.name(),
                rel.arity(),
                rel.tuples(),
                &self.dictionary,
            ));
        }
        out
    }

    /// An engine evaluating against the workspace's shared trie cache:
    /// every engine built from one workspace warms every other, which is
    /// what gives a per-request-engine server warm caches by default.
    ///
    /// The cache budgets are the *workspace's* ([`WorkspaceLimits`]) — the
    /// config's [`EngineConfig::trie_cache_capacity`] /
    /// [`EngineConfig::trie_cache_bytes`] do not resize the shared cache.
    /// A zero `trie_cache_capacity` still opts this engine out of caching
    /// entirely (rebuild-per-disjunct), exactly like per-engine
    /// construction.
    pub fn engine(&self, config: EngineConfig) -> IntersectionJoinEngine {
        IntersectionJoinEngine::with_shared_cache(config, Arc::clone(&self.trie_cache))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_relation::{Query, Value};

    fn triangle_db(ws: &Workspace) -> (Query, Database) {
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let iv = |lo: f64, hi: f64| Value::interval(lo, hi);
        let mut db = ws.database();
        db.insert_tuples(
            "R",
            2,
            vec![
                vec![iv(0.0, 4.0), iv(10.0, 14.0)],
                vec![iv(100.0, 101.0), iv(200.0, 201.0)],
            ],
        );
        db.insert_tuples("S", 2, vec![vec![iv(12.0, 13.0), iv(20.0, 25.0)]]);
        db.insert_tuples("T", 2, vec![vec![iv(3.0, 5.0), iv(30.0, 31.0)]]);
        (q, db)
    }

    #[test]
    fn workspace_scoped_evaluation_never_touches_the_global_dictionary() {
        let ws = Workspace::new();
        assert_eq!(ws.dictionary_len(), 0);
        let (q, mut db) = triangle_db(&ws);
        // A value no other test in this binary interns: probing the global
        // dictionary for it is race-free under concurrent sibling tests
        // (comparing global *lengths* would not be — siblings intern their
        // own values at any time).  tests/workspace_properties.rs covers the
        // stronger length-invariance property under a serializing lock.
        let canary = Value::interval(777_000.25, 777_001.25);
        db.insert_tuples("T", 2, vec![vec![canary, canary]]);
        let after_ingest = ws.dictionary_len();
        assert!(after_ingest > 0);
        let engine = ws.engine(EngineConfig::new().with_parallelism(1));
        assert!(!engine.evaluate(&q, &db).unwrap());
        // The reduction interned its bitstrings into the workspace…
        assert!(ws.dictionary_len() > after_ingest);
        // …and nothing the workspace interned reached the global store.
        assert!(ws.dictionary().lookup(&canary).is_some());
        assert!(ij_relation::SharedDictionary::global()
            .lookup(&canary)
            .is_none());
    }

    #[test]
    fn engines_of_one_workspace_share_cache_warmth() {
        let ws = Workspace::new();
        let (q, db) = triangle_db(&ws);
        let first = ws.engine(EngineConfig::new().with_parallelism(1));
        let cold = first.evaluate_with_stats(&q, &db).unwrap();
        assert!(cold.trie_cache.misses > 0);
        // A *different* engine, same workspace: first evaluation runs warm.
        let second = ws.engine(EngineConfig::new().with_parallelism(1));
        let warm = second.evaluate_with_stats(&q, &db).unwrap();
        assert_eq!(warm.answer, cold.answer);
        assert_eq!(warm.trie_cache.misses, 0, "{:?}", warm.trie_cache);
        assert!(warm.trie_cache.hits > 0);
        // The workspace's cumulative stats see both engines.
        let total = ws.trie_cache_stats();
        assert_eq!(total.hits, cold.trie_cache.hits + warm.trie_cache.hits);
        assert_eq!(total.misses, cold.trie_cache.misses);
    }

    #[test]
    fn distinct_workspaces_do_not_share_cache_or_ids() {
        let a = Workspace::new();
        let b = Workspace::new();
        let (qa, dba) = triangle_db(&a);
        let (qb, dbb) = triangle_db(&b);
        let ea = a.engine(EngineConfig::new().with_parallelism(1));
        let eb = b.engine(EngineConfig::new().with_parallelism(1));
        assert_eq!(
            ea.evaluate(&qa, &dba).unwrap(),
            eb.evaluate(&qb, &dbb).unwrap()
        );
        // Each workspace warmed only its own cache.
        assert_eq!(a.trie_cache_stats().hits, b.trie_cache_stats().hits);
        assert!(a.trie_cache_stats().misses > 0);
        assert!(b.trie_cache_stats().misses > 0);
        assert_eq!(a.dictionary_len(), b.dictionary_len());
    }

    #[test]
    fn zero_capacity_config_opts_out_of_the_shared_cache() {
        let ws = Workspace::new();
        let (q, db) = triangle_db(&ws);
        let engine = ws.engine(
            EngineConfig::new()
                .with_parallelism(1)
                .with_trie_cache_capacity(0),
        );
        let stats = engine.evaluate_with_stats(&q, &db).unwrap();
        assert_eq!(stats.trie_cache, ij_ejoin::TrieCacheStats::default());
        assert_eq!(ws.trie_cache_stats().misses, 0);
    }

    #[test]
    fn workspace_limits_flow_into_the_shared_cache() {
        let ws = Workspace::with_limits(WorkspaceLimits::new().with_trie_cache_capacity(1));
        assert_eq!(ws.limits().trie_cache_capacity, 1);
        let (q, db) = triangle_db(&ws);
        let engine = ws.engine(EngineConfig::new().with_parallelism(1));
        assert!(!engine.evaluate(&q, &db).unwrap());
        let stats = ws.trie_cache_stats();
        assert_eq!(stats.entries, 1, "{stats:?}");
        assert!(stats.evictions > 0, "{stats:?}");
    }

    #[test]
    fn import_database_reinterns_into_the_workspace() {
        // Build against the global dictionary, import, evaluate scoped.
        let global_ws = Workspace::global();
        let q = Query::parse("R([A]) & S([A])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 1, vec![vec![Value::interval(0.0, 2.0)]]);
        db.insert_tuples("S", 1, vec![vec![Value::interval(1.0, 3.0)]]);
        assert!(global_ws.dictionary().is_global());

        let ws = Workspace::new();
        let imported = ws.import_database(&db);
        assert_eq!(imported.dictionary(), ws.dictionary());
        assert_eq!(imported.total_tuples(), db.total_tuples());
        assert_eq!(ws.dictionary_len(), 2);
        let engine = ws.engine(EngineConfig::new());
        assert!(engine.evaluate(&q, &imported).unwrap());
    }
}
