//! Workspaces: the explicit owner of cross-evaluation state.
//!
//! A [`Workspace`] owns the two pieces of state that outlive a single
//! evaluation —
//!
//! 1. a **scoped value dictionary** ([`SharedDictionary`]): every database
//!    built through the workspace interns into it, the forward reduction
//!    writes its transformed database into the same dictionary, and dropping
//!    the workspace (together with the relations built in it) reclaims every
//!    value it interned.  Interned residency is bounded per workspace
//!    instead of accreting in the process-global store;
//! 2. a **shared, bytes-accounted trie cache** ([`TrieCache`]): every engine
//!    built from the workspace ([`Workspace::engine`]) evaluates against the
//!    same cache, so independently constructed engines warm one another —
//!    the per-request-engine server pattern gets warm caches for free, with
//!    eviction fairness handled by the single shared LRU running against the
//!    workspace's entry and byte budgets ([`WorkspaceLimits`]).
//!
//! [`Workspace::global`] is the compatibility shim: a workspace over the
//! process-global dictionary, so existing call sites migrate mechanically
//! (`Workspace::global().engine(config)` behaves like per-engine
//! construction except that the cache is shared process-wide).
//!
//! # Example
//!
//! ```
//! use ij_engine::{EngineConfig, Workspace};
//! use ij_relation::{Query, Value};
//!
//! let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
//! let ws = Workspace::new();
//! let mut db = ws.database();
//! let iv = |lo, hi| Value::interval(lo, hi);
//! db.insert_tuples("R", 2, vec![vec![iv(0.0, 4.0), iv(10.0, 14.0)]]);
//! db.insert_tuples("S", 2, vec![vec![iv(12.0, 13.0), iv(20.0, 25.0)]]);
//! db.insert_tuples("T", 2, vec![vec![iv(3.0, 5.0), iv(24.0, 26.0)]]);
//!
//! // Two independently constructed engines share the workspace's cache:
//! // the second engine's first evaluation is served warm.
//! let first = ws.engine(EngineConfig::new());
//! assert!(first.evaluate(&q, &db).unwrap());
//! let second = ws.engine(EngineConfig::new());
//! assert!(second.evaluate(&q, &db).unwrap());
//! assert!(ws.trie_cache_stats().hits > 0);
//!
//! // The workspace's interning never touched the global dictionary.
//! assert!(ws.dictionary_len() > 0);
//! ```

use crate::engine::{EngineConfig, IntersectionJoinEngine};
use ij_ejoin::{TenantCacheStats, TenantId, TrieCache, TrieCacheStats};
use ij_relation::sync::lock_recover;

/// Lock class of the workspace's tenant name → id registry
/// (`sync::lock_order`); a leaf.
const WORKSPACE_TENANTS: &str = "workspace-tenants";
/// Lock class of the per-tenant default-deadline map (`sync::lock_order`);
/// a leaf.
const TENANT_DEADLINES: &str = "tenant-deadlines";
use ij_relation::{Database, IdHashMap, Relation, SharedDictionary, Value, ValueId};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Resource limits of a [`Workspace`]'s shared trie cache.
///
/// The dictionary is not budgeted here: its residency is bounded by the
/// workspace's *lifetime* (drop the workspace, reclaim the values), which is
/// the scoping a per-database / per-tenant service wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkspaceLimits {
    /// Entry capacity of the shared trie cache (`0` = unbounded); the
    /// default matches [`EngineConfig::trie_cache_capacity`]'s default of
    /// 4096.
    pub trie_cache_capacity: usize,
    /// Byte budget of the shared trie cache (`0` = unbounded, the default):
    /// the estimated resident heap bytes of the cached tries never exceed
    /// it (see [`EngineConfig::trie_cache_bytes`] for the semantics).
    pub trie_cache_bytes: usize,
}

impl Default for WorkspaceLimits {
    fn default() -> Self {
        WorkspaceLimits {
            trie_cache_capacity: 4096,
            trie_cache_bytes: 0,
        }
    }
}

impl WorkspaceLimits {
    /// The default limits (4096 cache entries, no byte budget).
    pub fn new() -> Self {
        WorkspaceLimits::default()
    }

    /// These limits with an explicit trie-cache entry capacity.
    pub fn with_trie_cache_capacity(mut self, capacity: usize) -> Self {
        self.trie_cache_capacity = capacity;
        self
    }

    /// These limits with an explicit trie-cache byte budget.
    pub fn with_trie_cache_bytes(mut self, bytes: usize) -> Self {
        self.trie_cache_bytes = bytes;
        self
    }
}

/// The owner of cross-evaluation state: a scoped value dictionary plus a
/// shared, bytes-accounted trie cache (see the module docs).
///
/// Cloning is cheap and shares both: clones of one workspace are one
/// workspace.  The state is freed when the last clone *and* the last
/// relation/database built in the workspace drop.
#[derive(Debug, Clone)]
pub struct Workspace {
    dictionary: SharedDictionary,
    trie_cache: Arc<TrieCache>,
    limits: WorkspaceLimits,
    /// Tenant-name registry: stable name→id assignment shared by all clones
    /// ([`Workspace::tenant`]).  Id `0` is reserved for [`TenantId::DEFAULT`]
    /// (the anonymous owner engines use when no tenant is configured).
    tenants: Arc<Mutex<HashMap<String, TenantId>>>,
    /// Per-tenant default deadline budgets ([`Tenant::set_default_deadline`]):
    /// engines built through a tenant handle inherit the tenant's default
    /// when their config sets none.
    deadlines: Arc<Mutex<HashMap<TenantId, Duration>>>,
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace::new()
    }
}

impl Workspace {
    /// A fresh workspace with the default [`WorkspaceLimits`] and an empty
    /// scoped dictionary.
    pub fn new() -> Self {
        Workspace::with_limits(WorkspaceLimits::default())
    }

    /// A fresh workspace with explicit limits.
    pub fn with_limits(limits: WorkspaceLimits) -> Self {
        Workspace {
            dictionary: SharedDictionary::new(),
            trie_cache: Arc::new(TrieCache::with_limits(
                limits.trie_cache_capacity,
                limits.trie_cache_bytes,
            )),
            limits,
            tenants: Arc::new(Mutex::new(HashMap::new())),
            deadlines: Arc::new(Mutex::new(HashMap::new())),
        }
    }

    /// The process-global workspace: the compatibility shim over the global
    /// dictionary, with one process-wide shared trie cache at the default
    /// limits.  Its interned values live for the process — use scoped
    /// workspaces ([`Workspace::new`]) to bound residency.
    pub fn global() -> &'static Workspace {
        static GLOBAL: OnceLock<Workspace> = OnceLock::new();
        GLOBAL.get_or_init(|| Workspace {
            dictionary: SharedDictionary::global().clone(),
            trie_cache: Arc::new(TrieCache::with_limits(
                WorkspaceLimits::default().trie_cache_capacity,
                WorkspaceLimits::default().trie_cache_bytes,
            )),
            limits: WorkspaceLimits::default(),
            tenants: Arc::new(Mutex::new(HashMap::new())),
            deadlines: Arc::new(Mutex::new(HashMap::new())),
        })
    }

    /// The limits this workspace was created with.
    pub fn limits(&self) -> WorkspaceLimits {
        self.limits
    }

    /// The workspace's value dictionary.
    pub fn dictionary(&self) -> &SharedDictionary {
        &self.dictionary
    }

    /// Number of distinct values currently interned in the workspace's
    /// dictionary (the workspace's interned residency; bounded by the
    /// workspace lifetime, not by a quota).
    pub fn dictionary_len(&self) -> usize {
        self.dictionary.len()
    }

    /// Estimated heap bytes of the workspace's dictionary — the interned
    /// values plus the value→id index maps, summed over every stripe
    /// ([`SharedDictionary::heap_bytes`]).  The byte-denominated companion
    /// of [`Workspace::dictionary_len`]: an operator can alert on a growing
    /// workspace (tenant) before it OOMs, complementing the trie cache's
    /// byte budget.
    pub fn dictionary_bytes(&self) -> usize {
        self.dictionary.heap_bytes()
    }

    /// Cumulative statistics of the workspace's shared trie cache — the sum
    /// of the activity of every engine built from this workspace.
    pub fn trie_cache_stats(&self) -> TrieCacheStats {
        self.trie_cache.stats()
    }

    /// A point-in-time operator snapshot of the workspace's resource state:
    /// dictionary residency (distinct values and estimated bytes) plus the
    /// shared trie cache's cumulative statistics.  [`WorkspaceStats`]
    /// implements [`std::fmt::Display`] for one-line dashboards.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats {
            dictionary_len: self.dictionary_len(),
            dictionary_bytes: self.dictionary_bytes(),
            trie_cache: self.trie_cache_stats(),
        }
    }

    /// A named tenant sub-handle of this workspace.  The first call with a
    /// given name registers it (ids are assigned densely and shared by every
    /// clone of the workspace); later calls return a handle to the same
    /// tenant.  Tenants share the workspace's dictionary and trie cache —
    /// they are an *accounting* scope, not an isolation scope: per-tenant
    /// cache activity is metered separately ([`Tenant::cache_stats`]) and a
    /// per-tenant byte quota ([`Tenant::set_trie_cache_quota`]) caps what
    /// one tenant may keep resident without touching its neighbors' warmth.
    pub fn tenant(&self, name: &str) -> Tenant {
        let mut registry = lock_recover(&self.tenants, WORKSPACE_TENANTS);
        let next = TenantId::from_raw(registry.len() as u32 + 1);
        let id = *registry.entry(name.to_string()).or_insert(next);
        Tenant {
            workspace: self.clone(),
            id,
            name: name.to_string(),
        }
    }

    /// An empty database interning into the workspace's dictionary.
    pub fn database(&self) -> Database {
        Database::new_in(self.dictionary.clone())
    }

    /// An empty relation interning into the workspace's dictionary.
    pub fn relation(&self, name: impl Into<String>, arity: usize) -> Relation {
        Relation::new_in(name, arity, &self.dictionary)
    }

    /// Re-interns a database (typically built against the global dictionary,
    /// e.g. by a workload generator) into this workspace, so its evaluation
    /// stays scoped.  The source database is untouched.
    ///
    /// The import works on id columns, not materialised `Value` rows: each
    /// source relation's dictionary is pinned **once**
    /// ([`SharedDictionary::reader`]) to bulk-resolve the relation's
    /// *distinct* ids, the pin is dropped, and only then are the resolved
    /// values interned into the workspace — so every distinct value pays
    /// exactly one resolve + one intern no matter how many rows repeat it,
    /// and no lock on the source store is ever held while writing the
    /// destination (two threads importing in opposite directions between two
    /// workspaces can therefore never deadlock).  Relations already interned
    /// into this workspace's dictionary are shared as-is (their ids are
    /// already valid here).
    pub fn import_database(&self, db: &Database) -> Database {
        let mut out = self.database();
        for rel in db.relations() {
            if rel.dictionary() == &self.dictionary {
                out.insert(rel.clone());
                continue;
            }
            // Pass 1: resolve each distinct source id once, under a single
            // pin of the source stripes — then release the pin before any
            // destination interning.
            let mut resolved: IdHashMap<ValueId, Value> = IdHashMap::default();
            {
                let source = rel.dictionary().reader();
                for c in 0..rel.arity() {
                    for &id in rel.column_ids(c) {
                        resolved.entry(id).or_insert_with(|| source.resolve(id));
                    }
                }
            }
            // Pass 2: intern each distinct value into the workspace.
            let translate: IdHashMap<ValueId, ValueId> = resolved
                .into_iter()
                .map(|(id, value)| (id, self.dictionary.intern(value)))
                .collect();
            let cols: Vec<Vec<ValueId>> = (0..rel.arity())
                .map(|c| rel.column_ids(c).iter().map(|id| translate[id]).collect())
                .collect();
            out.insert(Relation::from_id_columns_in(
                rel.name(),
                rel.len(),
                cols,
                &self.dictionary,
            ));
        }
        out
    }

    /// An engine evaluating against the workspace's shared trie cache:
    /// every engine built from one workspace warms every other, which is
    /// what gives a per-request-engine server warm caches by default.
    ///
    /// The cache budgets are the *workspace's* ([`WorkspaceLimits`]) — the
    /// config's [`EngineConfig::trie_cache_capacity`] /
    /// [`EngineConfig::trie_cache_bytes`] do not resize the shared cache.
    /// A zero `trie_cache_capacity` still opts this engine out of caching
    /// entirely (rebuild-per-disjunct), exactly like per-engine
    /// construction.
    pub fn engine(&self, config: EngineConfig) -> IntersectionJoinEngine {
        IntersectionJoinEngine::with_shared_cache(config, Arc::clone(&self.trie_cache))
    }
}

/// A named tenant of a [`Workspace`]: the accounting identity a multi-tenant
/// service hands to each of its tenants sharing one workspace.
///
/// Obtained from [`Workspace::tenant`].  Cloning is cheap and shares the
/// identity; a tenant handle is a workspace handle plus a registered
/// [`TenantId`], so everything built through it (databases, engines) lives
/// in the shared workspace — only the *metering* is per tenant:
///
/// * engines built with [`Tenant::engine`] tag every trie-cache lookup with
///   the tenant's id, so [`Tenant::cache_stats`] reports this tenant's
///   hits/misses/evictions and resident bytes exactly;
/// * [`Tenant::set_trie_cache_quota`] caps the bytes this tenant's inserts
///   may keep resident — an over-quota insert evicts the tenant's **own**
///   least-recently-used entries first, so a noisy tenant cannot strip its
///   neighbors' warmth (the workspace's pooled budgets remain the hard
///   ceiling).  Quotas bound memory, never correctness.
#[derive(Debug, Clone)]
pub struct Tenant {
    workspace: Workspace,
    id: TenantId,
    name: String,
}

impl Tenant {
    /// The registered tenant id (stable across [`Workspace::tenant`] calls
    /// with the same name on any clone of the workspace).
    pub fn id(&self) -> TenantId {
        self.id
    }

    /// The tenant name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The workspace this tenant belongs to.
    pub fn workspace(&self) -> &Workspace {
        &self.workspace
    }

    /// An engine whose evaluations run as this tenant: built against the
    /// workspace's shared cache ([`Workspace::engine`]) with
    /// [`EngineConfig::tenant`] filled in.  When the config sets no
    /// [`EngineConfig::deadline`], the tenant's [default
    /// deadline](Tenant::set_default_deadline) (if any) is inherited — an
    /// explicit config deadline always wins.
    pub fn engine(&self, config: EngineConfig) -> IntersectionJoinEngine {
        let mut config = config.with_tenant(self.id);
        if config.deadline.is_none() {
            config.deadline = self.default_deadline();
        }
        self.workspace.engine(config)
    }

    /// An empty database interning into the workspace's dictionary
    /// (tenants share the dictionary; see [`Workspace::database`]).
    pub fn database(&self) -> Database {
        self.workspace.database()
    }

    /// Re-interns a database into the workspace ([`Workspace::import_database`]).
    pub fn import_database(&self, db: &Database) -> Database {
        self.workspace.import_database(db)
    }

    /// Sets (or clears, with `0`) this tenant's byte quota on the
    /// workspace's shared trie cache (see
    /// [`TrieCache::set_tenant_quota`](ij_ejoin::TrieCache::set_tenant_quota)).
    pub fn set_trie_cache_quota(&self, bytes: usize) {
        self.workspace.trie_cache.set_tenant_quota(self.id, bytes);
    }

    /// This tenant with a byte quota set — the builder-style companion of
    /// [`Tenant::set_trie_cache_quota`].
    pub fn with_trie_cache_quota(self, bytes: usize) -> Self {
        self.set_trie_cache_quota(bytes);
        self
    }

    /// This tenant's current byte quota (`0` = none).
    pub fn trie_cache_quota(&self) -> usize {
        self.workspace.trie_cache.tenant_quota(self.id)
    }

    /// This tenant's ledger on the workspace's shared trie cache: its exact
    /// cumulative hits/misses/evictions, its resident entries and bytes, and
    /// its quota.
    pub fn cache_stats(&self) -> TenantCacheStats {
        self.workspace.trie_cache.tenant_stats(self.id)
    }

    /// Sets (or clears, with `None`) this tenant's **default deadline**: the
    /// per-evaluation budget engines built through [`Tenant::engine`]
    /// inherit when their [`EngineConfig::deadline`] is unset.  Shared by
    /// every clone of the workspace, so an operator can bound a tenant's
    /// evaluations service-wide without touching call sites.  Deadlines
    /// bound *latency*, never correctness: an evaluation either returns the
    /// correct answer in budget or fails with
    /// [`EvalError::DeadlineExceeded`](ij_relation::EvalError::DeadlineExceeded).
    pub fn set_default_deadline(&self, budget: Option<Duration>) {
        let mut deadlines = lock_recover(&self.workspace.deadlines, TENANT_DEADLINES);
        match budget {
            Some(budget) => {
                deadlines.insert(self.id, budget);
            }
            None => {
                deadlines.remove(&self.id);
            }
        }
    }

    /// This tenant with a default deadline set — the builder-style companion
    /// of [`Tenant::set_default_deadline`].
    pub fn with_default_deadline(self, budget: Duration) -> Self {
        self.set_default_deadline(Some(budget));
        self
    }

    /// This tenant's default deadline budget, if one is set.
    pub fn default_deadline(&self) -> Option<Duration> {
        lock_recover(&self.workspace.deadlines, TENANT_DEADLINES)
            .get(&self.id)
            .copied()
    }
}

/// An operator snapshot of a [`Workspace`]'s resource state
/// ([`Workspace::stats`]): dictionary residency in distinct values **and
/// estimated bytes** (values plus index maps, per stripe), and the shared
/// trie cache's cumulative statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Distinct values interned in the workspace's dictionary.
    pub dictionary_len: usize,
    /// Estimated heap bytes of the dictionary
    /// ([`Workspace::dictionary_bytes`]).
    pub dictionary_bytes: usize,
    /// Cumulative shared trie-cache statistics
    /// ([`Workspace::trie_cache_stats`]).
    pub trie_cache: TrieCacheStats,
}

impl std::fmt::Display for WorkspaceStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "dictionary: {} values ({:.1} KiB); trie cache: {} hits / {} misses, \
             {} evictions, {} entries resident ({:.1} KiB)",
            self.dictionary_len,
            self.dictionary_bytes as f64 / 1024.0,
            self.trie_cache.hits,
            self.trie_cache.misses,
            self.trie_cache.evictions,
            self.trie_cache.entries,
            self.trie_cache.resident_bytes as f64 / 1024.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_relation::{Query, Value};

    fn triangle_db(ws: &Workspace) -> (Query, Database) {
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let iv = |lo: f64, hi: f64| Value::interval(lo, hi);
        let mut db = ws.database();
        db.insert_tuples(
            "R",
            2,
            vec![
                vec![iv(0.0, 4.0), iv(10.0, 14.0)],
                vec![iv(100.0, 101.0), iv(200.0, 201.0)],
            ],
        );
        db.insert_tuples("S", 2, vec![vec![iv(12.0, 13.0), iv(20.0, 25.0)]]);
        db.insert_tuples("T", 2, vec![vec![iv(3.0, 5.0), iv(30.0, 31.0)]]);
        (q, db)
    }

    #[test]
    fn workspace_scoped_evaluation_never_touches_the_global_dictionary() {
        let ws = Workspace::new();
        assert_eq!(ws.dictionary_len(), 0);
        let (q, mut db) = triangle_db(&ws);
        // A value no other test in this binary interns: probing the global
        // dictionary for it is race-free under concurrent sibling tests
        // (comparing global *lengths* would not be — siblings intern their
        // own values at any time).  tests/workspace_properties.rs covers the
        // stronger length-invariance property under a serializing lock.
        let canary = Value::interval(777_000.25, 777_001.25);
        db.insert_tuples("T", 2, vec![vec![canary, canary]]);
        let after_ingest = ws.dictionary_len();
        assert!(after_ingest > 0);
        let engine = ws.engine(EngineConfig::new().with_parallelism(1));
        assert!(!engine.evaluate(&q, &db).unwrap());
        // The reduction interned its bitstrings into the workspace…
        assert!(ws.dictionary_len() > after_ingest);
        // …and nothing the workspace interned reached the global store.
        assert!(ws.dictionary().lookup(&canary).is_some());
        assert!(ij_relation::SharedDictionary::global()
            .lookup(&canary)
            .is_none());
    }

    #[test]
    fn engines_of_one_workspace_share_cache_warmth() {
        let ws = Workspace::new();
        let (q, db) = triangle_db(&ws);
        let first = ws.engine(EngineConfig::new().with_parallelism(1));
        let cold = first.evaluate_with_stats(&q, &db).unwrap();
        assert!(cold.trie_cache.misses > 0);
        // A *different* engine, same workspace: first evaluation runs warm.
        let second = ws.engine(EngineConfig::new().with_parallelism(1));
        let warm = second.evaluate_with_stats(&q, &db).unwrap();
        assert_eq!(warm.answer, cold.answer);
        assert_eq!(warm.trie_cache.misses, 0, "{:?}", warm.trie_cache);
        assert!(warm.trie_cache.hits > 0);
        // The workspace's cumulative stats see both engines.
        let total = ws.trie_cache_stats();
        assert_eq!(total.hits, cold.trie_cache.hits + warm.trie_cache.hits);
        assert_eq!(total.misses, cold.trie_cache.misses);
    }

    #[test]
    fn distinct_workspaces_do_not_share_cache_or_ids() {
        let a = Workspace::new();
        let b = Workspace::new();
        let (qa, dba) = triangle_db(&a);
        let (qb, dbb) = triangle_db(&b);
        let ea = a.engine(EngineConfig::new().with_parallelism(1));
        let eb = b.engine(EngineConfig::new().with_parallelism(1));
        assert_eq!(
            ea.evaluate(&qa, &dba).unwrap(),
            eb.evaluate(&qb, &dbb).unwrap()
        );
        // Each workspace warmed only its own cache.
        assert_eq!(a.trie_cache_stats().hits, b.trie_cache_stats().hits);
        assert!(a.trie_cache_stats().misses > 0);
        assert!(b.trie_cache_stats().misses > 0);
        assert_eq!(a.dictionary_len(), b.dictionary_len());
    }

    #[test]
    fn zero_capacity_config_opts_out_of_the_shared_cache() {
        let ws = Workspace::new();
        let (q, db) = triangle_db(&ws);
        let engine = ws.engine(
            EngineConfig::new()
                .with_parallelism(1)
                .with_trie_cache_capacity(0),
        );
        let stats = engine.evaluate_with_stats(&q, &db).unwrap();
        assert_eq!(stats.trie_cache, ij_ejoin::TrieCacheStats::default());
        assert_eq!(ws.trie_cache_stats().misses, 0);
    }

    #[test]
    fn workspace_limits_flow_into_the_shared_cache() {
        let ws = Workspace::with_limits(WorkspaceLimits::new().with_trie_cache_capacity(1));
        assert_eq!(ws.limits().trie_cache_capacity, 1);
        let (q, db) = triangle_db(&ws);
        let engine = ws.engine(EngineConfig::new().with_parallelism(1));
        assert!(!engine.evaluate(&q, &db).unwrap());
        let stats = ws.trie_cache_stats();
        assert_eq!(stats.entries, 1, "{stats:?}");
        assert!(stats.evictions > 0, "{stats:?}");
    }

    #[test]
    fn tenant_registration_is_stable_across_clones() {
        let ws = Workspace::new();
        let a = ws.tenant("alice");
        let b = ws.tenant("bob");
        assert_ne!(a.id(), b.id());
        assert_ne!(a.id(), ij_ejoin::TenantId::DEFAULT, "id 0 stays reserved");
        assert_eq!(a.name(), "alice");
        // Same name → same id, even through a workspace clone.
        let clone = ws.clone();
        assert_eq!(clone.tenant("alice").id(), a.id());
        assert_eq!(ws.tenant("bob").id(), b.id());
        // A different workspace assigns independently.
        let other = Workspace::new();
        assert_eq!(other.tenant("zoe").id(), a.id());
    }

    #[test]
    fn tenant_ledgers_meter_cache_activity_separately() {
        let ws = Workspace::new();
        let (q, db) = triangle_db(&ws);
        let alice = ws.tenant("alice");
        let bob = ws.tenant("bob");
        let cold = alice
            .engine(EngineConfig::new().with_parallelism(1))
            .evaluate_with_stats(&q, &db)
            .unwrap();
        assert!(cold.trie_cache.misses > 0);
        // Bob's first evaluation rides Alice's warmth: all hits — and they
        // land in *Bob's* ledger, not Alice's.
        let warm = bob
            .engine(EngineConfig::new().with_parallelism(1))
            .evaluate_with_stats(&q, &db)
            .unwrap();
        assert_eq!(warm.trie_cache.misses, 0, "{:?}", warm.trie_cache);
        let a = alice.cache_stats();
        let b = bob.cache_stats();
        assert_eq!(a.misses, cold.trie_cache.misses);
        assert_eq!(a.hits, cold.trie_cache.hits);
        assert_eq!(b.misses, 0);
        assert_eq!(b.hits, warm.trie_cache.hits);
        // Alice owns every resident entry; Bob inserted nothing.
        let pool = ws.trie_cache_stats();
        assert_eq!(a.entries, pool.entries);
        assert_eq!(a.resident_bytes, pool.resident_bytes);
        assert_eq!(b.entries, 0);
        assert_eq!(b.resident_bytes, 0);
        // The pooled counters are exactly the sum of the tenant ledgers.
        assert_eq!(pool.hits, a.hits + b.hits);
        assert_eq!(pool.misses, a.misses + b.misses);
    }

    #[test]
    fn workspace_stats_expose_dictionary_bytes() {
        let ws = Workspace::new();
        assert_eq!(ws.dictionary_bytes(), 0, "an empty workspace holds nothing");
        let (q, db) = triangle_db(&ws);
        let engine = ws.engine(EngineConfig::new().with_parallelism(1));
        let _ = engine.evaluate(&q, &db).unwrap();
        let stats = ws.stats();
        assert_eq!(stats.dictionary_len, ws.dictionary_len());
        assert!(stats.dictionary_bytes > 0);
        assert!(
            stats.dictionary_bytes >= stats.dictionary_len * std::mem::size_of::<Value>(),
            "bytes must cover at least the interned values themselves"
        );
        assert_eq!(stats.trie_cache, ws.trie_cache_stats());
        let line = stats.to_string();
        assert!(line.contains("dictionary:"), "{line}");
        assert!(line.contains("trie cache:"), "{line}");
    }

    #[test]
    fn import_database_shares_workspace_scoped_relations_as_is() {
        // Importing a database already scoped to this workspace must not
        // re-intern (and must not grow the dictionary).
        let ws = Workspace::new();
        let (_, db) = triangle_db(&ws);
        let before = ws.dictionary_len();
        let imported = ws.import_database(&db);
        assert_eq!(ws.dictionary_len(), before);
        assert_eq!(imported.total_tuples(), db.total_tuples());
        assert_eq!(imported.dictionary(), ws.dictionary());
    }

    #[test]
    fn concurrent_cross_directional_imports_cannot_deadlock() {
        // Regression: import_database once held the source dictionary's
        // all-stripe read pin while interning into the destination — two
        // threads importing in opposite directions between two workspaces
        // could each pin the other's read locks and block on the other's
        // write lock forever.  The import now drops the pin before any
        // destination interning; this completes (watchdog-bounded so a
        // regression fails loudly instead of hanging the suite).
        let a = Workspace::new();
        let b = Workspace::new();
        let (_, db_a) = triangle_db(&a);
        let (_, db_b) = triangle_db(&b);
        let (done_tx, done_rx) = std::sync::mpsc::channel();
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let (a, b) = (a.clone(), b.clone());
                let (db_a, db_b) = (db_a.clone(), db_b.clone());
                let done = done_tx.clone();
                scope.spawn(move || {
                    for _ in 0..50 {
                        let into_a = a.import_database(&db_b);
                        let into_b = b.import_database(&db_a);
                        assert_eq!(into_a.dictionary(), a.dictionary());
                        assert_eq!(into_b.dictionary(), b.dictionary());
                    }
                    done.send(()).unwrap();
                });
            }
            for _ in 0..2 {
                done_rx
                    .recv_timeout(std::time::Duration::from_secs(60))
                    .expect("cross-directional imports deadlocked");
            }
        });
    }

    #[test]
    fn tenant_default_deadlines_flow_into_engines() {
        let ws = Workspace::new();
        let alice = ws.tenant("alice");
        assert_eq!(alice.default_deadline(), None);
        alice.set_default_deadline(Some(Duration::from_millis(250)));
        assert_eq!(alice.default_deadline(), Some(Duration::from_millis(250)));
        // Engines inherit the default…
        let engine = alice.engine(EngineConfig::new());
        assert_eq!(engine.config().deadline, Some(Duration::from_millis(250)));
        // …an explicit config deadline wins…
        let explicit = alice.engine(EngineConfig::new().with_deadline(Duration::from_secs(5)));
        assert_eq!(explicit.config().deadline, Some(Duration::from_secs(5)));
        // …the default is shared across clones and handles of the tenant…
        assert_eq!(
            ws.clone().tenant("alice").default_deadline(),
            Some(Duration::from_millis(250))
        );
        // …other tenants are untouched, and clearing restores None.
        assert_eq!(ws.tenant("bob").default_deadline(), None);
        alice.set_default_deadline(None);
        assert_eq!(alice.default_deadline(), None);
    }

    #[test]
    fn tenant_deadline_bounds_evaluations_without_poisoning_the_workspace() {
        let ws = Workspace::new();
        let (q, db) = triangle_db(&ws);
        let strict = ws.tenant("strict").with_default_deadline(Duration::ZERO);
        let err = strict
            .engine(EngineConfig::new().with_parallelism(1))
            .evaluate(&q, &db)
            .expect_err("a zero budget must trip");
        assert!(
            matches!(
                err,
                crate::EngineError::Evaluation(ij_relation::EvalError::DeadlineExceeded { .. })
            ),
            "{err:?}"
        );
        // The workspace (cache, dictionary) stays fully usable afterwards.
        strict.set_default_deadline(None);
        assert!(!strict
            .engine(EngineConfig::new().with_parallelism(1))
            .evaluate(&q, &db)
            .unwrap());
    }

    #[test]
    fn import_database_reinterns_into_the_workspace() {
        // Build against the global dictionary, import, evaluate scoped.
        let global_ws = Workspace::global();
        let q = Query::parse("R([A]) & S([A])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 1, vec![vec![Value::interval(0.0, 2.0)]]);
        db.insert_tuples("S", 1, vec![vec![Value::interval(1.0, 3.0)]]);
        assert!(global_ws.dictionary().is_global());

        let ws = Workspace::new();
        let imported = ws.import_database(&db);
        assert_eq!(imported.dictionary(), ws.dictionary());
        assert_eq!(imported.total_tuples(), db.total_tuples());
        assert_eq!(ws.dictionary_len(), 2);
        let engine = ws.engine(EngineConfig::new());
        assert!(engine.evaluate(&q, &imported).unwrap());
    }
}
