//! The end-to-end intersection-join engine.
//!
//! [`IntersectionJoinEngine`] ties the pieces of the reproduction together:
//!
//! 1. [`IntersectionJoinEngine::analyze`] inspects a query: acyclicity class
//!    (Section 6), ij-width report (Definition 4.14) and the number of EJ
//!    queries the reduction will produce;
//! 2. [`IntersectionJoinEngine::evaluate`] answers the Boolean query through
//!    the forward reduction (Section 4) and the equality-join engine: each EJ
//!    query of the disjunction is evaluated (Yannakakis when α-acyclic,
//!    width-guided otherwise) with early exit on the first true disjunct —
//!    the `O(N^{ijw} polylog N)` algorithm of Theorem 4.15, which becomes
//!    `O(N polylog N)` for ι-acyclic queries (Theorem 6.6).
//!
//! Every evaluation is **cancellable**: the `*_cancellable` entry points take
//! a caller-owned [`CancellationToken`], [`EngineConfig::with_deadline`]
//! arms a per-evaluation time budget, and disjunct workers run
//! panic-isolated — failures surface as the typed
//! [`EvalError`](ij_relation::EvalError) taxonomy, never as a poisoned
//! engine.

use crate::naive::{naive_boolean, NaiveError};
use ij_ejoin::{
    evaluate_ej_boolean_with, BoundAtom, CacheActivity, EjStrategy, EvalContext, PlanActivity,
    TrieCache,
};
use ij_hypergraph::VarId;
use ij_hypergraph::{AcyclicityClass, AcyclicityReport};
use ij_reduction::{
    forward_reduction_with_token, EncodingStrategy, ForwardReduction, ReducedQuery,
    ReductionConfig, ReductionError, ReductionStats,
};
use ij_relation::sync::lock_recover;

/// Lock class of the worker pool's first-disjunct-error slot
/// (`sync::lock_order`); a leaf: held only to fold an error value.
const DISJUNCT_ERROR: &str = "disjunct-error";
use ij_relation::{panic_payload_string, CancellationToken, Database, EvalError, Query};
use ij_widths::{ij_width, IjWidthReport};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

pub use ij_ejoin::{
    DisjunctPlan, KernelChoices, PlanMode, TenantCacheStats, TenantId, TrieCacheStats, TrieLayout,
    FLAT_MIN_ROWS,
};
pub use ij_relation::kernels::{kernel_arm, KernelArm, FORCE_SCALAR_ENV};

/// The hardware thread count (1 when it cannot be determined).
fn hardware_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Configuration of the engine.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Strategy used for every EJ query of the disjunction.
    pub ej_strategy: EjStrategy,
    /// Deduplicate structurally identical EJ queries before evaluating
    /// (different permutations frequently produce the same query).
    pub dedupe_queries: bool,
    /// Encoding of the transformed relations (Section 1.1): flat (the
    /// paper's default) or the lossless per-variable decomposition, which is
    /// dramatically smaller for atoms with several interval variables.
    pub encoding: EncodingStrategy,
    /// Number of worker threads evaluating the EJ disjunction: `0` uses the
    /// available hardware parallelism, `1` evaluates sequentially, any other
    /// value caps the worker count.  The Boolean answer is identical for
    /// every setting; a true disjunct found by any worker stops the others
    /// at their next scheduling point.
    pub parallelism: usize,
    /// Capacity (entries) of the engine's **persistent** trie cache: one
    /// cache is created per engine and shared by every disjunct worker of
    /// every evaluation the engine runs.  Within one evaluation, disjuncts
    /// overwhelmingly share transformed relations, so the cache lets them
    /// share the *built tries* instead of rebuilding per disjunct; across
    /// evaluations, a service answering many queries over the same reduced
    /// database serves repeat trie builds straight from the cache (keys are
    /// relation *content* fingerprints, so reuse is sound regardless of
    /// which reduction produced a relation).  Once full, inserting evicts
    /// the least-recently-used entry.  `0` disables sharing entirely (every
    /// disjunct rebuilds its tries).  The Boolean answer is identical for
    /// every setting.
    ///
    /// ```
    /// use ij_engine::EngineConfig;
    ///
    /// assert_eq!(EngineConfig::new().trie_cache_capacity, 4096);
    /// let rebuild = EngineConfig::new().with_trie_cache_capacity(0);
    /// assert_eq!(rebuild.trie_cache_capacity, 0); // rebuild-per-disjunct
    /// ```
    pub trie_cache_capacity: usize,
    /// Byte budget of the persistent trie cache, the bytes-mode companion of
    /// [`EngineConfig::trie_cache_capacity`]: `0` (the default) bounds
    /// entries only, a non-zero value additionally caps the *estimated*
    /// resident heap bytes of the cached tries
    /// ([`ij_ejoin::AtomTrie::heap_bytes`]).  Inserting past the budget
    /// evicts least-recently-used entries until the new entry fits; a single
    /// build larger than the whole budget stays uncached.  This is the knob
    /// a service operator wants: a memory cap that holds regardless of how
    /// large the workload's tries are.  Resident bytes are reported in
    /// [`TrieCacheStats::resident_bytes`].  The Boolean answer is identical
    /// for every setting.
    ///
    /// ```
    /// use ij_engine::EngineConfig;
    ///
    /// assert_eq!(EngineConfig::new().trie_cache_bytes, 0); // entries-only
    /// let capped = EngineConfig::new().with_trie_cache_bytes(64 << 20);
    /// assert_eq!(capped.trie_cache_bytes, 64 << 20); // 64 MiB budget
    /// ```
    pub trie_cache_bytes: usize,
    /// Trie shard budget: `0` (the default) derives the budget from the
    /// shared thread budget — hardware threads divided by the disjunct
    /// worker count, so `workers × shards` never oversubscribes the machine
    /// — `1` builds each trie unsharded, `n` allows up to `n`
    /// hash-partitioned sub-tries built on scoped threads, with the join
    /// search fanned out shard by shard.  Within the budget the shard count
    /// is sized **per atom** from the relation sizes
    /// ([`ij_ejoin::effective_shard_count`]): relations too small to give
    /// every shard [`ij_ejoin::MIN_ROWS_PER_SHARD`] rows are built
    /// unsharded.  The Boolean answer is identical for every setting.
    ///
    /// ```
    /// use ij_engine::EngineConfig;
    ///
    /// assert_eq!(EngineConfig::new().trie_shards, 0);
    /// let sharded = EngineConfig::new().with_trie_shards(4);
    /// assert_eq!(sharded.trie_shards, 4);
    /// ```
    pub trie_shards: usize,
    /// The trie layout the generic join indexes its atoms with
    /// ([`TrieLayout`]): `Hash` builds `HashMap`-node tries (the behavioural
    /// reference), `Flat` builds CSR-style sorted-array tries whose candidate
    /// intersection leapfrogs with galloping seeks, and `Auto` (the default)
    /// picks per atom at build time — relations below
    /// [`FLAT_MIN_ROWS`](ij_ejoin::FLAT_MIN_ROWS) rows stay hash, everything
    /// else goes flat.  [`EvaluationStats::hash_layout_atoms`] /
    /// [`EvaluationStats::flat_layout_atoms`] report which layout the
    /// evaluation's joins actually ran on.  The Boolean answer is identical
    /// for every setting.
    ///
    /// ```
    /// use ij_engine::{EngineConfig, TrieLayout};
    ///
    /// assert_eq!(EngineConfig::new().trie_layout, TrieLayout::Auto);
    /// let flat = EngineConfig::new().with_trie_layout(TrieLayout::Flat);
    /// assert_eq!(flat.trie_layout, TrieLayout::Flat);
    /// ```
    pub trie_layout: TrieLayout,
    /// How each disjunct's generic-join variable order is chosen
    /// ([`PlanMode`]): `Adaptive` (the default) plans per disjunct at
    /// batch-build time from cheap statistics — per-variable minimum atom
    /// cardinality, vertex degree, connectivity — while `Fixed` keeps the
    /// historical increasing-identifier order (the order the forward
    /// reduction's dense renumbering produces), kept as the differential
    /// baseline.  Planning never changes answers, only the search order;
    /// [`EvaluationStats::disjuncts_planned`] /
    /// [`EvaluationStats::planning_nanos`] /
    /// [`EvaluationStats::planned_orders`] report what the planner did.
    ///
    /// ```
    /// use ij_engine::{EngineConfig, PlanMode};
    ///
    /// assert_eq!(EngineConfig::new().plan_mode, PlanMode::Adaptive);
    /// let fixed = EngineConfig::new().with_plan_mode(PlanMode::Fixed);
    /// assert_eq!(fixed.plan_mode, PlanMode::Fixed);
    /// ```
    pub plan_mode: PlanMode,
    /// The cache-accounting owner this engine's evaluations run as: every
    /// trie-cache lookup is metered into this tenant's ledger, and the
    /// tenant's byte quota (if one is set on the shared cache) governs what
    /// the engine's inserts may keep resident.  Defaults to
    /// [`TenantId::DEFAULT`]; multi-tenant services obtain per-tenant
    /// engines through `Workspace::tenant(name).engine(config)`, which fills
    /// this in.  Accounting never changes answers.
    ///
    /// ```
    /// use ij_engine::{EngineConfig, TenantId};
    ///
    /// assert_eq!(EngineConfig::new().tenant, TenantId::DEFAULT);
    /// let tagged = EngineConfig::new().with_tenant(TenantId::from_raw(7));
    /// assert_eq!(tagged.tenant.raw(), 7);
    /// ```
    pub tenant: TenantId,
    /// Per-evaluation deadline budget: `None` (the default) lets evaluations
    /// run to completion, `Some(budget)` starts a clock when an evaluation
    /// begins (covering both the forward reduction and the disjunct
    /// evaluation) and makes it return
    /// [`EvalError::DeadlineExceeded`](ij_relation::EvalError::DeadlineExceeded)
    /// once the budget has elapsed.  The deadline composes with a
    /// caller-supplied [`CancellationToken`] (whichever trips first wins),
    /// and cancellation latency is bounded by the token's check interval —
    /// see the [cancellation docs](ij_relation::CancellationToken).
    ///
    /// ```
    /// use ij_engine::EngineConfig;
    /// use std::time::Duration;
    ///
    /// assert_eq!(EngineConfig::new().deadline, None);
    /// let bounded = EngineConfig::new().with_deadline(Duration::from_millis(250));
    /// assert_eq!(bounded.deadline, Some(Duration::from_millis(250)));
    /// ```
    pub deadline: Option<Duration>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig::new()
    }
}

impl EngineConfig {
    /// The default configuration: deduplication enabled, the flat encoding,
    /// hardware parallelism across disjuncts, a 4096-entry persistent trie
    /// cache and budget-derived trie sharding (`trie_shards = 0`: whatever
    /// hardware threads the disjunct workers leave unused go to sharded trie
    /// builds, and never more).
    pub fn new() -> Self {
        EngineConfig {
            ej_strategy: EjStrategy::Auto,
            dedupe_queries: true,
            encoding: EncodingStrategy::Flat,
            parallelism: 0,
            trie_cache_capacity: 4096,
            trie_cache_bytes: 0,
            trie_shards: 0,
            trie_layout: TrieLayout::Auto,
            plan_mode: PlanMode::Adaptive,
            tenant: TenantId::DEFAULT,
            deadline: None,
        }
    }

    /// The default configuration but with the decomposed (Id-based) encoding,
    /// recommended for queries whose atoms contain several high-degree
    /// interval variables (e.g. the Loomis–Whitney and clique queries).
    pub fn decomposed() -> Self {
        EngineConfig {
            encoding: EncodingStrategy::Decomposed,
            ..EngineConfig::new()
        }
    }

    /// This configuration with an explicit disjunct-evaluation worker count.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// This configuration with an explicit trie-cache capacity (`0` disables
    /// trie sharing; see [`EngineConfig::trie_cache_capacity`]).
    pub fn with_trie_cache_capacity(mut self, capacity: usize) -> Self {
        self.trie_cache_capacity = capacity;
        self
    }

    /// This configuration with an explicit trie-cache byte budget (`0` =
    /// entries-only bounding; see [`EngineConfig::trie_cache_bytes`]).
    pub fn with_trie_cache_bytes(mut self, bytes: usize) -> Self {
        self.trie_cache_bytes = bytes;
        self
    }

    /// This configuration with an explicit trie shard count (`0` = hardware
    /// parallelism; see [`EngineConfig::trie_shards`]).
    pub fn with_trie_shards(mut self, shards: usize) -> Self {
        self.trie_shards = shards;
        self
    }

    /// This configuration with an explicit trie layout (see
    /// [`EngineConfig::trie_layout`]).
    pub fn with_trie_layout(mut self, layout: TrieLayout) -> Self {
        self.trie_layout = layout;
        self
    }

    /// This configuration with an explicit plan mode (see
    /// [`EngineConfig::plan_mode`]).
    pub fn with_plan_mode(mut self, mode: PlanMode) -> Self {
        self.plan_mode = mode;
        self
    }

    /// This configuration running as an explicit cache-accounting tenant
    /// (see [`EngineConfig::tenant`]).
    pub fn with_tenant(mut self, tenant: TenantId) -> Self {
        self.tenant = tenant;
        self
    }

    /// This configuration with a per-evaluation deadline budget (see
    /// [`EngineConfig::deadline`]).
    pub fn with_deadline(mut self, budget: Duration) -> Self {
        self.deadline = Some(budget);
        self
    }

    /// The worker count to use for `disjuncts` deduplicated EJ queries.
    fn worker_count(&self, disjuncts: usize) -> usize {
        let requested = if self.parallelism == 0 {
            hardware_parallelism()
        } else {
            self.parallelism
        };
        requested.min(disjuncts).max(1)
    }

    /// The trie shard budget for an evaluation run by `workers` disjunct
    /// workers: the configured [`EngineConfig::trie_shards`] when explicit,
    /// otherwise the share of the hardware threads each worker can spend on
    /// sharded builds without oversubscribing the machine
    /// (`hardware / workers`, at least 1).  `workers × shard_budget` never
    /// exceeds the hardware parallelism in the derived case.
    fn shard_budget(&self, workers: usize) -> usize {
        match self.trie_shards {
            0 => (hardware_parallelism() / workers.max(1)).max(1),
            n => n,
        }
    }
}

/// Errors raised by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The forward reduction failed.
    Reduction(ReductionError),
    /// The naive reference evaluator failed.
    Naive(NaiveError),
    /// The evaluation stopped without an answer: cancelled, past its
    /// deadline, or a panic-isolated worker failure (see [`EvalError`]).
    /// Interruptions *during the reduction phase* are reported through this
    /// variant too, so callers match one variant for the whole cancellation
    /// taxonomy.
    Evaluation(EvalError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Reduction(e) => write!(f, "{e}"),
            EngineError::Naive(e) => write!(f, "{e}"),
            EngineError::Evaluation(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Reduction(e) => Some(e),
            EngineError::Naive(e) => Some(e),
            EngineError::Evaluation(e) => Some(e),
        }
    }
}

impl From<ReductionError> for EngineError {
    fn from(e: ReductionError) -> Self {
        // An interruption that happened to surface during the reduction
        // phase is still a cancellation/deadline/panic event: report it
        // uniformly through `Evaluation`.
        match e {
            ReductionError::Interrupted(inner) => EngineError::Evaluation(inner),
            other => EngineError::Reduction(other),
        }
    }
}

impl From<NaiveError> for EngineError {
    fn from(e: NaiveError) -> Self {
        EngineError::Naive(e)
    }
}

impl From<EvalError> for EngineError {
    fn from(e: EvalError) -> Self {
        EngineError::Evaluation(e)
    }
}

/// Static analysis of a query.
#[derive(Debug, Clone)]
pub struct QueryAnalysis {
    /// Acyclicity classification of the query hypergraph (Section 6).
    pub acyclicity: AcyclicityReport,
    /// The ij-width report (Definition 4.14).
    pub ij_width: IjWidthReport,
    /// Whether Theorem 6.6 guarantees near-linear evaluation.
    pub linear_time: bool,
}

impl QueryAnalysis {
    /// A one-line summary such as
    /// `"iota-acyclic, ijw = 1 → O(N·polylog N)"`.
    pub fn summary(&self) -> String {
        format!(
            "{}, ijw = {:.4} → O(N^{:.4}·polylog N)",
            self.acyclicity.class, self.ij_width.value, self.ij_width.value
        )
    }
}

/// Runtime statistics of one evaluation.
#[derive(Debug, Clone)]
pub struct EvaluationStats {
    /// Statistics of the forward reduction.
    pub reduction: ReductionStats,
    /// Number of EJ queries actually evaluated (early exit stops at the
    /// first true disjunct).
    pub ej_queries_evaluated: usize,
    /// Number of EJ queries in the disjunction after deduplication.
    pub ej_queries_total: usize,
    /// Number of scheduling batches the disjuncts were grouped into (one
    /// batch per distinct set of referenced transformed relations — the unit
    /// a worker pulls, so trie reuse within a batch is maximal; oversized
    /// batches are split when that would otherwise leave workers idle).
    pub ej_query_batches: usize,
    /// This evaluation's activity on the engine's **persistent** trie cache:
    /// the hit/miss/eviction counters are **exact** — accumulated by this
    /// evaluation's own lookups through an evaluation-local
    /// [`CacheActivity`] accumulator, not inferred from snapshots of the
    /// shared cache's counters — so they are correct under any concurrency:
    /// evaluations running in parallel against one cache (on this engine, a
    /// clone of it, or any engine built from the same
    /// [`Workspace`](crate::Workspace)) never report each other's hits,
    /// misses or evictions.  `entries` and `resident_bytes` are the cache's
    /// resident state when the evaluation finished.  All zeros when
    /// [`EngineConfig::trie_cache_capacity`] is `0`.  A warm evaluation of a
    /// previously-seen reduction reports hits with no misses.
    pub trie_cache: TrieCacheStats,
    /// Atom-trie uses of this evaluation that ran on the hash layout
    /// (counted once per atom per evaluated disjunct, whether the tries came
    /// from the cache or were built fresh).  With the default
    /// [`TrieLayout::Auto`] this is the small-relation share of the
    /// workload; an explicit layout drives one of the two counters to zero.
    pub hash_layout_atoms: usize,
    /// Atom-trie uses of this evaluation that ran on the flat (CSR leapfrog)
    /// layout.
    pub flat_layout_atoms: usize,
    /// The [`PlanMode`] this evaluation ran under.
    pub plan_mode: PlanMode,
    /// Disjuncts whose variable order went through the adaptive planner
    /// (0 under [`PlanMode::Fixed`]; the decomposition strategy plans per
    /// materialised bag, so the count can exceed the disjunct count).
    pub disjuncts_planned: usize,
    /// Total time the adaptive planner spent choosing orders, in
    /// nanoseconds — exact, accumulated by this evaluation's own planning
    /// calls like the cache counters.
    pub planning_nanos: u64,
    /// The distinct variable orders the planner chose, in first-seen order
    /// (batches of isomorphic disjuncts collapse to one entry).  Empty under
    /// [`PlanMode::Fixed`].
    pub planned_orders: Vec<Vec<VarId>>,
    /// The intersection-kernel dispatch arm that served this evaluation
    /// ([`kernel_arm`]): AVX2 on hosts that have it, scalar otherwise or
    /// under the [`FORCE_SCALAR_ENV`] override.
    pub kernel_arm: KernelArm,
    /// The answer.
    pub answer: bool,
}

impl EvaluationStats {
    /// A human-readable multi-line summary of the evaluation: the answer,
    /// the disjunct/batch counts, the reduction size, and the trie-cache
    /// activity including resident bytes and evictions.  [`EvaluationStats`]
    /// also implements [`std::fmt::Display`] with this content, so it can be
    /// printed directly.
    pub fn summary(&self) -> String {
        format!("{self}")
    }
}

impl std::fmt::Display for EvaluationStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "answer = {}", self.answer)?;
        writeln!(
            f,
            "{} transformed tuples; {}/{} EJ disjuncts evaluated (early exit) in {} batches",
            self.reduction.transformed_tuples,
            self.ej_queries_evaluated,
            self.ej_queries_total,
            self.ej_query_batches
        )?;
        writeln!(
            f,
            "trie cache: {} hits / {} misses ({:.0}% of builds shared), \
             {} evictions; {} tries resident ({:.1} KiB)",
            self.trie_cache.hits,
            self.trie_cache.misses,
            100.0 * self.trie_cache.hit_rate(),
            self.trie_cache.evictions,
            self.trie_cache.entries,
            self.trie_cache.resident_bytes as f64 / 1024.0
        )?;
        writeln!(
            f,
            "trie layouts: {} hash / {} flat atom uses",
            self.hash_layout_atoms, self.flat_layout_atoms
        )?;
        write!(
            f,
            "plan: {} ({} disjuncts planned in {:.1} µs, {} distinct orders); kernels: {}",
            self.plan_mode,
            self.disjuncts_planned,
            self.planning_nanos as f64 / 1e3,
            self.planned_orders.len(),
            self.kernel_arm
        )
    }
}

/// What a successful evaluation of a reduction produces: the Boolean answer
/// plus runtime statistics.  The fallible entry points return
/// `Result<EvaluationOutcome, EvalError>`; the alias names the Ok side of
/// that contract.
pub type EvaluationOutcome = EvaluationStats;

/// Folds a worker's error into the evaluation's single reported error slot,
/// preferring a diagnostic (`WorkerPanicked`, `DeadlineExceeded`) over the
/// `Cancelled` it induced in sibling workers.
fn fold_error(slot: &mut Option<EvalError>, e: EvalError) {
    let prefer = match (&slot, &e) {
        (None, _) => true,
        (Some(EvalError::Cancelled), other) => !matches!(other, EvalError::Cancelled),
        _ => false,
    };
    if prefer {
        *slot = Some(e);
    }
}

/// The intersection-join query engine.
///
/// The engine owns a **persistent** [`TrieCache`] (sized by
/// [`EngineConfig::trie_cache_capacity`]) that survives across evaluations:
/// repeated queries over the same reduced database reuse built tries instead
/// of rebuilding them.  Cloning an engine shares the cache — sound, because
/// cache keys are relation content fingerprints — so cheap per-thread clones
/// all warm one cache.
#[derive(Debug, Clone)]
pub struct IntersectionJoinEngine {
    config: EngineConfig,
    /// The persistent cross-evaluation trie cache (`None` when disabled via
    /// a zero capacity).
    trie_cache: Option<Arc<TrieCache>>,
}

impl Default for IntersectionJoinEngine {
    fn default() -> Self {
        IntersectionJoinEngine::with_defaults()
    }
}

impl IntersectionJoinEngine {
    /// Creates an engine with the given configuration (allocating its
    /// persistent trie cache — bounded by the configured entry capacity and
    /// byte budget — when the configured capacity is non-zero).  Engines that
    /// should *share* a cache are built from one
    /// [`Workspace`](crate::Workspace) instead.
    pub fn new(config: EngineConfig) -> Self {
        let trie_cache = (config.trie_cache_capacity > 0).then(|| {
            Arc::new(TrieCache::with_limits(
                config.trie_cache_capacity,
                config.trie_cache_bytes,
            ))
        });
        IntersectionJoinEngine { config, trie_cache }
    }

    /// Creates an engine evaluating against an externally owned — typically
    /// [`Workspace`](crate::Workspace)-shared — trie cache, so independently
    /// constructed engines warm one another.  A zero
    /// [`EngineConfig::trie_cache_capacity`] still opts out of caching
    /// entirely (the shared handle is ignored).
    pub(crate) fn with_shared_cache(config: EngineConfig, cache: Arc<TrieCache>) -> Self {
        let trie_cache = (config.trie_cache_capacity > 0).then_some(cache);
        IntersectionJoinEngine { config, trie_cache }
    }

    /// Creates an engine with the default configuration.
    pub fn with_defaults() -> Self {
        IntersectionJoinEngine::new(EngineConfig::new())
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Cumulative statistics of the engine's persistent trie cache over its
    /// whole lifetime (all zeros when the cache is disabled).  Exact
    /// per-evaluation counters are reported in
    /// [`EvaluationStats::trie_cache`].
    pub fn trie_cache_stats(&self) -> TrieCacheStats {
        self.trie_cache
            .as_ref()
            .map(|c| c.stats())
            .unwrap_or_default()
    }

    /// Static analysis: acyclicity, ij-width and the runtime regime.
    ///
    /// The analysis is data-independent (it only looks at the query
    /// hypergraph) and exponential in the query size only, exactly like the
    /// reduction itself.
    pub fn analyze(&self, query: &Query) -> QueryAnalysis {
        let (h, _) = query.hypergraph();
        let acyclicity = AcyclicityReport::of(&h);
        let ij_width = ij_width(&h);
        let linear_time = matches!(
            acyclicity.class,
            AcyclicityClass::BergeAcyclic | AcyclicityClass::IotaAcyclic
        );
        QueryAnalysis {
            acyclicity,
            ij_width,
            linear_time,
        }
    }

    /// Evaluates a Boolean EIJ query over an interval database through the
    /// forward reduction.
    pub fn evaluate(&self, query: &Query, db: &Database) -> Result<bool, EngineError> {
        Ok(self.evaluate_with_stats(query, db)?.answer)
    }

    /// [`IntersectionJoinEngine::evaluate`] under a caller-owned
    /// [`CancellationToken`]: cancelling the token (from any thread) makes
    /// the evaluation return [`EngineError::Evaluation`]`(`[`EvalError::Cancelled`]`)`
    /// within the token's check-interval latency bound.  The engine works on
    /// a *child* of the caller's token, so internal cancellation (e.g. after
    /// a worker panic) never trips the caller's token.
    pub fn evaluate_cancellable(
        &self,
        query: &Query,
        db: &Database,
        token: Option<&CancellationToken>,
    ) -> Result<bool, EngineError> {
        Ok(self
            .evaluate_with_stats_cancellable(query, db, token)?
            .answer)
    }

    /// Evaluates the query and returns runtime statistics.
    pub fn evaluate_with_stats(
        &self,
        query: &Query,
        db: &Database,
    ) -> Result<EvaluationStats, EngineError> {
        self.evaluate_with_stats_cancellable(query, db, None)
    }

    /// [`IntersectionJoinEngine::evaluate_with_stats`] under a caller-owned
    /// [`CancellationToken`] (see
    /// [`evaluate_cancellable`](IntersectionJoinEngine::evaluate_cancellable)).
    /// The [`EngineConfig::deadline`] clock starts here, covering the forward
    /// reduction *and* the disjunct evaluation.
    pub fn evaluate_with_stats_cancellable(
        &self,
        query: &Query,
        db: &Database,
        token: Option<&CancellationToken>,
    ) -> Result<EvaluationStats, EngineError> {
        let local = self.local_token(token);
        // The forward reduction runs on the caller's thread; isolate it like
        // a worker so an injected (or genuine) panic inside a per-relation
        // transform surfaces as a typed error instead of unwinding through
        // the caller.  Poison-recovering lock helpers keep the shared
        // dictionary usable afterwards.
        let reduction = catch_unwind(AssertUnwindSafe(|| {
            forward_reduction_with_token(
                query,
                db,
                ReductionConfig {
                    encoding: self.config.encoding,
                },
                Some(&local),
            )
        }))
        .unwrap_or_else(|payload| {
            Err(ReductionError::Interrupted(EvalError::WorkerPanicked {
                atom: "forward reduction".to_string(),
                payload: panic_payload_string(payload.as_ref()),
            }))
        })?;
        Ok(self.run_reduction(&reduction, &local)?)
    }

    /// Evaluates an already-computed forward reduction (useful when the same
    /// reduced database is probed several times, e.g. in benchmarks).
    ///
    /// The deduplicated disjuncts are grouped into **batches** by the set of
    /// transformed relations they reference (disjuncts produced by different
    /// permutations overwhelmingly share relations), and the batches are
    /// evaluated by [`EngineConfig::parallelism`] workers pulling one batch
    /// per shared atomic work-index increment; the first worker to find a
    /// true disjunct flips an [`AtomicBool`] that stops the others at their
    /// next scheduling point (between disjuncts within a batch, and between
    /// batches).  All workers share the engine's **persistent**
    /// [`TrieCache`] (sized by [`EngineConfig::trie_cache_capacity`]), so a
    /// trie built for one disjunct is reused by every later disjunct of this
    /// *and every subsequent* evaluation — batch grouping makes the reuse
    /// run hot within a worker's current batch, and repeat evaluations of
    /// the same reduction run warm end to end.  Worker and trie-shard
    /// threads draw from one budget: with the default `trie_shards = 0`,
    /// `workers × shards` never exceeds the hardware parallelism.
    /// Grouping is a locality hint, not a parallelism constraint: when it
    /// yields fewer batches than workers, the largest batches are split so
    /// every worker stays busy.  The evaluation only *reads* the transformed
    /// relations' interned id columns, so the workers share the reduction
    /// without locking.
    ///
    /// # Errors
    ///
    /// Returns the typed [`EvalError`] taxonomy when the evaluation stops
    /// without an answer: [`EvalError::DeadlineExceeded`] once a configured
    /// [`EngineConfig::deadline`] elapses, or [`EvalError::WorkerPanicked`]
    /// when a disjunct worker panics (the panic is caught, its siblings are
    /// cancelled, and the engine — including its shared trie cache — stays
    /// fully usable).  Without a deadline this entry point cannot be
    /// cancelled externally; see
    /// [`evaluate_reduction_cancellable`](IntersectionJoinEngine::evaluate_reduction_cancellable).
    pub fn evaluate_reduction(
        &self,
        reduction: &ForwardReduction,
    ) -> Result<EvaluationOutcome, EvalError> {
        self.evaluate_reduction_cancellable(reduction, None)
    }

    /// [`IntersectionJoinEngine::evaluate_reduction`] under a caller-owned
    /// [`CancellationToken`]: the pool polls a *child* of `token` between
    /// disjuncts and inside every trie build and candidate-intersection loop,
    /// so a cancel (or the token's own deadline) surfaces within the
    /// check-interval latency bound, and internal cancellation after a
    /// worker panic never trips the caller's token.
    pub fn evaluate_reduction_cancellable(
        &self,
        reduction: &ForwardReduction,
        token: Option<&CancellationToken>,
    ) -> Result<EvaluationOutcome, EvalError> {
        let pool = self.local_token(token);
        self.run_reduction(reduction, &pool)
    }

    /// The evaluation-local token: a child of the caller's token (so the
    /// pool cancelling itself — e.g. after a worker panic — never poisons
    /// the caller's token for later evaluations), carrying the engine's
    /// configured deadline budget, if any, started **now**.
    fn local_token(&self, external: Option<&CancellationToken>) -> CancellationToken {
        let local = external.map(|t| t.child()).unwrap_or_default();
        match self.config.deadline {
            Some(budget) => local.with_budget(budget),
            None => local,
        }
    }

    /// The disjunct worker pool, running under the evaluation-local `pool`
    /// token (see [`IntersectionJoinEngine::evaluate_reduction_cancellable`]).
    fn run_reduction(
        &self,
        reduction: &ForwardReduction,
        pool: &CancellationToken,
    ) -> Result<EvaluationOutcome, EvalError> {
        // Deduplicate EJ queries that are literally identical (same relations
        // bound to the same variables).
        let to_run: Vec<usize> = if self.config.dedupe_queries {
            reduction.deduped_query_indices()
        } else {
            (0..reduction.queries.len()).collect()
        };
        let mut batches = Self::batch_by_shared_relations(reduction, &to_run);

        let workers = self.config.worker_count(to_run.len());
        // Shared thread budget: the disjunct workers and the per-trie shard
        // threads multiply, so the shard budget is what the workers leave of
        // the hardware parallelism (unless explicitly overridden).
        //
        // The activity accumulator makes this evaluation's cache statistics
        // exact: every lookup any of its workers performs is counted here,
        // so concurrent evaluations sharing the cache cannot pollute them.
        // The tenant ledger is resolved once for the whole evaluation, so
        // per-lookup metering never re-probes the cache's tenant registry.
        let activity = CacheActivity::new();
        let planning = PlanActivity::new();
        let tenant = self
            .trie_cache
            .as_ref()
            .map(|cache| cache.tenant_handle(self.config.tenant));
        let eval = EvalContext {
            cache: self.trie_cache.as_deref(),
            shards: self.config.shard_budget(workers),
            tenant: tenant.as_ref(),
            activity: Some(&activity),
            layout: self.config.trie_layout,
            token: Some(pool),
            plan_mode: self.config.plan_mode,
            planning: Some(&planning),
        };
        // Don't let grouping serialize the pool: as long as there are fewer
        // batches than workers, halve the largest splittable batch.  (The
        // shared cache still gives cross-batch trie reuse.)
        while !batches.is_empty() && batches.len() < workers {
            let largest = batches
                .iter()
                .enumerate()
                .max_by_key(|(_, b)| b.len())
                .map(|(i, _)| i)
                .expect("batches is non-empty");
            if batches[largest].len() <= 1 {
                break;
            }
            let mid = batches[largest].len() / 2;
            let half = batches[largest].split_off(mid);
            batches.insert(largest + 1, half);
        }
        let (evaluated, answer) = if workers <= 1 {
            let mut evaluated = 0usize;
            let mut answer = false;
            let mut first_error: Option<EvalError> = None;
            'outer: for batch in &batches {
                for &i in batch {
                    // Between-disjunct checkpoint: a long disjunction cancels
                    // promptly even when each disjunct is tiny.
                    if let Err(e) = pool.checkpoint() {
                        fold_error(&mut first_error, e);
                        break 'outer;
                    }
                    evaluated += 1;
                    match self.run_disjunct(reduction, i, eval, pool) {
                        Ok(true) => {
                            answer = true;
                            break 'outer;
                        }
                        Ok(false) => {}
                        Err(e) => {
                            fold_error(&mut first_error, e);
                            break 'outer;
                        }
                    }
                }
            }
            if !answer {
                if let Some(e) = first_error {
                    return Err(e);
                }
            }
            (evaluated, answer)
        } else {
            let next = AtomicUsize::new(0);
            let found = AtomicBool::new(false);
            let evaluated = AtomicUsize::new(0);
            let error: Mutex<Option<EvalError>> = Mutex::new(None);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| 'pull: loop {
                        if found.load(Ordering::Acquire) {
                            break;
                        }
                        if let Err(e) = pool.checkpoint() {
                            fold_error(&mut lock_recover(&error, DISJUNCT_ERROR), e);
                            break;
                        }
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        if slot >= batches.len() {
                            break;
                        }
                        for &i in &batches[slot] {
                            if found.load(Ordering::Acquire) {
                                break 'pull;
                            }
                            evaluated.fetch_add(1, Ordering::Relaxed);
                            match self.run_disjunct(reduction, i, eval, pool) {
                                Ok(true) => {
                                    found.store(true, Ordering::Release);
                                    break 'pull;
                                }
                                Ok(false) => {}
                                Err(e) => {
                                    // Stop the siblings promptly; fold_error's
                                    // precedence keeps this diagnostic over
                                    // the `Cancelled` it induces in them.
                                    pool.cancel();
                                    fold_error(&mut lock_recover(&error, DISJUNCT_ERROR), e);
                                    break 'pull;
                                }
                            }
                        }
                    });
                }
            });
            let first_error = lock_recover(&error, DISJUNCT_ERROR).take();
            let answer = found.into_inner();
            if !answer {
                if let Some(e) = first_error {
                    return Err(e);
                }
            }
            // A true disjunct is a witness regardless of what happened to the
            // sibling workers: true ∨ unknown = true.
            (evaluated.into_inner(), answer)
        };
        // Exact per-evaluation counters from the local accumulator; the
        // resident entry/byte state is a (consistent) snapshot of the shared
        // cache at completion time.
        let resident = self.trie_cache_stats();
        Ok(EvaluationStats {
            reduction: reduction.stats.clone(),
            ej_queries_evaluated: evaluated,
            ej_queries_total: to_run.len(),
            ej_query_batches: batches.len(),
            trie_cache: TrieCacheStats {
                hits: activity.hits(),
                misses: activity.misses(),
                evictions: activity.evictions(),
                entries: resident.entries,
                resident_bytes: resident.resident_bytes,
            },
            hash_layout_atoms: activity.hash_atoms(),
            flat_layout_atoms: activity.flat_atoms(),
            plan_mode: self.config.plan_mode,
            disjuncts_planned: planning.plans(),
            planning_nanos: planning.planning_nanos(),
            planned_orders: planning.orders(),
            kernel_arm: kernel_arm(),
            answer,
        })
    }

    /// Groups disjunct indices into batches sharing the same set of
    /// referenced transformed relations, preserving first-occurrence order
    /// (both of batches and within a batch).  Workers pull whole batches, so
    /// the tries a batch's first disjunct builds are cache-hot for the rest
    /// of the batch.
    fn batch_by_shared_relations(
        reduction: &ForwardReduction,
        to_run: &[usize],
    ) -> Vec<Vec<usize>> {
        use std::collections::{BTreeSet, HashMap};
        let mut batch_of: HashMap<BTreeSet<&str>, usize> = HashMap::new();
        let mut batches: Vec<Vec<usize>> = Vec::new();
        for &i in to_run {
            let key: BTreeSet<&str> = reduction.queries[i]
                .atoms
                .iter()
                .map(|a| a.relation.as_str())
                .collect();
            match batch_of.get(&key) {
                Some(&b) => batches[b].push(i),
                None => {
                    batch_of.insert(key, batches.len());
                    batches.push(vec![i]);
                }
            }
        }
        batches
    }

    /// Evaluates one EJ disjunct panic-isolated: a panic anywhere inside the
    /// evaluation is caught, reported as [`EvalError::WorkerPanicked`], and
    /// cancels the pool token so sibling workers stop at their next
    /// checkpoint.  `AssertUnwindSafe` is justified by the pipeline's
    /// panic-atomicity discipline: the evaluation only reads the reduction,
    /// and the shared trie cache mutates under panic-free critical sections
    /// (see `ij_relation::sync`), so no broken invariant can escape the
    /// unwind boundary.
    fn run_disjunct(
        &self,
        reduction: &ForwardReduction,
        index: usize,
        eval: EvalContext<'_>,
        pool: &CancellationToken,
    ) -> Result<bool, EvalError> {
        catch_unwind(AssertUnwindSafe(|| {
            self.evaluate_disjunct(reduction, &reduction.queries[index], eval)
        }))
        .unwrap_or_else(|payload| {
            pool.cancel();
            Err(EvalError::WorkerPanicked {
                atom: format!("disjunct {index}"),
                payload: panic_payload_string(payload.as_ref()),
            })
        })
    }

    /// Evaluates one EJ disjunct of a reduction.
    fn evaluate_disjunct(
        &self,
        reduction: &ForwardReduction,
        rq: &ReducedQuery,
        eval: EvalContext<'_>,
    ) -> Result<bool, EvalError> {
        let var_ids = rq.dense_var_ids();
        let atoms: Vec<BoundAtom<'_>> = rq
            .atoms
            .iter()
            .map(|a| {
                let rel = reduction
                    .database
                    .relation(&a.relation)
                    .expect("transformed relation exists");
                BoundAtom::new(rel, a.vars.iter().map(|v| var_ids[v.as_str()]).collect())
            })
            .collect();
        evaluate_ej_boolean_with(&atoms, self.config.ej_strategy, eval)
    }

    /// Evaluates the query with the naive reference evaluator (exhaustive
    /// backtracking).  Exposed for differential testing and baselines.
    pub fn evaluate_naive(&self, query: &Query, db: &Database) -> Result<bool, EngineError> {
        Ok(naive_boolean(query, db)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_relation::Value;

    fn iv(lo: f64, hi: f64) -> Value {
        Value::interval(lo, hi)
    }

    fn triangle_db(satisfiable: bool) -> (Query, Database) {
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let mut db = Database::new();
        db.insert_tuples(
            "R",
            2,
            vec![
                vec![iv(0.0, 4.0), iv(10.0, 14.0)],
                vec![iv(100.0, 101.0), iv(200.0, 201.0)],
            ],
        );
        db.insert_tuples("S", 2, vec![vec![iv(12.0, 13.0), iv(20.0, 25.0)]]);
        let c = if satisfiable {
            iv(24.0, 26.0)
        } else {
            iv(30.0, 31.0)
        };
        db.insert_tuples("T", 2, vec![vec![iv(3.0, 5.0), c]]);
        (q, db)
    }

    #[test]
    fn engine_agrees_with_naive_on_the_triangle() {
        let engine = IntersectionJoinEngine::with_defaults();
        for satisfiable in [true, false] {
            let (q, db) = triangle_db(satisfiable);
            let via_reduction = engine.evaluate(&q, &db).unwrap();
            let via_naive = engine.evaluate_naive(&q, &db).unwrap();
            assert_eq!(via_reduction, via_naive);
            assert_eq!(via_reduction, satisfiable);
        }
    }

    #[test]
    fn analysis_of_the_triangle() {
        let engine = IntersectionJoinEngine::with_defaults();
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let analysis = engine.analyze(&q);
        assert_eq!(analysis.acyclicity.class, AcyclicityClass::Cyclic);
        assert!((analysis.ij_width.value - 1.5).abs() < 1e-9);
        assert!(!analysis.linear_time);
        assert!(analysis.summary().contains("1.5"));
    }

    #[test]
    fn analysis_of_an_iota_acyclic_query() {
        let engine = IntersectionJoinEngine::with_defaults();
        // Figure 9d.
        let q = Query::parse("R([A],[B],[C]) & S([A],[B],[C]) & T([A])").unwrap();
        let analysis = engine.analyze(&q);
        assert!(analysis.linear_time);
        assert!(analysis.ij_width.is_linear_time());
    }

    #[test]
    fn evaluation_stats_expose_early_exit() {
        let engine = IntersectionJoinEngine::with_defaults();
        let (q, db) = triangle_db(true);
        let stats = engine.evaluate_with_stats(&q, &db).unwrap();
        assert!(stats.answer);
        assert!(stats.ej_queries_evaluated <= stats.ej_queries_total);
        assert_eq!(stats.reduction.num_queries, 8);

        let (q, db) = triangle_db(false);
        let stats = engine.evaluate_with_stats(&q, &db).unwrap();
        assert!(!stats.answer);
        // A false answer requires evaluating every (deduplicated) disjunct.
        assert_eq!(stats.ej_queries_evaluated, stats.ej_queries_total);
    }

    #[test]
    fn all_ej_strategies_agree() {
        for strategy in [
            EjStrategy::Auto,
            EjStrategy::GenericJoin,
            EjStrategy::Decomposition,
        ] {
            let engine = IntersectionJoinEngine::new(EngineConfig {
                ej_strategy: strategy,
                ..EngineConfig::new()
            });
            for satisfiable in [true, false] {
                let (q, db) = triangle_db(satisfiable);
                assert_eq!(
                    engine.evaluate(&q, &db).unwrap(),
                    satisfiable,
                    "{strategy:?}"
                );
            }
        }
    }

    #[test]
    fn flat_and_decomposed_encodings_agree() {
        let flat = IntersectionJoinEngine::with_defaults();
        let decomposed = IntersectionJoinEngine::new(EngineConfig::decomposed());
        for satisfiable in [true, false] {
            let (q, db) = triangle_db(satisfiable);
            assert_eq!(flat.evaluate(&q, &db).unwrap(), satisfiable);
            assert_eq!(decomposed.evaluate(&q, &db).unwrap(), satisfiable);
        }
    }

    #[test]
    fn parallel_and_sequential_disjunct_evaluation_agree() {
        for parallelism in [1usize, 2, 8] {
            let engine =
                IntersectionJoinEngine::new(EngineConfig::new().with_parallelism(parallelism));
            for satisfiable in [true, false] {
                let (q, db) = triangle_db(satisfiable);
                assert_eq!(
                    engine.evaluate(&q, &db).unwrap(),
                    satisfiable,
                    "parallelism {parallelism}"
                );
                let stats = engine.evaluate_with_stats(&q, &db).unwrap();
                assert_eq!(stats.answer, satisfiable);
                if !satisfiable {
                    // A false answer requires every disjunct to be evaluated,
                    // regardless of the worker count.
                    assert_eq!(stats.ej_queries_evaluated, stats.ej_queries_total);
                }
            }
        }
    }

    #[test]
    fn trie_cache_is_hit_on_a_disjunction_with_shared_atoms() {
        // Force a full pass over every disjunct (false answer) with one
        // worker: the disjuncts of the triangle reduction share transformed
        // relations, so later disjuncts must find earlier tries in the cache.
        let engine = IntersectionJoinEngine::new(EngineConfig::new().with_parallelism(1));
        let (q, db) = triangle_db(false);
        let stats = engine.evaluate_with_stats(&q, &db).unwrap();
        assert!(!stats.answer);
        assert!(
            stats.trie_cache.hits > 0,
            "expected cache hits, got {:?}",
            stats.trie_cache
        );
        assert!(stats.trie_cache.entries > 0);
        // Batching groups the disjuncts by referenced relation set (on the
        // triangle each disjunct's set is distinct, so batches == disjuncts;
        // the grouping itself is covered by `batching_groups_disjuncts_...`).
        assert!(stats.ej_query_batches >= 1);
        assert!(stats.ej_query_batches <= stats.ej_queries_total);

        // With the cache disabled, the same evaluation reports no activity.
        let rebuild = IntersectionJoinEngine::new(
            EngineConfig::new()
                .with_parallelism(1)
                .with_trie_cache_capacity(0),
        );
        let stats = rebuild.evaluate_with_stats(&q, &db).unwrap();
        assert!(!stats.answer);
        assert_eq!(stats.trie_cache, TrieCacheStats::default());
    }

    #[test]
    fn batching_groups_disjuncts_by_shared_relation_sets() {
        use ij_hypergraph::{Hypergraph, PermutationChoice, ReducedHypergraph};
        use ij_reduction::ReducedAtom;
        let structure = ReducedHypergraph {
            hypergraph: Hypergraph::new(),
            choice: PermutationChoice {
                permutations: std::collections::BTreeMap::new(),
            },
            edge_levels: vec![],
            vertex_origin: vec![],
        };
        let query = |relations: &[&str]| ReducedQuery {
            atoms: relations
                .iter()
                .map(|r| ReducedAtom {
                    relation: r.to_string(),
                    vars: vec!["X".to_string()],
                })
                .collect(),
            structure: structure.clone(),
        };
        let reduction = ForwardReduction {
            database: Database::new(),
            // Disjuncts 0 and 2 reference {R, S}; disjunct 1 references {R}.
            queries: vec![query(&["R", "S"]), query(&["R"]), query(&["S", "R"])],
            stats: ReductionStats::default(),
        };
        let batches = IntersectionJoinEngine::batch_by_shared_relations(&reduction, &[0, 1, 2]);
        assert_eq!(batches, vec![vec![0, 2], vec![1]]);
    }

    #[test]
    fn empty_reduction_evaluates_to_false_without_panicking() {
        // Regression: the batch-split loop must not touch an empty batch
        // list (worker_count(0) still returns 1).
        let reduction = ForwardReduction {
            database: Database::new(),
            queries: vec![],
            stats: ReductionStats::default(),
        };
        for parallelism in [1usize, 4] {
            let engine =
                IntersectionJoinEngine::new(EngineConfig::new().with_parallelism(parallelism));
            let stats = engine.evaluate_reduction(&reduction).unwrap();
            assert!(!stats.answer);
            assert_eq!(stats.ej_queries_total, 0);
            assert_eq!(stats.ej_query_batches, 0);
        }
    }

    #[test]
    fn oversized_batches_are_split_across_workers() {
        use ij_hypergraph::{Hypergraph, PermutationChoice, ReducedHypergraph};
        use ij_reduction::ReducedAtom;
        use ij_relation::{Relation, Value};
        // Four distinct disjuncts all referencing the same relation set
        // {R, S}: grouping alone would serialize them into one batch; with
        // more workers than batches the batch must be split so the pool
        // stays busy.  The instance is unsatisfiable, forcing a full pass.
        let structure = ReducedHypergraph {
            hypergraph: Hypergraph::new(),
            choice: PermutationChoice {
                permutations: std::collections::BTreeMap::new(),
            },
            edge_levels: vec![],
            vertex_origin: vec![],
        };
        let queries: Vec<ReducedQuery> = (0..4)
            .map(|i| ReducedQuery {
                atoms: vec![
                    ReducedAtom {
                        relation: "R".to_string(),
                        vars: vec![format!("X{i}")],
                    },
                    ReducedAtom {
                        relation: "S".to_string(),
                        vars: vec![format!("X{i}")],
                    },
                ],
                structure: structure.clone(),
            })
            .collect();
        let mut database = Database::new();
        database.insert(Relation::from_tuples("R", 1, vec![vec![Value::point(1.0)]]));
        database.insert(Relation::from_tuples("S", 1, vec![vec![Value::point(2.0)]]));
        let reduction = ForwardReduction {
            database,
            queries,
            stats: ReductionStats::default(),
        };
        let engine = IntersectionJoinEngine::new(EngineConfig::new().with_parallelism(8));
        let stats = engine.evaluate_reduction(&reduction).unwrap();
        assert!(!stats.answer);
        assert_eq!(stats.ej_queries_evaluated, 4);
        // One relation-set group, split into one batch per busy worker.
        assert_eq!(stats.ej_query_batches, 4);
    }

    #[test]
    fn shard_budget_is_shared_with_the_worker_pool() {
        let hw = hardware_parallelism();
        let auto = EngineConfig::new(); // trie_shards = 0: derived
        for workers in [1usize, 2, hw, hw + 3] {
            let budget = auto.shard_budget(workers);
            assert_eq!(budget, (hw / workers).max(1));
            if workers <= hw {
                assert!(
                    workers * budget <= hw,
                    "workers {workers} × budget {budget} oversubscribes {hw} threads"
                );
            }
        }
        // An explicit shard count is respected verbatim.
        assert_eq!(EngineConfig::new().with_trie_shards(7).shard_budget(3), 7);
        assert_eq!(EngineConfig::new().with_trie_shards(1).shard_budget(64), 1);
    }

    #[test]
    fn persistent_cache_survives_across_evaluations_and_clones() {
        let engine = IntersectionJoinEngine::new(EngineConfig::new().with_parallelism(1));
        let (q, db) = triangle_db(false);
        let first = engine.evaluate_with_stats(&q, &db).unwrap();
        assert!(first.trie_cache.misses > 0);
        // Second evaluation of the same reduction: all builds served warm.
        let second = engine.evaluate_with_stats(&q, &db).unwrap();
        assert_eq!(second.answer, first.answer);
        assert_eq!(second.trie_cache.misses, 0, "{:?}", second.trie_cache);
        assert!(second.trie_cache.hits > 0);
        // Clones share the cache: a clone's evaluation is warm too, and its
        // activity shows up in the original's cumulative stats.
        let clone = engine.clone();
        let cloned = clone.evaluate_with_stats(&q, &db).unwrap();
        assert_eq!(cloned.trie_cache.misses, 0);
        assert_eq!(
            engine.trie_cache_stats().hits,
            first.trie_cache.hits + second.trie_cache.hits + cloned.trie_cache.hits
        );
    }

    #[test]
    fn answers_identical_across_cache_shard_and_layout_settings() {
        for satisfiable in [true, false] {
            let (q, db) = triangle_db(satisfiable);
            for parallelism in [1usize, 2] {
                for shards in [0usize, 1, 2, 5] {
                    for capacity in [0usize, 1, 4096] {
                        for layout in [TrieLayout::Hash, TrieLayout::Flat, TrieLayout::Auto] {
                            let engine = IntersectionJoinEngine::new(
                                EngineConfig::new()
                                    .with_parallelism(parallelism)
                                    .with_trie_shards(shards)
                                    .with_trie_cache_capacity(capacity)
                                    .with_trie_layout(layout),
                            );
                            assert_eq!(
                                engine.evaluate(&q, &db).unwrap(),
                                satisfiable,
                                "parallelism {parallelism}, shards {shards}, \
                                 capacity {capacity}, layout {layout:?}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn layout_knob_is_reported_in_evaluation_stats() {
        let (q, db) = triangle_db(false); // false → every disjunct runs
                                          // An explicit flat layout runs every atom flat; the default Auto on
                                          // this tiny database resolves everything to hash.
        let flat = IntersectionJoinEngine::new(
            EngineConfig::new()
                .with_parallelism(1)
                .with_trie_layout(TrieLayout::Flat),
        );
        let stats = flat.evaluate_with_stats(&q, &db).unwrap();
        assert!(!stats.answer);
        assert!(stats.flat_layout_atoms > 0, "{stats:?}");
        assert_eq!(stats.hash_layout_atoms, 0, "{stats:?}");
        assert!(stats.summary().contains("flat atom uses"));
        let auto = IntersectionJoinEngine::new(EngineConfig::new().with_parallelism(1));
        let stats = auto.evaluate_with_stats(&q, &db).unwrap();
        assert!(stats.hash_layout_atoms > 0, "{stats:?}");
        assert_eq!(stats.flat_layout_atoms, 0, "{stats:?}");
    }

    #[test]
    fn answers_identical_across_plan_modes() {
        for satisfiable in [true, false] {
            let (q, db) = triangle_db(satisfiable);
            for strategy in [EjStrategy::Auto, EjStrategy::GenericJoin] {
                for mode in [PlanMode::Fixed, PlanMode::Adaptive] {
                    let engine = IntersectionJoinEngine::new(EngineConfig {
                        ej_strategy: strategy,
                        ..EngineConfig::new().with_plan_mode(mode)
                    });
                    assert_eq!(
                        engine.evaluate(&q, &db).unwrap(),
                        satisfiable,
                        "strategy {strategy:?}, mode {mode:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn plan_mode_is_reported_in_evaluation_stats() {
        let (q, db) = triangle_db(false); // false → every disjunct runs
        let adaptive = IntersectionJoinEngine::new(EngineConfig {
            ej_strategy: EjStrategy::GenericJoin,
            ..EngineConfig::new().with_parallelism(1)
        });
        let stats = adaptive.evaluate_with_stats(&q, &db).unwrap();
        assert_eq!(stats.plan_mode, PlanMode::Adaptive);
        assert!(stats.disjuncts_planned > 0, "{stats:?}");
        assert!(!stats.planned_orders.is_empty(), "{stats:?}");
        assert!(stats.summary().contains("plan: adaptive"), "{stats}");
        assert!(stats.summary().contains(kernel_arm().as_str()), "{stats}");

        let fixed = IntersectionJoinEngine::new(EngineConfig {
            ej_strategy: EjStrategy::GenericJoin,
            ..EngineConfig::new()
                .with_parallelism(1)
                .with_plan_mode(PlanMode::Fixed)
        });
        let stats = fixed.evaluate_with_stats(&q, &db).unwrap();
        assert_eq!(stats.plan_mode, PlanMode::Fixed);
        assert_eq!(stats.disjuncts_planned, 0, "{stats:?}");
        assert!(stats.planned_orders.is_empty(), "{stats:?}");
        assert_eq!(stats.planning_nanos, 0, "{stats:?}");
    }

    #[test]
    fn point_interval_database_degenerates_to_equality_joins() {
        // With point intervals the IJ triangle behaves exactly like the EJ
        // triangle (Section 1).
        let engine = IntersectionJoinEngine::with_defaults();
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let mut db = Database::new();
        let p = |x: f64| Value::Interval(ij_segtree::Interval::point(x));
        db.insert_tuples("R", 2, vec![vec![p(1.0), p(2.0)], vec![p(4.0), p(5.0)]]);
        db.insert_tuples("S", 2, vec![vec![p(2.0), p(3.0)]]);
        db.insert_tuples("T", 2, vec![vec![p(1.0), p(3.0)]]);
        assert!(engine.evaluate(&q, &db).unwrap());
        // Remove the closing edge.
        let mut db2 = db.clone();
        db2.insert_tuples("T", 2, vec![vec![p(1.0), p(9.0)]]);
        assert!(!engine.evaluate(&q, &db2).unwrap());
    }

    #[test]
    fn pre_cancelled_token_stops_evaluation_with_typed_error() {
        let token = CancellationToken::new();
        token.cancel();
        for parallelism in [1usize, 4] {
            let engine =
                IntersectionJoinEngine::new(EngineConfig::new().with_parallelism(parallelism));
            let (q, db) = triangle_db(true);
            let err = engine
                .evaluate_cancellable(&q, &db, Some(&token))
                .expect_err("cancelled token must not produce an answer");
            assert_eq!(
                err,
                EngineError::Evaluation(EvalError::Cancelled),
                "parallelism {parallelism}"
            );
        }
        // The engine worked on a child: the caller's token is merely
        // cancelled, not otherwise disturbed, and an un-cancelled token on
        // the same engine still evaluates fine.
        let engine = IntersectionJoinEngine::with_defaults();
        let (q, db) = triangle_db(true);
        let fresh = CancellationToken::new();
        assert!(engine.evaluate_cancellable(&q, &db, Some(&fresh)).unwrap());
    }

    #[test]
    fn zero_deadline_surfaces_as_deadline_exceeded() {
        for parallelism in [1usize, 4] {
            let engine = IntersectionJoinEngine::new(
                EngineConfig::new()
                    .with_parallelism(parallelism)
                    .with_deadline(Duration::ZERO),
            );
            let (q, db) = triangle_db(true);
            match engine.evaluate(&q, &db) {
                Err(EngineError::Evaluation(EvalError::DeadlineExceeded { budget, .. })) => {
                    assert_eq!(budget, Duration::ZERO);
                }
                other => panic!("expected DeadlineExceeded, got {other:?}"),
            }
        }
        // A generous deadline does not perturb the answer.
        let engine =
            IntersectionJoinEngine::new(EngineConfig::new().with_deadline(Duration::from_secs(60)));
        let (q, db) = triangle_db(true);
        assert!(engine.evaluate(&q, &db).unwrap());
    }

    #[test]
    fn engine_stays_usable_after_an_interrupted_evaluation() {
        // A deadline failure must leave the persistent cache consistent: the
        // same engine (deadline lifted via a sibling config sharing the
        // cache is not possible here, so use a pre-cancelled token instead)
        // answers correctly afterwards.
        let engine = IntersectionJoinEngine::new(EngineConfig::new().with_parallelism(2));
        let (q, db) = triangle_db(true);
        let token = CancellationToken::new();
        token.cancel();
        assert!(engine.evaluate_cancellable(&q, &db, Some(&token)).is_err());
        assert!(engine.evaluate(&q, &db).unwrap());
    }

    #[test]
    fn fold_error_prefers_diagnostics_over_induced_cancellation() {
        let panicked = || EvalError::WorkerPanicked {
            atom: "disjunct 3".into(),
            payload: "boom".into(),
        };
        let mut slot = None;
        fold_error(&mut slot, EvalError::Cancelled);
        assert_eq!(slot, Some(EvalError::Cancelled));
        // A diagnostic replaces the Cancelled it induced in siblings…
        fold_error(&mut slot, panicked());
        assert_eq!(slot, Some(panicked()));
        // …and the first diagnostic wins from then on.
        fold_error(
            &mut slot,
            EvalError::DeadlineExceeded {
                elapsed: Duration::from_secs(1),
                budget: Duration::ZERO,
            },
        );
        assert_eq!(slot, Some(panicked()));
        fold_error(&mut slot, EvalError::Cancelled);
        assert_eq!(slot, Some(panicked()));
    }

    #[test]
    fn engine_error_exposes_sources_and_conversions() {
        use std::error::Error as _;
        let e = EngineError::from(EvalError::Cancelled);
        assert_eq!(e, EngineError::Evaluation(EvalError::Cancelled));
        assert!(e.source().is_some());
        assert_eq!(e.to_string(), "evaluation cancelled");
        // An interruption surfacing through the reduction phase is folded
        // into the same Evaluation variant.
        let via_reduction = EngineError::from(ReductionError::from(EvalError::Cancelled));
        assert_eq!(via_reduction, EngineError::Evaluation(EvalError::Cancelled));
    }

    #[test]
    fn missing_relation_surfaces_as_engine_error() {
        let engine = IntersectionJoinEngine::with_defaults();
        let q = Query::parse("R([A]) & S([A])").unwrap();
        let db = Database::new();
        assert!(matches!(
            engine.evaluate(&q, &db),
            Err(EngineError::Reduction(_))
        ));
        assert!(matches!(
            engine.evaluate_naive(&q, &db),
            Err(EngineError::Naive(_))
        ));
    }

    #[test]
    fn mixed_eij_queries_are_supported() {
        // Equality join on X, intersection join on [A].
        let engine = IntersectionJoinEngine::with_defaults();
        let q = Query::parse("R(X,[A]) & S(X,[A])").unwrap();
        let mut db = Database::new();
        db.insert_tuples(
            "R",
            2,
            vec![
                vec![Value::point(1.0), iv(0.0, 2.0)],
                vec![Value::point(2.0), iv(5.0, 6.0)],
            ],
        );
        db.insert_tuples("S", 2, vec![vec![Value::point(1.0), iv(1.0, 3.0)]]);
        assert!(engine.evaluate(&q, &db).unwrap());
        assert!(engine.evaluate_naive(&q, &db).unwrap());

        // Same intervals but mismatching point values.
        let mut db2 = Database::new();
        db2.insert_tuples("R", 2, vec![vec![Value::point(7.0), iv(0.0, 2.0)]]);
        db2.insert_tuples("S", 2, vec![vec![Value::point(1.0), iv(1.0, 3.0)]]);
        assert!(!engine.evaluate(&q, &db2).unwrap());
    }
}
