//! The end-to-end intersection-join engine.
//!
//! [`IntersectionJoinEngine`] ties the pieces of the reproduction together:
//!
//! 1. [`IntersectionJoinEngine::analyze`] inspects a query: acyclicity class
//!    (Section 6), ij-width report (Definition 4.14) and the number of EJ
//!    queries the reduction will produce;
//! 2. [`IntersectionJoinEngine::evaluate`] answers the Boolean query through
//!    the forward reduction (Section 4) and the equality-join engine: each EJ
//!    query of the disjunction is evaluated (Yannakakis when α-acyclic,
//!    width-guided otherwise) with early exit on the first true disjunct —
//!    the `O(N^{ijw} polylog N)` algorithm of Theorem 4.15, which becomes
//!    `O(N polylog N)` for ι-acyclic queries (Theorem 6.6).

use crate::naive::{naive_boolean, NaiveError};
use ij_ejoin::{evaluate_ej_boolean, BoundAtom, EjStrategy};
use ij_hypergraph::{AcyclicityClass, AcyclicityReport};
use ij_reduction::{
    forward_reduction_with, EncodingStrategy, ForwardReduction, ReducedQuery, ReductionConfig,
    ReductionError, ReductionStats,
};
use ij_relation::{Database, Query};
use ij_widths::{ij_width, IjWidthReport};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Configuration of the engine.
#[derive(Debug, Clone, Copy, Default)]
pub struct EngineConfig {
    /// Strategy used for every EJ query of the disjunction.
    pub ej_strategy: EjStrategy,
    /// Deduplicate structurally identical EJ queries before evaluating
    /// (different permutations frequently produce the same query).
    pub dedupe_queries: bool,
    /// Encoding of the transformed relations (Section 1.1): flat (the
    /// paper's default) or the lossless per-variable decomposition, which is
    /// dramatically smaller for atoms with several interval variables.
    pub encoding: EncodingStrategy,
    /// Number of worker threads evaluating the EJ disjunction: `0` uses the
    /// available hardware parallelism, `1` evaluates sequentially, any other
    /// value caps the worker count.  The Boolean answer is identical for
    /// every setting; a true disjunct found by any worker stops the others
    /// at their next scheduling point.
    pub parallelism: usize,
}

impl EngineConfig {
    /// The default configuration with deduplication enabled, the flat
    /// encoding and hardware parallelism.
    pub fn new() -> Self {
        EngineConfig {
            ej_strategy: EjStrategy::Auto,
            dedupe_queries: true,
            encoding: EncodingStrategy::Flat,
            parallelism: 0,
        }
    }

    /// The default configuration but with the decomposed (Id-based) encoding,
    /// recommended for queries whose atoms contain several high-degree
    /// interval variables (e.g. the Loomis–Whitney and clique queries).
    pub fn decomposed() -> Self {
        EngineConfig {
            encoding: EncodingStrategy::Decomposed,
            ..EngineConfig::new()
        }
    }

    /// This configuration with an explicit disjunct-evaluation worker count.
    pub fn with_parallelism(mut self, parallelism: usize) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// The worker count to use for `disjuncts` deduplicated EJ queries.
    fn worker_count(&self, disjuncts: usize) -> usize {
        let hw = || {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        };
        let requested = if self.parallelism == 0 {
            hw()
        } else {
            self.parallelism
        };
        requested.min(disjuncts).max(1)
    }
}

/// Errors raised by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The forward reduction failed.
    Reduction(ReductionError),
    /// The naive reference evaluator failed.
    Naive(NaiveError),
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Reduction(e) => write!(f, "{e}"),
            EngineError::Naive(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<ReductionError> for EngineError {
    fn from(e: ReductionError) -> Self {
        EngineError::Reduction(e)
    }
}

impl From<NaiveError> for EngineError {
    fn from(e: NaiveError) -> Self {
        EngineError::Naive(e)
    }
}

/// Static analysis of a query.
#[derive(Debug, Clone)]
pub struct QueryAnalysis {
    /// Acyclicity classification of the query hypergraph (Section 6).
    pub acyclicity: AcyclicityReport,
    /// The ij-width report (Definition 4.14).
    pub ij_width: IjWidthReport,
    /// Whether Theorem 6.6 guarantees near-linear evaluation.
    pub linear_time: bool,
}

impl QueryAnalysis {
    /// A one-line summary such as
    /// `"iota-acyclic, ijw = 1 → O(N·polylog N)"`.
    pub fn summary(&self) -> String {
        format!(
            "{}, ijw = {:.4} → O(N^{:.4}·polylog N)",
            self.acyclicity.class, self.ij_width.value, self.ij_width.value
        )
    }
}

/// Runtime statistics of one evaluation.
#[derive(Debug, Clone)]
pub struct EvaluationStats {
    /// Statistics of the forward reduction.
    pub reduction: ReductionStats,
    /// Number of EJ queries actually evaluated (early exit stops at the
    /// first true disjunct).
    pub ej_queries_evaluated: usize,
    /// Number of EJ queries in the disjunction after deduplication.
    pub ej_queries_total: usize,
    /// The answer.
    pub answer: bool,
}

/// The intersection-join query engine.
#[derive(Debug, Clone, Default)]
pub struct IntersectionJoinEngine {
    config: EngineConfig,
}

impl IntersectionJoinEngine {
    /// Creates an engine with the given configuration.
    pub fn new(config: EngineConfig) -> Self {
        IntersectionJoinEngine { config }
    }

    /// Creates an engine with the default configuration.
    pub fn with_defaults() -> Self {
        IntersectionJoinEngine::new(EngineConfig::new())
    }

    /// The configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Static analysis: acyclicity, ij-width and the runtime regime.
    ///
    /// The analysis is data-independent (it only looks at the query
    /// hypergraph) and exponential in the query size only, exactly like the
    /// reduction itself.
    pub fn analyze(&self, query: &Query) -> QueryAnalysis {
        let (h, _) = query.hypergraph();
        let acyclicity = AcyclicityReport::of(&h);
        let ij_width = ij_width(&h);
        let linear_time = matches!(
            acyclicity.class,
            AcyclicityClass::BergeAcyclic | AcyclicityClass::IotaAcyclic
        );
        QueryAnalysis {
            acyclicity,
            ij_width,
            linear_time,
        }
    }

    /// Evaluates a Boolean EIJ query over an interval database through the
    /// forward reduction.
    pub fn evaluate(&self, query: &Query, db: &Database) -> Result<bool, EngineError> {
        Ok(self.evaluate_with_stats(query, db)?.answer)
    }

    /// Evaluates the query and returns runtime statistics.
    pub fn evaluate_with_stats(
        &self,
        query: &Query,
        db: &Database,
    ) -> Result<EvaluationStats, EngineError> {
        let reduction = forward_reduction_with(
            query,
            db,
            ReductionConfig {
                encoding: self.config.encoding,
            },
        )?;
        Ok(self.evaluate_reduction(&reduction))
    }

    /// Evaluates an already-computed forward reduction (useful when the same
    /// reduced database is probed several times, e.g. in benchmarks).
    ///
    /// The deduplicated disjuncts are evaluated by
    /// [`EngineConfig::parallelism`] workers pulling from a shared atomic
    /// work index; the first worker to find a true disjunct flips an
    /// [`AtomicBool`] that stops the others at their next pull.  The
    /// evaluation only *reads* the transformed relations' interned id
    /// columns, so the workers share the reduction without locking.
    pub fn evaluate_reduction(&self, reduction: &ForwardReduction) -> EvaluationStats {
        // Deduplicate EJ queries that are literally identical (same relations
        // bound to the same variables).
        let to_run: Vec<usize> = if self.config.dedupe_queries {
            reduction.deduped_query_indices()
        } else {
            (0..reduction.queries.len()).collect()
        };

        let workers = self.config.worker_count(to_run.len());
        let (evaluated, answer) = if workers <= 1 {
            let mut evaluated = 0usize;
            let mut answer = false;
            for &i in &to_run {
                evaluated += 1;
                if self.evaluate_disjunct(reduction, &reduction.queries[i]) {
                    answer = true;
                    break;
                }
            }
            (evaluated, answer)
        } else {
            let next = AtomicUsize::new(0);
            let found = AtomicBool::new(false);
            let evaluated = AtomicUsize::new(0);
            std::thread::scope(|scope| {
                for _ in 0..workers {
                    scope.spawn(|| loop {
                        if found.load(Ordering::Acquire) {
                            break;
                        }
                        let slot = next.fetch_add(1, Ordering::Relaxed);
                        if slot >= to_run.len() {
                            break;
                        }
                        evaluated.fetch_add(1, Ordering::Relaxed);
                        if self.evaluate_disjunct(reduction, &reduction.queries[to_run[slot]]) {
                            found.store(true, Ordering::Release);
                            break;
                        }
                    });
                }
            });
            (evaluated.into_inner(), found.into_inner())
        };
        EvaluationStats {
            reduction: reduction.stats.clone(),
            ej_queries_evaluated: evaluated,
            ej_queries_total: to_run.len(),
            answer,
        }
    }

    /// Evaluates one EJ disjunct of a reduction.
    fn evaluate_disjunct(&self, reduction: &ForwardReduction, rq: &ReducedQuery) -> bool {
        let var_ids = rq.dense_var_ids();
        let atoms: Vec<BoundAtom<'_>> = rq
            .atoms
            .iter()
            .map(|a| {
                let rel = reduction
                    .database
                    .relation(&a.relation)
                    .expect("transformed relation exists");
                BoundAtom::new(rel, a.vars.iter().map(|v| var_ids[v.as_str()]).collect())
            })
            .collect();
        evaluate_ej_boolean(&atoms, self.config.ej_strategy)
    }

    /// Evaluates the query with the naive reference evaluator (exhaustive
    /// backtracking).  Exposed for differential testing and baselines.
    pub fn evaluate_naive(&self, query: &Query, db: &Database) -> Result<bool, EngineError> {
        Ok(naive_boolean(query, db)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_relation::Value;

    fn iv(lo: f64, hi: f64) -> Value {
        Value::interval(lo, hi)
    }

    fn triangle_db(satisfiable: bool) -> (Query, Database) {
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let mut db = Database::new();
        db.insert_tuples(
            "R",
            2,
            vec![
                vec![iv(0.0, 4.0), iv(10.0, 14.0)],
                vec![iv(100.0, 101.0), iv(200.0, 201.0)],
            ],
        );
        db.insert_tuples("S", 2, vec![vec![iv(12.0, 13.0), iv(20.0, 25.0)]]);
        let c = if satisfiable {
            iv(24.0, 26.0)
        } else {
            iv(30.0, 31.0)
        };
        db.insert_tuples("T", 2, vec![vec![iv(3.0, 5.0), c]]);
        (q, db)
    }

    #[test]
    fn engine_agrees_with_naive_on_the_triangle() {
        let engine = IntersectionJoinEngine::with_defaults();
        for satisfiable in [true, false] {
            let (q, db) = triangle_db(satisfiable);
            let via_reduction = engine.evaluate(&q, &db).unwrap();
            let via_naive = engine.evaluate_naive(&q, &db).unwrap();
            assert_eq!(via_reduction, via_naive);
            assert_eq!(via_reduction, satisfiable);
        }
    }

    #[test]
    fn analysis_of_the_triangle() {
        let engine = IntersectionJoinEngine::with_defaults();
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let analysis = engine.analyze(&q);
        assert_eq!(analysis.acyclicity.class, AcyclicityClass::Cyclic);
        assert!((analysis.ij_width.value - 1.5).abs() < 1e-9);
        assert!(!analysis.linear_time);
        assert!(analysis.summary().contains("1.5"));
    }

    #[test]
    fn analysis_of_an_iota_acyclic_query() {
        let engine = IntersectionJoinEngine::with_defaults();
        // Figure 9d.
        let q = Query::parse("R([A],[B],[C]) & S([A],[B],[C]) & T([A])").unwrap();
        let analysis = engine.analyze(&q);
        assert!(analysis.linear_time);
        assert!(analysis.ij_width.is_linear_time());
    }

    #[test]
    fn evaluation_stats_expose_early_exit() {
        let engine = IntersectionJoinEngine::with_defaults();
        let (q, db) = triangle_db(true);
        let stats = engine.evaluate_with_stats(&q, &db).unwrap();
        assert!(stats.answer);
        assert!(stats.ej_queries_evaluated <= stats.ej_queries_total);
        assert_eq!(stats.reduction.num_queries, 8);

        let (q, db) = triangle_db(false);
        let stats = engine.evaluate_with_stats(&q, &db).unwrap();
        assert!(!stats.answer);
        // A false answer requires evaluating every (deduplicated) disjunct.
        assert_eq!(stats.ej_queries_evaluated, stats.ej_queries_total);
    }

    #[test]
    fn all_ej_strategies_agree() {
        for strategy in [
            EjStrategy::Auto,
            EjStrategy::GenericJoin,
            EjStrategy::Decomposition,
        ] {
            let engine = IntersectionJoinEngine::new(EngineConfig {
                ej_strategy: strategy,
                ..EngineConfig::new()
            });
            for satisfiable in [true, false] {
                let (q, db) = triangle_db(satisfiable);
                assert_eq!(
                    engine.evaluate(&q, &db).unwrap(),
                    satisfiable,
                    "{strategy:?}"
                );
            }
        }
    }

    #[test]
    fn flat_and_decomposed_encodings_agree() {
        let flat = IntersectionJoinEngine::with_defaults();
        let decomposed = IntersectionJoinEngine::new(EngineConfig::decomposed());
        for satisfiable in [true, false] {
            let (q, db) = triangle_db(satisfiable);
            assert_eq!(flat.evaluate(&q, &db).unwrap(), satisfiable);
            assert_eq!(decomposed.evaluate(&q, &db).unwrap(), satisfiable);
        }
    }

    #[test]
    fn parallel_and_sequential_disjunct_evaluation_agree() {
        for parallelism in [1usize, 2, 8] {
            let engine =
                IntersectionJoinEngine::new(EngineConfig::new().with_parallelism(parallelism));
            for satisfiable in [true, false] {
                let (q, db) = triangle_db(satisfiable);
                assert_eq!(
                    engine.evaluate(&q, &db).unwrap(),
                    satisfiable,
                    "parallelism {parallelism}"
                );
                let stats = engine.evaluate_with_stats(&q, &db).unwrap();
                assert_eq!(stats.answer, satisfiable);
                if !satisfiable {
                    // A false answer requires every disjunct to be evaluated,
                    // regardless of the worker count.
                    assert_eq!(stats.ej_queries_evaluated, stats.ej_queries_total);
                }
            }
        }
    }

    #[test]
    fn point_interval_database_degenerates_to_equality_joins() {
        // With point intervals the IJ triangle behaves exactly like the EJ
        // triangle (Section 1).
        let engine = IntersectionJoinEngine::with_defaults();
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let mut db = Database::new();
        let p = |x: f64| Value::Interval(ij_segtree::Interval::point(x));
        db.insert_tuples("R", 2, vec![vec![p(1.0), p(2.0)], vec![p(4.0), p(5.0)]]);
        db.insert_tuples("S", 2, vec![vec![p(2.0), p(3.0)]]);
        db.insert_tuples("T", 2, vec![vec![p(1.0), p(3.0)]]);
        assert!(engine.evaluate(&q, &db).unwrap());
        // Remove the closing edge.
        let mut db2 = db.clone();
        db2.insert_tuples("T", 2, vec![vec![p(1.0), p(9.0)]]);
        assert!(!engine.evaluate(&q, &db2).unwrap());
    }

    #[test]
    fn missing_relation_surfaces_as_engine_error() {
        let engine = IntersectionJoinEngine::with_defaults();
        let q = Query::parse("R([A]) & S([A])").unwrap();
        let db = Database::new();
        assert!(matches!(
            engine.evaluate(&q, &db),
            Err(EngineError::Reduction(_))
        ));
        assert!(matches!(
            engine.evaluate_naive(&q, &db),
            Err(EngineError::Naive(_))
        ));
    }

    #[test]
    fn mixed_eij_queries_are_supported() {
        // Equality join on X, intersection join on [A].
        let engine = IntersectionJoinEngine::with_defaults();
        let q = Query::parse("R(X,[A]) & S(X,[A])").unwrap();
        let mut db = Database::new();
        db.insert_tuples(
            "R",
            2,
            vec![
                vec![Value::point(1.0), iv(0.0, 2.0)],
                vec![Value::point(2.0), iv(5.0, 6.0)],
            ],
        );
        db.insert_tuples("S", 2, vec![vec![Value::point(1.0), iv(1.0, 3.0)]]);
        assert!(engine.evaluate(&q, &db).unwrap());
        assert!(engine.evaluate_naive(&q, &db).unwrap());

        // Same intervals but mismatching point values.
        let mut db2 = Database::new();
        db2.insert_tuples("R", 2, vec![vec![Value::point(7.0), iv(0.0, 2.0)]]);
        db2.insert_tuples("S", 2, vec![vec![Value::point(1.0), iv(1.0, 3.0)]]);
        assert!(!engine.evaluate(&q, &db2).unwrap());
    }
}
