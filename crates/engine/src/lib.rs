//! End-to-end engine for Boolean conjunctive queries with intersection joins.
//!
//! This crate exposes the public API of the reproduction of *"The Complexity
//! of Boolean Conjunctive Queries with Intersection Joins"* (PODS 2022):
//!
//! * [`IntersectionJoinEngine::analyze`] — static analysis: acyclicity class
//!   (ι-acyclicity, Section 6) and the ij-width report (Definition 4.14),
//!   i.e. the guaranteed runtime exponent;
//! * [`IntersectionJoinEngine::evaluate`] — Boolean evaluation through the
//!   forward reduction to equality joins (Section 4) and the width-guided
//!   equality-join engine;
//! * [`naive_boolean`] / [`naive_count`] — an exhaustive reference evaluator
//!   used as a differential-testing oracle and baseline.
//!
//! Evaluation is tunable through [`EngineConfig`]: worker parallelism across
//! the disjuncts of the reduction, a shared [trie
//! cache](EngineConfig::trie_cache_capacity) so disjuncts reuse built tries
//! instead of rebuilding them (optionally [byte
//! budgeted](EngineConfig::trie_cache_bytes)), and [sharded trie
//! builds](EngineConfig::trie_shards) that split each build (and the join
//! search) across threads.  Every knob is answer-preserving: the Boolean
//! result is bit-identical at every setting.
//!
//! Long-running services own their cross-evaluation state through a
//! [`Workspace`]: a scoped value dictionary (dropping the workspace reclaims
//! its interned values; [`Workspace::dictionary_bytes`] meters its size)
//! plus one shared trie cache warming every engine built from the workspace
//! ([`Workspace::engine`]).  Tenants sharing one workspace get per-tenant
//! accounting and byte quotas through [`Workspace::tenant`] sub-handles
//! ([`Tenant`]): cache activity is metered per tenant exactly, and an
//! over-quota tenant evicts its own entries first instead of its neighbors'.
//!
//! Evaluations are **cancellable and deadline-bounded**: the
//! `*_cancellable` entry points accept a [`CancellationToken`],
//! [`EngineConfig::with_deadline`] (or a [`Tenant`] default deadline) arms a
//! per-evaluation time budget, and failures surface as the typed
//! [`EvalError`] taxonomy (`Cancelled`, `DeadlineExceeded`,
//! `WorkerPanicked`) — never as a hung call or a poisoned engine.  The
//! [`faults`] registry (behind the `failpoints` cargo feature) injects
//! deterministic panics and delays at named pipeline sites for testing.
//!
//! # Quickstart
//!
//! ```
//! use ij_engine::prelude::*;
//!
//! // The triangle query of Section 1.1.
//! let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
//!
//! let mut db = Database::new();
//! let iv = |lo, hi| Value::interval(lo, hi);
//! db.insert_tuples("R", 2, vec![vec![iv(0.0, 4.0), iv(10.0, 14.0)]]);
//! db.insert_tuples("S", 2, vec![vec![iv(12.0, 13.0), iv(20.0, 25.0)]]);
//! db.insert_tuples("T", 2, vec![vec![iv(3.0, 5.0), iv(24.0, 26.0)]]);
//!
//! let engine = IntersectionJoinEngine::with_defaults();
//! let analysis = engine.analyze(&q);
//! assert!((analysis.ij_width.value - 1.5).abs() < 1e-9);
//! assert!(engine.evaluate(&q, &db).unwrap());
//! ```

#![warn(missing_docs)]

mod engine;
mod naive;
mod workspace;

pub use engine::{
    kernel_arm, DisjunctPlan, EngineConfig, EngineError, EvaluationOutcome, EvaluationStats,
    IntersectionJoinEngine, KernelArm, KernelChoices, PlanMode, QueryAnalysis, TenantCacheStats,
    TenantId, TrieCacheStats, TrieLayout, FLAT_MIN_ROWS, FORCE_SCALAR_ENV,
};
pub use ij_relation::faults;
pub use ij_relation::{CancellationToken, EvalError, DEFAULT_CHECK_INTERVAL};
pub use naive::{naive_boolean, naive_count, NaiveError};
pub use workspace::{Tenant, Workspace, WorkspaceLimits, WorkspaceStats};

/// Convenient re-exports of the most frequently used types from the whole
/// workspace.
pub mod prelude {
    pub use crate::{
        naive_boolean, naive_count, CancellationToken, EngineConfig, EngineError, EvalError,
        EvaluationOutcome, EvaluationStats, IntersectionJoinEngine, KernelArm, PlanMode,
        QueryAnalysis, Tenant, TenantCacheStats, TenantId, TrieCacheStats, TrieLayout, Workspace,
        WorkspaceLimits, WorkspaceStats,
    };
    pub use ij_ejoin::EjStrategy;
    pub use ij_hypergraph::{AcyclicityClass, AcyclicityReport, Hypergraph};
    pub use ij_reduction::{
        backward_reduction, forward_reduction, forward_reduction_with, EncodingStrategy,
        ReductionConfig,
    };
    pub use ij_relation::{Atom, Database, Query, Relation, SharedDictionary, Value};
    pub use ij_segtree::{BitString, Interval, SegmentTree};
    pub use ij_widths::{fractional_hypertree_width, ij_width, IjWidthReport};
}
