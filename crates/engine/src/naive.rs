//! A naive reference evaluator for EIJ queries.
//!
//! The evaluator enumerates one tuple per atom (backtracking, with partial
//! consistency checks after each assignment) and reports whether a combination
//! satisfying Definition 3.3 exists:
//!
//! * for every point variable, all bound values must be equal;
//! * for every interval variable, the intersection of all bound intervals
//!   must be non-empty (point values act as point intervals, which also gives
//!   the membership-join semantics of Section 7).
//!
//! Its worst case is `O(N^m)` for `m` atoms; it exists purely as a test
//! oracle and as the exhaustive baseline in the benchmark harness.

use ij_hypergraph::VarKind;
use ij_relation::{Database, Query, Value};
use ij_segtree::Interval;
use std::collections::HashMap;

/// Errors raised by the naive evaluator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NaiveError {
    /// A relation referenced by the query is missing from the database.
    MissingRelation(String),
    /// A relation's arity does not match the query atom.
    ArityMismatch {
        /// The relation name.
        relation: String,
        /// The arity the query atom expects.
        expected: usize,
        /// The arity the relation actually has.
        found: usize,
    },
}

impl std::fmt::Display for NaiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NaiveError::MissingRelation(r) => write!(f, "relation `{r}` missing from database"),
            NaiveError::ArityMismatch {
                relation,
                expected,
                found,
            } => {
                write!(
                    f,
                    "relation `{relation}` has arity {found}, query expects {expected}"
                )
            }
        }
    }
}

impl std::error::Error for NaiveError {}

/// Evaluates the Boolean EIJ query by exhaustive backtracking search.
pub fn naive_boolean(q: &Query, db: &Database) -> Result<bool, NaiveError> {
    Ok(naive_count_impl(q, db, true)? > 0)
}

/// Counts the satisfying tuple combinations (witnesses) of the query.
/// Used to cross-check Boolean answers in tests and examples.
pub fn naive_count(q: &Query, db: &Database) -> Result<u64, NaiveError> {
    naive_count_impl(q, db, false)
}

fn naive_count_impl(q: &Query, db: &Database, early_exit: bool) -> Result<u64, NaiveError> {
    // Validate and materialise the relations' rows once, in atom order (the
    // backtracking search below revisits them per recursion level).
    let mut relations = Vec::with_capacity(q.atoms().len());
    for atom in q.atoms() {
        let rel = db
            .relation(&atom.relation)
            .ok_or_else(|| NaiveError::MissingRelation(atom.relation.clone()))?;
        if rel.arity() != atom.vars.len() {
            return Err(NaiveError::ArityMismatch {
                relation: atom.relation.clone(),
                expected: atom.vars.len(),
                found: rel.arity(),
            });
        }
        relations.push(rel.tuples());
    }
    if q.atoms().is_empty() {
        return Ok(1);
    }

    // Partial state per variable: for point variables the committed value,
    // for interval variables the running intersection.
    #[derive(Clone)]
    enum Binding {
        Point(Value),
        Interval(Interval),
    }
    struct Search<'a> {
        q: &'a Query,
        early_exit: bool,
        count: u64,
    }
    impl Search<'_> {
        fn go(
            &mut self,
            relations: &[Vec<Vec<Value>>],
            atom_idx: usize,
            bindings: &HashMap<String, Binding>,
        ) -> bool {
            if atom_idx == self.q.atoms().len() {
                self.count += 1;
                return self.early_exit;
            }
            let atom = &self.q.atoms()[atom_idx];
            'tuples: for tuple in &relations[atom_idx] {
                let mut next = bindings.clone();
                for (col, var) in atom.vars.iter().enumerate() {
                    let value = tuple[col];
                    match self.q.var_kind(var) {
                        Some(VarKind::Interval) => {
                            let Some(iv) = value.to_interval() else {
                                continue 'tuples;
                            };
                            let merged = match next.get(var) {
                                Some(Binding::Interval(current)) => {
                                    match current.intersection(iv) {
                                        Some(m) => m,
                                        None => continue 'tuples,
                                    }
                                }
                                Some(Binding::Point(_)) => {
                                    unreachable!("interval variable bound to point")
                                }
                                None => iv,
                            };
                            next.insert(var.clone(), Binding::Interval(merged));
                        }
                        _ => match next.get(var) {
                            Some(Binding::Point(existing)) => {
                                if *existing != value {
                                    continue 'tuples;
                                }
                            }
                            Some(Binding::Interval(_)) => {
                                unreachable!("point variable bound to interval")
                            }
                            None => {
                                next.insert(var.clone(), Binding::Point(value));
                            }
                        },
                    }
                }
                if self.go(relations, atom_idx + 1, &next) {
                    return true;
                }
            }
            false
        }
    }

    let mut search = Search {
        q,
        early_exit,
        count: 0,
    };
    search.go(&relations, 0, &HashMap::new());
    Ok(search.count)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Value {
        Value::interval(lo, hi)
    }

    #[test]
    fn triangle_ij_positive_and_negative() {
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 2, vec![vec![iv(0.0, 4.0), iv(10.0, 14.0)]]);
        db.insert_tuples("S", 2, vec![vec![iv(12.0, 13.0), iv(20.0, 25.0)]]);
        db.insert_tuples("T", 2, vec![vec![iv(3.0, 5.0), iv(24.0, 26.0)]]);
        assert_eq!(naive_boolean(&q, &db), Ok(true));
        assert_eq!(naive_count(&q, &db), Ok(1));

        // Break the [C] intersection.
        let mut db2 = db.clone();
        db2.insert_tuples("T", 2, vec![vec![iv(3.0, 5.0), iv(30.0, 31.0)]]);
        assert_eq!(naive_boolean(&q, &db2), Ok(false));
        assert_eq!(naive_count(&q, &db2), Ok(0));
    }

    #[test]
    fn equality_joins_compare_values_exactly() {
        let q = Query::parse("R(X,Y) & S(Y,Z)").unwrap();
        let mut db = Database::new();
        db.insert_tuples(
            "R",
            2,
            vec![
                vec![Value::point(1.0), Value::point(2.0)],
                vec![Value::point(3.0), Value::point(4.0)],
            ],
        );
        db.insert_tuples("S", 2, vec![vec![Value::point(2.0), Value::point(9.0)]]);
        assert_eq!(naive_boolean(&q, &db), Ok(true));
        assert_eq!(naive_count(&q, &db), Ok(1));
    }

    #[test]
    fn membership_join_mixes_points_and_intervals() {
        // [A] ranges over intervals in R and points in S.
        let q = Query::parse("R([A]) & S([A])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 1, vec![vec![iv(0.0, 5.0)], vec![iv(10.0, 11.0)]]);
        db.insert_tuples(
            "S",
            1,
            vec![vec![Value::point(3.0)], vec![Value::point(20.0)]],
        );
        assert_eq!(naive_boolean(&q, &db), Ok(true));
        assert_eq!(naive_count(&q, &db), Ok(1));
    }

    #[test]
    fn point_intervals_behave_like_equality_joins() {
        // With point intervals the intersection join degenerates to equality
        // (Section 1).
        let q_ij = Query::parse("R([A]) & S([A])").unwrap();
        let q_ej = Query::parse("R(A) & S(A)").unwrap();
        let mut db = Database::new();
        db.insert_tuples(
            "R",
            1,
            vec![vec![Value::point(1.0)], vec![Value::point(2.0)]],
        );
        db.insert_tuples(
            "S",
            1,
            vec![vec![Value::point(2.0)], vec![Value::point(5.0)]],
        );
        assert_eq!(naive_boolean(&q_ij, &db), naive_boolean(&q_ej, &db));
        assert_eq!(naive_count(&q_ij, &db), Ok(1));
    }

    #[test]
    fn errors_are_reported() {
        let q = Query::parse("R([A]) & S([A])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 1, vec![vec![iv(0.0, 1.0)]]);
        assert_eq!(
            naive_boolean(&q, &db),
            Err(NaiveError::MissingRelation("S".to_string()))
        );
        db.insert_tuples("S", 2, vec![vec![iv(0.0, 1.0), iv(0.0, 1.0)]]);
        assert!(matches!(
            naive_boolean(&q, &db),
            Err(NaiveError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn self_joins_are_supported() {
        let q = Query::parse("R([A],[B]) & R([B],[C])").unwrap();
        let mut db = Database::new();
        db.insert_tuples(
            "R",
            2,
            vec![
                vec![iv(0.0, 1.0), iv(5.0, 6.0)],
                vec![iv(5.5, 7.0), iv(9.0, 9.5)],
            ],
        );
        assert_eq!(naive_boolean(&q, &db), Ok(true));
    }

    #[test]
    fn witness_counts_multiply_for_cartesian_products() {
        let q = Query::parse("R([A]) & S([B])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 1, vec![vec![iv(0.0, 1.0)], vec![iv(2.0, 3.0)]]);
        db.insert_tuples(
            "S",
            1,
            vec![vec![iv(0.0, 1.0)], vec![iv(2.0, 3.0)], vec![iv(4.0, 5.0)]],
        );
        assert_eq!(naive_count(&q, &db), Ok(6));
    }
}
