//! E1 (empirical) — Criterion benchmarks of the reduction-based evaluation
//! versus the classical baselines on the three cyclic IJ queries of Table 1.
//!
//! Regenerate with `cargo bench -p ij-bench --bench e1_cyclic_queries`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ij_baselines::{binary_join_cascade, nested_loop};
use ij_bench::{evaluate_all_disjuncts, scaling_workload};
use ij_ejoin::EjStrategy;
use ij_hypergraph::{four_clique_ij, loomis_whitney_4_ij, triangle_ij};
use ij_reduction::{forward_reduction, forward_reduction_with, EncodingStrategy, ReductionConfig};
use ij_relation::Query;
use std::time::Duration;

fn bench_triangle(c: &mut Criterion) {
    let query = Query::from_hypergraph(&triangle_ij());
    let mut group = c.benchmark_group("table1/triangle");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [100usize, 200] {
        let db = scaling_workload(&query, n, 1);
        group.bench_with_input(BenchmarkId::new("reduction", n), &n, |b, _| {
            b.iter(|| {
                let reduction = forward_reduction(&query, &db).unwrap();
                evaluate_all_disjuncts(&reduction, EjStrategy::Auto)
            })
        });
        group.bench_with_input(BenchmarkId::new("cascade", n), &n, |b, _| {
            b.iter(|| binary_join_cascade(&query, &db).unwrap())
        });
        if n <= 200 {
            group.bench_with_input(BenchmarkId::new("nested-loop", n), &n, |b, _| {
                b.iter(|| nested_loop(&query, &db).unwrap())
            });
        }
    }
    group.finish();
}

/// LW4's ternary atoms make the flat transformed relations blow up by a
/// `(log² N)³` factor per atom and the full 1296-disjunct evaluation takes
/// minutes per run, so the Criterion micro-benchmark measures the reduction
/// *construction* under the decomposed encoding against the cascade baseline;
/// the end-to-end wall-clock comparison lives in the `table1` and `encoding`
/// binaries, which run each configuration once instead of sampling it.
fn bench_lw4(c: &mut Criterion) {
    let query = Query::from_hypergraph(&loomis_whitney_4_ij());
    let mut group = c.benchmark_group("table1/loomis-whitney-4");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    {
        let n = 8usize;
        let db = scaling_workload(&query, n, 2);
        group.bench_with_input(BenchmarkId::new("reduction-decomposed", n), &n, |b, _| {
            b.iter(|| {
                forward_reduction_with(
                    &query,
                    &db,
                    ReductionConfig {
                        encoding: EncodingStrategy::Decomposed,
                    },
                )
                .unwrap()
                .stats
                .transformed_tuples
            })
        });
        group.bench_with_input(BenchmarkId::new("cascade", n), &n, |b, _| {
            b.iter(|| binary_join_cascade(&query, &db).unwrap())
        });
    }
    group.finish();
}

/// Like [`bench_lw4`]: the 4-clique's 1296-disjunct evaluation is measured in
/// the `table1`/`encoding` binaries; the Criterion benchmark compares the two
/// reduction encodings and the cascade baseline.
fn bench_four_clique(c: &mut Criterion) {
    let query = Query::from_hypergraph(&four_clique_ij());
    let mut group = c.benchmark_group("table1/4-clique");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    {
        let n = 10usize;
        let db = scaling_workload(&query, n, 3);
        group.bench_with_input(BenchmarkId::new("reduction-flat", n), &n, |b, _| {
            b.iter(|| {
                forward_reduction(&query, &db)
                    .unwrap()
                    .stats
                    .transformed_tuples
            })
        });
        group.bench_with_input(BenchmarkId::new("reduction-decomposed", n), &n, |b, _| {
            b.iter(|| {
                forward_reduction_with(
                    &query,
                    &db,
                    ReductionConfig {
                        encoding: EncodingStrategy::Decomposed,
                    },
                )
                .unwrap()
                .stats
                .transformed_tuples
            })
        });
        group.bench_with_input(BenchmarkId::new("cascade", n), &n, |b, _| {
            b.iter(|| binary_join_cascade(&query, &db).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_triangle, bench_lw4, bench_four_clique);
criterion_main!(benches);
