//! Micro-benchmarks of the column kernels: every runtime-dispatched
//! primitive (`and_equal_mask`, `select_indices`, `gather_ids`,
//! `gallop_seek`, `intersect_sorted_gallop`) raced against its scalar
//! reference on identical operands, plus a sweep of the galloping seek's
//! linear-probe span (`kernels/gallop-span-sweep`) backing the choice of
//! [`GALLOP_LINEAR_SPAN`].
//!
//! The dispatched arm resolves at startup (printed once): AVX2 where the
//! host supports it, the portable scalar table otherwise or under
//! `IJ_FORCE_SCALAR_KERNELS=1` (in which case the race degenerates to
//! scalar-vs-scalar parity).  Every primitive is asserted to produce
//! bit-identical output on both arms before any timing.
//!
//! Regenerate with `cargo bench -p ij-bench --bench kernels`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ij_relation::kernels::{
    and_equal_mask, and_equal_mask_scalar, gallop_seek, gallop_seek_scalar, gallop_seek_with_span,
    gather_ids, gather_ids_scalar, intersect_sorted_gallop, intersect_sorted_portable,
    intersect_sorted_scalar, kernel_arm, select_indices, select_indices_scalar,
};
use ij_relation::ValueId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

/// Column length for the element-wise kernels: large enough that the loop
/// body dominates dispatch overhead, small enough to stay in L1/L2.
const COL: usize = 4096;

/// Random ids drawn from `0..hi` (duplicates expected).
fn random_ids(n: usize, hi: u32, seed: u64) -> Vec<ValueId> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| ValueId::from_raw(rng.gen_range(0..hi)))
        .collect()
}

/// A sorted duplicate-free run of `n` ids with random gaps in `1..=max_gap`.
fn sorted_run(n: usize, max_gap: u32, seed: u64) -> Vec<ValueId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next = 0u32;
    (0..n)
        .map(|_| {
            next += rng.gen_range(1..=max_gap);
            ValueId::from_raw(next)
        })
        .collect()
}

fn bench_and_equal_mask(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/and-equal-mask");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    // Values in 0..4 so ~25% of the lanes compare equal.
    let a = random_ids(COL, 4, 51);
    let b = random_ids(COL, 4, 52);
    let base = vec![1u8; COL];
    let mut dispatched = base.clone();
    let mut scalar = base.clone();
    and_equal_mask(&a, &b, &mut dispatched);
    and_equal_mask_scalar(&a, &b, &mut scalar);
    assert_eq!(dispatched, scalar, "arms must agree before timing");
    let mut mask = base.clone();
    group.bench_function(BenchmarkId::new("dispatched", COL), |bench| {
        bench.iter(|| {
            mask.copy_from_slice(&base);
            and_equal_mask(&a, &b, &mut mask);
            mask[0]
        })
    });
    group.bench_function(BenchmarkId::new("scalar", COL), |bench| {
        bench.iter(|| {
            mask.copy_from_slice(&base);
            and_equal_mask_scalar(&a, &b, &mut mask);
            mask[0]
        })
    });
    group.finish();
}

fn bench_select_indices(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/select-indices");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    // ~25% survivors, the regime after one selective equality predicate.
    let mut rng = StdRng::seed_from_u64(53);
    let mask: Vec<u8> = (0..COL)
        .map(|_| u8::from(rng.gen_range(0..4) == 0))
        .collect();
    let mut dispatched = Vec::new();
    let mut scalar = Vec::new();
    select_indices(&mask, 7, &mut dispatched);
    select_indices_scalar(&mask, 7, &mut scalar);
    assert_eq!(dispatched, scalar, "arms must agree before timing");
    let mut out = Vec::with_capacity(COL);
    group.bench_function(BenchmarkId::new("dispatched", COL), |bench| {
        bench.iter(|| {
            out.clear();
            select_indices(&mask, 7, &mut out);
            out.len()
        })
    });
    group.bench_function(BenchmarkId::new("scalar", COL), |bench| {
        bench.iter(|| {
            out.clear();
            select_indices_scalar(&mask, 7, &mut out);
            out.len()
        })
    });
    group.finish();
}

fn bench_gather_ids(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/gather-ids");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let col = random_ids(16 * COL, u32::MAX, 54);
    let mut rng = StdRng::seed_from_u64(55);
    let rows: Vec<u32> = (0..COL)
        .map(|_| rng.gen_range(0..col.len() as u32))
        .collect();
    let mut dispatched = Vec::new();
    let mut scalar = Vec::new();
    gather_ids(&col, &rows, &mut dispatched);
    gather_ids_scalar(&col, &rows, &mut scalar);
    assert_eq!(dispatched, scalar, "arms must agree before timing");
    let mut out = Vec::with_capacity(COL);
    group.bench_function(BenchmarkId::new("dispatched", COL), |bench| {
        bench.iter(|| {
            out.clear();
            gather_ids(&col, &rows, &mut out);
            out.len()
        })
    });
    group.bench_function(BenchmarkId::new("scalar", COL), |bench| {
        bench.iter(|| {
            out.clear();
            gather_ids_scalar(&col, &rows, &mut out);
            out.len()
        })
    });
    group.finish();
}

/// A monotone target sequence over `run` mixing short hops (inside the
/// linear-probe window) with long jumps (forcing the galloping phase) —
/// the access pattern leapfrog intersection produces.
fn seek_targets(run: &[ValueId], seed: u64) -> Vec<ValueId> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut targets = Vec::new();
    let mut i = 0usize;
    while i < run.len() {
        targets.push(run[i]);
        i += if rng.gen_range(0..4) == 0 {
            rng.gen_range(64usize..256)
        } else {
            rng.gen_range(1usize..6)
        };
    }
    targets
}

/// Seeks every target in sequence, threading the cursor like a leapfrog
/// level does; returns the final cursor as the comparable result.
fn seek_all(
    run: &[ValueId],
    targets: &[ValueId],
    seek: impl Fn(&[ValueId], usize, ValueId) -> usize,
) -> usize {
    let mut pos = 0usize;
    for &t in targets {
        pos = seek(run, pos, t);
    }
    pos
}

fn bench_gallop_seek(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/gallop-seek");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let run = sorted_run(16 * COL, 8, 56);
    let targets = seek_targets(&run, 57);
    assert_eq!(
        seek_all(&run, &targets, gallop_seek),
        seek_all(&run, &targets, gallop_seek_scalar),
        "arms must agree before timing"
    );
    group.bench_function(BenchmarkId::new("dispatched", targets.len()), |bench| {
        bench.iter(|| seek_all(&run, &targets, gallop_seek))
    });
    group.bench_function(BenchmarkId::new("scalar", targets.len()), |bench| {
        bench.iter(|| seek_all(&run, &targets, gallop_seek_scalar))
    });
    group.finish();
}

fn bench_intersect_sorted(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/intersect-sorted");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    // Balanced: comparable lengths, dense overlap (gap 1..=2 over the same
    // id space).  Skewed: a small run galloping through a 64×-larger one.
    let cases = [
        ("balanced", sorted_run(COL, 2, 58), sorted_run(COL, 2, 59)),
        (
            "skewed",
            sorted_run(COL / 16, 128, 60),
            sorted_run(16 * COL, 8, 61),
        ),
    ];
    // Three arms: the dispatched gallop, the portable (scalar-instruction)
    // gallop — the like-for-like SIMD race — and the two-pointer merge
    // oracle, which bounds what a shape-adaptive intersection could gain on
    // dense balanced runs where galloping's per-element seek overhead loses
    // to a straight merge.
    for (name, a, b) in &cases {
        let mut dispatched = Vec::new();
        let mut portable = Vec::new();
        let mut scalar = Vec::new();
        intersect_sorted_gallop(a, b, &mut dispatched);
        intersect_sorted_portable(a, b, &mut portable);
        intersect_sorted_scalar(a, b, &mut scalar);
        assert_eq!(dispatched, scalar, "{name}: arms must agree before timing");
        assert_eq!(portable, scalar, "{name}: arms must agree before timing");
        let mut out = Vec::new();
        group.bench_function(BenchmarkId::new("dispatched", *name), |bench| {
            bench.iter(|| {
                intersect_sorted_gallop(a, b, &mut out);
                out.len()
            })
        });
        group.bench_function(BenchmarkId::new("portable-gallop", *name), |bench| {
            bench.iter(|| {
                intersect_sorted_portable(a, b, &mut out);
                out.len()
            })
        });
        group.bench_function(BenchmarkId::new("scalar-merge", *name), |bench| {
            bench.iter(|| {
                intersect_sorted_scalar(a, b, &mut out);
                out.len()
            })
        });
    }
    group.finish();
}

/// The sweep behind [`GALLOP_LINEAR_SPAN`]'s value of 8 (see its rustdoc):
/// span 0 is a pure gallop from the first element, larger spans linearly
/// probe that many slots before falling back to doubling.  Every span is
/// answer-preserving (asserted), so the sweep is purely a cost comparison.
fn bench_gallop_span_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernels/gallop-span-sweep");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(2));
    let run = sorted_run(16 * COL, 8, 62);
    let targets = seek_targets(&run, 63);
    let reference = seek_all(&run, &targets, gallop_seek_scalar);
    for span in [0usize, 2, 4, 8, 16, 32] {
        let seek = move |run: &[ValueId], start: usize, target: ValueId| {
            gallop_seek_with_span(run, start, target, span)
        };
        assert_eq!(
            seek_all(&run, &targets, seek),
            reference,
            "span {span} must be answer-preserving"
        );
        group.bench_with_input(BenchmarkId::new("span", span), &span, |bench, _| {
            bench.iter(|| seek_all(&run, &targets, seek))
        });
    }
    group.finish();
}

fn report_arm(_c: &mut Criterion) {
    println!("kernels: dispatched arm resolves to {}", kernel_arm());
}

criterion_group!(
    benches,
    report_arm,
    bench_and_equal_mask,
    bench_select_indices,
    bench_gather_ids,
    bench_gallop_seek,
    bench_intersect_sorted,
    bench_gallop_span_sweep
);
criterion_main!(benches);
