//! E7 (empirical) — Criterion benchmarks for the ι-acyclicity dichotomy
//! (Theorem 6.6): near-linear scaling of an ι-acyclic query versus the
//! super-linear triangle, both evaluated through the forward reduction.
//!
//! The `scenario-paths/*` groups additionally race the forward-reduction
//! pipeline against the index-based [`SegtreeBaseline`] (no reduction) on the
//! interval-native scenario families, to locate the crossover between the
//! two strategies.  Answers are asserted equal before any timing starts.
//!
//! Regenerate with `cargo bench -p ij-bench --bench e7_dichotomy`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ij_baselines::SegtreeBaseline;
use ij_bench::{evaluate_all_disjuncts, scaling_workload};
use ij_ejoin::EjStrategy;
use ij_hypergraph::{figure_4b, figure_9d, triangle_ij};
use ij_reduction::{forward_reduction, forward_reduction_with, EncodingStrategy, ReductionConfig};
use ij_relation::Query;
use ij_workloads::{build_scenario, PlantedAnswer, ScenarioConfig, ScenarioFamily};
use std::time::Duration;

fn bench_case(
    c: &mut Criterion,
    name: &str,
    query: &Query,
    sizes: &[usize],
    encoding: EncodingStrategy,
) {
    let mut group = c.benchmark_group(format!("dichotomy/{name}"));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in sizes {
        let db = scaling_workload(query, n, 7);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let reduction =
                    forward_reduction_with(query, &db, ReductionConfig { encoding }).unwrap();
                evaluate_all_disjuncts(&reduction, EjStrategy::Auto)
            })
        });
    }
    group.finish();
}

fn bench_dichotomy(c: &mut Criterion) {
    let sizes = [50usize, 100, 200];
    bench_case(
        c,
        "figure4b-iota-acyclic",
        &Query::from_hypergraph(&figure_4b()),
        &sizes,
        EncodingStrategy::Flat,
    );
    // Figure 9d has ternary atoms, for which the flat encoding's per-atom
    // product blow-up dominates even small inputs; the decomposed encoding
    // keeps the transformed database near-linear (Section 1.1 / E12).
    bench_case(
        c,
        "figure9d-iota-acyclic",
        &Query::from_hypergraph(&figure_9d()),
        &sizes,
        EncodingStrategy::Decomposed,
    );
    bench_case(
        c,
        "triangle-cyclic",
        &Query::from_hypergraph(&triangle_ij()),
        &sizes,
        EncodingStrategy::Flat,
    );
}

/// Reduction path vs segment-tree baseline on one scenario configuration.
///
/// Both paths answer the same Boolean instance from scratch (reduction +
/// equality-join evaluation vs index build + backtracking search); their
/// answers are asserted equal before the timed region.
fn bench_scenario_paths(c: &mut Criterion, label: &str, base: ScenarioConfig, sizes: &[usize]) {
    let mut group = c.benchmark_group(format!("scenario-paths/{label}"));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in sizes {
        let scenario = build_scenario(&base.with_tuples(n).with_seed(7));
        let (query, db) = (&scenario.query, &scenario.database);

        // Correctness gate: both paths agree before we time anything.
        let reduction_answer = {
            let reduction = forward_reduction(query, db).expect("reduction succeeds");
            evaluate_all_disjuncts(&reduction, EjStrategy::Auto)
        };
        let baseline_answer = SegtreeBaseline::build(query, db)
            .expect("baseline builds")
            .evaluate_boolean();
        assert_eq!(
            reduction_answer, baseline_answer,
            "paths diverge on {}",
            scenario.name
        );

        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("reduction", n), &n, |b, _| {
            b.iter(|| {
                let reduction = forward_reduction(query, db).unwrap();
                evaluate_all_disjuncts(&reduction, EjStrategy::Auto)
            })
        });
        group.bench_with_input(BenchmarkId::new("segtree-baseline", n), &n, |b, _| {
            b.iter(|| {
                SegtreeBaseline::build(query, db)
                    .unwrap()
                    .evaluate_boolean()
            })
        });
    }
    group.finish();
}

fn bench_scenarios(c: &mut Criterion) {
    // Natural-mode scans of every family: sparse realistic densities, where
    // the index-based baseline's early-exit probing wins outright (the
    // reduction pays the full transform cost regardless of the answer).
    for (family, sizes) in [
        (ScenarioFamily::TemporalOverlap, &[64usize, 256][..]),
        (ScenarioFamily::IpRanges, &[16, 32, 64]),
        (ScenarioFamily::GenomicOverlap, &[64, 256, 1024]),
        (ScenarioFamily::SpatialRectangles, &[64, 256]),
    ] {
        bench_scenario_paths(c, family.name(), ScenarioConfig::new(family), sizes);
    }
    // The other side of the crossover: a dense near-miss temporal instance
    // (full selectivity, heavy skew, last atom shifted out of range).  The
    // backtracking baseline must enumerate every Sessions x Meetings partial
    // match — quadratically many — before discovering Oncall never closes
    // them, while the reduction's equality joins see an empty three-way
    // candidate intersection immediately after the near-linear transform:
    // the baseline wins below ~2k tuples, the reduction above.
    bench_scenario_paths(
        c,
        "temporal-overlap-near-miss",
        ScenarioConfig::new(ScenarioFamily::TemporalOverlap)
            .with_selectivity(1.0)
            .with_skew(4.0)
            .with_planted(PlantedAnswer::NearMiss),
        &[1024, 4096],
    );
}

criterion_group!(benches, bench_dichotomy, bench_scenarios);
criterion_main!(benches);
