//! E7 (empirical) — Criterion benchmarks for the ι-acyclicity dichotomy
//! (Theorem 6.6): near-linear scaling of an ι-acyclic query versus the
//! super-linear triangle, both evaluated through the forward reduction.
//!
//! Regenerate with `cargo bench -p ij-bench --bench e7_dichotomy`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ij_bench::{evaluate_all_disjuncts, scaling_workload};
use ij_ejoin::EjStrategy;
use ij_hypergraph::{figure_4b, figure_9d, triangle_ij};
use ij_reduction::{forward_reduction_with, EncodingStrategy, ReductionConfig};
use ij_relation::Query;
use std::time::Duration;

fn bench_case(
    c: &mut Criterion,
    name: &str,
    query: &Query,
    sizes: &[usize],
    encoding: EncodingStrategy,
) {
    let mut group = c.benchmark_group(format!("dichotomy/{name}"));
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for &n in sizes {
        let db = scaling_workload(query, n, 7);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                let reduction =
                    forward_reduction_with(query, &db, ReductionConfig { encoding }).unwrap();
                evaluate_all_disjuncts(&reduction, EjStrategy::Auto)
            })
        });
    }
    group.finish();
}

fn bench_dichotomy(c: &mut Criterion) {
    let sizes = [50usize, 100, 200];
    bench_case(
        c,
        "figure4b-iota-acyclic",
        &Query::from_hypergraph(&figure_4b()),
        &sizes,
        EncodingStrategy::Flat,
    );
    // Figure 9d has ternary atoms, for which the flat encoding's per-atom
    // product blow-up dominates even small inputs; the decomposed encoding
    // keeps the transformed database near-linear (Section 1.1 / E12).
    bench_case(
        c,
        "figure9d-iota-acyclic",
        &Query::from_hypergraph(&figure_9d()),
        &sizes,
        EncodingStrategy::Decomposed,
    );
    bench_case(
        c,
        "triangle-cyclic",
        &Query::from_hypergraph(&triangle_ij()),
        &sizes,
        EncodingStrategy::Flat,
    );
}

criterion_group!(benches, bench_dichotomy);
criterion_main!(benches);
