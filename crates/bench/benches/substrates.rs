//! Micro-benchmarks of the substrates: segment-tree construction and
//! canonical partitions, the forward reduction itself, and the equality-join
//! engine strategies on the reduced triangle instance.
//!
//! Regenerate with `cargo bench -p ij-bench --bench substrates`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ij_bench::{
    dense_workload, evaluate_all_disjuncts, evaluate_all_disjuncts_rows, materialise_rows,
    scaling_workload,
};
use ij_ejoin::EjStrategy;
use ij_engine::{EngineConfig, IntersectionJoinEngine};
use ij_hypergraph::triangle_ij;
use ij_reduction::forward_reduction;
use ij_relation::Query;
use ij_segtree::{Interval, SegmentTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::time::Duration;

fn random_intervals(n: usize, seed: u64) -> Vec<Interval> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let lo: f64 = rng.gen_range(0.0..(n as f64));
            let len: f64 = rng.gen_range(0.0..32.0);
            Interval::new(lo, lo + len)
        })
        .collect()
}

fn bench_segment_tree(c: &mut Criterion) {
    let mut group = c.benchmark_group("segtree");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for n in [1_000usize, 10_000] {
        let intervals = random_intervals(n, 11);
        group.bench_with_input(BenchmarkId::new("build", n), &n, |b, _| {
            b.iter(|| SegmentTree::build(&intervals))
        });
        let tree = SegmentTree::build(&intervals);
        group.bench_with_input(BenchmarkId::new("canonical-partition", n), &n, |b, _| {
            b.iter(|| {
                intervals
                    .iter()
                    .map(|iv| tree.canonical_partition(*iv).len())
                    .sum::<usize>()
            })
        });
        let stored = SegmentTree::build_with_storage(&intervals);
        group.bench_with_input(BenchmarkId::new("stab", n), &n, |b, _| {
            b.iter(|| stored.stab(n as f64 / 2.0).len())
        });
    }
    group.finish();
}

fn bench_forward_reduction(c: &mut Criterion) {
    let query = Query::from_hypergraph(&triangle_ij());
    let mut group = c.benchmark_group("forward-reduction/triangle");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [250usize, 500] {
        let db = scaling_workload(&query, n, 13);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| {
                forward_reduction(&query, &db)
                    .unwrap()
                    .stats
                    .transformed_tuples
            })
        });
    }
    group.finish();
}

fn bench_ej_strategies(c: &mut Criterion) {
    // Ablation: the same reduced triangle instance evaluated with the three
    // EJ strategies (Auto = per-disjunct choice, plain generic join, and the
    // decomposition-guided evaluation).
    let query = Query::from_hypergraph(&triangle_ij());
    let db = dense_workload(&query, 200, 17);
    let reduction = forward_reduction(&query, &db).unwrap();
    let mut group = c.benchmark_group("ej-strategies/triangle-n200");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for (name, strategy) in [
        ("auto", EjStrategy::Auto),
        ("generic-join", EjStrategy::GenericJoin),
        ("decomposition", EjStrategy::Decomposition),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| evaluate_all_disjuncts(&reduction, strategy))
        });
    }
    group.finish();
}

/// Ablation of the interned columnar refactor: the same reduced E1 cyclic
/// (triangle) instance evaluated with the pre-refactor row-oriented
/// `Value`-keyed generic join versus the production id-keyed path.
fn bench_row_vs_interned(c: &mut Criterion) {
    let query = Query::from_hypergraph(&triangle_ij());
    let mut group = c.benchmark_group("substrate/e1-row-vs-interned");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [200usize, 400] {
        let db = scaling_workload(&query, n, 21);
        let reduction = forward_reduction(&query, &db).unwrap();
        // Rows are materialised outside the timed region: the pre-refactor
        // engine stored rows directly, so row access must not be billed to
        // the baseline.
        let rows = materialise_rows(&reduction.database);
        group.bench_with_input(BenchmarkId::new("row-oriented", n), &n, |b, _| {
            b.iter(|| evaluate_all_disjuncts_rows(&reduction, &rows))
        });
        group.bench_with_input(BenchmarkId::new("interned-columnar", n), &n, |b, _| {
            b.iter(|| evaluate_all_disjuncts(&reduction, EjStrategy::GenericJoin))
        });
    }
    group.finish();
}

/// Sequential versus parallel evaluation of the EJ disjunction on the E1
/// cyclic workload.  The database is planted unsatisfiable, so the false
/// answer forces every deduplicated disjunct to be evaluated — the case
/// parallelism accelerates.  (Wall-clock gains require multiple cores;
/// `available_parallelism() == 1` degenerates to the sequential path.)
fn bench_parallel_disjuncts(c: &mut Criterion) {
    use ij_workloads::{planted_unsatisfiable, IntervalDistribution, WorkloadConfig};
    let query = Query::from_hypergraph(&triangle_ij());
    let mut group = c.benchmark_group("substrate/e1-disjunct-parallelism");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let n = 400usize;
    let db = planted_unsatisfiable(
        &query,
        &WorkloadConfig {
            tuples_per_relation: n,
            seed: 23,
            distribution: IntervalDistribution::GridAligned {
                span: 4.0 * n as f64,
                cells: (2 * n) as u32,
                max_cells: 3,
            },
        },
    );
    let reduction = forward_reduction(&query, &db).unwrap();
    for (name, parallelism) in [("sequential", 1usize), ("parallel", 0usize)] {
        let engine = IntersectionJoinEngine::new(EngineConfig::new().with_parallelism(parallelism));
        group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
            b.iter(|| engine.evaluate_reduction(&reduction).unwrap().answer)
        });
    }
    group.finish();
}

/// Trie-build reuse across the disjuncts of **one** evaluation: the shared
/// [`TrieCache`] path versus the rebuild-per-disjunct baseline, on the E1
/// cyclic (triangle) workload.  The database is planted unsatisfiable so
/// every deduplicated disjunct is evaluated — the case where sharing pays.
/// The cache hit rate is printed once before the timed runs.
///
/// The engine is constructed **inside** the timed closure: the cache is
/// persistent per engine, so reusing one engine would measure the fully-warm
/// cross-evaluation path instead (that is `e1-persistent-cache`'s job).
fn bench_trie_cache_reuse(c: &mut Criterion) {
    use ij_workloads::{planted_unsatisfiable, IntervalDistribution, WorkloadConfig};
    let query = Query::from_hypergraph(&triangle_ij());
    let mut group = c.benchmark_group("substrate/e1-trie-reuse");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [200usize, 400] {
        let db = planted_unsatisfiable(
            &query,
            &WorkloadConfig {
                tuples_per_relation: n,
                seed: 29,
                distribution: IntervalDistribution::GridAligned {
                    span: 4.0 * n as f64,
                    cells: (2 * n) as u32,
                    max_cells: 3,
                },
            },
        );
        let reduction = forward_reduction(&query, &db).unwrap();
        // One worker isolates the caching effect from disjunct parallelism.
        let shared_config = EngineConfig::new().with_parallelism(1);
        let rebuild_config = EngineConfig::new()
            .with_parallelism(1)
            .with_trie_cache_capacity(0);
        let stats = IntersectionJoinEngine::new(shared_config)
            .evaluate_reduction(&reduction)
            .unwrap();
        assert!(!stats.answer, "workload must force a full pass");
        println!(
            "substrate/e1-trie-reuse/n{n}: {} disjuncts in {} batches, \
             cache {} hits / {} misses (hit rate {:.1}%)",
            stats.ej_queries_total,
            stats.ej_query_batches,
            stats.trie_cache.hits,
            stats.trie_cache.misses,
            100.0 * stats.trie_cache.hit_rate()
        );
        group.bench_with_input(BenchmarkId::new("shared-trie", n), &n, |b, _| {
            b.iter(|| {
                IntersectionJoinEngine::new(shared_config)
                    .evaluate_reduction(&reduction)
                    .unwrap()
                    .answer
            })
        });
        group.bench_with_input(BenchmarkId::new("rebuild-per-disjunct", n), &n, |b, _| {
            b.iter(|| {
                IntersectionJoinEngine::new(rebuild_config)
                    .evaluate_reduction(&reduction)
                    .unwrap()
                    .answer
            })
        });
    }
    group.finish();
}

/// Cross-evaluation trie-cache persistence: repeated evaluations of the same
/// reduced E1 cyclic workload through one long-lived engine — whose
/// persistent cache was warmed by a priming evaluation, so every trie build
/// is served from the cache — versus a **cold** engine constructed fresh for
/// every evaluation (the pre-persistence behaviour: caching only within one
/// evaluation).  The database is planted unsatisfiable so every disjunct is
/// evaluated.  The warm engine's steady-state cache stats are printed once
/// before the timed runs (misses must be zero).
fn bench_persistent_cache(c: &mut Criterion) {
    use ij_workloads::{planted_unsatisfiable, IntervalDistribution, WorkloadConfig};
    let query = Query::from_hypergraph(&triangle_ij());
    let mut group = c.benchmark_group("substrate/e1-persistent-cache");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for n in [200usize, 400] {
        let db = planted_unsatisfiable(
            &query,
            &WorkloadConfig {
                tuples_per_relation: n,
                seed: 37,
                distribution: IntervalDistribution::GridAligned {
                    span: 4.0 * n as f64,
                    cells: (2 * n) as u32,
                    max_cells: 3,
                },
            },
        );
        let reduction = forward_reduction(&query, &db).unwrap();
        let config = EngineConfig::new().with_parallelism(1);
        let warm = IntersectionJoinEngine::new(config);
        // Prime the persistent cache, then measure the steady state.
        let primed = warm.evaluate_reduction(&reduction).unwrap();
        assert!(!primed.answer, "workload must force a full pass");
        let steady = warm.evaluate_reduction(&reduction).unwrap();
        println!(
            "substrate/e1-persistent-cache/n{n}: cold pass {} misses; warm pass \
             {} hits / {} misses, {} resident entries",
            primed.trie_cache.misses,
            steady.trie_cache.hits,
            steady.trie_cache.misses,
            steady.trie_cache.entries,
        );
        assert_eq!(steady.trie_cache.misses, 0, "warm pass must be all hits");
        group.bench_with_input(BenchmarkId::new("warm-persistent", n), &n, |b, _| {
            b.iter(|| warm.evaluate_reduction(&reduction).unwrap().answer)
        });
        group.bench_with_input(BenchmarkId::new("cold-per-evaluation", n), &n, |b, _| {
            b.iter(|| {
                IntersectionJoinEngine::new(config)
                    .evaluate_reduction(&reduction)
                    .unwrap()
                    .answer
            })
        });
    }
    group.finish();
}

/// Cross-engine cache warmth through a shared [`Workspace`]: two
/// **independently constructed** engines on one workspace, where the first
/// engine's evaluation warms the shared cache and the second engine's very
/// first evaluation is served from it (asserted to report cache hits before
/// the timed runs).  The timed comparison constructs a fresh engine per
/// iteration — the per-request-engine server pattern — once from the warm
/// workspace and once standalone (each standalone engine owns a cold private
/// cache, the pre-workspace behaviour).  The database is planted
/// unsatisfiable so every disjunct is evaluated.
///
/// Multi-core caveat (see ROADMAP "Multi-core CI benches"): the dev
/// container is single-core, so the gap shown here is pure trie-rebuild
/// work; on multi-core hardware the same warm path additionally frees the
/// shard/worker thread budget for the search itself — re-measure there.
fn bench_shared_warmth(c: &mut Criterion) {
    use ij_engine::Workspace;
    use ij_workloads::{planted_unsatisfiable, IntervalDistribution, WorkloadConfig};
    let query = Query::from_hypergraph(&triangle_ij());
    let mut group = c.benchmark_group("substrate/e1-shared-warmth");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let n = 400usize;
    let db = planted_unsatisfiable(
        &query,
        &WorkloadConfig {
            tuples_per_relation: n,
            seed: 41,
            distribution: IntervalDistribution::GridAligned {
                span: 4.0 * n as f64,
                cells: (2 * n) as u32,
                max_cells: 3,
            },
        },
    );
    let reduction = forward_reduction(&query, &db).unwrap();
    let config = EngineConfig::new().with_parallelism(1);
    let ws = Workspace::new();
    // Warm the workspace cache through one engine …
    let primed = ws.engine(config).evaluate_reduction(&reduction).unwrap();
    assert!(!primed.answer, "workload must force a full pass");
    // … and verify a *second*, independently constructed engine starts warm.
    let second = ws.engine(config).evaluate_reduction(&reduction).unwrap();
    assert!(
        second.trie_cache.hits > 0,
        "second engine's first evaluation must report cache hits, got {:?}",
        second.trie_cache
    );
    println!(
        "substrate/e1-shared-warmth/n{n}: first engine {} misses; second engine's \
         first evaluation {} hits / {} misses ({} tries resident, {:.1} KiB)",
        primed.trie_cache.misses,
        second.trie_cache.hits,
        second.trie_cache.misses,
        second.trie_cache.entries,
        second.trie_cache.resident_bytes as f64 / 1024.0,
    );
    group.bench_with_input(BenchmarkId::new("workspace-engines", n), &n, |b, _| {
        b.iter(|| {
            ws.engine(config)
                .evaluate_reduction(&reduction)
                .unwrap()
                .answer
        })
    });
    group.bench_with_input(BenchmarkId::new("independent-engines", n), &n, |b, _| {
        b.iter(|| {
            IntersectionJoinEngine::new(config)
                .evaluate_reduction(&reduction)
                .unwrap()
                .answer
        })
    });
    group.finish();
}

/// Per-tenant quota fairness under a noisy neighbor: a victim tenant
/// repeatedly evaluates one reduction while a noisy tenant floods the
/// workspace's byte-budgeted shared cache with distinct databases (every
/// database planted unsatisfiable, forcing full-footprint passes).
///
/// Without a quota, the flood evicts the victim's tries through the shared
/// LRU, so every victim evaluation rebuilds cold; with the noisy tenant
/// quota'd to ~one database's footprint, it sheds its **own**
/// least-recently-used entries instead and the victim's warmth survives —
/// asserted (victim reports nonzero hits and zero misses after a flood)
/// before the timed runs.  Each timed iteration is one noisy flood plus one
/// victim evaluation; the gap is the victim's trie-rebuild work the quota
/// saves.
fn bench_tenant_fairness(c: &mut Criterion) {
    use ij_engine::{Workspace, WorkspaceLimits};
    use ij_reduction::ForwardReduction;
    use ij_workloads::{planted_unsatisfiable, IntervalDistribution, WorkloadConfig};
    let query = Query::from_hypergraph(&triangle_ij());
    let mut group = c.benchmark_group("substrate/e1-tenant-fairness");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let n = 200usize;
    let db_for = |seed: u64| {
        planted_unsatisfiable(
            &query,
            &WorkloadConfig {
                tuples_per_relation: n,
                seed,
                distribution: IntervalDistribution::GridAligned {
                    span: 4.0 * n as f64,
                    cells: (2 * n) as u32,
                    max_cells: 3,
                },
            },
        )
    };
    // Footprint of one database's tries, to size the budget and the quota.
    let probe = Workspace::new();
    let probe_reduction = forward_reduction(&query, &probe.import_database(&db_for(43))).unwrap();
    let config = EngineConfig::new().with_parallelism(1);
    assert!(
        !probe
            .engine(config)
            .evaluate_reduction(&probe_reduction)
            .unwrap()
            .answer
    );
    let per_db = probe.trie_cache_stats().resident_bytes;
    let budget = 2 * per_db + per_db / 2;

    for (name, quota) in [("victim-unquotad", 0usize), ("victim-with-quota", per_db)] {
        let ws = Workspace::with_limits(WorkspaceLimits::new().with_trie_cache_bytes(budget));
        let victim = ws.tenant("victim");
        let noisy = ws.tenant("noisy").with_trie_cache_quota(quota);
        let victim_engine = victim.engine(config);
        let noisy_engine = noisy.engine(config);
        let victim_reduction = forward_reduction(&query, &ws.import_database(&db_for(43))).unwrap();
        let noisy_reductions: Vec<ForwardReduction> = (44..47)
            .map(|seed| forward_reduction(&query, &ws.import_database(&db_for(seed))).unwrap())
            .collect();
        let flood_and_evaluate = || {
            for reduction in &noisy_reductions {
                assert!(!noisy_engine.evaluate_reduction(reduction).unwrap().answer);
            }
            victim_engine.evaluate_reduction(&victim_reduction).unwrap()
        };
        // Warm the victim, flood once, and record what the flood left.
        assert!(
            !victim_engine
                .evaluate_reduction(&victim_reduction)
                .unwrap()
                .answer
        );
        let after_flood = flood_and_evaluate();
        // Victim-only latency (the flood outside the measured region): the
        // number an operator's per-tenant latency SLO actually sees.
        let victim_latency = {
            let mut samples: Vec<std::time::Duration> = (0..5)
                .map(|_| {
                    for reduction in &noisy_reductions {
                        assert!(!noisy_engine.evaluate_reduction(reduction).unwrap().answer);
                    }
                    let start = std::time::Instant::now();
                    assert!(
                        !victim_engine
                            .evaluate_reduction(&victim_reduction)
                            .unwrap()
                            .answer
                    );
                    start.elapsed()
                })
                .collect();
            samples.sort_unstable();
            samples[samples.len() / 2]
        };
        println!(
            "substrate/e1-tenant-fairness/{name}: after a noisy flood the victim \
             reports {} hits / {} misses (noisy ledger: {} evictions, victim \
             ledger: {} evictions); victim-only latency {victim_latency:?}",
            after_flood.trie_cache.hits,
            after_flood.trie_cache.misses,
            noisy.cache_stats().evictions,
            victim.cache_stats().evictions,
        );
        if quota > 0 {
            assert_eq!(
                after_flood.trie_cache.misses, 0,
                "the quota'd victim must retain warmth under the flood"
            );
            assert!(after_flood.trie_cache.hits > 0);
        } else {
            assert!(
                after_flood.trie_cache.misses > 0,
                "the un-quota'd flood must evict the victim (otherwise the \
                 quota has nothing to fix)"
            );
        }
        group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
            b.iter(|| flood_and_evaluate().answer)
        });
    }
    group.finish();
}

/// Trie layout ablation: the same reduced E1 cyclic workload evaluated cold
/// (a fresh engine per iteration, so every trie is built and searched within
/// the measured region) under the hash-map layout, the flat CSR leapfrog
/// layout, and the size-based `Auto` resolution.  The database is planted
/// unsatisfiable so every deduplicated disjunct runs the full search.  The
/// three layouts are asserted answer-identical and their per-layout atom
/// counts printed before the timed runs.
fn bench_flat_trie(c: &mut Criterion) {
    use ij_engine::TrieLayout;
    use ij_workloads::{planted_unsatisfiable, IntervalDistribution, WorkloadConfig};
    let query = Query::from_hypergraph(&triangle_ij());
    let mut group = c.benchmark_group("substrate/e1-flat-trie");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(4));
    let n = 400usize;
    let db = planted_unsatisfiable(
        &query,
        &WorkloadConfig {
            tuples_per_relation: n,
            seed: 47,
            distribution: IntervalDistribution::GridAligned {
                span: 4.0 * n as f64,
                cells: (2 * n) as u32,
                max_cells: 3,
            },
        },
    );
    let reduction = forward_reduction(&query, &db).unwrap();
    let layouts = [
        ("hash", TrieLayout::Hash),
        ("flat", TrieLayout::Flat),
        ("auto", TrieLayout::Auto),
    ];
    for (name, layout) in layouts {
        let config = EngineConfig::new()
            .with_parallelism(1)
            .with_trie_layout(layout);
        let stats = IntersectionJoinEngine::new(config)
            .evaluate_reduction(&reduction)
            .unwrap();
        assert!(!stats.answer, "workload must force a full pass");
        println!(
            "substrate/e1-flat-trie/n{n}/{name}: {} hash / {} flat atom uses \
             across {} disjuncts",
            stats.hash_layout_atoms, stats.flat_layout_atoms, stats.ej_queries_total,
        );
        group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
            b.iter(|| {
                IntersectionJoinEngine::new(config)
                    .evaluate_reduction(&reduction)
                    .unwrap()
                    .answer
            })
        });
    }
    group.finish();
}

/// Sharded versus unsharded trie builds on the same workload (wall-clock
/// parity is expected on a single-core container; the knob is verified
/// answer-identical by the test suite).
fn bench_trie_shards(c: &mut Criterion) {
    use ij_workloads::{planted_unsatisfiable, IntervalDistribution, WorkloadConfig};
    let query = Query::from_hypergraph(&triangle_ij());
    let mut group = c.benchmark_group("substrate/e1-trie-shards");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    let n = 400usize;
    let db = planted_unsatisfiable(
        &query,
        &WorkloadConfig {
            tuples_per_relation: n,
            seed: 31,
            distribution: IntervalDistribution::GridAligned {
                span: 4.0 * n as f64,
                cells: (2 * n) as u32,
                max_cells: 3,
            },
        },
    );
    let reduction = forward_reduction(&query, &db).unwrap();
    for (name, shards) in [("unsharded", 1usize), ("hw-shards", 0usize)] {
        let engine = IntersectionJoinEngine::new(
            EngineConfig::new()
                .with_parallelism(1)
                .with_trie_shards(shards),
        );
        group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
            b.iter(|| engine.evaluate_reduction(&reduction).unwrap().answer)
        });
    }
    group.finish();
}

/// Adaptive per-disjunct planning versus the fixed identifier order on a
/// planted near-miss triangle whose atom listing deliberately leads the
/// fixed order with the worst variable.  `R([B],[A]) & S([B],[C]) &
/// T([A],[C])` assigns dense ids by first occurrence — B, A, C — so the
/// fixed order opens with B, the intersection of the two n-row relations,
/// and walks all n candidates before the 4-row relation T can prune
/// anything.  The adaptive planner opens at A (minimum covering-atom
/// cardinality: |T| = 4) and the whole search touches a handful of
/// candidates.  T's pairs are planted one step out of phase (a near miss),
/// so the answer is `false` and neither plan can exit early.
///
/// Each mode evaluates through its own long-lived engine whose persistent
/// cache was primed before timing (asserted all-hits), so the timed region
/// is the join search the plan controls — plus the planner itself on the
/// adaptive arm — and not trie builds.  Both modes are asserted
/// answer-identical before timing and the adaptive orders are printed.
fn bench_plan_order(c: &mut Criterion) {
    use ij_engine::PlanMode;
    use ij_relation::{Database, Value};
    let query = Query::parse("R([B],[A]) & S([B],[C]) & T([A],[C])").unwrap();
    let n = 4096usize;
    let pt = |x: usize| Value::interval(x as f64, x as f64);
    let mut db = Database::new();
    db.insert_tuples(
        "R",
        2,
        (0..n).map(|i| vec![pt(i), pt(1_000_000 + i)]).collect(),
    );
    db.insert_tuples(
        "S",
        2,
        (0..n).map(|i| vec![pt(i), pt(2_000_000 + i)]).collect(),
    );
    db.insert_tuples(
        "T",
        2,
        (0..4)
            .map(|k| {
                let j = k * (n / 4);
                vec![pt(1_000_000 + j), pt(2_000_000 + (j + 1) % n)]
            })
            .collect(),
    );
    let reduction = forward_reduction(&query, &db).unwrap();
    let mut group = c.benchmark_group("substrate/e1-plan-order");
    group
        .sample_size(20)
        .measurement_time(Duration::from_secs(3));
    for (name, mode) in [("fixed", PlanMode::Fixed), ("adaptive", PlanMode::Adaptive)] {
        let engine = IntersectionJoinEngine::new(EngineConfig {
            ej_strategy: EjStrategy::GenericJoin,
            ..EngineConfig::new().with_parallelism(1).with_plan_mode(mode)
        });
        // Prime the persistent cache, then verify the steady state: the
        // planted near miss must answer false under both plans, and the
        // warm pass must rebuild nothing.
        let primed = engine.evaluate_reduction(&reduction).unwrap();
        assert!(!primed.answer, "near-miss workload must answer false");
        let steady = engine.evaluate_reduction(&reduction).unwrap();
        assert!(!steady.answer, "plans must be answer-identical");
        assert_eq!(steady.trie_cache.misses, 0, "warm pass must be all hits");
        println!(
            "substrate/e1-plan-order/n{n}/{name}: {} disjuncts planned in \
             {:.1} µs, orders {:?}",
            steady.disjuncts_planned,
            steady.planning_nanos as f64 / 1e3,
            steady.planned_orders,
        );
        group.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
            b.iter(|| engine.evaluate_reduction(&reduction).unwrap().answer)
        });
    }
    group.finish();
}

/// `substrate/e1-cancel-latency`: signal→return latency of cooperative
/// cancellation on a planted near-miss workload (n = 400 rectangles; the
/// worst case for backtracking, so an uncancelled run is long enough to
/// interrupt mid-search), swept over the token's check interval K.  Smaller
/// K polls the token more often (lower latency, more atomic loads); the
/// DEFAULT_CHECK_INTERVAL sits in the middle.  Before any timing, each K is
/// asserted to honour the documented latency ceiling (the bound
/// `tests/cancellation.rs` also enforces).
fn bench_cancel_latency(c: &mut Criterion) {
    use ij_engine::{CancellationToken, EvalError};
    use ij_workloads::{build_scenario, PlantedAnswer, ScenarioConfig, ScenarioFamily};
    use std::time::Instant;

    /// The documented ceiling, mirrored from `tests/cancellation.rs`.
    const LATENCY_BOUND: Duration = Duration::from_millis(250);

    fn measure(
        engine: &IntersectionJoinEngine,
        reduction: &ij_reduction::ForwardReduction,
        check_interval: u32,
        head_start: Duration,
    ) -> Duration {
        let token = CancellationToken::new().with_check_interval(check_interval);
        std::thread::scope(|scope| {
            let worker = scope.spawn(|| {
                let result = engine.evaluate_reduction_cancellable(reduction, Some(&token));
                (result, Instant::now())
            });
            std::thread::sleep(head_start);
            let signalled = Instant::now();
            token.cancel();
            let (result, returned) = worker.join().expect("worker does not panic");
            match result {
                Err(EvalError::Cancelled) => {}
                Ok(stats) => assert!(!stats.answer, "near-miss workload answered true"),
                Err(other) => panic!("cancel surfaced as {other:?}"),
            }
            returned.saturating_duration_since(signalled)
        })
    }

    let scenario = build_scenario(
        &ScenarioConfig::new(ScenarioFamily::SpatialRectangles)
            .with_tuples(400)
            .with_seed(3)
            .with_planted(PlantedAnswer::NearMiss),
    );
    let reduction = forward_reduction(&scenario.query, &scenario.database).unwrap();
    let engine = IntersectionJoinEngine::new(EngineConfig::new().with_parallelism(1));
    assert!(
        !engine.evaluate_reduction(&reduction).unwrap().answer,
        "near-miss workload must be unsatisfiable"
    );

    let mut group = c.benchmark_group("substrate/e1-cancel-latency");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3));
    for check_interval in [64u32, 1024, 16384] {
        let probe = measure(
            &engine,
            &reduction,
            check_interval,
            Duration::from_millis(10),
        );
        assert!(
            probe <= LATENCY_BOUND,
            "check interval {check_interval}: latency {probe:?} exceeds the \
             documented ceiling {LATENCY_BOUND:?}"
        );
        // The timed cycle is spawn → 2 ms head start → cancel → join; the
        // constant head start makes the K-to-K deltas the latency signal.
        group.bench_with_input(
            BenchmarkId::new("check-interval", check_interval),
            &check_interval,
            |b, &k| b.iter(|| measure(&engine, &reduction, k, Duration::from_millis(2))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_segment_tree,
    bench_forward_reduction,
    bench_ej_strategies,
    bench_row_vs_interned,
    bench_parallel_disjuncts,
    bench_trie_cache_reuse,
    bench_persistent_cache,
    bench_shared_warmth,
    bench_tenant_fairness,
    bench_flat_trie,
    bench_trie_shards,
    bench_plan_order,
    bench_cancel_latency
);
criterion_main!(benches);
