//! E3 — Figure 3 / Figure 6: the segment tree over I = { \[1,4\], \[3,4\] },
//! its node segments and the canonical partitions of the two intervals.
//!
//! ```text
//! cargo run --release -p ij-bench --bin figure3
//! ```

use ij_segtree::{Interval, SegmentTree};

fn main() {
    let a = Interval::new(1.0, 4.0);
    let b = Interval::new(3.0, 4.0);
    let tree = SegmentTree::build(&[a, b]);

    println!("Figure 3: segment tree on I = {{ □ = [1,4], • = [3,4] }}");
    println!(
        "endpoints: {}, leaves: {}, nodes: {}, height: {}\n",
        tree.num_endpoints(),
        tree.num_leaves(),
        tree.num_nodes(),
        tree.height()
    );

    println!(
        "{:<10} {:<14} {:<8} {:<8}",
        "node", "segment", "in CP(□)", "in CP(•)"
    );
    println!("{}", "-".repeat(44));
    let cp_a = tree.canonical_partition(a);
    let cp_b = tree.canonical_partition(b);
    for id in tree.node_ids() {
        let segment = tree.describe_node(id).unwrap_or_default();
        println!(
            "{:<10} {:<14} {:<8} {:<8}",
            id.to_string(),
            segment,
            if cp_a.contains(&id) { "yes" } else { "" },
            if cp_b.contains(&id) { "yes" } else { "" },
        );
    }
    println!();
    println!(
        "CP([1,4]) = {{ {} }}   (paper: 001, 01, 10)",
        cp_a.iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "CP([3,4]) = {{ {} }}      (paper: 011, 10)",
        cp_b.iter()
            .map(|b| b.to_string())
            .collect::<Vec<_>>()
            .join(", ")
    );
    println!(
        "\nleaf([1,4]) = {}, leaf([3,4]) = {} (leaves containing the left endpoints)",
        tree.leaf_of_interval(a),
        tree.leaf_of_interval(b)
    );
}
