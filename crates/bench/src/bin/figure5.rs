//! E5 — Figure 5: the Venn diagram of acyclicity notions
//! (Berge ⊂ ι ⊂ γ ⊂ α), with a witness hypergraph for every region.
//!
//! ```text
//! cargo run --release -p ij-bench --bin figure5
//! ```

use ij_bench::render_table;
use ij_hypergraph::{
    figure_9e, figure_9f, is_alpha_acyclic, is_berge_acyclic, is_gamma_acyclic, is_iota_acyclic,
    triangle_ij, AcyclicityReport, Hypergraph,
};

fn main() {
    // Region witnesses, from innermost (Berge-acyclic) to outermost (cyclic).
    let mut triple = Hypergraph::new();
    let x = triple.add_interval_var("X");
    let y = triple.add_interval_var("Y");
    let z = triple.add_interval_var("Z");
    for label in ["R", "S", "T"] {
        triple.add_edge(label, vec![x, y, z]);
    }
    let mut gamma_only = Hypergraph::new();
    let x = gamma_only.add_interval_var("X");
    let y = gamma_only.add_interval_var("Y");
    let z = gamma_only.add_interval_var("Z");
    gamma_only.add_edge("R", vec![x, y]);
    gamma_only.add_edge("S", vec![x, z]);
    gamma_only.add_edge("T", vec![x, y, z]);

    let witnesses: Vec<(&str, Hypergraph)> = vec![
        ("Berge-acyclic", figure_9e()),
        ("iota, not Berge", figure_9f()),
        ("gamma, not iota", triple),
        ("alpha, not gamma", gamma_only),
        ("cyclic", triangle_ij()),
    ];

    let mut rows = Vec::new();
    for (region, h) in &witnesses {
        let report = AcyclicityReport::of(h);
        rows.push(vec![
            region.to_string(),
            h.render(),
            yesno(report.berge),
            yesno(report.iota),
            yesno(report.gamma),
            yesno(report.alpha),
        ]);
    }
    println!("Figure 5: acyclicity regions with witnesses\n");
    println!(
        "{}",
        render_table(
            &["region", "hypergraph", "Berge", "iota", "gamma", "alpha"],
            &rows
        )
    );

    // The inclusions themselves.
    let mut violations = 0;
    for (_, h) in &witnesses {
        if is_berge_acyclic(h) && !is_iota_acyclic(h) {
            violations += 1;
        }
        if is_iota_acyclic(h) && !is_gamma_acyclic(h) {
            violations += 1;
        }
        if is_gamma_acyclic(h) && !is_alpha_acyclic(h) {
            violations += 1;
        }
    }
    println!(
        "inclusion chain Berge ⊆ iota ⊆ gamma ⊆ alpha: {} violations",
        violations
    );
    println!("every region above is non-empty, so all inclusions are strict (Corollary 6.4).");
}

fn yesno(b: bool) -> String {
    if b { "yes" } else { "no" }.to_string()
}
