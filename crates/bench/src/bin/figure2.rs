//! E2 — Section 1.1 / Figure 2: the eight EJ queries of the triangle
//! reduction and their star decompositions with central bag {A1, B1, C1}.
//!
//! ```text
//! cargo run --release -p ij-bench --bin figure2
//! ```

use ij_bench::render_table;
use ij_hypergraph::{are_isomorphic, full_reduction, triangle_ej, triangle_ij};
use ij_widths::{fractional_hypertree_width, optimal_tree_decomposition};

fn main() {
    let h = triangle_ij();
    let reduced = full_reduction(&h);
    println!("Section 1.1: Q△ = {h}");
    println!("Forward reduction produces {} EJ queries:\n", reduced.len());

    let mut rows: Vec<Vec<String>> = Vec::new();
    for (i, r) in reduced.iter().enumerate() {
        let schema: Vec<String> = r
            .hypergraph
            .edges()
            .iter()
            .map(|e| format!("{}/{}", e.label, e.vertices.len()))
            .collect();
        let dropped = r.hypergraph.drop_singleton_vertices();
        let fhtw = fractional_hypertree_width(&r.hypergraph);
        rows.push(vec![
            format!("Q~{}", i + 1),
            schema.join(" "),
            format!("{}", are_isomorphic(&dropped, &triangle_ej())),
            format!("{:.2}", fhtw),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "EJ query",
                "relation arities",
                "core = EJ triangle {A1,B1,C1}",
                "fhtw"
            ],
            &rows
        )
    );

    // One representative decomposition (Figure 2 shows the star with central
    // bag {A1, B1, C1}).
    let example = &reduced[0].hypergraph;
    let td = optimal_tree_decomposition(example);
    println!("Optimal decomposition of Q~1 (width {:.2}):", td.width);
    for (i, bag) in td.bags.iter().enumerate() {
        let names: Vec<String> = bag
            .iter()
            .map(|&v| example.vertex(v).name.clone())
            .collect();
        println!("  bag {i}: {{{}}}", names.join(", "));
    }
    println!("  tree edges: {:?}", td.edges);
    println!();
    println!(
        "All eight queries contain the EJ triangle on {{A#1, B#1, C#1}} after dropping singleton"
    );
    println!("variables, so each admits a star decomposition whose central bag costs N^(3/2) —");
    println!("matching the O(N^(3/2) log^3 N) bound of Section 1.1.");
}
