//! E11 — the FAQ-AI comparator, recomputed (Appendix F, Tables 1 and 3).
//!
//! Three parts:
//!
//! 1. the FAQ-AI column of Table 1, *computed* from the inequality-join
//!    reformulation and optimal relaxed tree decompositions rather than cited
//!    (`ij-faqai`): relaxed fractional hypertree width and the `log` exponent
//!    per query;
//! 2. Table 3: for the 4-clique conjunct analysed in the paper, every
//!    partition of the six relations into three bags of two is ruled out by a
//!    triangle of inequalities connecting every pair of bags;
//! 3. an empirical comparison of the reduction-based engine against the
//!    FAQ-AI evaluator on the triangle query (the `N^{3/2}` vs `N^2` shape of
//!    Table 1).
//!
//! ```text
//! cargo run --release -p ij-bench --bin table3
//! ```

use ij_bench::{fit_exponent, render_table, scaling_workload, time};
use ij_engine::IntersectionJoinEngine;
use ij_faqai::{analyze_disjunction, evaluate_faqai, faqai_disjunction, table3};
use ij_hypergraph::{four_clique_ij, loomis_whitney_4_ij, triangle_ij};
use ij_relation::Query;
use ij_widths::ij_width;

fn main() {
    faqai_column();
    table_3();
    empirical_triangle();
}

fn faqai_column() {
    println!("Table 1, FAQ-AI column (recomputed): relaxed widths of the inequality-join form\n");
    let rows = vec![
        ("Triangle", triangle_ij(), "3/2"),
        ("Loomis-Whitney-4", loomis_whitney_4_ij(), "5/3"),
        ("4-clique", four_clique_ij(), "2"),
    ];
    let mut out = Vec::new();
    for (name, h, ijw_paper) in rows {
        let q = Query::from_hypergraph(&h);
        let conjuncts = faqai_disjunction(&q).expect("pure IJ query");
        let analysis = analyze_disjunction(&conjuncts);
        let ours = ij_width(&h);
        out.push(vec![
            name.to_string(),
            conjuncts.len().to_string(),
            analysis.width.to_string(),
            analysis.log_exponent.to_string(),
            analysis.runtime(),
            format!("{:.4} (paper {ijw_paper})", ours.value),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "query",
                "#conjuncts",
                "fhtw_ℓ",
                "log exp",
                "FAQ-AI runtime",
                "ij-width (ours)"
            ],
            &out
        )
    );
    println!("(paper Table 1: O(N^2 log^3 N), O(N^2 log^9 N), O(N^3 log^5 N) vs N^{{3/2}}, N^{{5/3}}, N^2)\n");
}

fn table_3() {
    println!(
        "Table 3: no relaxed decomposition of the 4-clique conjunct has two relations per bag\n"
    );
    let q = Query::from_hypergraph(&four_clique_ij());
    let conjuncts = faqai_disjunction(&q).expect("pure IJ query");
    // The paper's conjunct: V_A = R, V_B = U, V_C = S, V_D = T.  The catalog
    // names the six atoms R, S, T, U, V, W in that order.
    let target = conjuncts
        .iter()
        .find(|c| {
            c.choice
                == vec![
                    ("A".to_string(), 0),
                    ("B".to_string(), 3),
                    ("C".to_string(), 1),
                    ("D".to_string(), 2),
                ]
        })
        .expect("the Table 3 conjunct exists");
    let relation_names = ["R", "S", "T", "U", "V", "W"];
    let rows = table3(target).expect("every pair partition is ruled out");
    let mut out = Vec::new();
    for row in &rows {
        let partition = row
            .partition
            .iter()
            .map(|pair| {
                format!(
                    "{{{}, {}}}",
                    relation_names[pair[0]], relation_names[pair[1]]
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        let witnesses = row
            .witnesses
            .iter()
            .map(|w| {
                let (a, b) = w.atoms();
                format!(
                    "{{{}, {}}}",
                    relation_names[a.min(b)],
                    relation_names[a.max(b)]
                )
            })
            .collect::<Vec<_>>()
            .join(", ");
        out.push(vec![format!("{{{partition}}}"), witnesses]);
    }
    println!(
        "{}",
        render_table(
            &[
                "partition into 3 bags of size 2",
                "inequalities connecting every 2 bags"
            ],
            &out
        )
    );
    println!(
        "({} partitions, each ruled out by a triangle of inequalities — paper Table 3)\n",
        rows.len()
    );
}

fn empirical_triangle() {
    println!("Empirical: reduction-based engine vs FAQ-AI evaluator on the triangle IJ query\n");
    let query = Query::from_hypergraph(&triangle_ij());
    let engine = IntersectionJoinEngine::with_defaults();
    let sizes = [100usize, 200, 400];
    let mut ours: Vec<(f64, f64)> = Vec::new();
    let mut faqai: Vec<(f64, f64)> = Vec::new();
    let mut rows = Vec::new();
    for &n in &sizes {
        let db = scaling_workload(&query, n, 0xFA0A1);
        let (answer_ours, t_ours) = time(|| engine.evaluate(&query, &db).expect("engine"));
        let (stats_faqai, t_faqai) = time(|| evaluate_faqai(&query, &db).expect("faqai"));
        assert_eq!(
            answer_ours, stats_faqai.answer,
            "the two evaluators must agree"
        );
        ours.push((n as f64, t_ours.as_secs_f64()));
        faqai.push((n as f64, t_faqai.as_secs_f64()));
        rows.push(vec![
            n.to_string(),
            format!("{}", answer_ours),
            format!("{:.1}", t_ours.as_secs_f64() * 1e3),
            format!("{:.1}", t_faqai.as_secs_f64() * 1e3),
            stats_faqai.max_bag_tuples.to_string(),
        ]);
    }
    rows.push(vec![
        "fitted exponent".to_string(),
        "-".to_string(),
        format!("{:.2}", fit_exponent(&ours)),
        format!("{:.2}", fit_exponent(&faqai)),
        "-".to_string(),
    ]);
    println!(
        "{}",
        render_table(
            &[
                "N (tuples/relation)",
                "answer",
                "ours [ms]",
                "FAQ-AI [ms]",
                "FAQ-AI max bag"
            ],
            &rows
        )
    );
    println!("(expected shape: the FAQ-AI bag materialisation grows ~quadratically, ours ~N^1.5·polylog)");
}
