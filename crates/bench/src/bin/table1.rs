//! E1 — Table 1 / Table 2: our approach versus the FAQ-AI-style and
//! classical baselines on the three cyclic IJ queries.
//!
//! The analytic half of the table reports the runtime exponents: the ij-width
//! computed by this library against the relaxed-submodular-width exponents
//! the paper derives for FAQ-AI (Appendix F).  The empirical half measures
//! the reduction-based evaluation against the one-join-at-a-time cascade
//! baseline (whose exponent matches the FAQ-AI bound on these queries) on
//! growing synthetic workloads and fits log–log slopes.
//!
//! ```text
//! cargo run --release -p ij-bench --bin table1
//! ```

use ij_baselines::binary_join_cascade;
use ij_bench::{evaluate_all_disjuncts, fit_exponent, render_table, scaling_workload, time};
use ij_ejoin::EjStrategy;
use ij_hypergraph::{four_clique_ij, loomis_whitney_4_ij, triangle_ij};
use ij_reduction::forward_reduction;
use ij_relation::Query;
use ij_widths::ij_width;

fn main() {
    analytic_table();
    empirical_table();
}

fn analytic_table() {
    println!("Table 1/2 (analytic): runtime exponents per query\n");
    // FAQ-AI exponents as derived in Appendix F (the polylog factors differ).
    let rows = vec![
        ("Triangle", triangle_ij(), 2.0),
        ("Loomis-Whitney-4", loomis_whitney_4_ij(), 2.0),
        ("4-clique", four_clique_ij(), 3.0),
    ];
    let mut out_rows: Vec<Vec<String>> = Vec::new();
    for (name, h, faq_ai) in rows {
        let report = ij_width(&h);
        out_rows.push(vec![
            name.to_string(),
            format!("{:.4}", faq_ai),
            format!("{:.4}", report.value),
            format!("{}", report.num_reduced_queries),
            format!("{}", report.classes.len()),
            format!("{}", report.exact),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "query",
                "FAQ-AI exponent",
                "ij-width (ours)",
                "#EJ queries",
                "#classes",
                "exact"
            ],
            &out_rows
        )
    );
    println!("(paper: Triangle 3/2 vs 2, LW4 5/3 vs 2, 4-clique 2 vs 3 — Table 1/2)\n");
}

fn empirical_table() {
    println!(
        "Table 1 (empirical): wall-clock scaling, reduction approach vs binary-join cascade\n"
    );
    // The LW4 query is omitted from the wall-clock half: its ternary atoms
    // carry a log^8 N factor (three interval variables per atom), so even tiny
    // instances are dominated by the transformed-relation constants; its
    // analytic exponents are reported above.
    let queries: Vec<(&str, Query, Vec<usize>)> = vec![
        (
            "Triangle",
            Query::from_hypergraph(&triangle_ij()),
            vec![200, 400, 800],
        ),
        (
            "4-clique",
            Query::from_hypergraph(&four_clique_ij()),
            vec![12, 24],
        ),
    ];
    let mut rows: Vec<Vec<String>> = Vec::new();
    for (name, query, sizes) in queries {
        let mut ours: Vec<(f64, f64)> = Vec::new();
        let mut cascade: Vec<(f64, f64)> = Vec::new();
        for &n in &sizes {
            let db = scaling_workload(&query, n, 0xA11CE);
            let (_, t_ours) = time(|| {
                let reduction = forward_reduction(&query, &db).expect("reduction succeeds");
                evaluate_all_disjuncts(&reduction, EjStrategy::Auto)
            });
            let (_, t_cascade) =
                time(|| binary_join_cascade(&query, &db).expect("cascade succeeds"));
            ours.push((n as f64, t_ours.as_secs_f64()));
            cascade.push((n as f64, t_cascade.as_secs_f64()));
            rows.push(vec![
                name.to_string(),
                n.to_string(),
                format!("{:.1}", t_ours.as_secs_f64() * 1e3),
                format!("{:.1}", t_cascade.as_secs_f64() * 1e3),
            ]);
        }
        rows.push(vec![
            format!("{name} (fitted exponent)"),
            "-".to_string(),
            format!("{:.2}", fit_exponent(&ours)),
            format!("{:.2}", fit_exponent(&cascade)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["query", "N (tuples/relation)", "ours [ms]", "cascade [ms]"],
            &rows
        )
    );
    println!("(expected shape: the reduction approach grows strictly slower than the cascade)");
}
