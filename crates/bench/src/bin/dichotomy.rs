//! E7 — Theorem 6.6 (the ι-acyclicity dichotomy), empirically.
//!
//! An ι-acyclic query (Figure 4b) evaluated through the reduction scales
//! near-linearly with the database size, while the non-ι-acyclic triangle
//! query grows super-linearly; the nested-loop baseline grows polynomially
//! with the number of atoms.  Wall-clock times are measured on grid-aligned
//! workloads of increasing size and log–log slopes are fitted.
//!
//! ```text
//! cargo run --release -p ij-bench --bin dichotomy
//! ```

use ij_bench::{evaluate_all_disjuncts, fit_exponent, render_table, scaling_workload, time};
use ij_ejoin::EjStrategy;
use ij_hypergraph::{figure_4b, triangle_ij};
use ij_reduction::forward_reduction;
use ij_relation::Query;

fn main() {
    let sizes = [250usize, 500, 1000];
    let cases = [
        (
            "Figure 4b (iota-acyclic)",
            Query::from_hypergraph(&figure_4b()),
        ),
        (
            "Triangle (not iota-acyclic)",
            Query::from_hypergraph(&triangle_ij()),
        ),
    ];

    let mut rows = Vec::new();
    for (name, query) in &cases {
        let mut series: Vec<(f64, f64)> = Vec::new();
        for &n in &sizes {
            let db = scaling_workload(query, n, 0xD1C0);
            let (_, duration) = time(|| {
                let reduction = forward_reduction(query, &db).expect("reduction succeeds");
                evaluate_all_disjuncts(&reduction, EjStrategy::Auto)
            });
            series.push((n as f64, duration.as_secs_f64()));
            rows.push(vec![
                name.to_string(),
                n.to_string(),
                format!("{:.2}", duration.as_secs_f64() * 1e3),
            ]);
        }
        rows.push(vec![
            format!("{name} — fitted exponent"),
            "-".to_string(),
            format!("{:.2}", fit_exponent(&series)),
        ]);
    }

    println!("Theorem 6.6 dichotomy: reduction-based evaluation, no early exit\n");
    println!(
        "{}",
        render_table(&["query", "N (tuples/relation)", "time [ms]"], &rows)
    );
    println!("note: on these synthetic workloads the cost of *both* queries is dominated by the");
    println!("near-linear transformed database (the polylog factors of Lemma 4.10), so the fitted");
    println!(
        "slopes land between 1 and 1.5 for both.  The dichotomy of Theorem 6.6 is about worst-"
    );
    println!(
        "case instances: the guarantee for the iota-acyclic query holds on every input, while"
    );
    println!("the triangle admits adversarial instances on which any algorithm needs super-linear");
    println!(
        "time (under the 3SUM conjecture).  The structural side of the dichotomy (iota-acyclic"
    );
    println!("iff every reduced class has width 1) is verified exactly in tests/paper_results.rs.");
}
