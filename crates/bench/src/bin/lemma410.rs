//! E8 — Lemma 4.10: the size of the transformed relations.
//!
//! The forward reduction maps a relation of size `N` to relations of size
//! `O(N · log^i |I|)` where `i` is the number of fresh variables the relation
//! receives for one interval variable.  This binary measures the transformed
//! relation sizes of the triangle reduction for growing `N` and compares them
//! against the bound `N · (2h+2) · (h+1)` per interval variable, where `h` is
//! the segment-tree height.
//!
//! ```text
//! cargo run --release -p ij-bench --bin lemma410
//! ```

use ij_bench::{dense_workload, render_table};
use ij_hypergraph::triangle_ij;
use ij_reduction::forward_reduction;
use ij_relation::Query;

fn main() {
    let query = Query::from_hypergraph(&triangle_ij());
    let mut rows = Vec::new();
    for n in [100usize, 200, 400, 800, 1600] {
        let db = dense_workload(&query, n, 0xBEEF);
        let reduction = forward_reduction(&query, &db).expect("reduction succeeds");
        let height = reduction
            .stats
            .variables
            .iter()
            .map(|(_, _, h)| *h as usize)
            .max()
            .unwrap_or(1);
        // Each triangle relation has two interval variables, each contributing
        // at most (2h+2)·(h+1) expansions per tuple (canonical partition ×
        // compositions into at most two parts).
        let per_var = (2 * height + 2) * (height + 1);
        let bound = n * per_var * per_var;
        let blowup = reduction.stats.max_relation_tuples as f64 / n as f64;
        rows.push(vec![
            n.to_string(),
            height.to_string(),
            reduction.stats.transformed_tuples.to_string(),
            reduction.stats.max_relation_tuples.to_string(),
            format!("{:.1}", blowup),
            bound.to_string(),
            (reduction.stats.max_relation_tuples <= bound).to_string(),
        ]);
    }
    println!("Lemma 4.10: transformed relation sizes for the triangle reduction\n");
    println!(
        "{}",
        render_table(
            &[
                "N",
                "tree height h",
                "total transformed tuples",
                "largest relation",
                "blow-up (×N)",
                "bound N·((2h+2)(h+1))²",
                "within bound",
            ],
            &rows
        )
    );
    println!("the blow-up column grows poly-logarithmically with N, as Lemma 4.10 predicts.");
}
