//! E12 — ablation of the transformed-relation encoding (Section 1.1, closing
//! discussion; Lemma 4.10).
//!
//! The paper's default encoding materialises, per atom, every combination of
//! the per-variable bitstring expansions (`O(N log^j N)` for `j` interval
//! variables in the atom); the alternative encoding decomposes the atom into
//! a spine plus one relation per interval variable joined on a tuple
//! identifier, whose total size is the *sum* `O(N log N)` per variable.  This
//! binary measures both encodings on the triangle and the 4-clique queries:
//! transformed database size, largest relation and end-to-end evaluation
//! time.
//!
//! ```text
//! cargo run --release -p ij-bench --bin encoding
//! ```

use ij_bench::{render_table, scaling_workload, time};
use ij_engine::{EngineConfig, IntersectionJoinEngine};
use ij_hypergraph::{four_clique_ij, triangle_ij};
use ij_reduction::{forward_reduction_with, EncodingStrategy, ReductionConfig};
use ij_relation::Query;

fn main() {
    println!(
        "Encoding ablation: flat (paper default) vs decomposed (Id-based) transformed relations\n"
    );
    let cases = vec![
        (
            "Triangle",
            Query::from_hypergraph(&triangle_ij()),
            vec![100usize, 200, 400],
        ),
        (
            "4-clique",
            Query::from_hypergraph(&four_clique_ij()),
            vec![8usize, 16],
        ),
    ];
    let mut rows = Vec::new();
    for (name, query, sizes) in cases {
        for &n in &sizes {
            let db = scaling_workload(&query, n, 0xE9C0D);
            let mut cells = vec![name.to_string(), n.to_string()];
            let mut answers = Vec::new();
            for encoding in [EncodingStrategy::Flat, EncodingStrategy::Decomposed] {
                let (reduction, t_reduce) = time(|| {
                    forward_reduction_with(&query, &db, ReductionConfig { encoding })
                        .expect("reduction succeeds")
                });
                let engine = IntersectionJoinEngine::new(EngineConfig {
                    encoding,
                    ..EngineConfig::new()
                });
                let (answer, t_eval) = time(|| engine.evaluate(&query, &db).expect("evaluation"));
                answers.push(answer);
                cells.push(reduction.stats.transformed_tuples.to_string());
                cells.push(reduction.stats.max_relation_tuples.to_string());
                cells.push(format!("{:.1}", (t_reduce + t_eval).as_secs_f64() * 1e3));
            }
            assert_eq!(answers[0], answers[1], "both encodings must agree");
            cells.push(format!("{}", answers[0]));
            rows.push(cells);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "query",
                "N",
                "flat tuples",
                "flat max rel",
                "flat total [ms]",
                "dec tuples",
                "dec max rel",
                "dec total [ms]",
                "answer",
            ],
            &rows
        )
    );
    println!("(Section 1.1: the decomposed encoding trades a larger join for O(N log N) per-variable relations)");
}
