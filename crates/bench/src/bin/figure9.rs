//! E4 — Figure 4, Figure 9, Example 6.5 and Appendix E.4: acyclicity
//! classification and per-class widths of the six example hypergraphs.
//!
//! ```text
//! cargo run --release -p ij-bench --bin figure9
//! ```

use ij_bench::render_table;
use ij_hypergraph::{
    figure_9a, figure_9b, figure_9c, figure_9d, figure_9e, figure_9f, AcyclicityReport, Hypergraph,
};
use ij_widths::ij_width;

fn main() {
    let figures: Vec<(&str, Hypergraph, &str)> = vec![
        ("9a", figure_9a(), "E.4.1: ijw 3/2"),
        ("9b", figure_9b(), "E.4.2 / Example 6.5: ijw 3/2"),
        ("9c", figure_9c(), "E.4.3 / Figure 4a: ijw 3/2"),
        ("9d", figure_9d(), "E.4.4 / Example 4.8: linear"),
        ("9e", figure_9e(), "E.4.5 / Figure 4b: linear"),
        ("9f", figure_9f(), "E.4.6: linear"),
    ];

    let mut rows = Vec::new();
    for (name, h, reference) in &figures {
        let report = AcyclicityReport::of(h);
        let widths = ij_width(h);
        rows.push(vec![
            name.to_string(),
            h.render(),
            report.class.to_string(),
            widths.num_reduced_queries.to_string(),
            widths.num_distinct_after_dropping_singletons.to_string(),
            format!("{:.3}", widths.value),
            if widths.is_linear_time() {
                "O(N polylog N)".into()
            } else {
                format!("O(N^{:.2})", widths.value)
            },
            reference.to_string(),
        ]);
    }
    println!("Figure 9 / Appendix E.4: classification and ij-widths\n");
    println!(
        "{}",
        render_table(
            &[
                "fig",
                "query",
                "class",
                "#EJ",
                "#distinct",
                "ijw",
                "runtime",
                "paper"
            ],
            &rows
        )
    );

    // Per-class detail for Figure 9c (Example 6.5's H1, H2, H3).
    println!("Per-class widths of the Figure 9c reduction (Example 6.5):\n");
    let report = ij_width(&figure_9c());
    let mut rows = Vec::new();
    for (i, class) in report.classes.iter().enumerate() {
        rows.push(vec![
            format!("class {}", i + 1),
            class.representative.render(),
            class.size.to_string(),
            format!("{:.2}", class.fhtw),
            format!("{:.2}", class.subw.value),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["class", "representative", "members", "fhtw", "subw"],
            &rows
        )
    );
    println!("(paper: H1 has width 1.5, H2 and H3 have width 1.0; H2 ≅ H3 up to renaming)");
}
