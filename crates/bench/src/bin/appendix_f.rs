//! E6 — Appendix F.2 / F.3: the isomorphism classes of the reduced EJ
//! queries of the Loomis–Whitney-4 and 4-clique IJ queries, with per-class
//! fractional hypertree and submodular widths.
//!
//! ```text
//! cargo run --release -p ij-bench --bin appendix_f
//! ```

use ij_bench::render_table;
use ij_hypergraph::{four_clique_ij, loomis_whitney_4_ij, Hypergraph};
use ij_widths::ij_width;

fn main() {
    report(
        "Loomis-Whitney-4 (Appendix F.2)",
        &loomis_whitney_4_ij(),
        5.0 / 3.0,
    );
    println!();
    report("4-clique (Appendix F.3)", &four_clique_ij(), 2.0);
}

fn report(name: &str, h: &Hypergraph, expected_ijw: f64) {
    let widths = ij_width(h);
    println!("{name}: {h}");
    println!(
        "reduced queries: {}   distinct after dropping singletons: {}   isomorphism classes: {}",
        widths.num_reduced_queries,
        widths.num_distinct_after_dropping_singletons,
        widths.classes.len()
    );
    let mut rows = Vec::new();
    for (i, class) in widths.classes.iter().enumerate() {
        rows.push(vec![
            format!("class {}", i + 1),
            class.representative.render(),
            class.size.to_string(),
            format!("{:.3}", class.fhtw),
            format!("{:.3}", class.subw.value),
            format!("{:?}", class.subw.source),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "class",
                "representative",
                "members",
                "fhtw",
                "subw",
                "source"
            ],
            &rows
        )
    );
    println!(
        "ij-width = {:.3} (paper: {:.3}), exact: {}",
        widths.value, expected_ijw, widths.exact
    );
}
