//! Shared helpers for the benchmark harness and the table/figure binaries.
//!
//! Every table and figure of the paper has a binary in `src/bin/` that
//! regenerates its analytic content or measures its empirical counterpart
//! (see the Benchmarks section of the workspace `README.md` for the index).
//! The helpers here cover timing, log–log exponent fitting, plain-text table
//! rendering and the standard workloads used across experiments.

mod rowjoin;

pub use rowjoin::{
    evaluate_all_disjuncts_rows, materialise_rows, row_generic_join_boolean, RowDb, RowTrie,
};

use ij_ejoin::{evaluate_ej_boolean, BoundAtom, EjStrategy};
use ij_reduction::ForwardReduction;
use ij_relation::{Database, Query};
use ij_workloads::{generate_for_query, IntervalDistribution, WorkloadConfig};
use std::time::{Duration, Instant};

/// Times a closure.
pub fn time<R>(mut f: impl FnMut() -> R) -> (R, Duration) {
    let start = Instant::now();
    let r = f();
    (r, start.elapsed())
}

/// Least-squares slope of `log(time)` against `log(n)` — the empirical
/// runtime exponent of a series of measurements.
pub fn fit_exponent(points: &[(f64, f64)]) -> f64 {
    let n = points.len() as f64;
    if points.len() < 2 {
        return f64::NAN;
    }
    let xs: Vec<f64> = points.iter().map(|(x, _)| x.ln()).collect();
    let ys: Vec<f64> = points.iter().map(|(_, y)| y.max(1e-12).ln()).collect();
    let mean_x = xs.iter().sum::<f64>() / n;
    let mean_y = ys.iter().sum::<f64>() / n;
    let cov: f64 = xs
        .iter()
        .zip(&ys)
        .map(|(x, y)| (x - mean_x) * (y - mean_y))
        .sum();
    let var: f64 = xs.iter().map(|x| (x - mean_x) * (x - mean_x)).sum();
    cov / var
}

/// Renders an aligned plain-text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                format!(
                    "{:<width$}",
                    c,
                    width = widths.get(i).copied().unwrap_or(c.len())
                )
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// The standard grid-aligned workload used for scaling measurements: aligned
/// intervals keep the canonical partitions (and therefore the transformed
/// database) small, so larger `N` stays affordable while the asymptotic shape
/// is preserved.
pub fn scaling_workload(query: &Query, n: usize, seed: u64) -> Database {
    generate_for_query(
        query,
        &WorkloadConfig {
            tuples_per_relation: n,
            seed,
            distribution: IntervalDistribution::GridAligned {
                span: 4.0 * n as f64,
                cells: (2 * n).max(8) as u32,
                max_cells: 3,
            },
        },
    )
}

/// A denser uniform workload (more intersections per interval).
pub fn dense_workload(query: &Query, n: usize, seed: u64) -> Database {
    generate_for_query(
        query,
        &WorkloadConfig {
            tuples_per_relation: n,
            seed,
            distribution: IntervalDistribution::Uniform {
                span: n as f64,
                max_len: 4.0,
            },
        },
    )
}

/// Evaluates *every* EJ disjunct of a forward reduction (no early exit), so
/// timings reflect the full worst-case work of the reduction approach.
/// Returns the Boolean answer.
pub fn evaluate_all_disjuncts(reduction: &ForwardReduction, strategy: EjStrategy) -> bool {
    let mut answer = false;
    for i in reduction.deduped_query_indices() {
        let rq = &reduction.queries[i];
        let var_ids = rq.dense_var_ids();
        let atoms: Vec<BoundAtom<'_>> = rq
            .atoms
            .iter()
            .map(|a| {
                let rel = reduction
                    .database
                    .relation(&a.relation)
                    .expect("relation exists");
                BoundAtom::new(rel, a.vars.iter().map(|v| var_ids[v.as_str()]).collect())
            })
            .collect();
        if evaluate_ej_boolean(&atoms, strategy) {
            answer = true;
        }
    }
    answer
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_engine::IntersectionJoinEngine;
    use ij_reduction::forward_reduction;

    #[test]
    fn exponent_fit_recovers_known_slopes() {
        let quadratic: Vec<(f64, f64)> = (1..=6)
            .map(|i| (i as f64 * 100.0, (i as f64 * 100.0).powi(2) * 3.0))
            .collect();
        assert!((fit_exponent(&quadratic) - 2.0).abs() < 1e-9);
        let linear: Vec<(f64, f64)> = (1..=6)
            .map(|i| (i as f64 * 50.0, i as f64 * 50.0))
            .collect();
        assert!((fit_exponent(&linear) - 1.0).abs() < 1e-9);
        assert!(fit_exponent(&[(10.0, 1.0)]).is_nan());
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let table = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer-name".into(), "22".into()],
            ],
        );
        assert!(table.contains("longer-name"));
        assert!(table.lines().count() == 4);
    }

    #[test]
    fn evaluate_all_disjuncts_matches_engine_answer() {
        let query = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let engine = IntersectionJoinEngine::with_defaults();
        for seed in 0..6 {
            let db = dense_workload(&query, 12, seed);
            let reduction = forward_reduction(&query, &db).unwrap();
            let expected = engine.evaluate(&query, &db).unwrap();
            assert_eq!(
                evaluate_all_disjuncts(&reduction, EjStrategy::Auto),
                expected
            );
        }
    }

    #[test]
    fn workloads_scale_with_n() {
        let query = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let small = scaling_workload(&query, 10, 1);
        let large = scaling_workload(&query, 100, 1);
        assert_eq!(small.relation("R").unwrap().len(), 10);
        assert_eq!(large.relation("R").unwrap().len(), 100);
    }
}
