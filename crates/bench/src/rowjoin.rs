//! A row-oriented, `Value`-keyed re-implementation of the Boolean generic
//! join — the evaluation strategy of the engine *before* the interned
//! columnar refactor, preserved here as an ablation baseline.
//!
//! The substrates benchmark compares this path (hash and compare full
//! [`Value`]s at every trie level) against the production id-keyed path to
//! quantify what interning buys on the E1 cyclic workload.  To keep the
//! ablation fair, rows are materialised **once** via [`materialise_rows`]
//! outside the timed region — the pre-refactor engine stored rows directly,
//! so row access was free for it and must not be billed to this baseline.

use ij_reduction::ForwardReduction;
use ij_relation::{Database, Value};
use std::collections::{BTreeMap, HashMap};

/// Materialised row storage, as the pre-refactor engine kept it: relation
/// name → rows of values.
pub type RowDb = BTreeMap<String, Vec<Vec<Value>>>;

/// Resolves every relation of `db` into plain rows (do this outside any
/// timed region; see the module docs).
pub fn materialise_rows(db: &Database) -> RowDb {
    db.relations()
        .map(|rel| (rel.name().to_string(), rel.tuples()))
        .collect()
}

/// A trie node keyed by full values (SipHash on `Value`).
#[derive(Debug, Default)]
pub struct RowTrieNode {
    children: HashMap<Value, RowTrieNode>,
}

impl RowTrieNode {
    fn insert_path(&mut self, values: &[Value]) {
        if let Some((first, rest)) = values.split_first() {
            self.children.entry(*first).or_default().insert_path(rest);
        }
    }

    fn fanout(&self) -> usize {
        self.children.len()
    }
}

/// A row-oriented atom trie: levels are the atom's distinct variables in
/// global order, built from `Vec<Value>` rows.
pub struct RowTrie {
    level_vars: Vec<usize>,
    root: RowTrieNode,
}

impl RowTrie {
    /// Builds the trie from rows (the pre-refactor build path).
    pub fn build(rows: &[Vec<Value>], vars: &[usize], global_order: &[usize]) -> Self {
        let mut level_vars: Vec<usize> = vars.to_vec();
        level_vars.sort_unstable();
        level_vars.dedup();
        level_vars.sort_by_key(|v| global_order.iter().position(|u| u == v).unwrap());
        let first_col: Vec<usize> = level_vars
            .iter()
            .map(|&v| vars.iter().position(|&u| u == v).unwrap())
            .collect();
        let mut equal_pairs: Vec<(usize, usize)> = Vec::new();
        for (i, &v) in vars.iter().enumerate() {
            let first = vars.iter().position(|&u| u == v).unwrap();
            if first != i {
                equal_pairs.push((first, i));
            }
        }
        let mut root = RowTrieNode::default();
        'rows: for t in rows {
            for &(a, b) in &equal_pairs {
                if t[a] != t[b] {
                    continue 'rows;
                }
            }
            let path: Vec<Value> = first_col.iter().map(|&c| t[c]).collect();
            root.insert_path(&path);
        }
        RowTrie { level_vars, root }
    }
}

/// Boolean generic join over row-oriented tries (mirrors the id-keyed search
/// of `ij_ejoin` value-for-value).
pub fn row_generic_join_boolean(atoms: &[(&[Vec<Value>], Vec<usize>)]) -> bool {
    if atoms.iter().any(|(rows, _)| rows.is_empty()) {
        return false;
    }
    if atoms.is_empty() {
        return true;
    }
    let mut order: Vec<usize> = atoms
        .iter()
        .flat_map(|(_, vars)| vars.iter().copied())
        .collect();
    order.sort_unstable();
    order.dedup();
    let tries: Vec<RowTrie> = atoms
        .iter()
        .map(|(rows, vars)| RowTrie::build(rows, vars, &order))
        .collect();
    let level_of: Vec<Vec<Option<usize>>> = tries
        .iter()
        .map(|t| {
            order
                .iter()
                .map(|v| t.level_vars.iter().position(|u| u == v))
                .collect()
        })
        .collect();
    let mut positions: Vec<&RowTrieNode> = tries.iter().map(|t| &t.root).collect();
    row_search(&order, &level_of, 0, &mut positions)
}

fn row_search(
    order: &[usize],
    level_of: &[Vec<Option<usize>>],
    depth: usize,
    positions: &mut Vec<&RowTrieNode>,
) -> bool {
    if depth == order.len() {
        return true;
    }
    let participating: Vec<usize> = (0..positions.len())
        .filter(|&i| level_of[i][depth].is_some())
        .collect();
    if participating.is_empty() {
        return row_search(order, level_of, depth + 1, positions);
    }
    let smallest = *participating
        .iter()
        .min_by_key(|&&i| positions[i].fanout())
        .expect("participating atoms exist");
    let candidates: Vec<Value> = positions[smallest].children.keys().copied().collect();
    for value in candidates {
        let saved = positions.clone();
        let mut ok = true;
        for &i in &participating {
            match positions[i].children.get(&value) {
                Some(next) => positions[i] = next,
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok && row_search(order, level_of, depth + 1, positions) {
            return true;
        }
        *positions = saved;
    }
    false
}

/// Row-oriented counterpart of
/// [`evaluate_all_disjuncts`](crate::evaluate_all_disjuncts): every deduped
/// EJ disjunct of the reduction is evaluated with the `Value`-keyed generic
/// join over the pre-materialised `rows`.
pub fn evaluate_all_disjuncts_rows(reduction: &ForwardReduction, rows: &RowDb) -> bool {
    let mut answer = false;
    for i in reduction.deduped_query_indices() {
        let rq = &reduction.queries[i];
        let var_ids = rq.dense_var_ids();
        let atoms: Vec<(&[Vec<Value>], Vec<usize>)> = rq
            .atoms
            .iter()
            .map(|a| {
                let rel_rows = rows.get(&a.relation).expect("relation exists");
                (
                    rel_rows.as_slice(),
                    a.vars.iter().map(|v| var_ids[v.as_str()]).collect(),
                )
            })
            .collect();
        if row_generic_join_boolean(&atoms) {
            answer = true;
        }
    }
    answer
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{dense_workload, evaluate_all_disjuncts};
    use ij_ejoin::EjStrategy;
    use ij_reduction::forward_reduction;
    use ij_relation::Query;

    #[test]
    fn row_baseline_agrees_with_the_interned_engine() {
        let query = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        for seed in 0..8 {
            let db = dense_workload(&query, 14, seed);
            let reduction = forward_reduction(&query, &db).unwrap();
            let rows = materialise_rows(&reduction.database);
            let row_answer = evaluate_all_disjuncts_rows(&reduction, &rows);
            let interned = evaluate_all_disjuncts(&reduction, EjStrategy::GenericJoin);
            assert_eq!(row_answer, interned, "seed {seed}");
        }
    }
}
