//! Labelled multi-hypergraphs with point and interval vertices.

use std::collections::BTreeSet;
use std::fmt;

/// Index of a vertex (query variable) within a [`Hypergraph`].
pub type VarId = usize;

/// Index of a hyperedge (relation atom) within a [`Hypergraph`].
pub type EdgeId = usize;

/// Whether a variable is a point variable (equality joins) or an interval
/// variable (intersection joins).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum VarKind {
    /// A point variable `X`: all occurrences must carry the same value.
    Point,
    /// An interval variable `[X]`: the intervals of all occurrences must have
    /// a non-empty intersection.
    Interval,
}

/// A query variable.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Vertex {
    /// Human-readable name, e.g. `"A"` or `"A#1"` for reduction-introduced
    /// point variables.
    pub name: String,
    /// Point or interval variable.
    pub kind: VarKind,
}

/// A hyperedge: a relation atom with a label and a set of variables.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Hyperedge {
    /// Relation name, e.g. `"R"`.
    pub label: String,
    /// The variables of the atom (kept sorted, duplicates removed).
    pub vertices: BTreeSet<VarId>,
}

/// A labelled multi-hypergraph `H = (V, E)` (Definition A.1).
///
/// Several hyperedges may share the same vertex set; they are distinguished
/// by their position and label (the paper labels hyperedges for the same
/// reason).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Hypergraph {
    vertices: Vec<Vertex>,
    edges: Vec<Hyperedge>,
}

impl Hypergraph {
    /// Creates an empty hypergraph.
    pub fn new() -> Self {
        Hypergraph::default()
    }

    /// Adds a vertex and returns its identifier.  Names need not be unique,
    /// but the convenience constructors in the catalog module keep them so.
    pub fn add_vertex(&mut self, name: impl Into<String>, kind: VarKind) -> VarId {
        self.vertices.push(Vertex {
            name: name.into(),
            kind,
        });
        self.vertices.len() - 1
    }

    /// Adds a point variable.
    pub fn add_point_var(&mut self, name: impl Into<String>) -> VarId {
        self.add_vertex(name, VarKind::Point)
    }

    /// Adds an interval variable.
    pub fn add_interval_var(&mut self, name: impl Into<String>) -> VarId {
        self.add_vertex(name, VarKind::Interval)
    }

    /// Adds a hyperedge over the given vertices and returns its identifier.
    ///
    /// # Panics
    ///
    /// Panics if any vertex identifier is out of range.
    pub fn add_edge(
        &mut self,
        label: impl Into<String>,
        vertices: impl IntoIterator<Item = VarId>,
    ) -> EdgeId {
        let vertices: BTreeSet<VarId> = vertices.into_iter().collect();
        for &v in &vertices {
            assert!(v < self.vertices.len(), "unknown vertex {v}");
        }
        self.edges.push(Hyperedge {
            label: label.into(),
            vertices,
        });
        self.edges.len() - 1
    }

    /// Finds a vertex by name.
    pub fn vertex_by_name(&self, name: &str) -> Option<VarId> {
        self.vertices.iter().position(|v| v.name == name)
    }

    /// Finds an edge by label (the first match).
    pub fn edge_by_label(&self, label: &str) -> Option<EdgeId> {
        self.edges.iter().position(|e| e.label == label)
    }

    /// The vertices.
    pub fn vertices(&self) -> &[Vertex] {
        &self.vertices
    }

    /// The hyperedges.
    pub fn edges(&self) -> &[Hyperedge] {
        &self.edges
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.vertices.len()
    }

    /// Number of hyperedges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The vertex data for `v`.
    pub fn vertex(&self, v: VarId) -> &Vertex {
        &self.vertices[v]
    }

    /// The edge data for `e`.
    pub fn edge(&self, e: EdgeId) -> &Hyperedge {
        &self.edges[e]
    }

    /// Identifiers of the hyperedges containing vertex `v` (the set `E_v`).
    pub fn edges_containing(&self, v: VarId) -> Vec<EdgeId> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.vertices.contains(&v))
            .map(|(i, _)| i)
            .collect()
    }

    /// Number of hyperedges containing `v`.
    pub fn degree(&self, v: VarId) -> usize {
        self.edges
            .iter()
            .filter(|e| e.vertices.contains(&v))
            .count()
    }

    /// All interval variables.
    pub fn interval_vars(&self) -> Vec<VarId> {
        (0..self.vertices.len())
            .filter(|&v| self.vertices[v].kind == VarKind::Interval)
            .collect()
    }

    /// All point variables.
    pub fn point_vars(&self) -> Vec<VarId> {
        (0..self.vertices.len())
            .filter(|&v| self.vertices[v].kind == VarKind::Point)
            .collect()
    }

    /// Interval variables appearing in at least one hyperedge: the variables
    /// the forward reduction has to resolve (Algorithm 1 iterates over every
    /// interval join variable of the query).
    pub fn join_interval_vars(&self) -> Vec<VarId> {
        self.interval_vars()
            .into_iter()
            .filter(|&v| self.degree(v) >= 1)
            .collect()
    }

    /// True if every vertex is a point variable (an EJ query hypergraph).
    pub fn is_ej(&self) -> bool {
        self.vertices.iter().all(|v| v.kind == VarKind::Point)
    }

    /// True if every vertex is an interval variable (an IJ query hypergraph).
    pub fn is_ij(&self) -> bool {
        self.vertices.iter().all(|v| v.kind == VarKind::Interval)
    }

    /// Vertices that occur in exactly one hyperedge ("singleton" variables in
    /// the terminology of Appendix E.4/F).
    pub fn singleton_vertices(&self) -> Vec<VarId> {
        (0..self.vertices.len())
            .filter(|&v| self.degree(v) == 1)
            .collect()
    }

    /// Returns a copy of the hypergraph with all vertices occurring in at
    /// most one hyperedge removed (and any hyperedge that becomes empty
    /// dropped).  Dropping singleton variables does not change fractional
    /// hypertree or submodular widths and is used by the paper to reduce the
    /// number of distinct reduced queries (Appendix E.4, F.2, F.3).
    pub fn drop_singleton_vertices(&self) -> Hypergraph {
        let keep: Vec<bool> = (0..self.vertices.len())
            .map(|v| self.degree(v) >= 2)
            .collect();
        self.restrict_to(&keep)
    }

    /// Returns a copy restricted to the vertices with `keep[v] == true`,
    /// remapping vertex identifiers densely.  Hyperedges that become empty
    /// are dropped.
    pub fn restrict_to(&self, keep: &[bool]) -> Hypergraph {
        assert_eq!(keep.len(), self.vertices.len());
        let mut mapping: Vec<Option<VarId>> = vec![None; self.vertices.len()];
        let mut out = Hypergraph::new();
        for (v, vertex) in self.vertices.iter().enumerate() {
            if keep[v] {
                mapping[v] = Some(out.add_vertex(vertex.name.clone(), vertex.kind));
            }
        }
        for edge in &self.edges {
            let vs: Vec<VarId> = edge.vertices.iter().filter_map(|&v| mapping[v]).collect();
            if !vs.is_empty() {
                out.add_edge(edge.label.clone(), vs);
            }
        }
        out
    }

    /// The primal (Gaifman) graph: an undirected graph on the vertices with
    /// an edge whenever two vertices co-occur in a hyperedge.  Returned as an
    /// adjacency matrix.
    pub fn primal_graph(&self) -> Vec<Vec<bool>> {
        let n = self.vertices.len();
        let mut adj = vec![vec![false; n]; n];
        for e in &self.edges {
            let vs: Vec<VarId> = e.vertices.iter().copied().collect();
            for i in 0..vs.len() {
                for j in i + 1..vs.len() {
                    adj[vs[i]][vs[j]] = true;
                    adj[vs[j]][vs[i]] = true;
                }
            }
        }
        adj
    }

    /// Multiset of hyperedge vertex sets (used by tests and invariants).
    pub fn edge_vertex_sets(&self) -> Vec<BTreeSet<VarId>> {
        self.edges.iter().map(|e| e.vertices.clone()).collect()
    }

    /// A compact textual rendering such as `R(A,B) ∧ S(B,C)`.
    pub fn render(&self) -> String {
        let atoms: Vec<String> = self
            .edges
            .iter()
            .map(|e| {
                let vars: Vec<String> = e
                    .vertices
                    .iter()
                    .map(|&v| {
                        let vx = &self.vertices[v];
                        match vx.kind {
                            VarKind::Point => vx.name.clone(),
                            VarKind::Interval => format!("[{}]", vx.name),
                        }
                    })
                    .collect();
                format!("{}({})", e.label, vars.join(","))
            })
            .collect();
        atoms.join(" ∧ ")
    }
}

impl fmt::Display for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

/// Convenience constructor for an IJ hypergraph from `(label, vars)` atoms
/// where variables are identified by name and every variable is an interval
/// variable.
pub(crate) fn ij_from_atoms(atoms: &[(&str, &[&str])]) -> Hypergraph {
    from_atoms(atoms, VarKind::Interval)
}

/// Convenience constructor for an EJ hypergraph from `(label, vars)` atoms.
pub(crate) fn ej_from_atoms(atoms: &[(&str, &[&str])]) -> Hypergraph {
    from_atoms(atoms, VarKind::Point)
}

fn from_atoms(atoms: &[(&str, &[&str])], kind: VarKind) -> Hypergraph {
    let mut h = Hypergraph::new();
    for (label, vars) in atoms {
        let ids: Vec<VarId> = vars
            .iter()
            .map(|name| {
                h.vertex_by_name(name)
                    .unwrap_or_else(|| h.add_vertex(*name, kind))
            })
            .collect();
        h.add_edge(*label, ids);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> Hypergraph {
        ij_from_atoms(&[("R", &["A", "B"]), ("S", &["B", "C"]), ("T", &["A", "C"])])
    }

    #[test]
    fn construction_and_lookup() {
        let h = triangle();
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 3);
        let a = h.vertex_by_name("A").unwrap();
        assert_eq!(h.degree(a), 2);
        assert_eq!(h.edges_containing(a).len(), 2);
        assert_eq!(h.edge_by_label("S"), Some(1));
        assert!(h.is_ij());
        assert!(!h.is_ej());
        assert_eq!(h.render(), "R([A],[B]) ∧ S([B],[C]) ∧ T([A],[C])");
    }

    #[test]
    fn duplicate_vertices_in_an_atom_collapse() {
        let mut h = Hypergraph::new();
        let a = h.add_point_var("A");
        let e = h.add_edge("R", vec![a, a]);
        assert_eq!(h.edge(e).vertices.len(), 1);
    }

    #[test]
    fn singleton_vertices_and_restriction() {
        // Example 4.8 / Figure 9d: T([A]) makes nothing a singleton for A,
        // but B and C each occur in two edges.
        let h = ij_from_atoms(&[
            ("R", &["A", "B", "C"]),
            ("S", &["A", "B", "C"]),
            ("T", &["A"]),
        ]);
        assert!(h.singleton_vertices().is_empty());

        let mut g = Hypergraph::new();
        let a = g.add_point_var("A");
        let b = g.add_point_var("B");
        let c = g.add_point_var("C");
        g.add_edge("R", vec![a, b]);
        g.add_edge("S", vec![b, c]);
        assert_eq!(g.singleton_vertices(), vec![a, c]);
        let reduced = g.drop_singleton_vertices();
        assert_eq!(reduced.num_vertices(), 1);
        assert_eq!(reduced.num_edges(), 2);
        assert_eq!(reduced.vertex(0).name, "B");
    }

    #[test]
    fn restriction_drops_empty_edges() {
        let mut g = Hypergraph::new();
        let a = g.add_point_var("A");
        let b = g.add_point_var("B");
        g.add_edge("R", vec![a]);
        g.add_edge("S", vec![a, b]);
        let restricted = g.restrict_to(&[false, true]);
        assert_eq!(restricted.num_edges(), 1);
        assert_eq!(restricted.edge(0).label, "S");
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn primal_graph_of_triangle_is_complete() {
        let h = triangle();
        let adj = h.primal_graph();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(adj[i][j], i != j);
            }
        }
    }

    #[test]
    fn multi_hyperedges_are_preserved() {
        let h = ij_from_atoms(&[("R", &["A", "B", "C"]), ("S", &["A", "B", "C"])]);
        assert_eq!(h.num_edges(), 2);
        assert_eq!(h.edge(0).vertices, h.edge(1).vertices);
    }

    #[test]
    fn interval_and_point_vars_are_tracked() {
        let mut h = Hypergraph::new();
        let a = h.add_interval_var("A");
        let x = h.add_point_var("X");
        h.add_edge("R", vec![a, x]);
        assert_eq!(h.interval_vars(), vec![a]);
        assert_eq!(h.point_vars(), vec![x]);
        assert!(!h.is_ej());
        assert!(!h.is_ij());
    }
}
