//! Hypergraph isomorphism and isomorphism-class grouping.
//!
//! Appendix E.4 and Appendix F group the (many) EJ queries produced by the
//! forward reduction into a handful of isomorphism classes and analyse one
//! representative per class, because widths are invariant under renaming of
//! variables and relations.  Two hypergraphs are isomorphic if there is a
//! bijection between their vertex sets under which the multisets of hyperedge
//! vertex sets coincide (labels are ignored).

use crate::{Hypergraph, VarId};
use std::collections::{BTreeMap, BTreeSet};

/// A cheap isomorphism invariant: hypergraphs with different keys are never
/// isomorphic.  Used to pre-partition before running the exact test.
pub fn invariant_key(h: &Hypergraph) -> Vec<u64> {
    let mut key = vec![h.num_vertices() as u64, h.num_edges() as u64];
    // Sorted edge sizes.
    let mut sizes: Vec<u64> = h.edges().iter().map(|e| e.vertices.len() as u64).collect();
    sizes.sort_unstable();
    key.push(u64::MAX); // separator
    key.extend(sizes);
    // Sorted vertex signatures: (degree, sorted multiset of incident edge sizes).
    let mut signatures: Vec<Vec<u64>> = (0..h.num_vertices())
        .map(|v| vertex_signature(h, v))
        .collect();
    signatures.sort();
    for s in signatures {
        key.push(u64::MAX);
        key.extend(s);
    }
    key
}

fn vertex_signature(h: &Hypergraph, v: VarId) -> Vec<u64> {
    let mut incident_sizes: Vec<u64> = h
        .edges()
        .iter()
        .filter(|e| e.vertices.contains(&v))
        .map(|e| e.vertices.len() as u64)
        .collect();
    incident_sizes.sort_unstable();
    let mut sig = vec![incident_sizes.len() as u64];
    sig.extend(incident_sizes);
    sig
}

/// Exact isomorphism test (backtracking over vertex bijections with
/// signature-based pruning).  Suitable for query-sized hypergraphs.
pub fn are_isomorphic(a: &Hypergraph, b: &Hypergraph) -> bool {
    if a.num_vertices() != b.num_vertices() || a.num_edges() != b.num_edges() {
        return false;
    }
    if invariant_key(a) != invariant_key(b) {
        return false;
    }
    let n = a.num_vertices();
    if n == 0 {
        return edge_multiset(a, &[]) == edge_multiset(b, &[]);
    }

    let sig_a: Vec<Vec<u64>> = (0..n).map(|v| vertex_signature(a, v)).collect();
    let sig_b: Vec<Vec<u64>> = (0..n).map(|v| vertex_signature(b, v)).collect();

    // Order the vertices of `a` by decreasing constraint (rarest signature
    // first) to prune early.
    let mut order: Vec<VarId> = (0..n).collect();
    let mut sig_count: BTreeMap<&Vec<u64>, usize> = BTreeMap::new();
    for s in &sig_b {
        *sig_count.entry(s).or_insert(0) += 1;
    }
    order.sort_by_key(|&v| sig_count.get(&sig_a[v]).copied().unwrap_or(0));

    let mut mapping: Vec<Option<VarId>> = vec![None; n];
    let mut used: Vec<bool> = vec![false; n];
    assign(a, b, &sig_a, &sig_b, &order, 0, &mut mapping, &mut used)
}

#[allow(clippy::too_many_arguments)]
fn assign(
    a: &Hypergraph,
    b: &Hypergraph,
    sig_a: &[Vec<u64>],
    sig_b: &[Vec<u64>],
    order: &[VarId],
    pos: usize,
    mapping: &mut Vec<Option<VarId>>,
    used: &mut Vec<bool>,
) -> bool {
    if pos == order.len() {
        let perm: Vec<VarId> = (0..mapping.len()).map(|v| mapping[v].unwrap()).collect();
        return edge_multiset(a, &perm) == edge_multiset(b, &identity(b.num_vertices()));
    }
    let v = order[pos];
    for w in 0..b.num_vertices() {
        if used[w] || sig_a[v] != sig_b[w] {
            continue;
        }
        mapping[v] = Some(w);
        used[w] = true;
        if partial_consistent(a, b, mapping)
            && assign(a, b, sig_a, sig_b, order, pos + 1, mapping, used)
        {
            return true;
        }
        mapping[v] = None;
        used[w] = false;
    }
    false
}

fn identity(n: usize) -> Vec<VarId> {
    (0..n).collect()
}

/// Multiset of hyperedge vertex sets after renaming vertex `v` to `perm[v]`.
fn edge_multiset(h: &Hypergraph, perm: &[VarId]) -> Vec<BTreeSet<VarId>> {
    let mut edges: Vec<BTreeSet<VarId>> = h
        .edges()
        .iter()
        .map(|e| {
            e.vertices
                .iter()
                .map(|&v| if perm.is_empty() { v } else { perm[v] })
                .collect()
        })
        .collect();
    edges.sort();
    edges
}

/// Cheap partial-consistency check: for every pair of mapped vertices, the
/// number of edges containing both must agree in `a` and `b`.
fn partial_consistent(a: &Hypergraph, b: &Hypergraph, mapping: &[Option<VarId>]) -> bool {
    let mapped: Vec<(VarId, VarId)> = mapping
        .iter()
        .enumerate()
        .filter_map(|(v, m)| m.map(|w| (v, w)))
        .collect();
    for i in 0..mapped.len() {
        for j in i + 1..mapped.len() {
            let (v1, w1) = mapped[i];
            let (v2, w2) = mapped[j];
            let count_a = a
                .edges()
                .iter()
                .filter(|e| e.vertices.contains(&v1) && e.vertices.contains(&v2))
                .count();
            let count_b = b
                .edges()
                .iter()
                .filter(|e| e.vertices.contains(&w1) && e.vertices.contains(&w2))
                .count();
            if count_a != count_b {
                return false;
            }
        }
    }
    true
}

/// Groups hypergraphs into isomorphism classes; returns, for every class, the
/// indices of its members (classes ordered by their smallest member).
pub fn group_into_isomorphism_classes(graphs: &[Hypergraph]) -> Vec<Vec<usize>> {
    // Pre-partition by invariant key, then refine with the exact test.
    let mut by_key: BTreeMap<Vec<u64>, Vec<usize>> = BTreeMap::new();
    for (i, g) in graphs.iter().enumerate() {
        by_key.entry(invariant_key(g)).or_default().push(i);
    }
    let mut classes: Vec<Vec<usize>> = Vec::new();
    for bucket in by_key.values() {
        let mut representatives: Vec<usize> = Vec::new();
        let mut members: Vec<Vec<usize>> = Vec::new();
        for &i in bucket {
            match representatives
                .iter()
                .position(|&r| are_isomorphic(&graphs[r], &graphs[i]))
            {
                Some(pos) => members[pos].push(i),
                None => {
                    representatives.push(i);
                    members.push(vec![i]);
                }
            }
        }
        classes.extend(members);
    }
    classes.sort_by_key(|c| c[0]);
    classes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{figure_9a, figure_9b, triangle_ej, triangle_ij};
    use crate::hgraph::ej_from_atoms;

    #[test]
    fn renamed_hypergraphs_are_isomorphic() {
        let a = ej_from_atoms(&[("R", &["A", "B"]), ("S", &["B", "C"]), ("T", &["A", "C"])]);
        let b = ej_from_atoms(&[("X", &["P", "Q"]), ("Y", &["Q", "Z"]), ("Z", &["Z", "P"])]);
        assert!(are_isomorphic(&a, &b));
    }

    #[test]
    fn kind_is_ignored_but_structure_is_not() {
        // Isomorphism is purely structural: the IJ and EJ triangles are
        // isomorphic as hypergraphs.
        assert!(are_isomorphic(&triangle_ij(), &triangle_ej()));
        // A path of three atoms is not isomorphic to a triangle.
        let path = ej_from_atoms(&[("R", &["A", "B"]), ("S", &["B", "C"]), ("T", &["C", "D"])]);
        assert!(!are_isomorphic(&triangle_ej(), &path));
    }

    #[test]
    fn different_multiplicities_are_distinguished() {
        let two = ej_from_atoms(&[("R", &["A", "B"]), ("S", &["A", "B"])]);
        let three = ej_from_atoms(&[("R", &["A", "B"]), ("S", &["A", "B"]), ("T", &["A", "B"])]);
        assert!(!are_isomorphic(&two, &three));
        let other_two = ej_from_atoms(&[("X", &["U", "V"]), ("Y", &["U", "V"])]);
        assert!(are_isomorphic(&two, &other_two));
    }

    #[test]
    fn figure_9a_and_9b_are_not_isomorphic() {
        assert!(!are_isomorphic(&figure_9a(), &figure_9b()));
    }

    #[test]
    fn grouping_collapses_renamings() {
        let graphs = vec![
            triangle_ej(),
            ej_from_atoms(&[
                ("A1", &["X", "Y"]),
                ("A2", &["Y", "Z"]),
                ("A3", &["X", "Z"]),
            ]),
            ej_from_atoms(&[("R", &["A", "B"]), ("S", &["B", "C"]), ("T", &["C", "D"])]),
            figure_9a(),
        ];
        let classes = group_into_isomorphism_classes(&graphs);
        assert_eq!(classes.len(), 3);
        // The two triangles end up in the same class.
        let triangle_class = classes.iter().find(|c| c.contains(&0)).unwrap();
        assert!(triangle_class.contains(&1));
    }

    #[test]
    fn invariant_key_differs_for_structurally_different_graphs() {
        assert_ne!(invariant_key(&triangle_ej()), invariant_key(&figure_9a()));
        assert_eq!(invariant_key(&triangle_ej()), invariant_key(&triangle_ij()));
    }

    #[test]
    fn empty_hypergraphs_are_isomorphic() {
        assert!(are_isomorphic(&Hypergraph::new(), &Hypergraph::new()));
    }

    #[test]
    fn isomorphism_respects_edge_vertex_sets_not_labels() {
        let a = ej_from_atoms(&[("R", &["A", "B", "C"]), ("S", &["A", "B"])]);
        let b = ej_from_atoms(&[("S", &["X", "Y"]), ("R", &["X", "Y", "Z"])]);
        assert!(are_isomorphic(&a, &b));
    }
}
