//! Hypergraphs, acyclicity notions and the structural IJ-to-EJ transformation.
//!
//! Boolean conjunctive queries are identified with their (multi-)hypergraphs:
//! vertices are variables (point variables for equality joins, interval
//! variables for intersection joins) and hyperedges are relation atoms
//! (Definition 3.3).  This crate provides:
//!
//! * [`Hypergraph`] — labelled multi-hypergraphs with point and interval
//!   vertices;
//! * [`acyclicity`](crate::is_iota_acyclic) — α-, γ-, Berge- and ι-acyclicity
//!   (Section 6 and Appendix A.1), GYO reduction and join-tree construction;
//! * [`transform`](crate::full_reduction) — the structural part of the
//!   forward reduction (Definitions 4.5 and 4.7): the one-step hypergraph
//!   transformation and the full transformation `τ(H)` of Section 4.3;
//! * [`isomorphism`](crate::are_isomorphic) — hypergraph isomorphism and
//!   grouping of reduced queries into isomorphism classes (used throughout
//!   Appendix E.4/F);
//! * [`catalog`](crate::triangle_ij) — the named queries analysed in the
//!   paper (triangle, Loomis–Whitney-4, 4-clique, Figures 4 and 9, the
//!   running examples).

mod acyclicity;
mod catalog;
mod hgraph;
mod isomorphism;
mod transform;

pub use acyclicity::{
    find_berge_cycle_of_length_at_least, is_alpha_acyclic, is_berge_acyclic, is_conformal,
    is_cycle_free, is_gamma_acyclic, is_iota_acyclic, is_iota_acyclic_via_reduction, join_tree,
    AcyclicityClass, AcyclicityReport, BergeCycle, JoinTree,
};
pub use catalog::{
    example_4_6, figure_4a, figure_4b, figure_9a, figure_9b, figure_9c, figure_9d, figure_9e,
    figure_9f, four_clique_ej, four_clique_ij, k_cycle_ej, k_path_ij, loomis_whitney_4_ej,
    loomis_whitney_4_ij, named_catalog, star_ij, triangle_ej, triangle_ij, CatalogEntry,
};
pub use hgraph::{EdgeId, Hyperedge, Hypergraph, VarId, VarKind, Vertex};
pub use isomorphism::{are_isomorphic, group_into_isomorphism_classes, invariant_key};
pub use transform::{full_reduction, one_step_reduction, PermutationChoice, ReducedHypergraph};
