//! Hypergraph acyclicity: α, γ, Berge and the paper's new ι-acyclicity.
//!
//! * **Berge-acyclic** (Definition A.3): no Berge cycle at all, equivalently
//!   the bipartite incidence graph is a forest.
//! * **ι-acyclic** (Definition 6.1 / Theorem 6.3): no Berge cycle of length
//!   strictly greater than two; equivalently every hypergraph of `τ(H)` is
//!   α-acyclic.  ι-acyclicity characterises the IJ queries computable in
//!   near-linear time (Theorem 6.6).
//! * **γ-acyclic** (Definition A.10): cycle-free and without the
//!   `{{x,y},{x,z},{x,y,z}}` pattern.
//! * **α-acyclic** (Definition A.9): GYO-reducible to the empty hypergraph,
//!   equivalently conformal and cycle-free, equivalently admits a join tree.

use crate::transform::full_reduction;
use crate::{EdgeId, Hypergraph, VarId};
use std::collections::BTreeSet;

/// A Berge cycle `(e_1, v_1, e_2, v_2, ..., e_n, v_n, e_{n+1} = e_1)`
/// (Definition 6.2): `n ≥ 2`, distinct vertices, distinct hyperedges and
/// `v_i ∈ e_i ∩ e_{i+1}` for every `i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BergeCycle {
    /// The distinct hyperedges `e_1, ..., e_n`.
    pub edges: Vec<EdgeId>,
    /// The distinct vertices `v_1, ..., v_n`; `vertices[i]` lies in
    /// `edges[i]` and `edges[(i + 1) % n]`.
    pub vertices: Vec<VarId>,
}

impl BergeCycle {
    /// The length `n` of the cycle.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// Berge cycles always have length at least two.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Checks the Berge-cycle conditions against a hypergraph (used by tests).
    pub fn is_valid(&self, h: &Hypergraph) -> bool {
        let n = self.edges.len();
        if n < 2 || self.vertices.len() != n {
            return false;
        }
        let distinct_edges: BTreeSet<_> = self.edges.iter().collect();
        let distinct_vertices: BTreeSet<_> = self.vertices.iter().collect();
        if distinct_edges.len() != n || distinct_vertices.len() != n {
            return false;
        }
        (0..n).all(|i| {
            let e_i = &h.edge(self.edges[i]).vertices;
            let e_next = &h.edge(self.edges[(i + 1) % n]).vertices;
            e_i.contains(&self.vertices[i]) && e_next.contains(&self.vertices[i])
        })
    }
}

/// Searches for a Berge cycle of length at least `min_len` and returns one if
/// it exists.  The search is exhaustive (backtracking over alternating
/// edge/vertex sequences), which is fine for query-sized hypergraphs.
///
/// # Panics
///
/// Panics if the hypergraph has more than 64 vertices or hyperedges (queries
/// never do; the limit keeps the bitmask bookkeeping simple).
pub fn find_berge_cycle_of_length_at_least(h: &Hypergraph, min_len: usize) -> Option<BergeCycle> {
    assert!(
        h.num_vertices() <= 64 && h.num_edges() <= 64,
        "hypergraph too large for cycle search"
    );
    let min_len = min_len.max(2);
    // Incidence lists.
    let edge_vertices: Vec<Vec<VarId>> = h
        .edges()
        .iter()
        .map(|e| e.vertices.iter().copied().collect())
        .collect();
    let vertex_edges: Vec<Vec<EdgeId>> = (0..h.num_vertices())
        .map(|v| h.edges_containing(v))
        .collect();

    for start in 0..h.num_edges() {
        let mut edges = vec![start];
        let mut vertices = Vec::new();
        if search(
            start,
            start,
            1u64 << start,
            0u64,
            min_len,
            &edge_vertices,
            &vertex_edges,
            &mut edges,
            &mut vertices,
        ) {
            return Some(BergeCycle { edges, vertices });
        }
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn search(
    start: EdgeId,
    current: EdgeId,
    used_edges: u64,
    used_vertices: u64,
    min_len: usize,
    edge_vertices: &[Vec<VarId>],
    vertex_edges: &[Vec<EdgeId>],
    edges: &mut Vec<EdgeId>,
    vertices: &mut Vec<VarId>,
) -> bool {
    for &v in &edge_vertices[current] {
        if used_vertices & (1u64 << v) != 0 {
            continue;
        }
        for &e in &vertex_edges[v] {
            if e == start && edges.len() >= min_len {
                // Closing the cycle: v ∈ e_n ∩ e_1.
                vertices.push(v);
                return true;
            }
            if used_edges & (1u64 << e) != 0 {
                continue;
            }
            // Only start edges with minimal index begin a cycle, to avoid
            // revisiting rotations; subsequent edges are unconstrained.
            if e < start {
                continue;
            }
            edges.push(e);
            vertices.push(v);
            if search(
                start,
                e,
                used_edges | (1u64 << e),
                used_vertices | (1u64 << v),
                min_len,
                edge_vertices,
                vertex_edges,
                edges,
                vertices,
            ) {
                return true;
            }
            edges.pop();
            vertices.pop();
        }
    }
    false
}

/// Berge-acyclicity (Definition A.3): no Berge cycle at all.
pub fn is_berge_acyclic(h: &Hypergraph) -> bool {
    find_berge_cycle_of_length_at_least(h, 2).is_none()
}

/// ι-acyclicity via the syntactic characterisation of Theorem 6.3: no Berge
/// cycle of length strictly greater than two.
pub fn is_iota_acyclic(h: &Hypergraph) -> bool {
    find_berge_cycle_of_length_at_least(h, 3).is_none()
}

/// ι-acyclicity via Definition 6.1: every hypergraph of `τ(H)` is α-acyclic.
/// Exponentially more expensive than [`is_iota_acyclic`]; exposed so the
/// equivalence (Theorem 6.3) can be validated in tests and experiments.
pub fn is_iota_acyclic_via_reduction(h: &Hypergraph) -> bool {
    full_reduction(h)
        .iter()
        .all(|r| is_alpha_acyclic(&r.hypergraph))
}

/// α-acyclicity via GYO reduction (Appendix A.1.2).
pub fn is_alpha_acyclic(h: &Hypergraph) -> bool {
    // Work on the multiset of edge vertex sets.
    let mut edges: Vec<BTreeSet<VarId>> = h.edge_vertex_sets();
    loop {
        let mut changed = false;

        // Rule 1: remove vertices occurring in at most one edge.
        let mut occurrences: std::collections::HashMap<VarId, usize> = Default::default();
        for e in &edges {
            for &v in e {
                *occurrences.entry(v).or_insert(0) += 1;
            }
        }
        for e in edges.iter_mut() {
            let before = e.len();
            e.retain(|v| occurrences[v] > 1);
            if e.len() != before {
                changed = true;
            }
        }

        // Drop empty edges.
        let before = edges.len();
        edges.retain(|e| !e.is_empty());
        if edges.len() != before {
            changed = true;
        }

        // Rule 2: remove edges contained in another edge (keeping one copy of
        // duplicates).
        let mut remove = vec![false; edges.len()];
        for i in 0..edges.len() {
            for j in 0..edges.len() {
                if i == j || remove[j] {
                    continue;
                }
                if edges[i].is_subset(&edges[j]) && (edges[i] != edges[j] || i > j) {
                    remove[i] = true;
                    break;
                }
            }
        }
        if remove.iter().any(|&r| r) {
            changed = true;
            edges = edges
                .into_iter()
                .zip(remove)
                .filter(|(_, r)| !r)
                .map(|(e, _)| e)
                .collect();
        }

        if edges.is_empty() {
            return true;
        }
        if !changed {
            return false;
        }
    }
}

/// A join tree of an α-acyclic hypergraph (Definition A.4): a tree over the
/// hyperedges such that, for every vertex, the edges containing it form a
/// connected subtree.
#[derive(Debug, Clone)]
pub struct JoinTree {
    /// The root hyperedge.
    pub root: EdgeId,
    /// Parent of each hyperedge (`None` for the root).
    pub parent: Vec<Option<EdgeId>>,
    /// Children lists.
    pub children: Vec<Vec<EdgeId>>,
    /// An elimination order: every edge appears after all of its children
    /// (leaves first, root last).  Yannakakis' algorithm processes semijoins
    /// in this order.
    pub order: Vec<EdgeId>,
}

impl JoinTree {
    /// Checks the running-intersection (connectedness) property.
    pub fn is_valid(&self, h: &Hypergraph) -> bool {
        for v in 0..h.num_vertices() {
            let containing: BTreeSet<EdgeId> = h.edges_containing(v).into_iter().collect();
            if containing.is_empty() {
                continue;
            }
            // The edges containing v must form a connected subtree: walking
            // from every containing edge towards the root, the first
            // containing ancestor chain must stay within `containing` until
            // reaching the top-most containing edge.
            // Equivalent check: the number of edges in `containing` whose
            // parent is NOT in `containing` must be exactly one.
            let tops = containing
                .iter()
                .filter(|&&e| match self.parent[e] {
                    Some(p) => !containing.contains(&p),
                    None => true,
                })
                .count();
            if tops != 1 {
                return false;
            }
        }
        true
    }
}

/// Builds a join tree via ear decomposition, or returns `None` if the
/// hypergraph is not α-acyclic.
pub fn join_tree(h: &Hypergraph) -> Option<JoinTree> {
    let n = h.num_edges();
    if n == 0 {
        return None;
    }
    let sets: Vec<BTreeSet<VarId>> = h.edge_vertex_sets();
    let mut alive: Vec<bool> = vec![true; n];
    let mut parent: Vec<Option<EdgeId>> = vec![None; n];
    let mut order: Vec<EdgeId> = Vec::with_capacity(n);
    let mut remaining = n;

    while remaining > 1 {
        // Find an ear: an edge e whose vertices shared with other alive edges
        // are all contained in a single other alive edge f.
        let mut found = None;
        'outer: for e in 0..n {
            if !alive[e] {
                continue;
            }
            // Vertices of e that occur in some other alive edge.
            let shared: BTreeSet<VarId> = sets[e]
                .iter()
                .copied()
                .filter(|v| (0..n).any(|f| f != e && alive[f] && sets[f].contains(v)))
                .collect();
            for f in 0..n {
                if f == e || !alive[f] {
                    continue;
                }
                if shared.is_subset(&sets[f]) {
                    found = Some((e, f));
                    break 'outer;
                }
            }
        }
        let (e, f) = found?;
        alive[e] = false;
        parent[e] = Some(f);
        order.push(e);
        remaining -= 1;
    }
    let root = (0..n).find(|&e| alive[e]).expect("one edge remains");
    order.push(root);

    let mut children: Vec<Vec<EdgeId>> = vec![Vec::new(); n];
    for (e, p) in parent.iter().enumerate() {
        if let Some(p) = p {
            children[*p].push(e);
        }
    }
    Some(JoinTree {
        root,
        parent,
        children,
        order,
    })
}

/// The induced family `E[S] = { e ∩ S | e ∈ E } \ {∅}` (Definition A.5).
fn induced_family(h: &Hypergraph, s: &BTreeSet<VarId>) -> Vec<BTreeSet<VarId>> {
    let mut out: Vec<BTreeSet<VarId>> = Vec::new();
    for e in h.edges() {
        let inter: BTreeSet<VarId> = e.vertices.intersection(s).copied().collect();
        if !inter.is_empty() && !out.contains(&inter) {
            out.push(inter);
        }
    }
    out
}

/// The minimisation `M(F)` of a family of sets: its ⊆-maximal members
/// (Definition A.6).
fn minimisation(family: &[BTreeSet<VarId>]) -> Vec<BTreeSet<VarId>> {
    family
        .iter()
        .filter(|e| !family.iter().any(|f| *e != f && e.is_subset(f)))
        .cloned()
        .collect()
}

/// Cycle-freeness (Definition A.8): there is no vertex subset `S` of size ≥ 3
/// whose minimised induced family is exactly a Hamiltonian cycle of 2-element
/// sets over `S`.
pub fn is_cycle_free(h: &Hypergraph) -> bool {
    let n = h.num_vertices();
    assert!(
        n <= 24,
        "cycle-freeness check is exponential in the number of vertices"
    );
    for mask in 0u32..(1u32 << n) {
        if (mask.count_ones() as usize) < 3 {
            continue;
        }
        let s: BTreeSet<VarId> = (0..n).filter(|&v| mask & (1 << v) != 0).collect();
        let m = minimisation(&induced_family(h, &s));
        if is_hamiltonian_cycle_family(&m, &s) {
            return false;
        }
    }
    true
}

/// True if `family` is exactly the edge set of a cycle visiting every vertex
/// of `s` (all members of size two, every vertex in exactly two members, and
/// the members form a single connected cycle).
fn is_hamiltonian_cycle_family(family: &[BTreeSet<VarId>], s: &BTreeSet<VarId>) -> bool {
    let k = s.len();
    if family.len() != k || k < 3 {
        return false;
    }
    if !family.iter().all(|e| e.len() == 2) {
        return false;
    }
    // Degree check.
    for &v in s {
        let deg = family.iter().filter(|e| e.contains(&v)).count();
        if deg != 2 {
            return false;
        }
    }
    // Connectivity: walk the cycle.
    let verts: Vec<VarId> = s.iter().copied().collect();
    let mut visited: BTreeSet<VarId> = BTreeSet::new();
    let mut stack = vec![verts[0]];
    while let Some(v) = stack.pop() {
        if !visited.insert(v) {
            continue;
        }
        for e in family {
            if e.contains(&v) {
                for &u in e {
                    if !visited.contains(&u) {
                        stack.push(u);
                    }
                }
            }
        }
    }
    visited.len() == k
}

/// Conformality (Definition A.7): there is no vertex subset `S` of size ≥ 3
/// whose minimised induced family is `{ S \ {x} | x ∈ S }`.
pub fn is_conformal(h: &Hypergraph) -> bool {
    let n = h.num_vertices();
    assert!(
        n <= 24,
        "conformality check is exponential in the number of vertices"
    );
    for mask in 0u32..(1u32 << n) {
        if (mask.count_ones() as usize) < 3 {
            continue;
        }
        let s: BTreeSet<VarId> = (0..n).filter(|&v| mask & (1 << v) != 0).collect();
        let m = minimisation(&induced_family(h, &s));
        let expected: Vec<BTreeSet<VarId>> = s
            .iter()
            .map(|&x| s.iter().copied().filter(|&y| y != x).collect())
            .collect();
        if m.len() == expected.len() && expected.iter().all(|e| m.contains(e)) {
            return false;
        }
    }
    true
}

/// γ-acyclicity (Definition A.10): cycle-free and without three distinct
/// vertices `x, y, z` such that `{x,y}`, `{x,z}` and `{x,y,z}` all occur in
/// the family induced on `{x,y,z}`.
pub fn is_gamma_acyclic(h: &Hypergraph) -> bool {
    if !is_cycle_free(h) {
        return false;
    }
    let n = h.num_vertices();
    for x in 0..n {
        for y in 0..n {
            for z in 0..n {
                if x == y || x == z || y == z {
                    continue;
                }
                let s: BTreeSet<VarId> = [x, y, z].into_iter().collect();
                let fam = induced_family(h, &s);
                let xy: BTreeSet<VarId> = [x, y].into_iter().collect();
                let xz: BTreeSet<VarId> = [x, z].into_iter().collect();
                let xyz = s.clone();
                if fam.contains(&xy) && fam.contains(&xz) && fam.contains(&xyz) {
                    return false;
                }
            }
        }
    }
    true
}

/// The finest acyclicity class a hypergraph belongs to, following the strict
/// inclusions Berge ⊂ ι ⊂ γ ⊂ α ⊂ all (Figure 5 and Corollary 6.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AcyclicityClass {
    /// Berge-acyclic (hence also ι-, γ- and α-acyclic).
    BergeAcyclic,
    /// ι-acyclic but not Berge-acyclic.
    IotaAcyclic,
    /// γ-acyclic but not ι-acyclic.
    GammaAcyclic,
    /// α-acyclic but not γ-acyclic.
    AlphaAcyclic,
    /// Not α-acyclic.
    Cyclic,
}

impl std::fmt::Display for AcyclicityClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            AcyclicityClass::BergeAcyclic => "Berge-acyclic",
            AcyclicityClass::IotaAcyclic => "iota-acyclic",
            AcyclicityClass::GammaAcyclic => "gamma-acyclic",
            AcyclicityClass::AlphaAcyclic => "alpha-acyclic",
            AcyclicityClass::Cyclic => "cyclic",
        };
        write!(f, "{s}")
    }
}

/// Membership in each acyclicity class, plus the finest class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AcyclicityReport {
    /// Berge-acyclic?
    pub berge: bool,
    /// ι-acyclic?
    pub iota: bool,
    /// γ-acyclic?
    pub gamma: bool,
    /// α-acyclic?
    pub alpha: bool,
    /// The finest class.
    pub class: AcyclicityClass,
}

impl AcyclicityReport {
    /// Classifies a hypergraph.
    pub fn of(h: &Hypergraph) -> Self {
        let berge = is_berge_acyclic(h);
        let iota = is_iota_acyclic(h);
        let gamma = is_gamma_acyclic(h);
        let alpha = is_alpha_acyclic(h);
        let class = if berge {
            AcyclicityClass::BergeAcyclic
        } else if iota {
            AcyclicityClass::IotaAcyclic
        } else if gamma {
            AcyclicityClass::GammaAcyclic
        } else if alpha {
            AcyclicityClass::AlphaAcyclic
        } else {
            AcyclicityClass::Cyclic
        };
        AcyclicityReport {
            berge,
            iota,
            gamma,
            alpha,
            class,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::*;
    use crate::hgraph::ij_from_atoms;

    #[test]
    fn triangle_is_cyclic_everywhere() {
        let h = triangle_ij();
        let report = AcyclicityReport::of(&h);
        assert!(!report.alpha);
        assert!(!report.gamma);
        assert!(!report.iota);
        assert!(!report.berge);
        assert_eq!(report.class, AcyclicityClass::Cyclic);
        // It contains a Berge cycle of length 3.
        let cycle = find_berge_cycle_of_length_at_least(&h, 3).unwrap();
        assert_eq!(cycle.len(), 3);
        assert!(cycle.is_valid(&h));
    }

    #[test]
    fn figure_9_classification() {
        // Figures 9a-9c are α-acyclic but not ι-acyclic; 9d-9f are ι-acyclic.
        for (h, expect_iota) in [
            (figure_9a(), false),
            (figure_9b(), false),
            (figure_9c(), false),
            (figure_9d(), true),
            (figure_9e(), true),
            (figure_9f(), true),
        ] {
            assert!(is_alpha_acyclic(&h), "{h} should be alpha-acyclic");
            assert_eq!(is_iota_acyclic(&h), expect_iota, "{h}");
        }
    }

    #[test]
    fn figure_9c_berge_cycle_matches_example_6_5() {
        // Example 6.5 exhibits the Berge cycle R − [A] − T − [B] − S − [C] − R.
        let h = figure_9c();
        let cycle = find_berge_cycle_of_length_at_least(&h, 3).unwrap();
        assert_eq!(cycle.len(), 3);
        assert!(cycle.is_valid(&h));
    }

    #[test]
    fn figure_9e_has_no_berge_cycle_at_all() {
        let h = figure_9e();
        assert!(is_berge_acyclic(&h));
        assert!(is_iota_acyclic(&h));
        assert_eq!(
            AcyclicityReport::of(&h).class,
            AcyclicityClass::BergeAcyclic
        );
    }

    #[test]
    fn figure_9d_is_iota_but_not_berge() {
        // Example 6.5: three Berge cycles of length two, none longer.
        let h = figure_9d();
        assert!(!is_berge_acyclic(&h));
        let two = find_berge_cycle_of_length_at_least(&h, 2).unwrap();
        assert_eq!(two.len(), 2);
        assert!(find_berge_cycle_of_length_at_least(&h, 3).is_none());
        assert_eq!(AcyclicityReport::of(&h).class, AcyclicityClass::IotaAcyclic);
    }

    #[test]
    fn iota_definition_and_characterisation_agree_on_catalog() {
        // Theorem 6.3 on every catalog hypergraph small enough for the
        // reduction-based definition.
        for entry in named_catalog() {
            if entry.hypergraph.num_edges() <= 4 {
                assert_eq!(
                    is_iota_acyclic(&entry.hypergraph),
                    is_iota_acyclic_via_reduction(&entry.hypergraph),
                    "{}",
                    entry.name
                );
            }
        }
    }

    #[test]
    fn alpha_acyclicity_matches_conformal_and_cycle_free() {
        // Definition A.9 on the catalog.
        for entry in named_catalog() {
            let h = &entry.hypergraph;
            assert_eq!(
                is_alpha_acyclic(h),
                is_conformal(h) && is_cycle_free(h),
                "{}: GYO and conformal+cycle-free disagree",
                entry.name
            );
        }
    }

    #[test]
    fn corollary_6_4_strictness_witnesses() {
        // ι-acyclic but not Berge-acyclic: Figure 9f.
        let f9f = figure_9f();
        assert!(is_iota_acyclic(&f9f) && !is_berge_acyclic(&f9f));
        // γ-acyclic but not ι-acyclic: the triple-edge hypergraph
        // {{x,y,z},{x,y,z},{x,y,z}} from the proof of Corollary 6.4.
        let h = ij_from_atoms(&[
            ("R", &["X", "Y", "Z"]),
            ("S", &["X", "Y", "Z"]),
            ("T", &["X", "Y", "Z"]),
        ]);
        assert!(is_gamma_acyclic(&h), "triple edge should be gamma-acyclic");
        assert!(
            !is_iota_acyclic(&h),
            "triple edge has a Berge cycle of length 3"
        );
        // α-acyclic but not γ-acyclic: Figure 8a = R(A), S(A,B), T(A,B,C)-like
        // pattern {{x,y},{x,z},{x,y,z}}.
        let g = ij_from_atoms(&[
            ("R", &["X", "Y"]),
            ("S", &["X", "Z"]),
            ("T", &["X", "Y", "Z"]),
        ]);
        assert!(is_alpha_acyclic(&g));
        assert!(!is_gamma_acyclic(&g));
        // Cyclic: triangle.
        assert!(!is_alpha_acyclic(&triangle_ij()));
    }

    #[test]
    fn class_inclusions_hold_on_catalog() {
        for entry in named_catalog() {
            let r = AcyclicityReport::of(&entry.hypergraph);
            if r.berge {
                assert!(r.iota, "{}: Berge ⊆ iota violated", entry.name);
            }
            if r.iota {
                assert!(r.gamma, "{}: iota ⊆ gamma violated", entry.name);
            }
            if r.gamma {
                assert!(r.alpha, "{}: gamma ⊆ alpha violated", entry.name);
            }
        }
    }

    #[test]
    fn join_trees_exist_exactly_for_alpha_acyclic_hypergraphs() {
        for entry in named_catalog() {
            let h = &entry.hypergraph;
            match join_tree(h) {
                Some(tree) => {
                    assert!(
                        is_alpha_acyclic(h),
                        "{}: join tree for cyclic hypergraph",
                        entry.name
                    );
                    assert!(tree.is_valid(h), "{}: invalid join tree", entry.name);
                    assert_eq!(tree.order.len(), h.num_edges());
                }
                None => assert!(
                    !is_alpha_acyclic(h),
                    "{}: no join tree for acyclic hypergraph",
                    entry.name
                ),
            }
        }
    }

    #[test]
    fn k_cycle_queries_are_cyclic_and_paths_are_acyclic() {
        for k in 3..=6 {
            let cycle = k_cycle_ej(k);
            assert!(!is_alpha_acyclic(&cycle));
            let c = find_berge_cycle_of_length_at_least(&cycle, 3).unwrap();
            assert!(c.len() >= 3);
            assert!(c.is_valid(&cycle));
        }
        for k in 2..=6 {
            let path = k_path_ij(k);
            assert!(is_alpha_acyclic(&path));
            assert!(is_iota_acyclic(&path));
            assert!(is_berge_acyclic(&path));
        }
    }

    #[test]
    fn star_queries_are_iota_acyclic() {
        for k in 2..=5 {
            let star = star_ij(k);
            // A star query R_i([X], [Y_i]) shares only [X]; Berge cycles of
            // length ≥ 3 would need three distinct shared vertices.
            assert!(is_iota_acyclic(&star));
        }
    }

    #[test]
    fn loomis_whitney_and_clique_are_cyclic() {
        assert!(!is_alpha_acyclic(&loomis_whitney_4_ij()));
        assert!(!is_alpha_acyclic(&four_clique_ij()));
        assert!(!is_iota_acyclic(&loomis_whitney_4_ij()));
        assert!(!is_iota_acyclic(&four_clique_ij()));
    }

    #[test]
    fn berge_cycle_length_two_requires_shared_pair() {
        // Two edges sharing two vertices form a Berge cycle of length 2.
        let h = ij_from_atoms(&[("R", &["A", "B"]), ("S", &["A", "B"])]);
        let c = find_berge_cycle_of_length_at_least(&h, 2).unwrap();
        assert_eq!(c.len(), 2);
        assert!(c.is_valid(&h));
        // Two edges sharing one vertex do not.
        let g = ij_from_atoms(&[("R", &["A", "B"]), ("S", &["B", "C"])]);
        assert!(find_berge_cycle_of_length_at_least(&g, 2).is_none());
    }

    #[test]
    fn empty_and_single_edge_hypergraphs() {
        let empty = Hypergraph::new();
        assert!(is_berge_acyclic(&empty));
        assert!(is_iota_acyclic(&empty));
        assert!(is_gamma_acyclic(&empty));
        assert!(is_alpha_acyclic(&empty));
        assert!(join_tree(&empty).is_none());

        let single = ij_from_atoms(&[("R", &["A", "B", "C"])]);
        assert!(is_alpha_acyclic(&single));
        let tree = join_tree(&single).unwrap();
        assert_eq!(tree.root, 0);
        assert!(tree.is_valid(&single));
    }
}
