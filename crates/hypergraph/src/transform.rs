//! The structural part of the IJ-to-EJ forward reduction.
//!
//! Resolving a join interval variable `[X]` occurring in `k` hyperedges
//! replaces it with `k` fresh point variables `X#1, ..., X#k`: for a chosen
//! permutation `σ` of the hyperedges containing `[X]`, the `i`-th hyperedge
//! of the permutation receives the variables `X#1, ..., X#i` (Definition
//! 4.5).  Taking all permutations of all join interval variables yields the
//! set of hypergraphs `τ(H)` (Section 4.3), which drives both the ij-width
//! (Definition 4.14) and ι-acyclicity (Definition 6.1).

use crate::{EdgeId, Hypergraph, VarId, VarKind};
use std::collections::BTreeMap;

/// The permutation chosen for every resolved interval variable.
///
/// `permutations[var]` lists the hyperedges containing `var` in the order
/// `σ_1, ..., σ_k`: the edge at position `i` (1-based) receives the fresh
/// variables `X#1..X#i`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PermutationChoice {
    /// Interval variable → permutation of the edges containing it.
    pub permutations: BTreeMap<VarId, Vec<EdgeId>>,
}

impl PermutationChoice {
    /// The level (1-based position in the permutation) of edge `edge` for
    /// variable `var`, if the edge contains the variable.
    pub fn level(&self, var: VarId, edge: EdgeId) -> Option<usize> {
        self.permutations
            .get(&var)
            .and_then(|perm| perm.iter().position(|&e| e == edge).map(|p| p + 1))
    }
}

/// One hypergraph of `τ(H)` together with the bookkeeping needed by the
/// data-level reduction.
#[derive(Debug, Clone)]
pub struct ReducedHypergraph {
    /// The reduced hypergraph; all resolved interval variables have been
    /// replaced by point variables.  Hyperedge order and labels match the
    /// original hypergraph (the bijection `ε` of Definition E.1).
    pub hypergraph: Hypergraph,
    /// The permutation choice that produced this hypergraph.
    pub choice: PermutationChoice,
    /// For every hyperedge (indexed as in the original hypergraph), the level
    /// of each original interval variable occurring in it: edge `e` holds the
    /// fresh variables `X#1..X#level` for interval variable `X`.
    pub edge_levels: Vec<BTreeMap<VarId, usize>>,
    /// For every vertex of the reduced hypergraph, its origin in the original
    /// hypergraph: `(original_var, 0)` for carried-over point variables and
    /// `(original_var, j)` with `j >= 1` for the `j`-th fresh variable of a
    /// resolved interval variable.
    pub vertex_origin: Vec<(VarId, usize)>,
}

impl ReducedHypergraph {
    /// The fresh variable `X#j` of the reduced hypergraph for original
    /// interval variable `var` and position `j` (1-based), if present.
    pub fn fresh_var(&self, var: VarId, position: usize) -> Option<VarId> {
        self.vertex_origin
            .iter()
            .position(|&(v, p)| v == var && p == position)
    }

    /// The carried-over copy of an original point variable.
    pub fn carried_var(&self, var: VarId) -> Option<VarId> {
        self.vertex_origin
            .iter()
            .position(|&(v, p)| v == var && p == 0)
    }
}

/// The one-step hypergraph transformation `H̃_[X]` of Definition 4.5: resolve
/// a single interval variable, returning one (still possibly mixed IJ/EJ)
/// hypergraph per permutation of the edges containing `[X]`.
///
/// # Panics
///
/// Panics if `var` is not an interval variable of `h`.
pub fn one_step_reduction(h: &Hypergraph, var: VarId) -> Vec<ReducedHypergraph> {
    assert_eq!(
        h.vertex(var).kind,
        VarKind::Interval,
        "can only resolve interval variables"
    );
    let incident = h.edges_containing(var);
    let mut out = Vec::new();
    for perm in permutations(&incident) {
        let mut choice = BTreeMap::new();
        choice.insert(var, perm.clone());
        out.push(apply_choice(
            h,
            &PermutationChoice {
                permutations: choice,
            },
        ));
    }
    out
}

/// The full structural reduction `τ(H)` of Section 4.3: resolve every join
/// interval variable, taking the cartesian product of the permutations of
/// their incident edges.  The result has `∏_[X] |E_[X]|!` hypergraphs, all of
/// them EJ hypergraphs (provided the input contains only point and interval
/// variables).
pub fn full_reduction(h: &Hypergraph) -> Vec<ReducedHypergraph> {
    let interval_vars: Vec<VarId> = h
        .interval_vars()
        .into_iter()
        .filter(|&v| h.degree(v) >= 1)
        .collect();
    // Cartesian product of permutations, one per interval variable.
    let mut choices: Vec<BTreeMap<VarId, Vec<EdgeId>>> = vec![BTreeMap::new()];
    for &var in &interval_vars {
        let incident = h.edges_containing(var);
        let perms = permutations(&incident);
        let mut next = Vec::with_capacity(choices.len() * perms.len());
        for base in &choices {
            for perm in &perms {
                let mut c = base.clone();
                c.insert(var, perm.clone());
                next.push(c);
            }
        }
        choices = next;
    }
    choices
        .into_iter()
        .map(|permutations| apply_choice(h, &PermutationChoice { permutations }))
        .collect()
}

/// Applies a permutation choice to a hypergraph, producing the reduced
/// hypergraph where every variable mentioned in the choice has been resolved.
pub(crate) fn apply_choice(h: &Hypergraph, choice: &PermutationChoice) -> ReducedHypergraph {
    let mut out = Hypergraph::new();
    let mut vertex_origin: Vec<(VarId, usize)> = Vec::new();
    // Carried-over variables (everything not being resolved).
    let mut carried: BTreeMap<VarId, VarId> = BTreeMap::new();
    for v in 0..h.num_vertices() {
        if choice.permutations.contains_key(&v) {
            continue;
        }
        let vx = h.vertex(v);
        let nv = out.add_vertex(vx.name.clone(), vx.kind);
        vertex_origin.push((v, 0));
        carried.insert(v, nv);
    }
    // Fresh point variables X#1..X#k for every resolved interval variable.
    let mut fresh: BTreeMap<(VarId, usize), VarId> = BTreeMap::new();
    for (&var, perm) in &choice.permutations {
        for j in 1..=perm.len() {
            let name = format!("{}#{}", h.vertex(var).name, j);
            let nv = out.add_vertex(name, VarKind::Point);
            vertex_origin.push((var, j));
            fresh.insert((var, j), nv);
        }
    }
    // Rebuild the hyperedges, replacing resolved variables by prefixes of
    // their fresh variables according to the edge's level.
    let mut edge_levels: Vec<BTreeMap<VarId, usize>> = Vec::with_capacity(h.num_edges());
    for (eid, edge) in h.edges().iter().enumerate() {
        let mut levels = BTreeMap::new();
        let mut vs: Vec<VarId> = Vec::new();
        for &v in &edge.vertices {
            if let Some(&nv) = carried.get(&v) {
                vs.push(nv);
            } else {
                let level = choice
                    .level(v, eid)
                    .expect("resolved variable must have a level for every incident edge");
                levels.insert(v, level);
                for j in 1..=level {
                    vs.push(fresh[&(v, j)]);
                }
            }
        }
        out.add_edge(edge.label.clone(), vs);
        edge_levels.push(levels);
    }
    ReducedHypergraph {
        hypergraph: out,
        choice: choice.clone(),
        edge_levels,
        vertex_origin,
    }
}

/// All permutations of a slice (in lexicographic order of positions).
pub(crate) fn permutations<T: Clone>(items: &[T]) -> Vec<Vec<T>> {
    let mut out = Vec::new();
    let mut indices: Vec<usize> = (0..items.len()).collect();
    permute(&mut indices, 0, &mut |perm| {
        out.push(perm.iter().map(|&i| items[i].clone()).collect());
    });
    out
}

fn permute(indices: &mut Vec<usize>, start: usize, visit: &mut impl FnMut(&[usize])) {
    if start == indices.len() {
        visit(indices);
        return;
    }
    for i in start..indices.len() {
        indices.swap(start, i);
        permute(indices, start + 1, visit);
        indices.swap(start, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{example_4_6, figure_9c, figure_9e, loomis_whitney_4_ij, triangle_ij};

    #[test]
    fn permutation_helper_generates_all_orders() {
        let perms = permutations(&[1, 2, 3]);
        assert_eq!(perms.len(), 6);
        let unique: std::collections::HashSet<Vec<i32>> = perms.into_iter().collect();
        assert_eq!(unique.len(), 6);
        assert_eq!(permutations::<i32>(&[]), vec![Vec::<i32>::new()]);
    }

    #[test]
    fn triangle_reduction_produces_eight_ej_queries() {
        // Section 1.1: the triangle IJ query reduces to a disjunction of
        // 2!·2!·2! = 8 EJ queries.
        let h = triangle_ij();
        let reduced = full_reduction(&h);
        assert_eq!(reduced.len(), 8);
        for r in &reduced {
            assert!(r.hypergraph.is_ej());
            assert_eq!(r.hypergraph.num_edges(), 3);
            // Every reduced query has between 3 and 6 variables after the
            // resolution of the three binary interval variables.
            let n = r.hypergraph.num_vertices();
            assert!(n == 6, "expected 6 fresh variables, got {n}");
        }
        // The eight queries have pairwise distinct level assignments.
        let mut seen = std::collections::HashSet::new();
        for r in &reduced {
            assert!(seen.insert(format!("{:?}", r.edge_levels)));
        }
    }

    #[test]
    fn triangle_reduction_matches_section_1_1_schemas() {
        // The reduced relations R_{a;b} have a + b variables: a copies of A
        // and b copies of B (Section 1.1).  Check that the multiset of
        // (|A-vars|, |B-vars|) levels across the 8 queries matches the paper:
        // each of R, S, T independently takes levels (1,1), (1,2), (2,1), (2,2).
        let h = triangle_ij();
        let a = h.vertex_by_name("A").unwrap();
        let b = h.vertex_by_name("B").unwrap();
        let r_edge = h.edge_by_label("R").unwrap();
        let reduced = full_reduction(&h);
        let mut level_pairs: Vec<(usize, usize)> = reduced
            .iter()
            .map(|r| (r.edge_levels[r_edge][&a], r.edge_levels[r_edge][&b]))
            .collect();
        level_pairs.sort_unstable();
        // Each of the four (a,b) combinations appears exactly twice (the two
        // permutations of [C] do not affect R's schema).
        assert_eq!(
            level_pairs,
            vec![
                (1, 1),
                (1, 1),
                (1, 2),
                (1, 2),
                (2, 1),
                (2, 1),
                (2, 2),
                (2, 2)
            ]
        );
    }

    #[test]
    fn example_4_6_one_step_reduction() {
        // Example 4.6: resolving [A] (occurring in three edges) produces six
        // hypergraphs; the permutation (e1,e2,e3) gives edges
        // {A1,[B],[C]}, {A1,A2,[B],[C]}, {A1,A2,A3}.
        let h = example_4_6();
        let a = h.vertex_by_name("A").unwrap();
        let steps = one_step_reduction(&h, a);
        assert_eq!(steps.len(), 6);
        for s in &steps {
            // [A] resolved into A#1..A#3; [B] and [C] remain interval vars.
            assert_eq!(s.hypergraph.interval_vars().len(), 2);
            assert_eq!(s.hypergraph.point_vars().len(), 3);
        }
        // Find the identity permutation (e1, e2, e3) and check the arities.
        let identity = steps
            .iter()
            .find(|s| s.choice.permutations[&a] == vec![0, 1, 2])
            .expect("identity permutation present");
        let sizes: Vec<usize> = identity
            .hypergraph
            .edges()
            .iter()
            .map(|e| e.vertices.len())
            .collect();
        assert_eq!(sizes, vec![3, 4, 3]); // {A1,[B],[C]}, {A1,A2,[B],[C]}, {A1,A2,A3}
    }

    #[test]
    fn figure_9c_reduction_count() {
        // Example 6.5 / Appendix E.4.3: 2!·3!·2! = 24 hypergraphs.
        let reduced = full_reduction(&figure_9c());
        assert_eq!(reduced.len(), 24);
        assert!(reduced.iter().all(|r| r.hypergraph.is_ej()));
    }

    #[test]
    fn figure_9e_reduction_count() {
        // Example 6.5: 2!·1!·3!·1!·1! = 12 hypergraphs.
        let reduced = full_reduction(&figure_9e());
        assert_eq!(reduced.len(), 12);
    }

    #[test]
    fn lw4_reduction_count() {
        // Appendix F.2: each of the four variables occurs in three edges, so
        // the reduction produces 3!^4 = 1296 hypergraphs.
        let reduced = full_reduction(&loomis_whitney_4_ij());
        assert_eq!(reduced.len(), 1296);
    }

    #[test]
    fn levels_are_consistent_with_choice() {
        let h = triangle_ij();
        for r in full_reduction(&h) {
            for (eid, levels) in r.edge_levels.iter().enumerate() {
                for (&var, &level) in levels {
                    assert_eq!(r.choice.level(var, eid), Some(level));
                    // The edge contains exactly the fresh variables 1..=level.
                    for j in 1..=level {
                        let fv = r.fresh_var(var, j).unwrap();
                        assert!(r.hypergraph.edge(eid).vertices.contains(&fv));
                    }
                    if let Some(fv) = r.fresh_var(var, level + 1) {
                        assert!(!r.hypergraph.edge(eid).vertices.contains(&fv));
                    }
                }
            }
        }
    }

    #[test]
    fn point_variables_are_carried_over() {
        // A mixed (EIJ) query: equality join on X, intersection join on [A].
        let mut h = Hypergraph::new();
        let x = h.add_point_var("X");
        let a = h.add_interval_var("A");
        h.add_edge("R", vec![x, a]);
        h.add_edge("S", vec![x, a]);
        let reduced = full_reduction(&h);
        assert_eq!(reduced.len(), 2);
        for r in &reduced {
            let carried = r.carried_var(x).unwrap();
            assert_eq!(r.hypergraph.vertex(carried).name, "X");
            assert_eq!(r.hypergraph.vertex(carried).kind, VarKind::Point);
            assert!(r.hypergraph.is_ej());
        }
    }
}
