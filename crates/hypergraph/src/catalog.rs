//! The named queries analysed in the paper.
//!
//! Each constructor returns the hypergraph of a Boolean conjunctive query
//! used as a running example or benchmark in the paper:
//!
//! * the triangle, Loomis–Whitney-4 and 4-clique IJ queries of Tables 1/2 and
//!   Appendix F,
//! * the hypergraphs of Figures 4 and 9 (Example 6.5 and Appendix E.4),
//! * the running examples 4.6/4.8,
//! * parametric families (k-cycles, k-paths, stars) used by tests and
//!   benchmarks.

use crate::hgraph::{ej_from_atoms, ij_from_atoms};
use crate::Hypergraph;

/// The triangle query with intersection joins (Section 1.1):
/// `R([A],[B]) ∧ S([B],[C]) ∧ T([A],[C])`.
pub fn triangle_ij() -> Hypergraph {
    ij_from_atoms(&[("R", &["A", "B"]), ("S", &["B", "C"]), ("T", &["A", "C"])])
}

/// The triangle query with equality joins: `R(A,B) ∧ S(B,C) ∧ T(A,C)`.
pub fn triangle_ej() -> Hypergraph {
    ej_from_atoms(&[("R", &["A", "B"]), ("S", &["B", "C"]), ("T", &["A", "C"])])
}

/// The Loomis–Whitney query with four interval variables (Appendix F.2):
/// `R([A],[B],[C]) ∧ S([B],[C],[D]) ∧ T([C],[D],[A]) ∧ U([D],[A],[B])`.
pub fn loomis_whitney_4_ij() -> Hypergraph {
    ij_from_atoms(&[
        ("R", &["A", "B", "C"]),
        ("S", &["B", "C", "D"]),
        ("T", &["C", "D", "A"]),
        ("U", &["D", "A", "B"]),
    ])
}

/// The Loomis–Whitney query with four point variables.
pub fn loomis_whitney_4_ej() -> Hypergraph {
    ej_from_atoms(&[
        ("R", &["A", "B", "C"]),
        ("S", &["B", "C", "D"]),
        ("T", &["C", "D", "A"]),
        ("U", &["D", "A", "B"]),
    ])
}

/// The 4-clique query with intersection joins (Appendix F.3):
/// `R([A],[B]) ∧ S([A],[C]) ∧ T([A],[D]) ∧ U([B],[C]) ∧ V([B],[D]) ∧ W([C],[D])`.
pub fn four_clique_ij() -> Hypergraph {
    ij_from_atoms(&[
        ("R", &["A", "B"]),
        ("S", &["A", "C"]),
        ("T", &["A", "D"]),
        ("U", &["B", "C"]),
        ("V", &["B", "D"]),
        ("W", &["C", "D"]),
    ])
}

/// The 4-clique query with equality joins.
pub fn four_clique_ej() -> Hypergraph {
    ej_from_atoms(&[
        ("R", &["A", "B"]),
        ("S", &["A", "C"]),
        ("T", &["A", "D"]),
        ("U", &["B", "C"]),
        ("V", &["B", "D"]),
        ("W", &["C", "D"]),
    ])
}

/// Example 4.6 / 4.8: `R([A],[B],[C]) ∧ S([A],[B],[C]) ∧ T([A])`
/// (the same hypergraph as Figure 9d).
pub fn example_4_6() -> Hypergraph {
    figure_9d()
}

/// Figure 4a (also Figure 9c): `R([A],[B],[C]) ∧ S([B],[C]) ∧ T([A],[B])` —
/// α-acyclic but not ι-acyclic (Berge cycle `R − [A] − T − [B] − S − [C] − R`).
pub fn figure_4a() -> Hypergraph {
    figure_9c()
}

/// Figure 4b (also Figure 9e): the Berge-acyclic query
/// `R([A],[B]) ∧ S([A],[C]) ∧ T([C],[D]) ∧ U([C],[E])`.
pub fn figure_4b() -> Hypergraph {
    figure_9e()
}

/// Figure 9a: `R([A],[B],[C]) ∧ S([A],[B],[C]) ∧ T([A],[B],[C])` — α-acyclic,
/// not ι-acyclic, ij-width 3/2 (Appendix E.4.1).
pub fn figure_9a() -> Hypergraph {
    ij_from_atoms(&[
        ("R", &["A", "B", "C"]),
        ("S", &["A", "B", "C"]),
        ("T", &["A", "B", "C"]),
    ])
}

/// Figure 9b: `R([A],[B],[C]) ∧ S([A],[B],[C]) ∧ T([A],[B])` — α-acyclic,
/// not ι-acyclic, ij-width 3/2 (Appendix E.4.2, Example 6.5).
pub fn figure_9b() -> Hypergraph {
    ij_from_atoms(&[
        ("R", &["A", "B", "C"]),
        ("S", &["A", "B", "C"]),
        ("T", &["A", "B"]),
    ])
}

/// Figure 9c: `R([A],[B],[C]) ∧ S([B],[C]) ∧ T([A],[B])` — α-acyclic, not
/// ι-acyclic, ij-width 3/2 (Appendix E.4.3, Example 6.5).
pub fn figure_9c() -> Hypergraph {
    ij_from_atoms(&[
        ("R", &["A", "B", "C"]),
        ("S", &["B", "C"]),
        ("T", &["A", "B"]),
    ])
}

/// Figure 9d: `R([A],[B],[C]) ∧ S([A],[B],[C]) ∧ T([A])` — ι-acyclic
/// (Appendix E.4.4), computable in near-linear time.
pub fn figure_9d() -> Hypergraph {
    ij_from_atoms(&[
        ("R", &["A", "B", "C"]),
        ("S", &["A", "B", "C"]),
        ("T", &["A"]),
    ])
}

/// Figure 9e: `R([A],[B]) ∧ S([A],[C]) ∧ T([C],[D]) ∧ U([C],[E])` —
/// Berge-acyclic (Appendix E.4.5).
pub fn figure_9e() -> Hypergraph {
    ij_from_atoms(&[
        ("R", &["A", "B"]),
        ("S", &["A", "C"]),
        ("T", &["C", "D"]),
        ("U", &["C", "E"]),
    ])
}

/// Figure 9f: `R([A],[B],[C]) ∧ S([A],[B])` — ι-acyclic with one Berge cycle
/// of length two (Appendix E.4.6).
pub fn figure_9f() -> Hypergraph {
    ij_from_atoms(&[("R", &["A", "B", "C"]), ("S", &["A", "B"])])
}

/// The `k`-cycle query with equality joins
/// `S_1(X_k, X_1) ∧ S_2(X_1, X_2) ∧ ... ∧ S_k(X_{k-1}, X_k)` used in the
/// hardness reduction of Theorem 6.6.
pub fn k_cycle_ej(k: usize) -> Hypergraph {
    assert!(k >= 3, "cycles need at least three atoms");
    let mut h = Hypergraph::new();
    let vars: Vec<_> = (1..=k).map(|i| h.add_point_var(format!("X{i}"))).collect();
    for i in 0..k {
        let prev = vars[(i + k - 1) % k];
        h.add_edge(format!("S{}", i + 1), vec![prev, vars[i]]);
    }
    h
}

/// The `k`-path query with intersection joins
/// `R_1([X_1],[X_2]) ∧ ... ∧ R_{k}([X_k],[X_{k+1}])` — Berge-acyclic for all `k`.
pub fn k_path_ij(k: usize) -> Hypergraph {
    assert!(k >= 1);
    let mut h = Hypergraph::new();
    let vars: Vec<_> = (1..=k + 1)
        .map(|i| h.add_interval_var(format!("X{i}")))
        .collect();
    for i in 0..k {
        h.add_edge(format!("R{}", i + 1), vec![vars[i], vars[i + 1]]);
    }
    h
}

/// The `k`-star query with intersection joins
/// `R_1([X],[Y_1]) ∧ ... ∧ R_k([X],[Y_k])` — ι-acyclic for all `k`.
pub fn star_ij(k: usize) -> Hypergraph {
    assert!(k >= 1);
    let mut h = Hypergraph::new();
    let x = h.add_interval_var("X");
    for i in 1..=k {
        let y = h.add_interval_var(format!("Y{i}"));
        h.add_edge(format!("R{i}"), vec![x, y]);
    }
    h
}

/// A named catalog entry.
#[derive(Debug, Clone)]
pub struct CatalogEntry {
    /// Short identifier, e.g. `"triangle-ij"`.
    pub name: &'static str,
    /// Where the query appears in the paper.
    pub reference: &'static str,
    /// The hypergraph.
    pub hypergraph: Hypergraph,
}

/// Every named query of the paper, for data-driven tests and reports.
pub fn named_catalog() -> Vec<CatalogEntry> {
    vec![
        CatalogEntry {
            name: "triangle-ij",
            reference: "Section 1.1",
            hypergraph: triangle_ij(),
        },
        CatalogEntry {
            name: "triangle-ej",
            reference: "Section 1.1",
            hypergraph: triangle_ej(),
        },
        CatalogEntry {
            name: "loomis-whitney-4-ij",
            reference: "Appendix F.2",
            hypergraph: loomis_whitney_4_ij(),
        },
        CatalogEntry {
            name: "4-clique-ij",
            reference: "Appendix F.3",
            hypergraph: four_clique_ij(),
        },
        CatalogEntry {
            name: "figure-9a",
            reference: "Appendix E.4.1",
            hypergraph: figure_9a(),
        },
        CatalogEntry {
            name: "figure-9b",
            reference: "Appendix E.4.2",
            hypergraph: figure_9b(),
        },
        CatalogEntry {
            name: "figure-9c",
            reference: "Appendix E.4.3",
            hypergraph: figure_9c(),
        },
        CatalogEntry {
            name: "figure-9d",
            reference: "Appendix E.4.4",
            hypergraph: figure_9d(),
        },
        CatalogEntry {
            name: "figure-9e",
            reference: "Appendix E.4.5",
            hypergraph: figure_9e(),
        },
        CatalogEntry {
            name: "figure-9f",
            reference: "Appendix E.4.6",
            hypergraph: figure_9f(),
        },
        CatalogEntry {
            name: "4-cycle-ej",
            reference: "Theorem 6.6",
            hypergraph: k_cycle_ej(4),
        },
        CatalogEntry {
            name: "3-path-ij",
            reference: "tests",
            hypergraph: k_path_ij(3),
        },
        CatalogEntry {
            name: "3-star-ij",
            reference: "tests",
            hypergraph: star_ij(3),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_entries_have_expected_shapes() {
        assert_eq!(triangle_ij().num_edges(), 3);
        assert_eq!(triangle_ij().num_vertices(), 3);
        assert_eq!(loomis_whitney_4_ij().num_edges(), 4);
        assert_eq!(loomis_whitney_4_ij().num_vertices(), 4);
        assert_eq!(four_clique_ij().num_edges(), 6);
        assert_eq!(four_clique_ij().num_vertices(), 4);
        assert_eq!(figure_9e().num_vertices(), 5);
        assert_eq!(k_cycle_ej(5).num_edges(), 5);
        assert_eq!(k_path_ij(4).num_edges(), 4);
        assert_eq!(star_ij(4).num_edges(), 4);
    }

    #[test]
    fn ij_queries_have_only_interval_variables() {
        for entry in named_catalog() {
            if entry.name.ends_with("-ij") || entry.name.starts_with("figure") {
                assert!(
                    entry.hypergraph.is_ij(),
                    "{} should be an IJ query",
                    entry.name
                );
            }
        }
        assert!(triangle_ej().is_ej());
        assert!(k_cycle_ej(4).is_ej());
    }

    #[test]
    fn every_variable_occurs_in_lw4_three_times() {
        let h = loomis_whitney_4_ij();
        for v in 0..h.num_vertices() {
            assert_eq!(h.degree(v), 3);
        }
        let c = four_clique_ij();
        for v in 0..c.num_vertices() {
            assert_eq!(c.degree(v), 3);
        }
    }

    #[test]
    fn catalog_names_are_unique() {
        let mut names: Vec<&str> = named_catalog().iter().map(|e| e.name).collect();
        names.sort_unstable();
        let len = names.len();
        names.dedup();
        assert_eq!(names.len(), len);
    }
}
