//! Baseline evaluators for intersection-join queries.
//!
//! The related-work section of the paper (Section 2) describes how
//! intersection joins are evaluated in practice: one binary join at a time,
//! with plane-sweep or index-based algorithms whose cost is
//! `O(N log N + OUT)` per join but whose *intermediate* results can be
//! asymptotically larger than needed — which is exactly what the ij-width
//! approach avoids.  This crate implements those comparators:
//!
//! * [`plane_sweep_pairs`] — the classical sort-based sweep producing all
//!   intersecting pairs of two interval sets;
//! * [`binary_join_cascade`] — evaluates an EIJ query one atom at a time,
//!   materialising the intermediate variable bindings (for the triangle this
//!   is the `O(N²)` strategy mentioned in Section 1.1, and its exponent
//!   coincides with the FAQ-AI bound of Table 1 on all three cyclic queries);
//! * [`SegtreeBaseline`] — a direct evaluator that indexes every relation
//!   column with a flat segment tree and backtracks through overlap queries,
//!   the specialised-structure comparator of the differential harness;
//! * [`nested_loop`] — exhaustive backtracking (the same semantics as the
//!   naive evaluator), as the always-correct lower baseline.

#![warn(missing_docs)]

mod segtree_baseline;

pub use segtree_baseline::SegtreeBaseline;

use ij_hypergraph::VarKind;
use ij_relation::{Database, Query, Value};
use ij_segtree::Interval;
use std::collections::BTreeMap;

/// Errors raised by the baselines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// A relation referenced by the query is missing from the database.
    MissingRelation(String),
    /// A relation's arity does not match the query atom.
    ArityMismatch {
        /// The relation name.
        relation: String,
        /// The arity the query atom expects.
        expected: usize,
        /// The arity the relation actually has.
        found: usize,
    },
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::MissingRelation(r) => write!(f, "relation `{r}` missing from database"),
            BaselineError::ArityMismatch {
                relation,
                expected,
                found,
            } => write!(
                f,
                "relation `{relation}` has arity {found}, query expects {expected}"
            ),
        }
    }
}

impl std::error::Error for BaselineError {}

/// All intersecting pairs `(i, j)` of two interval collections, computed with
/// the classical plane sweep over endpoint events in `O(N log N + OUT)`.
pub fn plane_sweep_pairs(left: &[Interval], right: &[Interval]) -> Vec<(usize, usize)> {
    #[derive(Clone, Copy, PartialEq, Eq)]
    enum Side {
        Left,
        Right,
    }
    // Events: (coordinate, is_end, side, index).  Starts sort before ends at
    // equal coordinates so that touching intervals count as intersecting
    // (closed-interval semantics).
    let mut events: Vec<(f64, u8, Side, usize)> =
        Vec::with_capacity(2 * (left.len() + right.len()));
    for (i, iv) in left.iter().enumerate() {
        events.push((iv.lo(), 0, Side::Left, i));
        events.push((iv.hi(), 1, Side::Left, i));
    }
    for (j, iv) in right.iter().enumerate() {
        events.push((iv.lo(), 0, Side::Right, j));
        events.push((iv.hi(), 1, Side::Right, j));
    }
    events.sort_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));

    let mut active_left: Vec<usize> = Vec::new();
    let mut active_right: Vec<usize> = Vec::new();
    let mut out = Vec::new();
    for (_, is_end, side, idx) in events {
        if is_end == 1 {
            match side {
                Side::Left => active_left.retain(|&i| i != idx),
                Side::Right => active_right.retain(|&j| j != idx),
            }
            continue;
        }
        match side {
            Side::Left => {
                for &j in &active_right {
                    out.push((idx, j));
                }
                active_left.push(idx);
            }
            Side::Right => {
                for &i in &active_left {
                    out.push((i, idx));
                }
                active_right.push(idx);
            }
        }
    }
    out
}

/// A partial assignment of the query variables: point variables map to their
/// committed value, interval variables to the running intersection of all
/// intervals bound so far.
#[derive(Debug, Clone, PartialEq)]
enum Binding {
    Point(Value),
    Interval(Interval),
}

/// Evaluates a Boolean EIJ query by joining one atom at a time (in query
/// order), materialising the intermediate bindings after every step.  The
/// per-step pair generation uses [`plane_sweep_pairs`] on the first shared
/// interval variable when one exists.  Returns the answer together with the
/// largest intermediate size (tuples), which the benchmarks report to show
/// why one-join-at-a-time processing is suboptimal.
pub fn binary_join_cascade(q: &Query, db: &Database) -> Result<(bool, usize), BaselineError> {
    let mut intermediates: Vec<BTreeMap<String, Binding>> = vec![BTreeMap::new()];
    let mut max_intermediate = 0usize;

    for atom in q.atoms() {
        let rel = db
            .relation(&atom.relation)
            .ok_or_else(|| BaselineError::MissingRelation(atom.relation.clone()))?;
        let tuples = rel.tuples();
        // Shared interval variable (already bound and occurring in this atom)
        // to drive the sweep, if any.
        let shared_interval = atom.vars.iter().enumerate().find(|(_, v)| {
            q.var_kind(v.as_str()) == Some(VarKind::Interval)
                && intermediates
                    .first()
                    .map(|b| b.contains_key(v.as_str()))
                    .unwrap_or(false)
        });

        let candidate_pairs: Vec<(usize, usize)> = match shared_interval {
            Some((col, var)) if !intermediates.is_empty() && !rel.is_empty() => {
                let left: Vec<Interval> = intermediates
                    .iter()
                    .map(|b| match &b[var] {
                        Binding::Interval(iv) => *iv,
                        Binding::Point(_) => unreachable!("interval variable bound to a point"),
                    })
                    .collect();
                let right: Vec<Interval> = tuples
                    .iter()
                    .map(|t| {
                        t[col]
                            .to_interval()
                            .unwrap_or_else(|| Interval::point(f64::MAX))
                    })
                    .collect();
                plane_sweep_pairs(&left, &right)
            }
            _ => {
                // No shared interval variable: consider every combination.
                (0..intermediates.len())
                    .flat_map(|i| (0..rel.len()).map(move |j| (i, j)))
                    .collect()
            }
        };

        let mut next: Vec<BTreeMap<String, Binding>> = Vec::new();
        'pairs: for (i, j) in candidate_pairs {
            let mut binding = intermediates[i].clone();
            let tuple = &tuples[j];
            for (col, var) in atom.vars.iter().enumerate() {
                let value = tuple[col];
                match q.var_kind(var) {
                    Some(VarKind::Interval) => {
                        let Some(iv) = value.to_interval() else {
                            continue 'pairs;
                        };
                        let merged = match binding.get(var) {
                            Some(Binding::Interval(current)) => match current.intersection(iv) {
                                Some(m) => m,
                                None => continue 'pairs,
                            },
                            _ => iv,
                        };
                        binding.insert(var.clone(), Binding::Interval(merged));
                    }
                    _ => match binding.get(var) {
                        Some(Binding::Point(existing)) => {
                            if *existing != value {
                                continue 'pairs;
                            }
                        }
                        _ => {
                            binding.insert(var.clone(), Binding::Point(value));
                        }
                    },
                }
            }
            next.push(binding);
        }
        max_intermediate = max_intermediate.max(next.len());
        if next.is_empty() {
            return Ok((false, max_intermediate));
        }
        intermediates = next;
    }
    Ok((true, max_intermediate))
}

/// Index-nested-loop evaluation of a *binary* intersection join between two
/// unary interval relations: build a centered interval tree on the inner
/// relation and probe it once per outer interval — the index-based family of
/// algorithms surveyed in Section 2 (R-tree join, relational interval tree
/// join, ...).  Returns the matching pairs of tuple indices.
pub fn index_nested_loop_pairs(outer: &[Interval], inner: &[Interval]) -> Vec<(usize, usize)> {
    let tree = ij_segtree::IntervalTree::build(inner);
    let mut out = Vec::new();
    for (i, iv) in outer.iter().enumerate() {
        for j in tree.overlapping(*iv) {
            out.push((i, j));
        }
    }
    out
}

/// Exhaustive nested-loop evaluation (early exit on the first witness).
pub fn nested_loop(q: &Query, db: &Database) -> Result<bool, BaselineError> {
    // Materialise the rows once up front; the recursion below revisits each
    // relation once per enclosing partial assignment.
    let mut relations: Vec<Vec<Vec<Value>>> = Vec::with_capacity(q.atoms().len());
    for atom in q.atoms() {
        let rel = db
            .relation(&atom.relation)
            .ok_or_else(|| BaselineError::MissingRelation(atom.relation.clone()))?;
        relations.push(rel.tuples());
    }
    fn go(
        q: &Query,
        relations: &[Vec<Vec<Value>>],
        atom_idx: usize,
        binding: &BTreeMap<String, Binding>,
    ) -> Result<bool, BaselineError> {
        if atom_idx == q.atoms().len() {
            return Ok(true);
        }
        let atom = &q.atoms()[atom_idx];
        'tuples: for tuple in &relations[atom_idx] {
            let mut next = binding.clone();
            for (col, var) in atom.vars.iter().enumerate() {
                let value = tuple[col];
                match q.var_kind(var) {
                    Some(VarKind::Interval) => {
                        let Some(iv) = value.to_interval() else {
                            continue 'tuples;
                        };
                        let merged = match next.get(var) {
                            Some(Binding::Interval(current)) => match current.intersection(iv) {
                                Some(m) => m,
                                None => continue 'tuples,
                            },
                            _ => iv,
                        };
                        next.insert(var.clone(), Binding::Interval(merged));
                    }
                    _ => match next.get(var) {
                        Some(Binding::Point(existing)) => {
                            if *existing != value {
                                continue 'tuples;
                            }
                        }
                        _ => {
                            next.insert(var.clone(), Binding::Point(value));
                        }
                    },
                }
            }
            if go(q, relations, atom_idx + 1, &next)? {
                return Ok(true);
            }
        }
        Ok(false)
    }
    go(q, &relations, 0, &BTreeMap::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Value {
        Value::interval(lo, hi)
    }

    #[test]
    fn plane_sweep_matches_brute_force() {
        let left: Vec<Interval> = vec![
            Interval::new(0.0, 2.0),
            Interval::new(1.0, 5.0),
            Interval::new(10.0, 12.0),
            Interval::point(4.0),
        ];
        let right: Vec<Interval> = vec![
            Interval::new(2.0, 3.0),
            Interval::new(4.0, 4.5),
            Interval::new(11.0, 20.0),
            Interval::new(-5.0, -1.0),
        ];
        let mut sweep = plane_sweep_pairs(&left, &right);
        sweep.sort_unstable();
        let mut brute: Vec<(usize, usize)> = Vec::new();
        for (i, a) in left.iter().enumerate() {
            for (j, b) in right.iter().enumerate() {
                if a.intersects(*b) {
                    brute.push((i, j));
                }
            }
        }
        brute.sort_unstable();
        assert_eq!(sweep, brute);
    }

    #[test]
    fn index_nested_loop_matches_plane_sweep() {
        let mut state = 99u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            (state % 500) as f64 / 5.0
        };
        let mk = |n: usize, next: &mut dyn FnMut() -> f64| -> Vec<Interval> {
            (0..n)
                .map(|_| {
                    let lo = next();
                    Interval::new(lo, lo + next() / 10.0)
                })
                .collect()
        };
        let left = mk(80, &mut next);
        let right = mk(60, &mut next);
        let mut a = index_nested_loop_pairs(&left, &right);
        let mut b = plane_sweep_pairs(&left, &right);
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn plane_sweep_handles_touching_endpoints() {
        let left = vec![Interval::new(0.0, 1.0)];
        let right = vec![Interval::new(1.0, 2.0)];
        assert_eq!(plane_sweep_pairs(&left, &right), vec![(0, 0)]);
    }

    #[test]
    fn plane_sweep_empty_inputs() {
        assert!(plane_sweep_pairs(&[], &[Interval::new(0.0, 1.0)]).is_empty());
        assert!(plane_sweep_pairs(&[Interval::new(0.0, 1.0)], &[]).is_empty());
    }

    fn triangle_db(satisfiable: bool) -> (Query, Database) {
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 2, vec![vec![iv(0.0, 4.0), iv(10.0, 14.0)]]);
        db.insert_tuples("S", 2, vec![vec![iv(12.0, 13.0), iv(20.0, 25.0)]]);
        let c = if satisfiable {
            iv(24.0, 26.0)
        } else {
            iv(30.0, 31.0)
        };
        db.insert_tuples("T", 2, vec![vec![iv(3.0, 5.0), c]]);
        (q, db)
    }

    #[test]
    fn cascade_and_nested_loop_agree_on_the_triangle() {
        for satisfiable in [true, false] {
            let (q, db) = triangle_db(satisfiable);
            let (answer, max_intermediate) = binary_join_cascade(&q, &db).unwrap();
            assert_eq!(answer, satisfiable);
            assert!(max_intermediate >= usize::from(satisfiable));
            assert_eq!(nested_loop(&q, &db).unwrap(), satisfiable);
        }
    }

    #[test]
    fn cascade_reports_missing_relations() {
        let q = Query::parse("R([A]) & S([A])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 1, vec![vec![iv(0.0, 1.0)]]);
        assert!(matches!(
            binary_join_cascade(&q, &db),
            Err(BaselineError::MissingRelation(_))
        ));
        assert!(matches!(
            nested_loop(&q, &db),
            Err(BaselineError::MissingRelation(_))
        ));
    }

    #[test]
    fn intermediates_can_blow_up() {
        // Star-shaped data: every R interval intersects every S interval on
        // [B], but no T interval closes the triangle.  The cascade
        // materialises the full quadratic pairing before discovering the
        // answer is false.
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let n = 30;
        let mut db = Database::new();
        db.insert_tuples(
            "R",
            2,
            (0..n)
                .map(|i| vec![iv(i as f64, i as f64 + 0.5), iv(0.0, 100.0)])
                .collect(),
        );
        db.insert_tuples(
            "S",
            2,
            (0..n)
                .map(|i| vec![iv(0.0, 100.0), iv(200.0 + i as f64, 200.5 + i as f64)])
                .collect(),
        );
        db.insert_tuples("T", 2, vec![vec![iv(1000.0, 1001.0), iv(1000.0, 1001.0)]]);
        let (answer, max_intermediate) = binary_join_cascade(&q, &db).unwrap();
        assert!(!answer);
        assert_eq!(max_intermediate, n * n);
    }

    #[test]
    fn baselines_agree_with_each_other_on_random_instances() {
        use ij_workloads::{generate_for_query, IntervalDistribution, WorkloadConfig};
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        for seed in 0..10 {
            let db = generate_for_query(
                &q,
                &WorkloadConfig {
                    tuples_per_relation: 12,
                    seed,
                    distribution: IntervalDistribution::Uniform {
                        span: 60.0,
                        max_len: 6.0,
                    },
                },
            );
            let (cascade, _) = binary_join_cascade(&q, &db).unwrap();
            let nested = nested_loop(&q, &db).unwrap();
            assert_eq!(cascade, nested, "seed {seed}");
        }
    }

    #[test]
    fn mixed_point_and_interval_variables() {
        let q = Query::parse("R(X,[A]) & S(X,[A])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 2, vec![vec![Value::point(1.0), iv(0.0, 2.0)]]);
        db.insert_tuples("S", 2, vec![vec![Value::point(1.0), iv(1.0, 3.0)]]);
        assert!(binary_join_cascade(&q, &db).unwrap().0);
        assert!(nested_loop(&q, &db).unwrap());
        let mut db2 = db.clone();
        db2.insert_tuples("S", 2, vec![vec![Value::point(2.0), iv(1.0, 3.0)]]);
        assert!(!binary_join_cascade(&q, &db2).unwrap().0);
    }
}
