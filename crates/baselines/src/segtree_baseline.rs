//! A segment-tree-backed direct evaluator for EIJ queries.
//!
//! The forward reduction (Section 4) answers an intersection join by
//! rewriting it into equality joins over canonical-partition identifiers.
//! [`SegtreeBaseline`] is the *other* classical route the paper compares
//! against (Section 2): index every relation column with a segment tree and
//! evaluate the query directly by backtracking, using overlap queries on the
//! indexes to enumerate only the tuples compatible with the running
//! intersection of each bound variable.  No reduction, no tries — just
//! stabbing walks over [`FlatSegmentTree`]'s interned-endpoint arrays.
//!
//! The evaluator is deliberately independent of the engine crate so the
//! differential harness can hold three implementations to the same answer:
//! the reduction-based engine, this baseline, and the naive oracle.

use crate::{BaselineError, Binding};
use ij_hypergraph::VarKind;
use ij_relation::{Database, Query, Value};
use ij_segtree::FlatSegmentTree;
use std::collections::HashMap;

/// Per-atom state: the materialised rows plus one overlap index per column.
#[derive(Debug, Clone)]
struct AtomIndex {
    /// Variable names in column order (owned copy of the atom's schema).
    vars: Vec<String>,
    /// The relation's rows, materialised once at build time.
    rows: Vec<Vec<Value>>,
    /// One flat segment tree per column over `to_interval()` of each value
    /// (points become point intervals, giving membership-join semantics).
    /// `None` when some value in the column is not interval-convertible;
    /// such columns fall back to scanning.
    trees: Vec<Option<FlatSegmentTree>>,
}

/// A direct segment-tree evaluator for Boolean and counting EIJ queries.
///
/// Build once per `(query, database)` pair with [`SegtreeBaseline::build`]
/// (this constructs one [`FlatSegmentTree`] per relation column), then ask
/// for the Boolean answer ([`SegtreeBaseline::evaluate_boolean`]) or the
/// number of satisfying tuple combinations
/// ([`SegtreeBaseline::count_witnesses`], the enumeration-mode answer the
/// differential tests compare against the naive oracle's count).
///
/// ```
/// use ij_baselines::SegtreeBaseline;
/// use ij_relation::{Database, Query, Value};
///
/// let q = Query::parse("R([A]) & S([A])").unwrap();
/// let mut db = Database::new();
/// db.insert_tuples("R", 1, vec![vec![Value::interval(0.0, 2.0)]]);
/// db.insert_tuples("S", 1, vec![vec![Value::interval(1.0, 3.0)]]);
/// let baseline = SegtreeBaseline::build(&q, &db).unwrap();
/// assert!(baseline.evaluate_boolean());
/// assert_eq!(baseline.count_witnesses(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct SegtreeBaseline {
    query: Query,
    atoms: Vec<AtomIndex>,
}

impl SegtreeBaseline {
    /// Builds the per-column indexes for `q` over `db`.
    ///
    /// Self-joins are supported (each atom gets its own index over the shared
    /// relation).  Returns an error if a referenced relation is missing or
    /// has the wrong arity.
    pub fn build(q: &Query, db: &Database) -> Result<Self, BaselineError> {
        let mut atoms = Vec::with_capacity(q.atoms().len());
        for atom in q.atoms() {
            let rel = db
                .relation(&atom.relation)
                .ok_or_else(|| BaselineError::MissingRelation(atom.relation.clone()))?;
            if rel.arity() != atom.vars.len() {
                return Err(BaselineError::ArityMismatch {
                    relation: atom.relation.clone(),
                    expected: atom.vars.len(),
                    found: rel.arity(),
                });
            }
            let rows = rel.tuples();
            let mut trees = Vec::with_capacity(atom.vars.len());
            for col in 0..atom.vars.len() {
                let mut intervals = Vec::with_capacity(rows.len());
                let mut indexable = true;
                for row in &rows {
                    match row[col].to_interval() {
                        Some(iv) => intervals.push(iv),
                        None => {
                            indexable = false;
                            break;
                        }
                    }
                }
                trees.push(indexable.then(|| FlatSegmentTree::build(&intervals)));
            }
            atoms.push(AtomIndex {
                vars: atom.vars.clone(),
                rows,
                trees,
            });
        }
        Ok(SegtreeBaseline {
            query: q.clone(),
            atoms,
        })
    }

    /// The Boolean answer (early exit on the first witness).
    pub fn evaluate_boolean(&self) -> bool {
        self.count_impl(true) > 0
    }

    /// The number of satisfying tuple combinations — one tuple per atom, the
    /// same witness semantics as the naive oracle's count.
    pub fn count_witnesses(&self) -> u64 {
        self.count_impl(false)
    }

    fn count_impl(&self, early_exit: bool) -> u64 {
        let mut search = Search {
            baseline: self,
            early_exit,
            count: 0,
        };
        search.go(0, &HashMap::new());
        search.count
    }

    /// The tuple indices of atom `atom_idx` compatible with `bindings`:
    /// probes the first indexed column whose variable is already bound
    /// (overlap query against the running intersection); falls back to the
    /// full row range when no bound variable has an index.
    fn candidates(&self, atom_idx: usize, bindings: &HashMap<String, Binding>) -> Vec<usize> {
        let atom = &self.atoms[atom_idx];
        for (col, var) in atom.vars.iter().enumerate() {
            let Some(binding) = bindings.get(var) else {
                continue;
            };
            let Some(tree) = &atom.trees[col] else {
                continue;
            };
            let probe = match binding {
                Binding::Interval(iv) => Some(*iv),
                Binding::Point(value) => value.to_interval(),
            };
            if let Some(probe) = probe {
                return tree.overlapping(probe);
            }
        }
        (0..atom.rows.len()).collect()
    }
}

struct Search<'a> {
    baseline: &'a SegtreeBaseline,
    early_exit: bool,
    count: u64,
}

impl Search<'_> {
    fn go(&mut self, atom_idx: usize, bindings: &HashMap<String, Binding>) -> bool {
        if atom_idx == self.baseline.atoms.len() {
            self.count += 1;
            return self.early_exit;
        }
        let atom = &self.baseline.atoms[atom_idx];
        'rows: for row_idx in self.baseline.candidates(atom_idx, bindings) {
            let row = &atom.rows[row_idx];
            let mut next = bindings.clone();
            for (col, var) in atom.vars.iter().enumerate() {
                let value = row[col];
                match self.baseline.query.var_kind(var) {
                    Some(VarKind::Interval) => {
                        let Some(iv) = value.to_interval() else {
                            continue 'rows;
                        };
                        let merged = match next.get(var) {
                            Some(Binding::Interval(current)) => match current.intersection(iv) {
                                Some(m) => m,
                                None => continue 'rows,
                            },
                            _ => iv,
                        };
                        next.insert(var.clone(), Binding::Interval(merged));
                    }
                    _ => match next.get(var) {
                        Some(Binding::Point(existing)) => {
                            if *existing != value {
                                continue 'rows;
                            }
                        }
                        _ => {
                            next.insert(var.clone(), Binding::Point(value));
                        }
                    },
                }
            }
            if self.go(atom_idx + 1, &next) {
                return true;
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Value {
        Value::interval(lo, hi)
    }

    fn triangle_db(satisfiable: bool) -> (Query, Database) {
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 2, vec![vec![iv(0.0, 4.0), iv(10.0, 14.0)]]);
        db.insert_tuples("S", 2, vec![vec![iv(12.0, 13.0), iv(20.0, 25.0)]]);
        let c = if satisfiable {
            iv(24.0, 26.0)
        } else {
            iv(30.0, 31.0)
        };
        db.insert_tuples("T", 2, vec![vec![iv(3.0, 5.0), c]]);
        (q, db)
    }

    #[test]
    fn agrees_with_nested_loop_on_the_triangle() {
        for satisfiable in [true, false] {
            let (q, db) = triangle_db(satisfiable);
            let baseline = SegtreeBaseline::build(&q, &db).unwrap();
            assert_eq!(baseline.evaluate_boolean(), satisfiable);
            assert_eq!(baseline.count_witnesses(), u64::from(satisfiable));
            assert_eq!(crate::nested_loop(&q, &db).unwrap(), satisfiable);
        }
    }

    #[test]
    fn counts_match_nested_enumeration_on_random_instances() {
        use ij_workloads::{generate_for_query, IntervalDistribution, WorkloadConfig};
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        for seed in 0..8 {
            let db = generate_for_query(
                &q,
                &WorkloadConfig {
                    tuples_per_relation: 10,
                    seed,
                    distribution: IntervalDistribution::Uniform {
                        span: 40.0,
                        max_len: 8.0,
                    },
                },
            );
            let baseline = SegtreeBaseline::build(&q, &db).unwrap();
            // Brute-force witness count for the triangle.
            let (r, s, t) = (
                db.relation("R").unwrap().tuples(),
                db.relation("S").unwrap().tuples(),
                db.relation("T").unwrap().tuples(),
            );
            let mut expected = 0u64;
            for a in &r {
                for b in &s {
                    for c in &t {
                        let ab = a[1].to_interval().unwrap();
                        let bc = b[0].to_interval().unwrap();
                        let aa = a[0].to_interval().unwrap();
                        let ta = c[0].to_interval().unwrap();
                        let sc = b[1].to_interval().unwrap();
                        let tc = c[1].to_interval().unwrap();
                        if ab.intersects(bc) && aa.intersects(ta) && sc.intersects(tc) {
                            expected += 1;
                        }
                    }
                }
            }
            assert_eq!(baseline.count_witnesses(), expected, "seed {seed}");
            assert_eq!(baseline.evaluate_boolean(), expected > 0, "seed {seed}");
        }
    }

    #[test]
    fn membership_joins_mix_points_and_intervals() {
        let q = Query::parse("R([A]) & S([A])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 1, vec![vec![iv(0.0, 5.0)], vec![iv(10.0, 11.0)]]);
        db.insert_tuples(
            "S",
            1,
            vec![vec![Value::point(3.0)], vec![Value::point(20.0)]],
        );
        let baseline = SegtreeBaseline::build(&q, &db).unwrap();
        assert!(baseline.evaluate_boolean());
        assert_eq!(baseline.count_witnesses(), 1);
    }

    #[test]
    fn equality_joins_on_point_variables() {
        let q = Query::parse("R(X,[A]) & S(X,[A])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 2, vec![vec![Value::point(1.0), iv(0.0, 2.0)]]);
        db.insert_tuples("S", 2, vec![vec![Value::point(1.0), iv(1.0, 3.0)]]);
        let baseline = SegtreeBaseline::build(&q, &db).unwrap();
        assert!(baseline.evaluate_boolean());

        db.insert_tuples("S", 2, vec![vec![Value::point(2.0), iv(1.0, 3.0)]]);
        let baseline = SegtreeBaseline::build(&q, &db).unwrap();
        assert!(!baseline.evaluate_boolean());
    }

    #[test]
    fn self_joins_are_supported() {
        let q = Query::parse("R([A],[B]) & R([B],[C])").unwrap();
        let mut db = Database::new();
        db.insert_tuples(
            "R",
            2,
            vec![
                vec![iv(0.0, 1.0), iv(5.0, 6.0)],
                vec![iv(5.5, 7.0), iv(9.0, 9.5)],
            ],
        );
        let baseline = SegtreeBaseline::build(&q, &db).unwrap();
        assert!(baseline.evaluate_boolean());
        assert_eq!(baseline.count_witnesses(), 1);
    }

    #[test]
    fn errors_are_reported() {
        let q = Query::parse("R([A]) & S([A])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 1, vec![vec![iv(0.0, 1.0)]]);
        assert!(matches!(
            SegtreeBaseline::build(&q, &db),
            Err(BaselineError::MissingRelation(_))
        ));
        db.insert_tuples("S", 2, vec![vec![iv(0.0, 1.0), iv(0.0, 1.0)]]);
        assert!(matches!(
            SegtreeBaseline::build(&q, &db),
            Err(BaselineError::ArityMismatch { .. })
        ));
    }

    #[test]
    fn empty_relations_yield_false() {
        let q = Query::parse("R([A]) & S([A])").unwrap();
        let mut db = Database::new();
        db.insert_tuples("R", 1, vec![vec![iv(0.0, 1.0)]]);
        db.insert_tuples("S", 1, Vec::new());
        let baseline = SegtreeBaseline::build(&q, &db).unwrap();
        assert!(!baseline.evaluate_boolean());
        assert_eq!(baseline.count_witnesses(), 0);
    }
}
