//! Minimal CSV import/export for relations and databases.
//!
//! The format is intentionally simple (no external dependency, no quoting):
//! one tuple per line, fields separated by commas, each field one of
//!
//! * `lo..hi` — a closed interval,
//! * `«bits»` or `b:bits` — a bitstring (e.g. `b:0110`; `b:` is the empty
//!   bitstring),
//! * anything else parseable as `f64` — a point value.
//!
//! This is enough to ship example datasets with the repository, to dump
//! transformed databases for inspection, and to round-trip workloads between
//! runs of the benchmark harness.

use crate::{Database, Relation, Value};
use ij_segtree::BitString;
use std::fmt::Write as _;

/// Errors raised by the CSV reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsvError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for CsvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CsvError {}

/// Serialises a single value.
pub fn value_to_field(v: &Value) -> String {
    match v {
        Value::Point(p) => format!("{p}"),
        Value::Interval(iv) => format!("{}..{}", iv.lo(), iv.hi()),
        Value::Bits(b) => {
            if b.is_empty() {
                "b:".to_string()
            } else {
                format!("b:{b}")
            }
        }
    }
}

/// Parses a single value.
pub fn field_to_value(field: &str, line: usize) -> Result<Value, CsvError> {
    let field = field.trim();
    if let Some(bits) = field.strip_prefix("b:") {
        let b = BitString::parse(bits).ok_or_else(|| CsvError {
            line,
            message: format!("invalid bitstring `{bits}`"),
        })?;
        return Ok(Value::Bits(b));
    }
    if let Some((lo, hi)) = field.split_once("..") {
        let lo: f64 = lo.trim().parse().map_err(|_| CsvError {
            line,
            message: format!("invalid interval endpoint `{lo}`"),
        })?;
        let hi: f64 = hi.trim().parse().map_err(|_| CsvError {
            line,
            message: format!("invalid interval endpoint `{hi}`"),
        })?;
        if lo > hi {
            return Err(CsvError {
                line,
                message: format!("inverted interval `{field}`"),
            });
        }
        return Ok(Value::interval(lo, hi));
    }
    let p: f64 = field.parse().map_err(|_| CsvError {
        line,
        message: format!("invalid value `{field}`"),
    })?;
    Ok(Value::point(p))
}

impl Relation {
    /// Serialises the relation to CSV (one tuple per line, no header).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for t in self.tuples() {
            let fields: Vec<String> = t.iter().map(value_to_field).collect();
            let _ = writeln!(out, "{}", fields.join(","));
        }
        out
    }

    /// Parses a relation from CSV text.  Every line must have exactly `arity`
    /// fields; blank lines and lines starting with `#` are skipped.
    pub fn from_csv(
        name: impl Into<String>,
        arity: usize,
        text: &str,
    ) -> Result<Relation, CsvError> {
        let mut rel = Relation::new(name, arity);
        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split(',').collect();
            if fields.len() != arity {
                return Err(CsvError {
                    line: line_no,
                    message: format!("expected {arity} fields, found {}", fields.len()),
                });
            }
            let values: Result<Vec<Value>, CsvError> =
                fields.iter().map(|f| field_to_value(f, line_no)).collect();
            rel.push(values?);
        }
        Ok(rel)
    }
}

impl Database {
    /// Serialises the whole database: every relation is preceded by a header
    /// line `## <name> <arity>`.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        for rel in self.relations() {
            let _ = writeln!(out, "## {} {}", rel.name(), rel.arity());
            out.push_str(&rel.to_csv());
        }
        out
    }

    /// Parses a database serialised with [`Database::to_csv`].
    pub fn from_csv(text: &str) -> Result<Database, CsvError> {
        let mut db = Database::new();
        let mut current: Option<(String, usize, String)> = None;
        let flush = |current: &mut Option<(String, usize, String)>,
                     db: &mut Database|
         -> Result<(), CsvError> {
            if let Some((name, arity, body)) = current.take() {
                db.insert(Relation::from_csv(name, arity, &body)?);
            }
            Ok(())
        };
        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw_line.trim();
            if let Some(header) = line.strip_prefix("## ") {
                flush(&mut current, &mut db)?;
                let mut parts = header.split_whitespace();
                let name = parts.next().ok_or_else(|| CsvError {
                    line: line_no,
                    message: "missing relation name".into(),
                })?;
                let arity: usize =
                    parts
                        .next()
                        .and_then(|a| a.parse().ok())
                        .ok_or_else(|| CsvError {
                            line: line_no,
                            message: "missing or invalid arity".into(),
                        })?;
                current = Some((name.to_string(), arity, String::new()));
            } else if !line.is_empty() {
                match &mut current {
                    Some((_, _, body)) => {
                        body.push_str(line);
                        body.push('\n');
                    }
                    None => {
                        return Err(CsvError {
                            line: line_no,
                            message: "data before the first `## name arity` header".into(),
                        })
                    }
                }
            }
        }
        flush(&mut current, &mut db)?;
        Ok(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trip() {
        let values = vec![
            Value::point(3.5),
            Value::point(-2.0),
            Value::interval(1.0, 4.25),
            Value::Bits(BitString::parse("0101").unwrap()),
            Value::Bits(BitString::empty()),
        ];
        for v in values {
            let field = value_to_field(&v);
            assert_eq!(field_to_value(&field, 1).unwrap(), v, "field `{field}`");
        }
    }

    #[test]
    fn relation_round_trip() {
        let rel = Relation::from_tuples(
            "R",
            2,
            vec![
                vec![Value::interval(0.0, 2.0), Value::point(7.0)],
                vec![Value::interval(-1.5, 3.5), Value::point(8.0)],
            ],
        );
        let csv = rel.to_csv();
        let parsed = Relation::from_csv("R", 2, &csv).unwrap();
        assert_eq!(parsed, rel);
    }

    #[test]
    fn database_round_trip() {
        let mut db = Database::new();
        db.insert_tuples(
            "R",
            2,
            vec![vec![Value::interval(0.0, 1.0), Value::interval(2.0, 3.0)]],
        );
        db.insert_tuples(
            "S",
            1,
            vec![vec![Value::Bits(BitString::parse("10").unwrap())]],
        );
        let csv = db.to_csv();
        let parsed = Database::from_csv(&csv).unwrap();
        assert_eq!(parsed, db);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let text = "# header comment\n\n0..1,5\n";
        let rel = Relation::from_csv("R", 2, text).unwrap();
        assert_eq!(rel.len(), 1);
        assert_eq!(
            rel.tuples()[0],
            vec![Value::interval(0.0, 1.0), Value::point(5.0)]
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = Relation::from_csv("R", 2, "0..1\n").unwrap_err();
        assert_eq!(err.line, 1);
        let err = Relation::from_csv("R", 1, "zzz\n").unwrap_err();
        assert!(err.message.contains("invalid value"));
        let err = Relation::from_csv("R", 1, "5..1\n").unwrap_err();
        assert!(err.message.contains("inverted"));
        let err = Database::from_csv("1,2\n").unwrap_err();
        assert!(err.message.contains("header"));
    }
}
