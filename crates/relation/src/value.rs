//! Runtime values stored in relations.
//!
//! The paper's data model needs three kinds of values:
//!
//! * real-valued **points** (the values of point variables, i.e. equality
//!   joins),
//! * **intervals** with real endpoints (the values of interval variables,
//!   i.e. intersection joins),
//! * **bitstrings** (the values introduced by the forward reduction, which
//!   identify segment-tree nodes).
//!
//! Values carry a total order so relations can be sorted, deduplicated and
//! indexed deterministically.

use ij_segtree::{BitString, Interval, OrdF64};
use std::fmt;

/// A single attribute value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// A real-valued point (used by point variables / equality joins).
    Point(OrdF64),
    /// A closed interval (used by interval variables / intersection joins).
    Interval(Interval),
    /// A segment-tree node identifier (introduced by the forward reduction).
    Bits(BitString),
}

impl Value {
    /// Convenience constructor for a point value.
    pub fn point(p: f64) -> Self {
        Value::Point(OrdF64::new(p))
    }

    /// Convenience constructor for an interval value.
    pub fn interval(lo: f64, hi: f64) -> Self {
        Value::Interval(Interval::new(lo, hi))
    }

    /// Convenience constructor for a bitstring value.
    pub fn bits(b: BitString) -> Self {
        Value::Bits(b)
    }

    /// Returns the point, if this is a point value.
    pub fn as_point(&self) -> Option<f64> {
        match self {
            Value::Point(p) => Some(p.get()),
            _ => None,
        }
    }

    /// Returns the interval, if this is an interval value.
    pub fn as_interval(&self) -> Option<Interval> {
        match self {
            Value::Interval(iv) => Some(*iv),
            _ => None,
        }
    }

    /// Returns the bitstring, if this is a bitstring value.
    pub fn as_bits(&self) -> Option<BitString> {
        match self {
            Value::Bits(b) => Some(*b),
            _ => None,
        }
    }

    /// Interprets the value as an interval: intervals map to themselves and
    /// points to point intervals.  This realises the membership-join view in
    /// which a point variable can join with interval variables (Section 7).
    pub fn to_interval(&self) -> Option<Interval> {
        match self {
            Value::Interval(iv) => Some(*iv),
            Value::Point(p) => Some(Interval::point(p.get())),
            Value::Bits(_) => None,
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Point(p) => write!(f, "{p}"),
            Value::Interval(iv) => write!(f, "{iv}"),
            Value::Bits(b) => write!(f, "«{b}»"),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

impl From<f64> for Value {
    fn from(p: f64) -> Self {
        Value::point(p)
    }
}

impl From<Interval> for Value {
    fn from(iv: Interval) -> Self {
        Value::Interval(iv)
    }
}

impl From<BitString> for Value {
    fn from(b: BitString) -> Self {
        Value::Bits(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let p = Value::point(3.0);
        assert_eq!(p.as_point(), Some(3.0));
        assert_eq!(p.as_interval(), None);
        assert_eq!(p.to_interval(), Some(Interval::point(3.0)));

        let iv = Value::interval(1.0, 2.0);
        assert_eq!(iv.as_interval(), Some(Interval::new(1.0, 2.0)));
        assert_eq!(iv.as_point(), None);

        let b = Value::bits(BitString::parse("01").unwrap());
        assert_eq!(b.as_bits(), Some(BitString::parse("01").unwrap()));
        assert_eq!(b.to_interval(), None);
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut values = [
            Value::interval(0.0, 1.0),
            Value::point(5.0),
            Value::bits(BitString::empty()),
            Value::point(-1.0),
        ];
        values.sort();
        // Points sort before intervals before bitstrings (variant order),
        // and within a variant by their natural order.
        assert_eq!(values[0], Value::point(-1.0));
        assert_eq!(values[1], Value::point(5.0));
        assert_eq!(values[2], Value::interval(0.0, 1.0));
        assert_eq!(values[3], Value::bits(BitString::empty()));
    }

    #[test]
    fn display_is_compact() {
        assert_eq!(format!("{}", Value::point(2.5)), "2.5");
        assert_eq!(format!("{}", Value::interval(1.0, 2.0)), "[1, 2]");
        assert_eq!(
            format!("{}", Value::bits(BitString::parse("10").unwrap())),
            "«10»"
        );
    }

    #[test]
    fn conversions_from_native_types() {
        let v: Value = 4.0.into();
        assert_eq!(v, Value::point(4.0));
        let v: Value = Interval::new(0.0, 1.0).into();
        assert_eq!(v, Value::interval(0.0, 1.0));
    }
}
