//! The Boolean conjunctive query AST.
//!
//! A query is a conjunction of atoms `R(args)` where every argument is a
//! variable: point variables (`X`) are joined with equality, interval
//! variables (`[X]`) with intersection (Definition 3.3).  Queries mixing both
//! are EIJ queries; a variable that appears both bracketed and unbracketed is
//! treated as an interval variable ranging over both intervals and points
//! (the *membership join* of Section 7 — point values are treated as point
//! intervals).

use ij_hypergraph::{Hypergraph, VarId, VarKind};
use std::collections::BTreeMap;
use std::fmt;

/// One atom of a query: a relation name and its argument variables in column
/// order (repetitions allowed).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// The relation name.
    pub relation: String,
    /// Argument variable names, in column order.
    pub vars: Vec<String>,
}

/// A Boolean conjunctive query with equality and/or intersection joins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    atoms: Vec<Atom>,
    kinds: BTreeMap<String, VarKind>,
}

/// Error raised by [`Query::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryParseError(pub String);

impl fmt::Display for QueryParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query parse error: {}", self.0)
    }
}

impl std::error::Error for QueryParseError {}

impl Query {
    /// Builds a query from atoms, marking the variables listed in
    /// `interval_vars` as interval variables and all others as point
    /// variables.
    pub fn from_atoms(atoms: Vec<Atom>, interval_vars: &[&str]) -> Self {
        let mut kinds = BTreeMap::new();
        for atom in &atoms {
            for v in &atom.vars {
                let kind = if interval_vars.contains(&v.as_str()) {
                    VarKind::Interval
                } else {
                    VarKind::Point
                };
                kinds.insert(v.clone(), kind);
            }
        }
        Query { atoms, kinds }
    }

    /// Parses a query such as `R([A],[B]) & S([B],C) & T(C)`.
    ///
    /// Atoms are separated by `&` or `∧`; bracketed arguments are interval
    /// variables.  A variable bracketed in at least one occurrence is an
    /// interval variable everywhere (membership-join semantics).
    pub fn parse(text: &str) -> Result<Self, QueryParseError> {
        let mut atoms = Vec::new();
        let mut kinds: BTreeMap<String, VarKind> = BTreeMap::new();
        let cleaned = text.replace('∧', "&");
        for raw_atom in cleaned.split('&') {
            let raw_atom = raw_atom.trim();
            if raw_atom.is_empty() {
                continue;
            }
            let open = raw_atom
                .find('(')
                .ok_or_else(|| QueryParseError(format!("missing '(' in atom `{raw_atom}`")))?;
            if !raw_atom.ends_with(')') {
                return Err(QueryParseError(format!("missing ')' in atom `{raw_atom}`")));
            }
            let relation = raw_atom[..open].trim().to_string();
            if relation.is_empty() {
                return Err(QueryParseError(format!(
                    "missing relation name in `{raw_atom}`"
                )));
            }
            let args = &raw_atom[open + 1..raw_atom.len() - 1];
            let mut vars = Vec::new();
            for arg in args.split(',') {
                let arg = arg.trim();
                if arg.is_empty() {
                    return Err(QueryParseError(format!(
                        "empty argument in atom `{raw_atom}`"
                    )));
                }
                let (name, kind) = if arg.starts_with('[') && arg.ends_with(']') {
                    (arg[1..arg.len() - 1].trim().to_string(), VarKind::Interval)
                } else {
                    (arg.to_string(), VarKind::Point)
                };
                if name.is_empty() || name.contains(['(', ')', '[', ']']) {
                    return Err(QueryParseError(format!("invalid variable `{arg}`")));
                }
                // Interval wins over point (membership joins).
                let entry = kinds.entry(name.clone()).or_insert(kind);
                if kind == VarKind::Interval {
                    *entry = VarKind::Interval;
                }
                vars.push(name);
            }
            atoms.push(Atom { relation, vars });
        }
        if atoms.is_empty() {
            return Err(QueryParseError("query has no atoms".to_string()));
        }
        Ok(Query { atoms, kinds })
    }

    /// Builds a query from a hypergraph.  Each hyperedge becomes an atom
    /// whose columns are the edge's variables in vertex-id order (this is
    /// also the column convention of the workload generators).
    pub fn from_hypergraph(h: &Hypergraph) -> Self {
        let mut atoms = Vec::new();
        let mut kinds = BTreeMap::new();
        for edge in h.edges() {
            let vars: Vec<String> = edge
                .vertices
                .iter()
                .map(|&v| h.vertex(v).name.clone())
                .collect();
            for &v in &edge.vertices {
                kinds.insert(h.vertex(v).name.clone(), h.vertex(v).kind);
            }
            atoms.push(Atom {
                relation: edge.label.clone(),
                vars,
            });
        }
        Query { atoms, kinds }
    }

    /// The atoms of the query.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// The kind (point or interval) of a variable.
    pub fn var_kind(&self, name: &str) -> Option<VarKind> {
        self.kinds.get(name).copied()
    }

    /// All variable names (sorted).
    pub fn variables(&self) -> Vec<String> {
        self.kinds.keys().cloned().collect()
    }

    /// The interval variables (sorted).
    pub fn interval_variables(&self) -> Vec<String> {
        self.kinds
            .iter()
            .filter(|(_, &k)| k == VarKind::Interval)
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// True if the query is an IJ query (every variable is an interval
    /// variable).
    pub fn is_ij(&self) -> bool {
        self.kinds.values().all(|&k| k == VarKind::Interval)
    }

    /// True if the query is an EJ query (every variable is a point variable).
    pub fn is_ej(&self) -> bool {
        self.kinds.values().all(|&k| k == VarKind::Point)
    }

    /// True if no relation name occurs in more than one atom.
    pub fn is_self_join_free(&self) -> bool {
        let mut names: Vec<&str> = self.atoms.iter().map(|a| a.relation.as_str()).collect();
        names.sort_unstable();
        names.windows(2).all(|w| w[0] != w[1])
    }

    /// The hypergraph of the query (Definition 3.3) together with the
    /// mapping from variable names to hypergraph vertex identifiers.
    pub fn hypergraph(&self) -> (Hypergraph, BTreeMap<String, VarId>) {
        let mut h = Hypergraph::new();
        let mut ids: BTreeMap<String, VarId> = BTreeMap::new();
        for (name, &kind) in &self.kinds {
            ids.insert(name.clone(), h.add_vertex(name.clone(), kind));
        }
        for atom in &self.atoms {
            let vs: Vec<VarId> = atom.vars.iter().map(|v| ids[v]).collect();
            h.add_edge(atom.relation.clone(), vs);
        }
        (h, ids)
    }

    /// A textual rendering, e.g. `R([A],[B]) ∧ S([B],[C])`.
    pub fn render(&self) -> String {
        let atoms: Vec<String> = self
            .atoms
            .iter()
            .map(|a| {
                let args: Vec<String> = a
                    .vars
                    .iter()
                    .map(|v| match self.kinds[v] {
                        VarKind::Interval => format!("[{v}]"),
                        VarKind::Point => v.clone(),
                    })
                    .collect();
                format!("{}({})", a.relation, args.join(","))
            })
            .collect();
        atoms.join(" ∧ ")
    }
}

impl fmt::Display for Query {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ij_hypergraph::{is_iota_acyclic, triangle_ij};

    #[test]
    fn parse_triangle_ij() {
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        assert_eq!(q.atoms().len(), 3);
        assert!(q.is_ij());
        assert!(!q.is_ej());
        assert!(q.is_self_join_free());
        assert_eq!(q.variables(), vec!["A", "B", "C"]);
        assert_eq!(q.render(), "R([A],[B]) ∧ S([B],[C]) ∧ T([A],[C])");
    }

    #[test]
    fn parse_mixed_query_with_unicode_connector() {
        let q = Query::parse("R(X,[A]) ∧ S(X,[A])").unwrap();
        assert!(!q.is_ij());
        assert!(!q.is_ej());
        assert_eq!(q.var_kind("X"), Some(VarKind::Point));
        assert_eq!(q.var_kind("A"), Some(VarKind::Interval));
        assert_eq!(q.interval_variables(), vec!["A"]);
    }

    #[test]
    fn membership_join_promotes_to_interval() {
        // The same variable bracketed in one atom and bare in another.
        let q = Query::parse("R([A]) & S(A)").unwrap();
        assert_eq!(q.var_kind("A"), Some(VarKind::Interval));
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Query::parse("").is_err());
        assert!(Query::parse("R[A]").is_err());
        assert!(Query::parse("R(A").is_err());
        assert!(Query::parse("(A)").is_err());
        assert!(Query::parse("R(A,)").is_err());
        assert!(Query::parse("R([A)]").is_err());
    }

    #[test]
    fn self_joins_are_detected() {
        let q = Query::parse("R([A],[B]) & R([B],[C])").unwrap();
        assert!(!q.is_self_join_free());
    }

    #[test]
    fn hypergraph_round_trip() {
        let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
        let (h, ids) = q.hypergraph();
        assert_eq!(h.num_vertices(), 3);
        assert_eq!(h.num_edges(), 3);
        assert!(ids.contains_key("A"));
        assert!(!is_iota_acyclic(&h));
        // from_hypergraph reconstructs an equivalent query.
        let q2 = Query::from_hypergraph(&h);
        assert_eq!(q2.atoms().len(), 3);
        assert!(q2.is_ij());
        let (h2, _) = q2.hypergraph();
        assert_eq!(h2.num_vertices(), 3);
    }

    #[test]
    fn from_hypergraph_matches_catalog() {
        let q = Query::from_hypergraph(&triangle_ij());
        assert_eq!(q.render(), "R([A],[B]) ∧ S([B],[C]) ∧ T([A],[C])");
    }

    #[test]
    fn repeated_variables_within_an_atom_are_kept_positionally() {
        let q = Query::parse("R(X,X,Y)").unwrap();
        assert_eq!(q.atoms()[0].vars, vec!["X", "X", "Y"]);
        let (h, _) = q.hypergraph();
        // The hypergraph collapses the repeated variable to a set.
        assert_eq!(h.edge(0).vertices.len(), 2);
    }

    #[test]
    fn from_atoms_builder() {
        let q = Query::from_atoms(
            vec![
                Atom {
                    relation: "R".into(),
                    vars: vec!["A".into(), "B".into()],
                },
                Atom {
                    relation: "S".into(),
                    vars: vec!["B".into(), "C".into()],
                },
            ],
            &["A", "B"],
        );
        assert_eq!(q.var_kind("A"), Some(VarKind::Interval));
        assert_eq!(q.var_kind("C"), Some(VarKind::Point));
    }
}
