//! Runtime-dispatched SIMD scan kernels over interned id slices.
//!
//! The hot linear passes of the join engine — the equal-pair filters of the
//! trie build, the key packing and survivor selection of the Yannakakis
//! semijoins, the galloping seeks of leapfrog intersection — all reduce to a
//! handful of primitives over `&[ValueId]`.  This module implements each
//! primitive up to three times:
//!
//! * an **AVX2** kernel (`core::arch::x86_64` intrinsics, std-only stable
//!   Rust) for `x86_64` hosts that have it;
//! * a **portable** kernel that processes [`LANES`] ids per step over
//!   `chunks_exact` slices (fixed-width loops with no bounds checks, written
//!   so LLVM's autovectorizer turns them into `u32x8`-style SIMD on any
//!   target that has it), followed by a scalar tail for the remainder;
//! * a `*_scalar` **reference** implementation — the obviously-correct
//!   element-at-a-time loop, kept as the oracle for the property tests in
//!   `tests/kernel_properties.rs` (every arm ≡ scalar on every input,
//!   including lengths that are not a multiple of [`LANES`]).
//!
//! # Dispatch
//!
//! The public entry points ([`and_equal_mask`], [`select_indices`],
//! [`gather_ids`], [`gallop_seek`], [`intersect_sorted_gallop`]) call through
//! a process-wide dispatch table resolved **once** (a `OnceLock` of plain
//! function pointers): AVX2 when `is_x86_feature_detected!("avx2")` reports
//! it, the portable arm otherwise.  Setting the [`FORCE_SCALAR_ENV`]
//! environment variable (to anything but `0`) before the first kernel call
//! pins the table to the portable arm, so the fallback path stays exercised
//! on hosts that would normally dispatch to AVX2 — CI runs the kernel and
//! trie property suites under both settings.  [`kernel_arm`] reports which
//! arm the process resolved to.
//!
//! [`pack_keys`] and [`leapfrog_next`] have no dedicated AVX2 arm:
//! `pack_keys` is a strided copy the autovectorizer already handles, and
//! `leapfrog_next` spends its time inside [`gallop_seek`], which it calls
//! through the dispatch table.
//!
//! The kernels deliberately work on raw slices (not [`Relation`]s) so every
//! layer — whole columns, [`ColumnsView`] row ranges, scratch buffers — can
//! use them.  Masks are `u8` (1 = selected), the representation the
//! autovectorizer handles best for mixed compare-and-accumulate loops.
//! `ValueId` is `#[repr(transparent)]` over `u32` and its `Ord` is the
//! unsigned order of the raw ids, which is what lets the AVX2 arm load id
//! runs as `u32x8` vectors and compare them with biased signed compares.
//!
//! [`Relation`]: crate::Relation
//! [`ColumnsView`]: crate::ColumnsView

use crate::ValueId;
use std::sync::OnceLock;

/// Ids processed per chunked step (a `u32x8` register's worth).
pub const LANES: usize = 8;

/// Environment variable that pins the kernel dispatch table to the portable
/// (scalar-fallback) arm when set to anything but `0`.  Read once, at the
/// first kernel call of the process; changing it later has no effect.
pub const FORCE_SCALAR_ENV: &str = "IJ_FORCE_SCALAR_KERNELS";

/// The implementation arm the process-wide kernel dispatch resolved to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelArm {
    /// The portable chunked kernels (autovectorizer-friendly fixed-width
    /// loops) — the fallback on non-AVX2 hosts and under
    /// [`FORCE_SCALAR_ENV`].
    Scalar,
    /// Explicit AVX2 intrinsics, selected at runtime via
    /// `is_x86_feature_detected!("avx2")`.
    Avx2,
}

impl KernelArm {
    /// A short lowercase label (`"scalar"` / `"avx2"`).
    pub fn as_str(self) -> &'static str {
        match self {
            KernelArm::Scalar => "scalar",
            KernelArm::Avx2 => "avx2",
        }
    }
}

impl std::fmt::Display for KernelArm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The resolved function pointers the public entry points call through.
struct DispatchTable {
    arm: KernelArm,
    and_equal_mask: fn(&[ValueId], &[ValueId], &mut [u8]),
    select_indices: fn(&[u8], u32, &mut Vec<u32>),
    gather_ids: fn(&[ValueId], &[u32], &mut Vec<ValueId>),
    gallop_seek: fn(&[ValueId], usize, ValueId) -> usize,
    intersect_sorted: fn(&[ValueId], &[ValueId], &mut Vec<ValueId>),
}

static DISPATCH: OnceLock<DispatchTable> = OnceLock::new();

const SCALAR_TABLE: DispatchTable = DispatchTable {
    arm: KernelArm::Scalar,
    and_equal_mask: and_equal_mask_portable,
    select_indices: select_indices_portable,
    gather_ids: gather_ids_portable,
    gallop_seek: gallop_seek_portable,
    intersect_sorted: intersect_sorted_portable,
};

fn table() -> &'static DispatchTable {
    DISPATCH.get_or_init(|| {
        let forced = std::env::var_os(FORCE_SCALAR_ENV).is_some_and(|v| v != "0");
        if forced {
            return SCALAR_TABLE;
        }
        #[cfg(target_arch = "x86_64")]
        if std::arch::is_x86_feature_detected!("avx2") {
            return DispatchTable {
                arm: KernelArm::Avx2,
                and_equal_mask: avx2::and_equal_mask,
                select_indices: avx2::select_indices,
                gather_ids: avx2::gather_ids,
                gallop_seek: avx2::gallop_seek,
                intersect_sorted: avx2::intersect_sorted,
            };
        }
        SCALAR_TABLE
    })
}

/// The arm the process-wide dispatch table resolved to (resolving it now if
/// no kernel has run yet).  Recorded per evaluation in the engine's
/// `EvaluationStats` so operators can see which code path served a query.
pub fn kernel_arm() -> KernelArm {
    table().arm
}

/// Intersects `mask` with the element-wise equality of `a` and `b`:
/// `mask[i] &= (a[i] == b[i])`.
///
/// This is the trie build's repeated-variable filter: one call per equal
/// column pair, all pairs accumulating into one mask.  Dispatches to the
/// AVX2 arm when available (see the module docs).
///
/// # Panics
///
/// Panics if the three slices differ in length.
pub fn and_equal_mask(a: &[ValueId], b: &[ValueId], mask: &mut [u8]) {
    assert_eq!(a.len(), b.len(), "column length mismatch");
    assert_eq!(a.len(), mask.len(), "mask length mismatch");
    (table().and_equal_mask)(a, b, mask)
}

/// Portable chunked implementation of [`and_equal_mask`] (the dispatch
/// fallback arm).
pub fn and_equal_mask_portable(a: &[ValueId], b: &[ValueId], mask: &mut [u8]) {
    assert_eq!(a.len(), b.len(), "column length mismatch");
    assert_eq!(a.len(), mask.len(), "mask length mismatch");
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    let mut mc = mask.chunks_exact_mut(LANES);
    for ((ca, cb), cm) in (&mut ac).zip(&mut bc).zip(&mut mc) {
        for i in 0..LANES {
            cm[i] &= u8::from(ca[i] == cb[i]);
        }
    }
    for ((x, y), m) in ac
        .remainder()
        .iter()
        .zip(bc.remainder())
        .zip(mc.into_remainder())
    {
        *m &= u8::from(x == y);
    }
}

/// Scalar reference implementation of [`and_equal_mask`].
pub fn and_equal_mask_scalar(a: &[ValueId], b: &[ValueId], mask: &mut [u8]) {
    assert_eq!(a.len(), b.len(), "column length mismatch");
    assert_eq!(a.len(), mask.len(), "mask length mismatch");
    for i in 0..mask.len() {
        mask[i] &= u8::from(a[i] == b[i]);
    }
}

/// Appends `base + i` to `out` for every selected position (`mask[i] != 0`),
/// in increasing order of `i`.  Dispatches to the AVX2 arm when available.
pub fn select_indices(mask: &[u8], base: u32, out: &mut Vec<u32>) {
    (table().select_indices)(mask, base, out)
}

/// Portable chunked implementation of [`select_indices`] (the dispatch
/// fallback arm): each group of [`LANES`] mask bytes is read as one `u64`, so
/// fully-unselected groups — the common case after a selective semijoin —
/// are skipped with a single compare instead of eight.
pub fn select_indices_portable(mask: &[u8], base: u32, out: &mut Vec<u32>) {
    let mut chunks = mask.chunks_exact(LANES);
    let mut start = 0usize;
    for chunk in &mut chunks {
        // ij-analysis: allow(panic) — infallible: `chunks_exact(LANES)` yields 8-byte chunks
        let word = u64::from_ne_bytes(chunk.try_into().expect("LANES == 8"));
        if word != 0 {
            for (j, &m) in chunk.iter().enumerate() {
                if m != 0 {
                    out.push(base + (start + j) as u32);
                }
            }
        }
        start += LANES;
    }
    for (j, &m) in chunks.remainder().iter().enumerate() {
        if m != 0 {
            out.push(base + (start + j) as u32);
        }
    }
}

/// Scalar reference implementation of [`select_indices`].
pub fn select_indices_scalar(mask: &[u8], base: u32, out: &mut Vec<u32>) {
    for (i, &m) in mask.iter().enumerate() {
        if m != 0 {
            out.push(base + i as u32);
        }
    }
}

/// Appends `col[rows[i]]` to `out` for every row index, in order — the
/// column-wise gather used to materialise semijoin survivors.  Dispatches to
/// the AVX2 arm (hardware `vpgatherdd`) when available.
///
/// # Panics
///
/// Panics (via indexing) if a row index is out of bounds for `col`.
pub fn gather_ids(col: &[ValueId], rows: &[u32], out: &mut Vec<ValueId>) {
    (table().gather_ids)(col, rows, out)
}

/// Portable chunked implementation of [`gather_ids`] (the dispatch fallback
/// arm): the index loop is unrolled [`LANES`] at a time; the loads themselves
/// are data-dependent gathers, so the win is bounds-check elision and
/// load-slot pipelining rather than full vectorisation.
///
/// # Panics
///
/// Panics (via indexing) if a row index is out of bounds for `col`.
pub fn gather_ids_portable(col: &[ValueId], rows: &[u32], out: &mut Vec<ValueId>) {
    out.reserve(rows.len());
    let mut chunks = rows.chunks_exact(LANES);
    for chunk in &mut chunks {
        let gathered: [ValueId; LANES] = std::array::from_fn(|i| col[chunk[i] as usize]);
        out.extend_from_slice(&gathered);
    }
    for &r in chunks.remainder() {
        out.push(col[r as usize]);
    }
}

/// Scalar reference implementation of [`gather_ids`].
pub fn gather_ids_scalar(col: &[ValueId], rows: &[u32], out: &mut Vec<ValueId>) {
    for &r in rows {
        out.push(col[r as usize]);
    }
}

/// Packs the given columns row-major into `out` (clearing it first):
/// `out[row * k + j] = cols[j][row]` for `k = cols.len()` — the key-gathering
/// step of a multi-column semijoin, producing contiguous fixed-width keys
/// that can be hashed as `&[ValueId]` windows without any per-row allocation.
///
/// Written as one sequential read pass per column with a constant output
/// stride, which the autovectorizer turns into interleaved stores for small
/// `k` (and a plain copy for `k == 1`); no dedicated AVX2 arm.
///
/// # Panics
///
/// Panics if the columns differ in length.
pub fn pack_keys(cols: &[&[ValueId]], out: &mut Vec<ValueId>) {
    let k = cols.len();
    let n = cols.first().map(|c| c.len()).unwrap_or(0);
    assert!(
        cols.iter().all(|c| c.len() == n),
        "column length mismatch in pack_keys"
    );
    out.clear();
    out.resize(n * k, ValueId::dummy());
    if n == 0 {
        return;
    }
    for (j, col) in cols.iter().enumerate() {
        for (slot, &id) in out[j..].iter_mut().step_by(k).zip(col.iter()) {
            *slot = id;
        }
    }
}

/// Scalar reference implementation of [`pack_keys`] (row-at-a-time).
pub fn pack_keys_scalar(cols: &[&[ValueId]], out: &mut Vec<ValueId>) {
    let k = cols.len();
    let n = cols.first().map(|c| c.len()).unwrap_or(0);
    assert!(
        cols.iter().all(|c| c.len() == n),
        "column length mismatch in pack_keys"
    );
    out.clear();
    out.reserve(n * k);
    for row in 0..n {
        for col in cols {
            out.push(col[row]);
        }
    }
}

/// Positions probed with a plain linear scan before [`gallop_seek`] switches
/// to exponential doubling.  Leapfrog seeks overwhelmingly land within a few
/// slots of the cursor (the runs being intersected advance in near-lockstep),
/// so the linear probe wins there; the gallop bounds the bad case — a seek
/// that skips far ahead costs `O(log distance)` instead of `O(n)`.
///
/// Why `8`: it is one [`LANES`]-wide register, so the AVX2 arm answers the
/// whole probe with a single vector compare + movemask, and the portable arm
/// gets one autovectorizable fixed-width loop.  Probing further linearly
/// only pays when seeks routinely land 9..k slots ahead, which the
/// near-lockstep leapfrog distribution makes rare.  The threshold is
/// *tunable* per call site via [`gallop_seek_with_span`]; the
/// `kernels/gallop-span-sweep` microbench (crates/bench) sweeps spans
/// 0–32 over leapfrog-shaped workloads to re-validate the default.
pub const GALLOP_LINEAR_SPAN: usize = 8;

/// The index of the first element of `run[start..]` that is `>= target`,
/// as an absolute index into `run` (`run.len()` when every element is
/// smaller).  `run` must be sorted ascending; elements before `start` are
/// never examined.
///
/// Probes [`GALLOP_LINEAR_SPAN`] slots linearly from `start` (a single
/// vector compare on the AVX2 arm), then gallops: the step doubles until it
/// overshoots and a binary search finishes inside the last window —
/// `O(log distance)` with the constant factor of a linear scan on the short
/// seeks that dominate leapfrog intersection.
pub fn gallop_seek(run: &[ValueId], start: usize, target: ValueId) -> usize {
    (table().gallop_seek)(run, start, target)
}

/// Portable implementation of [`gallop_seek`] (the dispatch fallback arm):
/// [`gallop_seek_with_span`] at the default [`GALLOP_LINEAR_SPAN`].
pub fn gallop_seek_portable(run: &[ValueId], start: usize, target: ValueId) -> usize {
    gallop_seek_with_span(run, start, target, GALLOP_LINEAR_SPAN)
}

/// [`gallop_seek`] with an explicit linear-probe span: probes `span` slots
/// linearly from `start` before switching to exponential doubling (`span ==
/// 0` gallops immediately).  The result is identical for every span — the
/// knob trades the linear probe's cache-friendly short-seek latency against
/// wasted compares on long seeks.  Exposed so call sites with a known seek
/// distribution (and the span-sweep microbench) can tune the threshold;
/// the default used by the engine everywhere is [`GALLOP_LINEAR_SPAN`].
pub fn gallop_seek_with_span(run: &[ValueId], start: usize, target: ValueId, span: usize) -> usize {
    let n = run.len();
    let linear_end = start.saturating_add(span).min(n);
    for (i, &v) in run[start..linear_end].iter().enumerate() {
        if v >= target {
            return start + i;
        }
    }
    if linear_end == n {
        return n;
    }
    gallop_tail(run, linear_end, target)
}

/// The exponential-doubling + binary-search phase shared by every
/// [`gallop_seek`] arm: every element before `from` is known `< target`.
fn gallop_tail(run: &[ValueId], from: usize, target: ValueId) -> usize {
    let n = run.len();
    // Invariant: every element before `lo` is < target; `hi` is the next
    // probe.  Doubling the step keeps the total work logarithmic in the
    // distance actually travelled.
    let mut lo = from;
    let mut hi = from;
    let mut step = 1usize;
    while hi < n && run[hi] < target {
        lo = hi + 1;
        hi += step;
        step <<= 1;
    }
    let hi = hi.min(n);
    lo + run[lo..hi].partition_point(|&x| x < target)
}

/// Scalar reference implementation of [`gallop_seek`] (linear scan).
pub fn gallop_seek_scalar(run: &[ValueId], start: usize, target: ValueId) -> usize {
    let mut i = start;
    while i < run.len() && run[i] < target {
        i += 1;
    }
    i
}

/// Replaces `out` with the intersection of two sorted runs by mutual
/// galloping: each side seeks to the other side's current value with
/// [`gallop_seek`], so skewed inputs (one long run, one short) cost
/// `O(short · log long)` instead of a full merge.  Inputs must be sorted
/// ascending with distinct elements (trie runs are deduplicated); the output
/// is sorted and distinct.  Dispatches to the AVX2 arm (vectorised seek
/// probes) when available.
pub fn intersect_sorted_gallop(a: &[ValueId], b: &[ValueId], out: &mut Vec<ValueId>) {
    (table().intersect_sorted)(a, b, out)
}

/// Portable implementation of [`intersect_sorted_gallop`] (the dispatch
/// fallback arm).
pub fn intersect_sorted_portable(a: &[ValueId], b: &[ValueId], out: &mut Vec<ValueId>) {
    intersect_with_seek(a, b, out, gallop_seek_portable)
}

/// The mutual-galloping loop shared by every [`intersect_sorted_gallop`]
/// arm, parameterised over the seek primitive.
fn intersect_with_seek(
    a: &[ValueId],
    b: &[ValueId],
    out: &mut Vec<ValueId>,
    seek: fn(&[ValueId], usize, ValueId) -> usize,
) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let x = a[i];
        j = seek(b, j, x);
        if j == b.len() {
            break;
        }
        let y = b[j];
        if y == x {
            out.push(x);
            i += 1;
            j += 1;
        } else {
            i = seek(a, i, y);
        }
    }
}

/// Scalar reference implementation of [`intersect_sorted_gallop`] (a plain
/// two-pointer merge).
pub fn intersect_sorted_scalar(a: &[ValueId], b: &[ValueId], out: &mut Vec<ValueId>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Advances `cursors` to the smallest value at or after every current cursor
/// that occurs in **all** runs, and returns it — the candidate-generation
/// step of leapfrog multi-way intersection.  Returns `None` (leaving the
/// cursors wherever the failed alignment left them) once any run is
/// exhausted.  Runs must be sorted ascending with distinct elements.
///
/// To enumerate the whole intersection, call repeatedly, advancing **every**
/// cursor by one after consuming a match (all cursors point at the matched
/// value when the call returns `Some`).  The seeks go through the dispatched
/// [`gallop_seek`], so leapfrog inherits the AVX2 probe without a dedicated
/// arm of its own.
///
/// # Panics
///
/// Panics if `runs` is empty or `cursors.len() != runs.len()`.
pub fn leapfrog_next(runs: &[&[ValueId]], cursors: &mut [usize]) -> Option<ValueId> {
    assert!(!runs.is_empty(), "leapfrog requires at least one run");
    assert_eq!(runs.len(), cursors.len(), "one cursor per run");
    let seek = table().gallop_seek;
    // The largest value currently under a cursor is the first possible match.
    let mut max: Option<ValueId> = None;
    for (run, &c) in runs.iter().zip(cursors.iter()) {
        let v = *run.get(c)?;
        max = Some(match max {
            Some(m) if m >= v => m,
            _ => v,
        });
    }
    // ij-analysis: allow(panic) — infallible: guarded by the `!runs.is_empty()` assert above
    let mut max = max.expect("runs is non-empty");
    // Rounds of seek-everyone-to-max; a seek that overshoots raises the bar
    // and forces another round.  Terminates: `max` only grows, bounded by
    // the runs' maxima.
    loop {
        let mut aligned = true;
        for (run, c) in runs.iter().zip(cursors.iter_mut()) {
            if run[*c] < max {
                *c = seek(run, *c, max);
                if *c == run.len() {
                    return None;
                }
                if run[*c] > max {
                    max = run[*c];
                    aligned = false;
                }
            }
        }
        if aligned {
            return Some(max);
        }
    }
}

/// Scalar reference implementation of [`leapfrog_next`]: advances the first
/// run one element at a time and checks membership in the others linearly.
///
/// # Panics
///
/// Panics if `runs` is empty or `cursors.len() != runs.len()`.
pub fn leapfrog_next_scalar(runs: &[&[ValueId]], cursors: &mut [usize]) -> Option<ValueId> {
    assert!(!runs.is_empty(), "leapfrog requires at least one run");
    assert_eq!(runs.len(), cursors.len(), "one cursor per run");
    'candidate: loop {
        let v = *runs[0].get(cursors[0])?;
        for i in 1..runs.len() {
            while cursors[i] < runs[i].len() && runs[i][cursors[i]] < v {
                cursors[i] += 1;
            }
            if cursors[i] >= runs[i].len() {
                return None;
            }
            if runs[i][cursors[i]] > v {
                cursors[0] += 1;
                continue 'candidate;
            }
        }
        return Some(v);
    }
}

/// The AVX2 arm: explicit `core::arch::x86_64` intrinsics behind safe
/// wrappers.  The wrappers are only ever installed into the dispatch table
/// *after* `is_x86_feature_detected!("avx2")` succeeded (and are exercised
/// directly by the property tests under the same detection guard), which is
/// what justifies the `unsafe` calls into the `#[target_feature]` inner
/// functions.
#[cfg(target_arch = "x86_64")]
pub mod avx2 {
    use super::*;
    use std::arch::x86_64::*;

    /// `true` when the host supports this module's kernels.
    pub fn available() -> bool {
        std::arch::is_x86_feature_detected!("avx2")
    }

    /// `&[ValueId]` viewed as its raw `u32` words (sound: `ValueId` is
    /// `#[repr(transparent)]` over `u32`).
    fn ids_as_raw(ids: &[ValueId]) -> &[u32] {
        // SAFETY: `ValueId` is `#[repr(transparent)]` over `u32`, so the two
        // slices have identical size, alignment and validity invariants (any
        // bit pattern is a valid `u32`); pointer and length come straight
        // from a live `&[ValueId]`, whose borrow the returned lifetime keeps
        // alive.
        unsafe { std::slice::from_raw_parts(ids.as_ptr() as *const u32, ids.len()) }
    }

    /// `&[u32]` viewed as ids (sound for the same representation reason; the
    /// kernels only ever round-trip words read from real id slices).
    fn raw_as_ids(raw: &[u32]) -> &[ValueId] {
        // SAFETY: the inverse of `ids_as_raw` — same `#[repr(transparent)]`
        // layout guarantee, and `ValueId` is a plain wrapper with no validity
        // restriction beyond `u32`'s, so every word is a valid id.  Pointer
        // and length come from a live `&[u32]` held by the returned borrow.
        unsafe { std::slice::from_raw_parts(raw.as_ptr() as *const ValueId, raw.len()) }
    }

    /// AVX2 [`and_equal_mask`]: 32 elements per iteration — four `u32x8`
    /// equality compares packed down to one byte vector and ANDed into the
    /// mask.  See `and_equal_mask_avx2` for the lane bookkeeping.
    pub fn and_equal_mask(a: &[ValueId], b: &[ValueId], mask: &mut [u8]) {
        debug_assert!(available());
        // SAFETY: callers reach this wrapper only after
        // `is_x86_feature_detected!("avx2")` succeeded — via the dispatch
        // table (installed under that check) or the property tests (same
        // guard) — so the `#[target_feature(enable = "avx2")]` precondition
        // holds.
        unsafe { and_equal_mask_avx2(a, b, mask) }
    }

    // SAFETY CONTRACT (`unsafe fn`): the caller must ensure the CPU
    // supports AVX2.  The body upholds memory safety itself: every
    // `loadu`/`storeu` stays within `i + 32 <= n` with all three slices
    // `n` long (asserted by the public entry point), and unaligned
    // load/store intrinsics have no alignment precondition.
    #[target_feature(enable = "avx2")]
    unsafe fn and_equal_mask_avx2(a: &[ValueId], b: &[ValueId], mask: &mut [u8]) {
        let n = mask.len();
        let ar = ids_as_raw(a);
        let br = ids_as_raw(b);
        let ones = _mm256_set1_epi8(1);
        // `packs_epi32` + `packs_epi16` interleave their operands per
        // 128-bit lane; this dword permutation restores element order.
        let fix = _mm256_setr_epi32(0, 4, 1, 5, 2, 6, 3, 7);
        let mut i = 0usize;
        while i + 32 <= n {
            let eq_at = |o: usize| {
                let va = _mm256_loadu_si256(ar.as_ptr().add(o) as *const __m256i);
                let vb = _mm256_loadu_si256(br.as_ptr().add(o) as *const __m256i);
                _mm256_cmpeq_epi32(va, vb)
            };
            let (e0, e1) = (eq_at(i), eq_at(i + 8));
            let (e2, e3) = (eq_at(i + 16), eq_at(i + 24));
            // 0/-1 dwords → 0/-1 words → 0/-1 bytes (saturating packs keep
            // the all-ones pattern), then reorder the interleaved dwords.
            let p01 = _mm256_packs_epi32(e0, e1);
            let p23 = _mm256_packs_epi32(e2, e3);
            let bytes = _mm256_packs_epi16(p01, p23);
            let bytes = _mm256_permutevar8x32_epi32(bytes, fix);
            // `m &= (eq as u8)` exactly: AND with 0/1, not 0/0xFF, so mask
            // bytes other than 0/1 degrade identically to the scalar arm.
            let keep = _mm256_and_si256(bytes, ones);
            let mp = mask.as_mut_ptr().add(i) as *mut __m256i;
            let m = _mm256_loadu_si256(mp as *const __m256i);
            _mm256_storeu_si256(mp, _mm256_and_si256(m, keep));
            i += 32;
        }
        and_equal_mask_portable(&a[i..], &b[i..], &mut mask[i..]);
    }

    /// AVX2 [`select_indices`]: 32 mask bytes per compare — one
    /// `cmpeq`+`movemask` yields a 32-bit selected-set, iterated bit by bit
    /// (`trailing_zeros`), so sparse and dead words cost one compare.
    pub fn select_indices(mask: &[u8], base: u32, out: &mut Vec<u32>) {
        debug_assert!(available());
        // SAFETY: AVX2 availability established by the dispatch table /
        // test guard, exactly as for `and_equal_mask`.
        unsafe { select_indices_avx2(mask, base, out) }
    }

    // SAFETY CONTRACT (`unsafe fn`): caller must ensure AVX2.  All loads
    // are unaligned `loadu` within `i + 32 <= mask.len()`; the tail is
    // delegated to the safe portable arm.
    #[target_feature(enable = "avx2")]
    unsafe fn select_indices_avx2(mask: &[u8], base: u32, out: &mut Vec<u32>) {
        let zero = _mm256_setzero_si256();
        let mut i = 0usize;
        while i + 32 <= mask.len() {
            let m = _mm256_loadu_si256(mask.as_ptr().add(i) as *const __m256i);
            let dead = _mm256_movemask_epi8(_mm256_cmpeq_epi8(m, zero)) as u32;
            let mut bits = !dead;
            while bits != 0 {
                let j = bits.trailing_zeros();
                out.push(base + i as u32 + j);
                bits &= bits - 1;
            }
            i += 32;
        }
        select_indices_portable(&mask[i..], base + i as u32, out);
    }

    /// AVX2 [`gather_ids`]: hardware `vpgatherdd` eight rows at a time,
    /// with a per-chunk bounds pre-check that falls back to the portable
    /// arm (preserving the panic-on-out-of-bounds contract — the hardware
    /// gather must never be issued with an out-of-range index).
    pub fn gather_ids(col: &[ValueId], rows: &[u32], out: &mut Vec<ValueId>) {
        debug_assert!(available());
        // SAFETY: AVX2 availability established by the dispatch table /
        // test guard, exactly as for `and_equal_mask`.
        unsafe { gather_ids_avx2(col, rows, out) }
    }

    // SAFETY CONTRACT (`unsafe fn`): caller must ensure AVX2.  The
    // hardware gather reads `col[idx]` for eight indices at once, so the
    // body pre-checks `max(chunk) < col.len()` before issuing it and
    // bails to the (bounds-checked, panicking) portable arm otherwise;
    // indices are also capped to `i32::MAX` columns since `vpgatherdd`
    // treats them as signed.
    #[target_feature(enable = "avx2")]
    unsafe fn gather_ids_avx2(col: &[ValueId], rows: &[u32], out: &mut Vec<ValueId>) {
        // `vpgatherdd` treats indices as signed; columns larger than
        // i32::MAX rows cannot use it soundly.
        if col.len() > i32::MAX as usize {
            return gather_ids_portable(col, rows, out);
        }
        out.reserve(rows.len());
        let base = ids_as_raw(col).as_ptr() as *const i32;
        let mut chunks = rows.chunks_exact(LANES);
        let mut consumed = 0usize;
        for chunk in &mut chunks {
            // Max over eight indices is cheap; an out-of-bounds index makes
            // the portable tail below re-run this chunk and panic exactly
            // like the scalar reference.
            // ij-analysis: allow(panic) — infallible: `chunks_exact(LANES)` chunks are never empty
            let mx = chunk.iter().copied().max().expect("chunk of LANES");
            if mx as usize >= col.len() {
                break;
            }
            let idx = _mm256_loadu_si256(chunk.as_ptr() as *const __m256i);
            let g = _mm256_i32gather_epi32::<4>(base, idx);
            let mut buf = [0u32; LANES];
            _mm256_storeu_si256(buf.as_mut_ptr() as *mut __m256i, g);
            out.extend_from_slice(raw_as_ids(&buf));
            consumed += LANES;
        }
        gather_ids_portable(col, &rows[consumed..], out);
    }

    /// AVX2 [`gallop_seek`]: the [`GALLOP_LINEAR_SPAN`]-slot linear probe is
    /// one biased `u32x8` compare + movemask; seeks that travel further fall
    /// into the shared exponential gallop.
    pub fn gallop_seek(run: &[ValueId], start: usize, target: ValueId) -> usize {
        debug_assert!(available());
        // SAFETY: AVX2 availability established by the dispatch table /
        // test guard, exactly as for `and_equal_mask`.
        unsafe { gallop_seek_avx2(run, start, target) }
    }

    // SAFETY CONTRACT (`unsafe fn`): caller must ensure AVX2.  The one
    // vector load is guarded by `start + LANES <= n`; everything else is
    // safe indexing.
    #[target_feature(enable = "avx2")]
    unsafe fn gallop_seek_avx2(run: &[ValueId], start: usize, target: ValueId) -> usize {
        let n = run.len();
        // Dense-advance fast path: mutual-gallop intersection and leapfrog
        // overwhelmingly seek a target sitting at the cursor itself (the
        // run already caught up), and one scalar compare settles that
        // without paying the vector setup below.
        if start < n && run[start] >= target {
            return start;
        }
        if start + LANES <= n {
            // Unsigned `run[i] < target` via biased signed compare (the id
            // order is the raw unsigned order).
            let bias = _mm256_set1_epi32(i32::MIN);
            let t = _mm256_xor_si256(_mm256_set1_epi32(target.raw() as i32), bias);
            let raw = ids_as_raw(run);
            let v = _mm256_loadu_si256(raw.as_ptr().add(start) as *const __m256i);
            let lt = _mm256_cmpgt_epi32(t, _mm256_xor_si256(v, bias));
            let lt_bits = _mm256_movemask_ps(_mm256_castsi256_ps(lt)) as u32 & 0xFF;
            if lt_bits != 0xFF {
                // Lowest clear bit = first element >= target.
                return start + (!lt_bits).trailing_zeros() as usize;
            }
            gallop_tail(run, start + LANES, target)
        } else {
            // Short tail: fewer than LANES candidates left.
            for (i, &v) in run[start..].iter().enumerate() {
                if v >= target {
                    return start + i;
                }
            }
            n
        }
    }

    /// AVX2 [`intersect_sorted_gallop`]: the shared mutual-galloping loop
    /// over the AVX2 seek.
    pub fn intersect_sorted(a: &[ValueId], b: &[ValueId], out: &mut Vec<ValueId>) {
        debug_assert!(available());
        intersect_with_seek(a, b, out, gallop_seek);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<ValueId> {
        raw.iter().map(|&r| ValueId::from_raw(r)).collect()
    }

    #[test]
    fn and_equal_mask_matches_scalar_on_odd_lengths() {
        // 11 elements: one full chunk + a 3-element tail.
        let a = ids(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let b = ids(&[1, 0, 3, 0, 5, 0, 7, 0, 9, 0, 11]);
        let mut chunked = vec![1u8; a.len()];
        let mut scalar = chunked.clone();
        and_equal_mask(&a, &b, &mut chunked);
        and_equal_mask_scalar(&a, &b, &mut scalar);
        assert_eq!(chunked, scalar);
        assert_eq!(chunked, vec![1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1]);
        // Accumulation: a second pair zeroes further positions, never revives.
        let c = ids(&[0, 2, 3, 4, 5, 6, 7, 8, 9, 10, 0]);
        and_equal_mask(&a, &c, &mut chunked);
        assert_eq!(chunked[0], 0);
        assert_eq!(chunked[10], 0);
        assert_eq!(chunked[2], 1);
    }

    #[test]
    fn select_indices_skips_dead_words_and_offsets_by_base() {
        let mut mask = vec![0u8; 19];
        mask[3] = 1;
        mask[8] = 1; // second word
        mask[17] = 1; // tail
        let mut chunked = Vec::new();
        let mut scalar = Vec::new();
        select_indices(&mask, 100, &mut chunked);
        select_indices_scalar(&mask, 100, &mut scalar);
        assert_eq!(chunked, scalar);
        assert_eq!(chunked, vec![103, 108, 117]);
    }

    #[test]
    fn gather_and_pack_match_scalar() {
        let col = ids(&[10, 11, 12, 13, 14, 15, 16, 17, 18]);
        let rows: Vec<u32> = vec![8, 0, 3, 3, 7, 1, 2, 6, 5, 4];
        let (mut a, mut b) = (Vec::new(), Vec::new());
        gather_ids(&col, &rows, &mut a);
        gather_ids_scalar(&col, &rows, &mut b);
        assert_eq!(a, b);
        assert_eq!(a[0], ValueId::from_raw(18));

        let c0 = ids(&[1, 2, 3]);
        let c1 = ids(&[4, 5, 6]);
        let (mut p, mut q) = (Vec::new(), Vec::new());
        pack_keys(&[&c0, &c1], &mut p);
        pack_keys_scalar(&[&c0, &c1], &mut q);
        assert_eq!(p, q);
        assert_eq!(p, ids(&[1, 4, 2, 5, 3, 6]));
        // k == 0 and empty columns degenerate cleanly.
        pack_keys(&[], &mut p);
        assert!(p.is_empty());
    }

    #[test]
    fn gallop_seek_matches_scalar_at_every_start_and_target() {
        // Distinct sorted run with gaps; length is not a multiple of the
        // linear span, and targets probe below, inside and past the run.
        let run = ids(&[2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233]);
        for start in 0..=run.len() {
            for raw in 0..256u32 {
                let target = ValueId::from_raw(raw);
                let fast = gallop_seek(&run, start, target);
                let slow = gallop_seek_scalar(&run, start, target);
                assert_eq!(fast, slow, "start {start}, target {raw}");
                assert!(fast >= start && fast <= run.len());
                if fast < run.len() {
                    assert!(run[fast] >= target);
                }
                if fast > start {
                    assert!(run[fast - 1] < target);
                }
            }
        }
        // Degenerate runs.
        assert_eq!(gallop_seek(&[], 0, ValueId::from_raw(7)), 0);
        let one = ids(&[9]);
        assert_eq!(gallop_seek(&one, 0, ValueId::from_raw(9)), 0);
        assert_eq!(gallop_seek(&one, 0, ValueId::from_raw(10)), 1);
        assert_eq!(gallop_seek(&one, 1, ValueId::from_raw(0)), 1);
    }

    #[test]
    fn gallop_seek_span_is_answer_preserving() {
        let run = ids(&[2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233, 377, 610]);
        for span in [0usize, 1, 2, 7, 8, 9, 16, 64] {
            for start in 0..=run.len() {
                for raw in 0..64u32 {
                    let target = ValueId::from_raw(raw * 11);
                    assert_eq!(
                        gallop_seek_with_span(&run, start, target, span),
                        gallop_seek_scalar(&run, start, target),
                        "span {span}, start {start}, target {}",
                        raw * 11
                    );
                }
            }
        }
    }

    #[test]
    fn intersect_gallop_matches_scalar_on_adversarial_runs() {
        let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![], vec![]),
            (vec![], vec![1, 2, 3]),
            (vec![5], vec![5]),
            (vec![5], vec![6]),
            (vec![1, 3, 5, 7], vec![2, 4, 6, 8]), // disjoint, interleaved
            (vec![1, 2, 3, 4], vec![1, 2, 3, 4]), // fully equal
            (vec![1, 100], (0..200).collect()),   // short vs long (gallop far)
            ((0..37).collect(), (18..55).collect()), // non-multiple-of-span overlap
        ];
        for (ra, rb) in cases {
            let a = ids(&ra);
            let b = ids(&rb);
            let (mut fast, mut slow) = (Vec::new(), Vec::new());
            for (x, y) in [(&a, &b), (&b, &a)] {
                intersect_sorted_gallop(x, y, &mut fast);
                intersect_sorted_scalar(x, y, &mut slow);
                assert_eq!(fast, slow, "a {ra:?}, b {rb:?}");
            }
        }
    }

    #[test]
    fn leapfrog_enumerates_the_multiway_intersection() {
        let a = ids(&[1, 2, 4, 8, 16, 32, 64]);
        let b = ids(&[2, 4, 6, 8, 10, 32, 33, 64]);
        let c = ids(&[0, 2, 3, 4, 32, 64, 100]);
        let runs: Vec<&[ValueId]> = vec![&a, &b, &c];
        let collect = |next: fn(&[&[ValueId]], &mut [usize]) -> Option<ValueId>| {
            let mut cursors = vec![0usize; runs.len()];
            let mut out = Vec::new();
            while let Some(v) = next(&runs, &mut cursors) {
                // All cursors point at the matched value.
                for (run, &cu) in runs.iter().zip(&cursors) {
                    assert_eq!(run[cu], v);
                }
                out.push(v);
                for cu in cursors.iter_mut() {
                    *cu += 1;
                }
            }
            out
        };
        let fast = collect(leapfrog_next);
        let slow = collect(leapfrog_next_scalar);
        assert_eq!(fast, slow);
        assert_eq!(fast, ids(&[2, 4, 32, 64]));
        // A single run leapfrogs over itself.
        let single: Vec<&[ValueId]> = vec![&a];
        let mut cursors = vec![0usize];
        let mut out = Vec::new();
        while let Some(v) = leapfrog_next(&single, &mut cursors) {
            out.push(v);
            cursors[0] += 1;
        }
        assert_eq!(out, a);
        // Disjoint runs intersect to nothing.
        let d = ids(&[5, 7, 9]);
        let disjoint: Vec<&[ValueId]> = vec![&a, &d];
        assert_eq!(leapfrog_next(&disjoint, &mut [0, 0]), None);
        assert_eq!(leapfrog_next_scalar(&disjoint, &mut [0, 0]), None);
    }

    #[test]
    fn dispatch_resolves_and_reports_an_arm() {
        let arm = kernel_arm();
        let forced = std::env::var_os(FORCE_SCALAR_ENV).is_some_and(|v| v != "0");
        if forced {
            assert_eq!(arm, KernelArm::Scalar, "{FORCE_SCALAR_ENV} pins scalar");
        }
        #[cfg(target_arch = "x86_64")]
        if !forced && std::arch::is_x86_feature_detected!("avx2") {
            assert_eq!(arm, KernelArm::Avx2);
        }
        #[cfg(not(target_arch = "x86_64"))]
        assert_eq!(arm, KernelArm::Scalar);
        assert_eq!(format!("{arm}"), arm.as_str());
    }

    /// The AVX2 arm is exercised *directly* (not through the dispatch table)
    /// so it stays covered even when the process is pinned to scalar.
    #[cfg(target_arch = "x86_64")]
    #[test]
    fn avx2_arm_matches_scalar_on_adversarial_lengths() {
        if !avx2::available() {
            return; // nothing to test on this host
        }
        // Lengths around both the 8-lane and 32-element block boundaries.
        for n in [0usize, 1, 7, 8, 9, 15, 16, 31, 32, 33, 63, 64, 65, 100] {
            let a: Vec<ValueId> = (0..n).map(|i| ValueId::from_raw(i as u32 % 7)).collect();
            let b: Vec<ValueId> = (0..n)
                .map(|i| ValueId::from_raw((i as u32 + 1) % 7))
                .collect();
            let mut m1: Vec<u8> = (0..n).map(|i| (i % 3 != 0) as u8).collect();
            let mut m2 = m1.clone();
            avx2::and_equal_mask(&a, &a, &mut m1);
            and_equal_mask_scalar(&a, &a, &mut m2);
            assert_eq!(m1, m2, "and_equal_mask len {n}");
            let mut m1: Vec<u8> = (0..n).map(|i| (i % 3 == 0) as u8).collect();
            let mut m2 = m1.clone();
            avx2::and_equal_mask(&a, &b, &mut m1);
            and_equal_mask_scalar(&a, &b, &mut m2);
            assert_eq!(m1, m2, "and_equal_mask len {n}");

            let mask: Vec<u8> = (0..n).map(|i| (i % 5 == 0) as u8).collect();
            let (mut s1, mut s2) = (Vec::new(), Vec::new());
            avx2::select_indices(&mask, 40, &mut s1);
            select_indices_scalar(&mask, 40, &mut s2);
            assert_eq!(s1, s2, "select_indices len {n}");

            let col: Vec<ValueId> = (0..(n + 1)).map(|i| ValueId::from_raw(i as u32)).collect();
            let rows: Vec<u32> = (0..n).map(|i| ((i * 13) % (n + 1)) as u32).collect();
            let (mut g1, mut g2) = (Vec::new(), Vec::new());
            avx2::gather_ids(&col, &rows, &mut g1);
            gather_ids_scalar(&col, &rows, &mut g2);
            assert_eq!(g1, g2, "gather_ids len {n}");

            let run: Vec<ValueId> = (0..n).map(|i| ValueId::from_raw(3 * i as u32)).collect();
            for start in 0..=n {
                for t in 0..(3 * n as u32 + 2) {
                    let target = ValueId::from_raw(t);
                    assert_eq!(
                        avx2::gallop_seek(&run, start, target),
                        gallop_seek_scalar(&run, start, target),
                        "gallop_seek len {n}, start {start}, target {t}"
                    );
                }
            }

            let other: Vec<ValueId> = (0..n).map(|i| ValueId::from_raw(2 * i as u32)).collect();
            let (mut i1, mut i2) = (Vec::new(), Vec::new());
            avx2::intersect_sorted(&run, &other, &mut i1);
            intersect_sorted_scalar(&run, &other, &mut i2);
            assert_eq!(i1, i2, "intersect len {n}");
        }
        // Values around the signed/unsigned bias boundary.
        let hi = ids(&[0, 1, 0x7FFF_FFFF, 0x8000_0000, 0x8000_0001, 0xFFFF_FFFE]);
        for start in 0..=hi.len() {
            for &t in &[0u32, 0x7FFF_FFFF, 0x8000_0000, 0x8000_0001, 0xFFFF_FFFE] {
                let target = ValueId::from_raw(t);
                assert_eq!(
                    avx2::gallop_seek(&hi, start, target),
                    gallop_seek_scalar(&hi, start, target),
                    "biased compare, start {start}, target {t:#x}"
                );
            }
        }
    }

    #[cfg(target_arch = "x86_64")]
    #[test]
    #[should_panic]
    fn avx2_gather_panics_on_out_of_bounds_rows() {
        if !avx2::available() {
            panic!("no AVX2: satisfy should_panic trivially");
        }
        let col = ids(&[1, 2, 3]);
        let rows: Vec<u32> = vec![0, 1, 2, 0, 1, 2, 0, 99]; // full chunk, one OOB
        let mut out = Vec::new();
        avx2::gather_ids(&col, &rows, &mut out);
    }
}
