//! SIMD-friendly chunked scan kernels over interned id slices.
//!
//! The hot linear passes of the join engine — the equal-pair filters of the
//! trie build, the key packing and survivor selection of the Yannakakis
//! semijoins — all reduce to a handful of primitives over `&[ValueId]`.
//! This module implements each primitive twice:
//!
//! * a **chunked** kernel that processes [`LANES`] ids per step over
//!   `chunks_exact` slices (fixed-width loops with no bounds checks, written
//!   so LLVM's autovectorizer turns them into `u32x8`-style SIMD on any
//!   target that has it), followed by a scalar tail for the remainder;
//! * a `*_scalar` **reference** implementation — the obviously-correct
//!   element-at-a-time loop, kept as the oracle for the property tests in
//!   `tests/kernel_properties.rs` (chunked ≡ scalar on every input, including
//!   lengths that are not a multiple of [`LANES`]).
//!
//! The kernels deliberately work on raw slices (not [`Relation`]s) so every
//! layer — whole columns, [`ColumnsView`] row ranges, scratch buffers — can
//! use them.  Masks are `u8` (1 = selected), the representation the
//! autovectorizer handles best for mixed compare-and-accumulate loops.
//!
//! [`Relation`]: crate::Relation
//! [`ColumnsView`]: crate::ColumnsView

use crate::ValueId;

/// Ids processed per chunked step (a `u32x8` register's worth).
pub const LANES: usize = 8;

/// Intersects `mask` with the element-wise equality of `a` and `b`:
/// `mask[i] &= (a[i] == b[i])`.
///
/// This is the trie build's repeated-variable filter: one call per equal
/// column pair, all pairs accumulating into one mask.
///
/// # Panics
///
/// Panics if the three slices differ in length.
pub fn and_equal_mask(a: &[ValueId], b: &[ValueId], mask: &mut [u8]) {
    assert_eq!(a.len(), b.len(), "column length mismatch");
    assert_eq!(a.len(), mask.len(), "mask length mismatch");
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    let mut mc = mask.chunks_exact_mut(LANES);
    for ((ca, cb), cm) in (&mut ac).zip(&mut bc).zip(&mut mc) {
        for i in 0..LANES {
            cm[i] &= u8::from(ca[i] == cb[i]);
        }
    }
    for ((x, y), m) in ac
        .remainder()
        .iter()
        .zip(bc.remainder())
        .zip(mc.into_remainder())
    {
        *m &= u8::from(x == y);
    }
}

/// Scalar reference implementation of [`and_equal_mask`].
pub fn and_equal_mask_scalar(a: &[ValueId], b: &[ValueId], mask: &mut [u8]) {
    assert_eq!(a.len(), b.len(), "column length mismatch");
    assert_eq!(a.len(), mask.len(), "mask length mismatch");
    for i in 0..mask.len() {
        mask[i] &= u8::from(a[i] == b[i]);
    }
}

/// Appends `base + i` to `out` for every selected position (`mask[i] != 0`),
/// in increasing order of `i`.
///
/// Chunked trick: each group of [`LANES`] mask bytes is read as one `u64`, so
/// fully-unselected groups — the common case after a selective semijoin —
/// are skipped with a single compare instead of eight.
pub fn select_indices(mask: &[u8], base: u32, out: &mut Vec<u32>) {
    let mut chunks = mask.chunks_exact(LANES);
    let mut start = 0usize;
    for chunk in &mut chunks {
        let word = u64::from_ne_bytes(chunk.try_into().expect("LANES == 8"));
        if word != 0 {
            for (j, &m) in chunk.iter().enumerate() {
                if m != 0 {
                    out.push(base + (start + j) as u32);
                }
            }
        }
        start += LANES;
    }
    for (j, &m) in chunks.remainder().iter().enumerate() {
        if m != 0 {
            out.push(base + (start + j) as u32);
        }
    }
}

/// Scalar reference implementation of [`select_indices`].
pub fn select_indices_scalar(mask: &[u8], base: u32, out: &mut Vec<u32>) {
    for (i, &m) in mask.iter().enumerate() {
        if m != 0 {
            out.push(base + i as u32);
        }
    }
}

/// Appends `col[rows[i]]` to `out` for every row index, in order — the
/// column-wise gather used to materialise semijoin survivors.
///
/// The index loop is unrolled [`LANES`] at a time; the loads themselves are
/// data-dependent gathers, so the win is bounds-check elision and load-slot
/// pipelining rather than full vectorisation.
///
/// # Panics
///
/// Panics (via indexing) if a row index is out of bounds for `col`.
pub fn gather_ids(col: &[ValueId], rows: &[u32], out: &mut Vec<ValueId>) {
    out.reserve(rows.len());
    let mut chunks = rows.chunks_exact(LANES);
    for chunk in &mut chunks {
        let gathered: [ValueId; LANES] = std::array::from_fn(|i| col[chunk[i] as usize]);
        out.extend_from_slice(&gathered);
    }
    for &r in chunks.remainder() {
        out.push(col[r as usize]);
    }
}

/// Scalar reference implementation of [`gather_ids`].
pub fn gather_ids_scalar(col: &[ValueId], rows: &[u32], out: &mut Vec<ValueId>) {
    for &r in rows {
        out.push(col[r as usize]);
    }
}

/// Packs the given columns row-major into `out` (clearing it first):
/// `out[row * k + j] = cols[j][row]` for `k = cols.len()` — the key-gathering
/// step of a multi-column semijoin, producing contiguous fixed-width keys
/// that can be hashed as `&[ValueId]` windows without any per-row allocation.
///
/// Written as one sequential read pass per column with a constant output
/// stride, which the autovectorizer turns into interleaved stores for small
/// `k` (and a plain copy for `k == 1`).
///
/// # Panics
///
/// Panics if the columns differ in length.
pub fn pack_keys(cols: &[&[ValueId]], out: &mut Vec<ValueId>) {
    let k = cols.len();
    let n = cols.first().map(|c| c.len()).unwrap_or(0);
    assert!(
        cols.iter().all(|c| c.len() == n),
        "column length mismatch in pack_keys"
    );
    out.clear();
    out.resize(n * k, ValueId::dummy());
    if n == 0 {
        return;
    }
    for (j, col) in cols.iter().enumerate() {
        for (slot, &id) in out[j..].iter_mut().step_by(k).zip(col.iter()) {
            *slot = id;
        }
    }
}

/// Scalar reference implementation of [`pack_keys`] (row-at-a-time).
pub fn pack_keys_scalar(cols: &[&[ValueId]], out: &mut Vec<ValueId>) {
    let k = cols.len();
    let n = cols.first().map(|c| c.len()).unwrap_or(0);
    assert!(
        cols.iter().all(|c| c.len() == n),
        "column length mismatch in pack_keys"
    );
    out.clear();
    out.reserve(n * k);
    for row in 0..n {
        for col in cols {
            out.push(col[row]);
        }
    }
}

/// Positions probed with a plain linear scan before [`gallop_seek`] switches
/// to exponential doubling.  Leapfrog seeks overwhelmingly land within a few
/// slots of the cursor (the runs being intersected advance in near-lockstep),
/// so the chunked linear probe wins there; the gallop bounds the bad case —
/// a seek that skips far ahead costs `O(log distance)` instead of `O(n)`.
pub const GALLOP_LINEAR_SPAN: usize = 8;

/// The index of the first element of `run[start..]` that is `>= target`,
/// as an absolute index into `run` (`run.len()` when every element is
/// smaller).  `run` must be sorted ascending; elements before `start` are
/// never examined.
///
/// Probes [`GALLOP_LINEAR_SPAN`] slots linearly from `start`, then gallops:
/// the step doubles until it overshoots and a binary search finishes inside
/// the last window — `O(log distance)` with the constant factor of a linear
/// scan on the short seeks that dominate leapfrog intersection.
pub fn gallop_seek(run: &[ValueId], start: usize, target: ValueId) -> usize {
    let n = run.len();
    let linear_end = (start + GALLOP_LINEAR_SPAN).min(n);
    for (i, &v) in run[start..linear_end].iter().enumerate() {
        if v >= target {
            return start + i;
        }
    }
    if linear_end == n {
        return n;
    }
    // Invariant: every element before `lo` is < target; `hi` is the next
    // probe.  Doubling the step keeps the total work logarithmic in the
    // distance actually travelled.
    let mut lo = linear_end;
    let mut hi = linear_end;
    let mut step = 1usize;
    while hi < n && run[hi] < target {
        lo = hi + 1;
        hi += step;
        step <<= 1;
    }
    let hi = hi.min(n);
    lo + run[lo..hi].partition_point(|&x| x < target)
}

/// Scalar reference implementation of [`gallop_seek`] (linear scan).
pub fn gallop_seek_scalar(run: &[ValueId], start: usize, target: ValueId) -> usize {
    let mut i = start;
    while i < run.len() && run[i] < target {
        i += 1;
    }
    i
}

/// Replaces `out` with the intersection of two sorted runs by mutual
/// galloping: each side seeks to the other side's current value with
/// [`gallop_seek`], so skewed inputs (one long run, one short) cost
/// `O(short · log long)` instead of a full merge.  Inputs must be sorted
/// ascending with distinct elements (trie runs are deduplicated); the output
/// is sorted and distinct.
pub fn intersect_sorted_gallop(a: &[ValueId], b: &[ValueId], out: &mut Vec<ValueId>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        let x = a[i];
        j = gallop_seek(b, j, x);
        if j == b.len() {
            break;
        }
        let y = b[j];
        if y == x {
            out.push(x);
            i += 1;
            j += 1;
        } else {
            i = gallop_seek(a, i, y);
        }
    }
}

/// Scalar reference implementation of [`intersect_sorted_gallop`] (a plain
/// two-pointer merge).
pub fn intersect_sorted_scalar(a: &[ValueId], b: &[ValueId], out: &mut Vec<ValueId>) {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Advances `cursors` to the smallest value at or after every current cursor
/// that occurs in **all** runs, and returns it — the candidate-generation
/// step of leapfrog multi-way intersection.  Returns `None` (leaving the
/// cursors wherever the failed alignment left them) once any run is
/// exhausted.  Runs must be sorted ascending with distinct elements.
///
/// To enumerate the whole intersection, call repeatedly, advancing **every**
/// cursor by one after consuming a match (all cursors point at the matched
/// value when the call returns `Some`).
///
/// # Panics
///
/// Panics if `runs` is empty or `cursors.len() != runs.len()`.
pub fn leapfrog_next(runs: &[&[ValueId]], cursors: &mut [usize]) -> Option<ValueId> {
    assert!(!runs.is_empty(), "leapfrog requires at least one run");
    assert_eq!(runs.len(), cursors.len(), "one cursor per run");
    // The largest value currently under a cursor is the first possible match.
    let mut max: Option<ValueId> = None;
    for (run, &c) in runs.iter().zip(cursors.iter()) {
        let v = *run.get(c)?;
        max = Some(match max {
            Some(m) if m >= v => m,
            _ => v,
        });
    }
    let mut max = max.expect("runs is non-empty");
    // Rounds of seek-everyone-to-max; a seek that overshoots raises the bar
    // and forces another round.  Terminates: `max` only grows, bounded by
    // the runs' maxima.
    loop {
        let mut aligned = true;
        for (run, c) in runs.iter().zip(cursors.iter_mut()) {
            if run[*c] < max {
                *c = gallop_seek(run, *c, max);
                if *c == run.len() {
                    return None;
                }
                if run[*c] > max {
                    max = run[*c];
                    aligned = false;
                }
            }
        }
        if aligned {
            return Some(max);
        }
    }
}

/// Scalar reference implementation of [`leapfrog_next`]: advances the first
/// run one element at a time and checks membership in the others linearly.
///
/// # Panics
///
/// Panics if `runs` is empty or `cursors.len() != runs.len()`.
pub fn leapfrog_next_scalar(runs: &[&[ValueId]], cursors: &mut [usize]) -> Option<ValueId> {
    assert!(!runs.is_empty(), "leapfrog requires at least one run");
    assert_eq!(runs.len(), cursors.len(), "one cursor per run");
    'candidate: loop {
        let v = *runs[0].get(cursors[0])?;
        for i in 1..runs.len() {
            while cursors[i] < runs[i].len() && runs[i][cursors[i]] < v {
                cursors[i] += 1;
            }
            if cursors[i] >= runs[i].len() {
                return None;
            }
            if runs[i][cursors[i]] > v {
                cursors[0] += 1;
                continue 'candidate;
            }
        }
        return Some(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<ValueId> {
        raw.iter().map(|&r| ValueId::from_raw(r)).collect()
    }

    #[test]
    fn and_equal_mask_matches_scalar_on_odd_lengths() {
        // 11 elements: one full chunk + a 3-element tail.
        let a = ids(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let b = ids(&[1, 0, 3, 0, 5, 0, 7, 0, 9, 0, 11]);
        let mut chunked = vec![1u8; a.len()];
        let mut scalar = chunked.clone();
        and_equal_mask(&a, &b, &mut chunked);
        and_equal_mask_scalar(&a, &b, &mut scalar);
        assert_eq!(chunked, scalar);
        assert_eq!(chunked, vec![1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1]);
        // Accumulation: a second pair zeroes further positions, never revives.
        let c = ids(&[0, 2, 3, 4, 5, 6, 7, 8, 9, 10, 0]);
        and_equal_mask(&a, &c, &mut chunked);
        assert_eq!(chunked[0], 0);
        assert_eq!(chunked[10], 0);
        assert_eq!(chunked[2], 1);
    }

    #[test]
    fn select_indices_skips_dead_words_and_offsets_by_base() {
        let mut mask = vec![0u8; 19];
        mask[3] = 1;
        mask[8] = 1; // second word
        mask[17] = 1; // tail
        let mut chunked = Vec::new();
        let mut scalar = Vec::new();
        select_indices(&mask, 100, &mut chunked);
        select_indices_scalar(&mask, 100, &mut scalar);
        assert_eq!(chunked, scalar);
        assert_eq!(chunked, vec![103, 108, 117]);
    }

    #[test]
    fn gather_and_pack_match_scalar() {
        let col = ids(&[10, 11, 12, 13, 14, 15, 16, 17, 18]);
        let rows: Vec<u32> = vec![8, 0, 3, 3, 7, 1, 2, 6, 5, 4];
        let (mut a, mut b) = (Vec::new(), Vec::new());
        gather_ids(&col, &rows, &mut a);
        gather_ids_scalar(&col, &rows, &mut b);
        assert_eq!(a, b);
        assert_eq!(a[0], ValueId::from_raw(18));

        let c0 = ids(&[1, 2, 3]);
        let c1 = ids(&[4, 5, 6]);
        let (mut p, mut q) = (Vec::new(), Vec::new());
        pack_keys(&[&c0, &c1], &mut p);
        pack_keys_scalar(&[&c0, &c1], &mut q);
        assert_eq!(p, q);
        assert_eq!(p, ids(&[1, 4, 2, 5, 3, 6]));
        // k == 0 and empty columns degenerate cleanly.
        pack_keys(&[], &mut p);
        assert!(p.is_empty());
    }

    #[test]
    fn gallop_seek_matches_scalar_at_every_start_and_target() {
        // Distinct sorted run with gaps; length is not a multiple of the
        // linear span, and targets probe below, inside and past the run.
        let run = ids(&[2, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233]);
        for start in 0..=run.len() {
            for raw in 0..256u32 {
                let target = ValueId::from_raw(raw);
                let fast = gallop_seek(&run, start, target);
                let slow = gallop_seek_scalar(&run, start, target);
                assert_eq!(fast, slow, "start {start}, target {raw}");
                assert!(fast >= start && fast <= run.len());
                if fast < run.len() {
                    assert!(run[fast] >= target);
                }
                if fast > start {
                    assert!(run[fast - 1] < target);
                }
            }
        }
        // Degenerate runs.
        assert_eq!(gallop_seek(&[], 0, ValueId::from_raw(7)), 0);
        let one = ids(&[9]);
        assert_eq!(gallop_seek(&one, 0, ValueId::from_raw(9)), 0);
        assert_eq!(gallop_seek(&one, 0, ValueId::from_raw(10)), 1);
        assert_eq!(gallop_seek(&one, 1, ValueId::from_raw(0)), 1);
    }

    #[test]
    fn intersect_gallop_matches_scalar_on_adversarial_runs() {
        let cases: Vec<(Vec<u32>, Vec<u32>)> = vec![
            (vec![], vec![]),
            (vec![], vec![1, 2, 3]),
            (vec![5], vec![5]),
            (vec![5], vec![6]),
            (vec![1, 3, 5, 7], vec![2, 4, 6, 8]), // disjoint, interleaved
            (vec![1, 2, 3, 4], vec![1, 2, 3, 4]), // fully equal
            (vec![1, 100], (0..200).collect()),   // short vs long (gallop far)
            ((0..37).collect(), (18..55).collect()), // non-multiple-of-span overlap
        ];
        for (ra, rb) in cases {
            let a = ids(&ra);
            let b = ids(&rb);
            let (mut fast, mut slow) = (Vec::new(), Vec::new());
            for (x, y) in [(&a, &b), (&b, &a)] {
                intersect_sorted_gallop(x, y, &mut fast);
                intersect_sorted_scalar(x, y, &mut slow);
                assert_eq!(fast, slow, "a {ra:?}, b {rb:?}");
            }
        }
    }

    #[test]
    fn leapfrog_enumerates_the_multiway_intersection() {
        let a = ids(&[1, 2, 4, 8, 16, 32, 64]);
        let b = ids(&[2, 4, 6, 8, 10, 32, 33, 64]);
        let c = ids(&[0, 2, 3, 4, 32, 64, 100]);
        let runs: Vec<&[ValueId]> = vec![&a, &b, &c];
        let collect = |next: fn(&[&[ValueId]], &mut [usize]) -> Option<ValueId>| {
            let mut cursors = vec![0usize; runs.len()];
            let mut out = Vec::new();
            while let Some(v) = next(&runs, &mut cursors) {
                // All cursors point at the matched value.
                for (run, &cu) in runs.iter().zip(&cursors) {
                    assert_eq!(run[cu], v);
                }
                out.push(v);
                for cu in cursors.iter_mut() {
                    *cu += 1;
                }
            }
            out
        };
        let fast = collect(leapfrog_next);
        let slow = collect(leapfrog_next_scalar);
        assert_eq!(fast, slow);
        assert_eq!(fast, ids(&[2, 4, 32, 64]));
        // A single run leapfrogs over itself.
        let single: Vec<&[ValueId]> = vec![&a];
        let mut cursors = vec![0usize];
        let mut out = Vec::new();
        while let Some(v) = leapfrog_next(&single, &mut cursors) {
            out.push(v);
            cursors[0] += 1;
        }
        assert_eq!(out, a);
        // Disjoint runs intersect to nothing.
        let d = ids(&[5, 7, 9]);
        let disjoint: Vec<&[ValueId]> = vec![&a, &d];
        assert_eq!(leapfrog_next(&disjoint, &mut [0, 0]), None);
        assert_eq!(leapfrog_next_scalar(&disjoint, &mut [0, 0]), None);
    }
}
