//! SIMD-friendly chunked scan kernels over interned id slices.
//!
//! The hot linear passes of the join engine — the equal-pair filters of the
//! trie build, the key packing and survivor selection of the Yannakakis
//! semijoins — all reduce to a handful of primitives over `&[ValueId]`.
//! This module implements each primitive twice:
//!
//! * a **chunked** kernel that processes [`LANES`] ids per step over
//!   `chunks_exact` slices (fixed-width loops with no bounds checks, written
//!   so LLVM's autovectorizer turns them into `u32x8`-style SIMD on any
//!   target that has it), followed by a scalar tail for the remainder;
//! * a `*_scalar` **reference** implementation — the obviously-correct
//!   element-at-a-time loop, kept as the oracle for the property tests in
//!   `tests/kernel_properties.rs` (chunked ≡ scalar on every input, including
//!   lengths that are not a multiple of [`LANES`]).
//!
//! The kernels deliberately work on raw slices (not [`Relation`]s) so every
//! layer — whole columns, [`ColumnsView`] row ranges, scratch buffers — can
//! use them.  Masks are `u8` (1 = selected), the representation the
//! autovectorizer handles best for mixed compare-and-accumulate loops.
//!
//! [`Relation`]: crate::Relation
//! [`ColumnsView`]: crate::ColumnsView

use crate::ValueId;

/// Ids processed per chunked step (a `u32x8` register's worth).
pub const LANES: usize = 8;

/// Intersects `mask` with the element-wise equality of `a` and `b`:
/// `mask[i] &= (a[i] == b[i])`.
///
/// This is the trie build's repeated-variable filter: one call per equal
/// column pair, all pairs accumulating into one mask.
///
/// # Panics
///
/// Panics if the three slices differ in length.
pub fn and_equal_mask(a: &[ValueId], b: &[ValueId], mask: &mut [u8]) {
    assert_eq!(a.len(), b.len(), "column length mismatch");
    assert_eq!(a.len(), mask.len(), "mask length mismatch");
    let mut ac = a.chunks_exact(LANES);
    let mut bc = b.chunks_exact(LANES);
    let mut mc = mask.chunks_exact_mut(LANES);
    for ((ca, cb), cm) in (&mut ac).zip(&mut bc).zip(&mut mc) {
        for i in 0..LANES {
            cm[i] &= u8::from(ca[i] == cb[i]);
        }
    }
    for ((x, y), m) in ac
        .remainder()
        .iter()
        .zip(bc.remainder())
        .zip(mc.into_remainder())
    {
        *m &= u8::from(x == y);
    }
}

/// Scalar reference implementation of [`and_equal_mask`].
pub fn and_equal_mask_scalar(a: &[ValueId], b: &[ValueId], mask: &mut [u8]) {
    assert_eq!(a.len(), b.len(), "column length mismatch");
    assert_eq!(a.len(), mask.len(), "mask length mismatch");
    for i in 0..mask.len() {
        mask[i] &= u8::from(a[i] == b[i]);
    }
}

/// Appends `base + i` to `out` for every selected position (`mask[i] != 0`),
/// in increasing order of `i`.
///
/// Chunked trick: each group of [`LANES`] mask bytes is read as one `u64`, so
/// fully-unselected groups — the common case after a selective semijoin —
/// are skipped with a single compare instead of eight.
pub fn select_indices(mask: &[u8], base: u32, out: &mut Vec<u32>) {
    let mut chunks = mask.chunks_exact(LANES);
    let mut start = 0usize;
    for chunk in &mut chunks {
        let word = u64::from_ne_bytes(chunk.try_into().expect("LANES == 8"));
        if word != 0 {
            for (j, &m) in chunk.iter().enumerate() {
                if m != 0 {
                    out.push(base + (start + j) as u32);
                }
            }
        }
        start += LANES;
    }
    for (j, &m) in chunks.remainder().iter().enumerate() {
        if m != 0 {
            out.push(base + (start + j) as u32);
        }
    }
}

/// Scalar reference implementation of [`select_indices`].
pub fn select_indices_scalar(mask: &[u8], base: u32, out: &mut Vec<u32>) {
    for (i, &m) in mask.iter().enumerate() {
        if m != 0 {
            out.push(base + i as u32);
        }
    }
}

/// Appends `col[rows[i]]` to `out` for every row index, in order — the
/// column-wise gather used to materialise semijoin survivors.
///
/// The index loop is unrolled [`LANES`] at a time; the loads themselves are
/// data-dependent gathers, so the win is bounds-check elision and load-slot
/// pipelining rather than full vectorisation.
///
/// # Panics
///
/// Panics (via indexing) if a row index is out of bounds for `col`.
pub fn gather_ids(col: &[ValueId], rows: &[u32], out: &mut Vec<ValueId>) {
    out.reserve(rows.len());
    let mut chunks = rows.chunks_exact(LANES);
    for chunk in &mut chunks {
        let gathered: [ValueId; LANES] = std::array::from_fn(|i| col[chunk[i] as usize]);
        out.extend_from_slice(&gathered);
    }
    for &r in chunks.remainder() {
        out.push(col[r as usize]);
    }
}

/// Scalar reference implementation of [`gather_ids`].
pub fn gather_ids_scalar(col: &[ValueId], rows: &[u32], out: &mut Vec<ValueId>) {
    for &r in rows {
        out.push(col[r as usize]);
    }
}

/// Packs the given columns row-major into `out` (clearing it first):
/// `out[row * k + j] = cols[j][row]` for `k = cols.len()` — the key-gathering
/// step of a multi-column semijoin, producing contiguous fixed-width keys
/// that can be hashed as `&[ValueId]` windows without any per-row allocation.
///
/// Written as one sequential read pass per column with a constant output
/// stride, which the autovectorizer turns into interleaved stores for small
/// `k` (and a plain copy for `k == 1`).
///
/// # Panics
///
/// Panics if the columns differ in length.
pub fn pack_keys(cols: &[&[ValueId]], out: &mut Vec<ValueId>) {
    let k = cols.len();
    let n = cols.first().map(|c| c.len()).unwrap_or(0);
    assert!(
        cols.iter().all(|c| c.len() == n),
        "column length mismatch in pack_keys"
    );
    out.clear();
    out.resize(n * k, ValueId::dummy());
    if n == 0 {
        return;
    }
    for (j, col) in cols.iter().enumerate() {
        for (slot, &id) in out[j..].iter_mut().step_by(k).zip(col.iter()) {
            *slot = id;
        }
    }
}

/// Scalar reference implementation of [`pack_keys`] (row-at-a-time).
pub fn pack_keys_scalar(cols: &[&[ValueId]], out: &mut Vec<ValueId>) {
    let k = cols.len();
    let n = cols.first().map(|c| c.len()).unwrap_or(0);
    assert!(
        cols.iter().all(|c| c.len() == n),
        "column length mismatch in pack_keys"
    );
    out.clear();
    out.reserve(n * k);
    for row in 0..n {
        for col in cols {
            out.push(col[row]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ids(raw: &[u32]) -> Vec<ValueId> {
        raw.iter().map(|&r| ValueId::from_raw(r)).collect()
    }

    #[test]
    fn and_equal_mask_matches_scalar_on_odd_lengths() {
        // 11 elements: one full chunk + a 3-element tail.
        let a = ids(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let b = ids(&[1, 0, 3, 0, 5, 0, 7, 0, 9, 0, 11]);
        let mut chunked = vec![1u8; a.len()];
        let mut scalar = chunked.clone();
        and_equal_mask(&a, &b, &mut chunked);
        and_equal_mask_scalar(&a, &b, &mut scalar);
        assert_eq!(chunked, scalar);
        assert_eq!(chunked, vec![1, 0, 1, 0, 1, 0, 1, 0, 1, 0, 1]);
        // Accumulation: a second pair zeroes further positions, never revives.
        let c = ids(&[0, 2, 3, 4, 5, 6, 7, 8, 9, 10, 0]);
        and_equal_mask(&a, &c, &mut chunked);
        assert_eq!(chunked[0], 0);
        assert_eq!(chunked[10], 0);
        assert_eq!(chunked[2], 1);
    }

    #[test]
    fn select_indices_skips_dead_words_and_offsets_by_base() {
        let mut mask = vec![0u8; 19];
        mask[3] = 1;
        mask[8] = 1; // second word
        mask[17] = 1; // tail
        let mut chunked = Vec::new();
        let mut scalar = Vec::new();
        select_indices(&mask, 100, &mut chunked);
        select_indices_scalar(&mask, 100, &mut scalar);
        assert_eq!(chunked, scalar);
        assert_eq!(chunked, vec![103, 108, 117]);
    }

    #[test]
    fn gather_and_pack_match_scalar() {
        let col = ids(&[10, 11, 12, 13, 14, 15, 16, 17, 18]);
        let rows: Vec<u32> = vec![8, 0, 3, 3, 7, 1, 2, 6, 5, 4];
        let (mut a, mut b) = (Vec::new(), Vec::new());
        gather_ids(&col, &rows, &mut a);
        gather_ids_scalar(&col, &rows, &mut b);
        assert_eq!(a, b);
        assert_eq!(a[0], ValueId::from_raw(18));

        let c0 = ids(&[1, 2, 3]);
        let c1 = ids(&[4, 5, 6]);
        let (mut p, mut q) = (Vec::new(), Vec::new());
        pack_keys(&[&c0, &c1], &mut p);
        pack_keys_scalar(&[&c0, &c1], &mut q);
        assert_eq!(p, q);
        assert_eq!(p, ids(&[1, 4, 2, 5, 3, 6]));
        // k == 0 and empty columns degenerate cleanly.
        pack_keys(&[], &mut p);
        assert!(p.is_empty());
    }
}
