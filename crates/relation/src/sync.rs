//! Poison-recovering lock acquisition for shared, multi-tenant state — and a
//! runtime **lock-order detector** over it.
//!
//! # Poison recovery
//!
//! The dictionary stripes and the trie cache are shared by every tenant of a
//! workspace.  A panicking worker thread elsewhere (isolated by
//! `catch_unwind`) may still have been holding one of these locks when it
//! unwound, which marks the lock *poisoned* — and a bare `.unwrap()` on the
//! next acquisition would then abort an unrelated tenant's evaluation.
//!
//! These helpers recover the guard instead.  **Why that is sound here**:
//! every critical section protecting cross-referencing state in this
//! codebase is written to be *panic-atomic* — either
//!
//! 1. the section only reads, or performs a single insert/remove whose
//!    partial effects cannot be observed (the map entry is written last,
//!    after any counters it must agree with — "ledger settlement happens
//!    before unlock, or the slot is dropped whole"), or
//! 2. the only panic sources inside the section are injected failpoints
//!    placed **before** the first mutation.
//!
//! Under that discipline a poisoned lock guards data that is still
//! consistent, so recovering the guard is strictly better than aborting:
//! the poison flag carries no information the invariants don't already
//! guarantee.
//!
//! Bare `.lock().unwrap()` / `.read().unwrap()` / `.write().unwrap()` (or
//! `.expect(..)`) on shared locks is therefore **forbidden everywhere outside
//! this module** — the `lock-discipline` pass of the in-repo analysis tool
//! (`cargo run -p ij-analysis -- check`) enforces it.
//!
//! # Lock classes and the order detector
//!
//! Every acquisition names its **lock class** — a caller-supplied
//! `&'static str` identifying the lock's role (`"dict-stripe"`,
//! `"trie-cache-map"`, …), not the individual lock instance.  In debug
//! builds (and release builds with the `lock-order` cargo feature) the
//! helpers record, per thread, which classes are currently held, and feed
//! every *nested* acquisition into a process-wide acquisition-order graph:
//! holding `A` while acquiring `B` records the edge `A → B`.  An acquisition
//! that would close a **cycle** in that graph — the classic inverted-order
//! deadlock, like the opposite-direction workspace-import deadlock this
//! engine once fixed by hand — panics *before blocking*, with both
//! conflicting acquisition backtraces (the stored stack that recorded the
//! inverse order and the current one).  See [`lock_order`].
//!
//! Same-class nesting (the 16 dictionary stripes pinned by `DictReader`) is
//! exempt: intra-class ordering is the call site's documented discipline
//! (stripes are always pinned in index order, and writers never hold two),
//! and a detector keyed by class names cannot distinguish instances.
//!
//! In release builds without the feature the bookkeeping compiles away: the
//! guards still carry a (zero-sized) token, but no thread-local or global
//! state is touched.
//!
//! # Example
//!
//! ```
//! use ij_relation::sync::{lock_recover, read_recover, write_recover};
//! use std::sync::{Mutex, RwLock};
//!
//! let m = Mutex::new(1);
//! let rw = RwLock::new(2);
//! assert_eq!(*lock_recover(&m, "doc-mutex"), 1);
//! assert_eq!(*read_recover(&rw, "doc-rwlock"), 2);
//! *write_recover(&rw, "doc-rwlock") += 1;
//! assert_eq!(*read_recover(&rw, "doc-rwlock"), 3);
//! ```

use std::ops::{Deref, DerefMut};
use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A lock guard wrapped with its lock-order bookkeeping token: dereferences
/// like the underlying guard, and unregisters its lock class from the
/// thread's held set when dropped (after the lock itself is released —
/// fields drop in declaration order).
pub struct Tracked<G> {
    guard: G,
    _held: lock_order::Held,
}

impl<G: Deref> Deref for Tracked<G> {
    type Target = G::Target;

    fn deref(&self) -> &Self::Target {
        &self.guard
    }
}

impl<G: DerefMut> DerefMut for Tracked<G> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.guard
    }
}

/// A tracked shared-read guard ([`read_recover`]).
pub type ReadGuard<'a, T> = Tracked<RwLockReadGuard<'a, T>>;

/// A tracked exclusive-write guard ([`write_recover`]).
pub type WriteGuard<'a, T> = Tracked<RwLockWriteGuard<'a, T>>;

/// A tracked mutex guard ([`lock_recover`]).
pub type LockGuard<'a, T> = Tracked<MutexGuard<'a, T>>;

/// Acquires a shared read guard, recovering from poison (see the
/// [module docs](self) for why recovery is sound).  `class` names the lock's
/// class for the [`lock_order`] detector.
pub fn read_recover<'a, T: ?Sized>(lock: &'a RwLock<T>, class: &'static str) -> ReadGuard<'a, T> {
    let held = lock_order::on_acquire(class);
    Tracked {
        guard: lock.read().unwrap_or_else(|e| e.into_inner()),
        _held: held,
    }
}

/// Acquires an exclusive write guard, recovering from poison (see the
/// [module docs](self) for why recovery is sound).  `class` names the lock's
/// class for the [`lock_order`] detector.
pub fn write_recover<'a, T: ?Sized>(lock: &'a RwLock<T>, class: &'static str) -> WriteGuard<'a, T> {
    let held = lock_order::on_acquire(class);
    Tracked {
        guard: lock.write().unwrap_or_else(|e| e.into_inner()),
        _held: held,
    }
}

/// Acquires a mutex guard, recovering from poison (see the
/// [module docs](self) for why recovery is sound).  `class` names the lock's
/// class for the [`lock_order`] detector.
pub fn lock_recover<'a, T: ?Sized>(lock: &'a Mutex<T>, class: &'static str) -> LockGuard<'a, T> {
    let held = lock_order::on_acquire(class);
    Tracked {
        guard: lock.lock().unwrap_or_else(|e| e.into_inner()),
        _held: held,
    }
}

/// The runtime lock-order (deadlock-potential) detector behind the
/// [`read_recover`] / [`write_recover`] / [`lock_recover`] helpers.
///
/// Active in debug builds and under the `lock-order` cargo feature
/// ([`enabled`](lock_order::enabled) reports which); a plain release build compiles all of it
/// away.  While active it maintains:
///
/// * a per-thread stack of currently-held lock **classes**;
/// * a global **acquisition-order graph**: one edge `A → B` per observed
///   "acquired class `B` while holding class `A`" pair, stamped with the
///   backtrace of the first acquisition that recorded it.
///
/// An acquisition whose new edge would close a cycle panics immediately —
/// *before* blocking on the lock, so a true two-thread deadlock in flight is
/// converted into a diagnostic on one of the threads while the other
/// proceeds.  The panic message contains the cycle's class path and both
/// conflicting backtraces.  The offending edge is still recorded, so
/// [`find_cycle`](lock_order::find_cycle) reports it afterwards (useful when the panic was swallowed
/// by a `catch_unwind` worker boundary) and the same inversion does not
/// panic a second time.
pub mod lock_order {
    /// `true` when the detector is compiled in and recording (debug builds,
    /// or any build with the `lock-order` cargo feature).
    pub const fn enabled() -> bool {
        cfg!(any(debug_assertions, feature = "lock-order"))
    }

    /// The bookkeeping token carried by a [`Tracked`](super::Tracked) guard:
    /// removes its class from the thread's held set on drop.  Zero-sized and
    /// inert when the detector is disabled.
    pub struct Held {
        #[cfg(any(debug_assertions, feature = "lock-order"))]
        class: &'static str,
    }

    #[cfg(any(debug_assertions, feature = "lock-order"))]
    pub(crate) fn on_acquire(class: &'static str) -> Held {
        imp::record_acquisition(class);
        Held { class }
    }

    #[cfg(not(any(debug_assertions, feature = "lock-order")))]
    pub(crate) fn on_acquire(_class: &'static str) -> Held {
        Held {}
    }

    #[cfg(any(debug_assertions, feature = "lock-order"))]
    impl Drop for Held {
        fn drop(&mut self) {
            imp::record_release(self.class);
        }
    }

    /// Every acquisition-order edge recorded so far, sorted; each pair
    /// `(a, b)` means "some thread acquired class `b` while holding class
    /// `a`".  Empty when the detector is disabled.
    pub fn snapshot() -> Vec<(&'static str, &'static str)> {
        #[cfg(any(debug_assertions, feature = "lock-order"))]
        {
            imp::snapshot()
        }
        #[cfg(not(any(debug_assertions, feature = "lock-order")))]
        {
            Vec::new()
        }
    }

    /// Every lock class acquired so far through the recover helpers, sorted.
    /// Empty when the detector is disabled.
    pub fn classes_seen() -> Vec<&'static str> {
        #[cfg(any(debug_assertions, feature = "lock-order"))]
        {
            imp::classes_seen()
        }
        #[cfg(not(any(debug_assertions, feature = "lock-order")))]
        {
            Vec::new()
        }
    }

    /// A cycle in the recorded acquisition-order graph, as the class path
    /// `[a, b, …, a]`, if one was ever recorded (the recording acquisition
    /// also panicked at the time; see the module docs).  `None` when the
    /// graph is acyclic or the detector is disabled.
    pub fn find_cycle() -> Option<Vec<&'static str>> {
        #[cfg(any(debug_assertions, feature = "lock-order"))]
        {
            imp::find_cycle()
        }
        #[cfg(not(any(debug_assertions, feature = "lock-order")))]
        {
            None
        }
    }

    #[cfg(any(debug_assertions, feature = "lock-order"))]
    mod imp {
        use std::cell::RefCell;
        use std::collections::{BTreeSet, HashMap, HashSet};
        use std::sync::{Arc, Mutex, OnceLock};

        struct Graph {
            /// `(held, acquired)` → backtrace of the acquisition that first
            /// recorded the edge.
            edges: HashMap<(&'static str, &'static str), Arc<str>>,
        }

        fn graph() -> &'static Mutex<Graph> {
            static GRAPH: OnceLock<Mutex<Graph>> = OnceLock::new();
            GRAPH.get_or_init(|| {
                Mutex::new(Graph {
                    edges: HashMap::new(),
                })
            })
        }

        fn seen() -> &'static Mutex<BTreeSet<&'static str>> {
            static SEEN: OnceLock<Mutex<BTreeSet<&'static str>>> = OnceLock::new();
            SEEN.get_or_init(|| Mutex::new(BTreeSet::new()))
        }

        thread_local! {
            /// Classes currently held by this thread, in acquisition order
            /// (a multiset: same-class nesting pushes repeatedly).
            static HELD: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
            /// Edges this thread already pushed to (or confirmed in) the
            /// global graph — the fast path that keeps steady-state
            /// acquisitions off the global mutex.
            static KNOWN: RefCell<HashSet<(&'static str, &'static str)>> =
                RefCell::new(HashSet::new());
            /// Classes this thread already reported to the global seen-set.
            static SEEN_LOCAL: RefCell<HashSet<&'static str>> = RefCell::new(HashSet::new());
        }

        pub(super) fn record_acquisition(class: &'static str) {
            // `try_with`: acquisitions during thread-local teardown are
            // invisible to the detector rather than aborting the process.
            let _ = SEEN_LOCAL.try_with(|local| {
                if local.borrow_mut().insert(class) {
                    seen()
                        .lock()
                        .unwrap_or_else(|e| e.into_inner())
                        .insert(class);
                }
            });
            let _ = HELD.try_with(|held| {
                let nested: Vec<&'static str> = held
                    .borrow()
                    .iter()
                    .copied()
                    .filter(|&h| h != class)
                    .collect();
                for h in nested {
                    note_edge(h, class);
                }
                held.borrow_mut().push(class);
            });
        }

        pub(super) fn record_release(class: &'static str) {
            let _ = HELD.try_with(|held| {
                let mut held = held.borrow_mut();
                if let Some(pos) = held.iter().rposition(|&c| c == class) {
                    held.remove(pos);
                }
            });
        }

        /// Records the edge `from → to`, panicking if it closes a cycle.
        fn note_edge(from: &'static str, to: &'static str) {
            let cached = KNOWN
                .try_with(|k| k.borrow().contains(&(from, to)))
                .unwrap_or(true);
            if cached {
                return;
            }
            let conflict = {
                let mut g = graph().lock().unwrap_or_else(|e| e.into_inner());
                if g.edges.contains_key(&(from, to)) {
                    None
                } else {
                    // A path `to →* from` plus the new edge is a cycle.
                    let path = path_between(&g.edges, to, from);
                    let prior = path
                        .as_ref()
                        .and_then(|p| g.edges.get(&(p[0], p[1])))
                        .cloned();
                    let stack: Arc<str> =
                        format!("{}", std::backtrace::Backtrace::force_capture()).into();
                    // Record even a cycle-closing edge: find_cycle() can then
                    // report it after a catch_unwind boundary swallowed the
                    // panic, and the same inversion never panics twice.
                    g.edges.insert((from, to), stack.clone());
                    path.map(|p| (p, prior, stack))
                }
            };
            let _ = KNOWN.try_with(|k| k.borrow_mut().insert((from, to)));
            if let Some((path, prior, stack)) = conflict {
                let chain = path.join("` → `");
                let prior = prior.as_deref().unwrap_or("<unavailable>");
                panic!(
                    "lock-order cycle: acquiring lock class `{to}` while holding `{from}`, \
                     but the opposite order `{chain}` is already recorded — a potential \
                     deadlock.\n\
                     --- earlier acquisition that recorded `{p0}` → `{p1}`:\n{prior}\n\
                     --- current acquisition of `{to}` (while holding `{from}`):\n{stack}",
                    p0 = path[0],
                    p1 = path[1],
                );
            }
        }

        /// A path `start →* goal` in the edge set, as the visited class
        /// list (length ≥ 2), if one exists.
        fn path_between(
            edges: &HashMap<(&'static str, &'static str), Arc<str>>,
            start: &'static str,
            goal: &'static str,
        ) -> Option<Vec<&'static str>> {
            // Depth-first over a graph of a handful of classes.
            fn dfs(
                edges: &HashMap<(&'static str, &'static str), Arc<str>>,
                here: &'static str,
                goal: &'static str,
                seen: &mut HashSet<&'static str>,
                path: &mut Vec<&'static str>,
            ) -> bool {
                path.push(here);
                if here == goal && path.len() > 1 {
                    return true;
                }
                for &(a, b) in edges.keys() {
                    if a == here && seen.insert(b) && dfs(edges, b, goal, seen, path) {
                        return true;
                    }
                }
                path.pop();
                false
            }
            let mut path = Vec::new();
            let mut seen = HashSet::new();
            seen.insert(start);
            if start == goal {
                // Self-cycles are excluded by construction (same-class
                // nesting records no edge).
                return None;
            }
            if dfs(edges, start, goal, &mut seen, &mut path) {
                Some(path)
            } else {
                None
            }
        }

        pub(super) fn snapshot() -> Vec<(&'static str, &'static str)> {
            let g = graph().lock().unwrap_or_else(|e| e.into_inner());
            let mut edges: Vec<_> = g.edges.keys().copied().collect();
            edges.sort_unstable();
            edges
        }

        pub(super) fn classes_seen() -> Vec<&'static str> {
            seen()
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .iter()
                .copied()
                .collect()
        }

        pub(super) fn find_cycle() -> Option<Vec<&'static str>> {
            let g = graph().lock().unwrap_or_else(|e| e.into_inner());
            // Probe every edge's head back to its tail: edge a → b plus a
            // path b →* a is a cycle through that edge.
            for &(a, b) in g.edges.keys() {
                if a == b {
                    continue;
                }
                if let Some(mut p) = path_between(&g.edges, b, a) {
                    p.push(b);
                    return Some(p);
                }
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn recovers_guards_after_a_panicking_holder() {
        let m = Arc::new(Mutex::new(10));
        let rw = Arc::new(RwLock::new(20));
        {
            let (m, rw) = (Arc::clone(&m), Arc::clone(&rw));
            let _ = std::thread::spawn(move || {
                let _mg = m.lock().unwrap();
                let _wg = rw.write().unwrap();
                panic!("poison both");
            })
            .join();
        }
        assert!(m.is_poisoned());
        assert!(rw.is_poisoned());
        assert_eq!(*lock_recover(&m, "poison-test-mutex"), 10);
        assert_eq!(*read_recover(&rw, "poison-test-rwlock"), 20);
        *write_recover(&rw, "poison-test-rwlock") += 1;
        assert_eq!(*read_recover(&rw, "poison-test-rwlock"), 21);
    }

    #[test]
    fn consistent_nesting_records_an_edge_and_stays_silent() {
        if !lock_order::enabled() {
            return;
        }
        let outer = Mutex::new(());
        let inner = Mutex::new(());
        for _ in 0..3 {
            let _o = lock_recover(&outer, "nest-outer");
            let _i = lock_recover(&inner, "nest-inner");
        }
        assert!(lock_order::snapshot().contains(&("nest-outer", "nest-inner")));
        assert!(lock_order::classes_seen().contains(&"nest-outer"));
        // Re-acquiring in the same order after release is not a cycle.
        let _o = lock_recover(&outer, "nest-outer");
    }

    #[test]
    fn same_class_nesting_is_exempt() {
        if !lock_order::enabled() {
            return;
        }
        // The dictionary pins all 16 same-class stripes at once; the
        // detector must not call that a self-deadlock.
        let stripes: Vec<RwLock<u32>> = (0..4).map(RwLock::new).collect();
        let guards: Vec<_> = stripes
            .iter()
            .map(|s| read_recover(s, "self-class-stripe"))
            .collect();
        assert_eq!(guards.iter().map(|g| **g).sum::<u32>(), 6);
        assert!(!lock_order::snapshot().contains(&("self-class-stripe", "self-class-stripe")));
    }

    #[test]
    fn detects_inverted_acquisition_order_across_threads() {
        if !lock_order::enabled() {
            return;
        }
        let a = Arc::new(Mutex::new(()));
        let b = Arc::new(Mutex::new(()));
        // Thread 1 records cyc-a → cyc-b and exits cleanly.
        {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            std::thread::spawn(move || {
                let _ga = lock_recover(&a, "cyc-a");
                let _gb = lock_recover(&b, "cyc-b");
            })
            .join()
            .expect("the forward order is clean");
        }
        // Thread 2 inverts the order: the second acquisition must panic
        // (before blocking) with both classes named.
        let payload = {
            let (a, b) = (Arc::clone(&a), Arc::clone(&b));
            std::thread::spawn(move || {
                let _gb = lock_recover(&b, "cyc-b");
                let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    let _ga = lock_recover(&a, "cyc-a");
                }))
                .expect_err("inverted order must panic");
                *err.downcast::<String>().expect("panic carries a message")
            })
            .join()
            .expect("the panic is caught inside the thread")
        };
        assert!(payload.contains("lock-order cycle"), "{payload}");
        assert!(payload.contains("`cyc-a`"), "{payload}");
        assert!(payload.contains("`cyc-b`"), "{payload}");
        assert!(payload.contains("current acquisition"), "{payload}");
        assert!(payload.contains("earlier acquisition"), "{payload}");
        // The cycle is durably recorded for post-hoc inspection…
        let cycle = lock_order::find_cycle().expect("cycle recorded");
        assert!(
            cycle.contains(&"cyc-a") && cycle.contains(&"cyc-b"),
            "{cycle:?}"
        );
        // …and the same inversion does not panic a second time (it is a
        // known edge now — first-occurrence reporting).
        let _gb = lock_recover(&b, "cyc-b");
        let _ga = lock_recover(&a, "cyc-a");
    }

    #[test]
    fn disabled_detector_reports_nothing() {
        if lock_order::enabled() {
            return;
        }
        let m = Mutex::new(5);
        assert_eq!(*lock_recover(&m, "disabled-probe"), 5);
        assert!(lock_order::snapshot().is_empty());
        assert!(lock_order::classes_seen().is_empty());
        assert!(lock_order::find_cycle().is_none());
    }
}
