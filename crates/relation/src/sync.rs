//! Poison-recovering lock acquisition for shared, multi-tenant state.
//!
//! The dictionary stripes and the trie cache are shared by every tenant of a
//! workspace.  A panicking worker thread elsewhere (isolated by
//! `catch_unwind`) may still have been holding one of these locks when it
//! unwound, which marks the lock *poisoned* — and a bare `.unwrap()` on the
//! next acquisition would then abort an unrelated tenant's evaluation.
//!
//! These helpers recover the guard instead.  **Why that is sound here**:
//! every critical section protecting cross-referencing state in this
//! codebase is written to be *panic-atomic* — either
//!
//! 1. the section only reads, or performs a single insert/remove whose
//!    partial effects cannot be observed (the map entry is written last,
//!    after any counters it must agree with — "ledger settlement happens
//!    before unlock, or the slot is dropped whole"), or
//! 2. the only panic sources inside the section are injected failpoints
//!    placed **before** the first mutation.
//!
//! Under that discipline a poisoned lock guards data that is still
//! consistent, so recovering the guard is strictly better than aborting:
//! the poison flag carries no information the invariants don't already
//! guarantee.
//!
//! # Example
//!
//! ```
//! use ij_relation::sync::{lock_recover, read_recover, write_recover};
//! use std::sync::{Mutex, RwLock};
//!
//! let m = Mutex::new(1);
//! let rw = RwLock::new(2);
//! assert_eq!(*lock_recover(&m), 1);
//! assert_eq!(*read_recover(&rw), 2);
//! *write_recover(&rw) += 1;
//! assert_eq!(*read_recover(&rw), 3);
//! ```

use std::sync::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Acquires a shared read guard, recovering from poison (see the
/// [module docs](self) for why recovery is sound).
pub fn read_recover<T: ?Sized>(lock: &RwLock<T>) -> RwLockReadGuard<'_, T> {
    lock.read().unwrap_or_else(|e| e.into_inner())
}

/// Acquires an exclusive write guard, recovering from poison (see the
/// [module docs](self) for why recovery is sound).
pub fn write_recover<T: ?Sized>(lock: &RwLock<T>) -> RwLockWriteGuard<'_, T> {
    lock.write().unwrap_or_else(|e| e.into_inner())
}

/// Acquires a mutex guard, recovering from poison (see the
/// [module docs](self) for why recovery is sound).
pub fn lock_recover<T: ?Sized>(lock: &Mutex<T>) -> MutexGuard<'_, T> {
    lock.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::{Arc, Mutex, RwLock};

    #[test]
    fn recovers_guards_after_a_panicking_holder() {
        let m = Arc::new(Mutex::new(10));
        let rw = Arc::new(RwLock::new(20));
        {
            let (m, rw) = (Arc::clone(&m), Arc::clone(&rw));
            let _ = std::thread::spawn(move || {
                let _mg = m.lock().unwrap();
                let _wg = rw.write().unwrap();
                panic!("poison both");
            })
            .join();
        }
        assert!(m.is_poisoned());
        assert!(rw.is_poisoned());
        assert_eq!(*lock_recover(&m), 10);
        assert_eq!(*read_recover(&rw), 20);
        *write_recover(&rw) += 1;
        assert_eq!(*read_recover(&rw), 21);
    }
}
