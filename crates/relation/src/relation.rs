//! Relations and databases.
//!
//! Relations are stored **columnar and interned**: each column is a dense
//! `Vec<ValueId>` into an interning dictionary, so join processing works on
//! `u32` ids and never touches a full [`Value`] after ingestion.  The
//! row-oriented API ([`Relation::push`], [`Relation::tuples`]) is kept as a
//! thin compatibility layer that interns / resolves at the boundary; hot
//! paths use the id-level API ([`Relation::column_ids`],
//! [`Relation::push_ids`], [`Relation::gather`], ...).
//!
//! Every relation (and database) carries the [`SharedDictionary`] handle its
//! ids point into.  The plain constructors ([`Relation::new`],
//! [`Database::new`], ...) use the process-global dictionary, preserving the
//! historical behaviour; the `*_in` variants ([`Relation::new_in`],
//! [`Database::new_in`], ...) intern into an explicit — typically
//! workspace-scoped — dictionary, so dropping the workspace reclaims the
//! interned values.  Ids are join-compatible exactly between relations that
//! share a dictionary; derived relations (projections, gathers, renames)
//! inherit their source's handle.

use crate::{SharedDictionary, Value, ValueId};
use ij_segtree::Interval;
use std::collections::BTreeMap;
use std::fmt;

/// Error raised by the fallible tuple-ingestion API when a row does not match
/// the relation arity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArityError {
    /// The relation name.
    pub relation: String,
    /// The expected arity.
    pub expected: usize,
    /// The arity of the offending row.
    pub found: usize,
    /// Index of the offending row within the ingested batch (0 for single
    /// pushes).
    pub row: usize,
}

impl fmt::Display for ArityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "tuple arity mismatch for relation {}: row {} has {} values, expected {}",
            self.relation, self.row, self.found, self.expected
        )
    }
}

impl std::error::Error for ArityError {}

/// A relation: a named multiset of tuples of fixed arity, stored as interned
/// id columns.
#[derive(Debug, Clone)]
pub struct Relation {
    name: String,
    arity: usize,
    columns: Columns,
    /// The dictionary the id columns point into; derived relations inherit
    /// it, so ids stay resolvable wherever the rows travel.
    dict: SharedDictionary,
    /// Lazily computed content fingerprint (see [`Relation::fingerprint_with`]);
    /// reset by every mutating method, excluded from equality.
    fingerprint: std::sync::OnceLock<(u64, u64)>,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Self) -> bool {
        // The fingerprint cache is derived state and must not affect
        // equality.  The dictionary handle is deliberately ignored too:
        // equality of id columns is only meaningful between relations of one
        // dictionary, and that is the only comparison callers make.
        self.name == other.name && self.arity == other.arity && self.columns == other.columns
    }
}

impl Eq for Relation {}

/// Columnar tuple storage: one dense [`ValueId`] vector per column.
///
/// The row count is tracked explicitly so zero-arity relations (which appear
/// as non-emptiness guards after projecting all columns away) still carry a
/// multiplicity.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Columns {
    len: usize,
    cols: Vec<Vec<ValueId>>,
}

impl Columns {
    /// Empty storage with `arity` columns.
    pub fn new(arity: usize) -> Self {
        Columns {
            len: 0,
            cols: vec![Vec::new(); arity],
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.cols.len()
    }

    /// The ids of one column.
    pub fn column(&self, index: usize) -> &[ValueId] {
        &self.cols[index]
    }

    /// Appends a row of ids.  Callers must have checked the arity.
    fn push_row(&mut self, row: &[ValueId]) {
        debug_assert_eq!(row.len(), self.cols.len());
        for (col, &id) in self.cols.iter_mut().zip(row) {
            col.push(id);
        }
        self.len += 1;
    }

    /// The id at (`row`, `col`).
    pub fn id_at(&self, row: usize, col: usize) -> ValueId {
        self.cols[col][row]
    }

    /// A borrowed view of the rows `start..end` (every column restricted to
    /// that row range).  Views are the unit of work for parallel scans: the
    /// sharded trie build of the join engine partitions a relation by handing
    /// disjoint row ranges to worker threads.
    ///
    /// # Panics
    ///
    /// Panics if `start > end` or `end > self.len()`.
    pub fn view(&self, start: usize, end: usize) -> ColumnsView<'_> {
        assert!(
            start <= end && end <= self.len,
            "row range {start}..{end} out of bounds for {} rows",
            self.len
        );
        ColumnsView {
            start,
            end,
            cols: &self.cols,
        }
    }

    /// Splits the rows into at most `num_chunks` contiguous views of
    /// near-equal size (the last chunks may be one row shorter).  Returns a
    /// single view of everything when `num_chunks <= 1`; never returns empty
    /// views except for an empty relation, which yields one empty view.
    pub fn chunks(&self, num_chunks: usize) -> Vec<ColumnsView<'_>> {
        let n = self.len;
        let k = num_chunks.max(1).min(n.max(1));
        let base = n / k;
        let extra = n % k;
        let mut views = Vec::with_capacity(k);
        let mut start = 0;
        for i in 0..k {
            let size = base + usize::from(i < extra);
            views.push(self.view(start, start + size));
            start += size;
        }
        views
    }
}

/// A borrowed row-range view over [`Columns`]: the columns of rows
/// `start..end` of the underlying storage, without copying.
///
/// Produced by [`Columns::view`] and [`Columns::chunks`]; consumed by
/// parallel scans that split one relation across worker threads (e.g. the
/// sharded trie build of the join engine).
#[derive(Debug, Clone, Copy)]
pub struct ColumnsView<'a> {
    start: usize,
    end: usize,
    cols: &'a [Vec<ValueId>],
}

impl<'a> ColumnsView<'a> {
    /// Number of rows in the view.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the view covers no rows.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// First row (inclusive) of the view in the underlying storage.
    pub fn start(&self) -> usize {
        self.start
    }

    /// Last row (exclusive) of the view in the underlying storage.
    pub fn end(&self) -> usize {
        self.end
    }

    /// The ids of one column, restricted to the view's row range.
    pub fn column(&self, index: usize) -> &'a [ValueId] {
        &self.cols[index][self.start..self.end]
    }

    /// The id at (`row`, `col`), with `row` relative to the view start.
    pub fn id_at(&self, row: usize, col: usize) -> ValueId {
        self.cols[col][self.start + row]
    }
}

impl Relation {
    /// Creates an empty relation with the given name and arity, interning
    /// into the process-global dictionary ([`Relation::new_in`] scopes it).
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        Relation::new_in(name, arity, SharedDictionary::global())
    }

    /// Creates an empty relation whose values intern into `dict` — typically
    /// a workspace-scoped dictionary, so the interned values die with the
    /// workspace instead of accreting in the process-global store.
    pub fn new_in(name: impl Into<String>, arity: usize, dict: &SharedDictionary) -> Self {
        Relation {
            name: name.into(),
            arity,
            columns: Columns::new(arity),
            dict: dict.clone(),
            fingerprint: std::sync::OnceLock::new(),
        }
    }

    /// Creates a relation from a list of tuples, validating that every row
    /// matches `arity`.  Values intern into the process-global dictionary
    /// ([`Relation::from_tuples_in`] scopes it).
    ///
    /// # Panics
    ///
    /// Panics with a message naming the relation, the offending row index and
    /// both arities if a row does not have exactly `arity` values.
    pub fn from_tuples(name: impl Into<String>, arity: usize, tuples: Vec<Vec<Value>>) -> Self {
        match Relation::try_from_tuples(name, arity, tuples) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// [`Relation::from_tuples`] interning into an explicit dictionary.
    ///
    /// # Panics
    ///
    /// Panics like [`Relation::from_tuples`] on a ragged row.
    pub fn from_tuples_in(
        name: impl Into<String>,
        arity: usize,
        tuples: Vec<Vec<Value>>,
        dict: &SharedDictionary,
    ) -> Self {
        match Relation::try_from_tuples_in(name, arity, tuples, dict) {
            Ok(r) => r,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Relation::from_tuples`]: returns an
    /// [`ArityError`] describing the first ragged row instead of panicking.
    pub fn try_from_tuples(
        name: impl Into<String>,
        arity: usize,
        tuples: Vec<Vec<Value>>,
    ) -> Result<Self, ArityError> {
        Relation::try_from_tuples_in(name, arity, tuples, SharedDictionary::global())
    }

    /// Fallible variant of [`Relation::from_tuples_in`].
    pub fn try_from_tuples_in(
        name: impl Into<String>,
        arity: usize,
        tuples: Vec<Vec<Value>>,
        dict: &SharedDictionary,
    ) -> Result<Self, ArityError> {
        let mut r = Relation::new_in(name, arity, dict);
        // Validate the whole batch before interning anything, so errors do
        // not leave a partially-filled relation behind.
        for (row, t) in tuples.iter().enumerate() {
            if t.len() != arity {
                return Err(ArityError {
                    relation: r.name.clone(),
                    expected: arity,
                    found: t.len(),
                    row,
                });
            }
        }
        // Interning locks per value (striped by value hash), so concurrent
        // ingestion of several relations proceeds in parallel.
        for t in &tuples {
            let ids: Vec<ValueId> = t.iter().map(|&v| r.dict.intern(v)).collect();
            r.columns.push_row(&ids);
        }
        Ok(r)
    }

    /// Builds a relation directly from already-interned id columns, all
    /// pointing into `dict` — the column-wise fast ingestion path used by
    /// `Workspace::import_database`, which re-interns a database one column
    /// at a time instead of materialising `Value` rows.
    ///
    /// `len` is the row count; it is explicit (rather than derived from the
    /// columns) so zero-arity relations keep their multiplicity.
    ///
    /// # Panics
    ///
    /// Panics if any column's length differs from `len`.
    pub fn from_id_columns_in(
        name: impl Into<String>,
        len: usize,
        cols: Vec<Vec<ValueId>>,
        dict: &SharedDictionary,
    ) -> Self {
        let name = name.into();
        for (i, col) in cols.iter().enumerate() {
            assert_eq!(
                col.len(),
                len,
                "column {i} of relation {name} has {} rows, expected {len}",
                col.len()
            );
        }
        Relation {
            name,
            arity: cols.len(),
            columns: Columns { len, cols },
            dict: dict.clone(),
            fingerprint: std::sync::OnceLock::new(),
        }
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The dictionary this relation's id columns point into.
    pub fn dictionary(&self) -> &SharedDictionary {
        &self.dict
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The tuples, materialised as rows of [`Value`]s.
    ///
    /// This is the row-compatibility layer over the columnar storage: it
    /// resolves every id against the relation's dictionary and allocates
    /// fresh rows, so hot paths should use [`Relation::column_ids`] /
    /// [`Relation::id_at`] instead and callers looping over the result should
    /// hoist the call out of the loop.
    pub fn tuples(&self) -> Vec<Vec<Value>> {
        let dict = self.dict.reader();
        (0..self.len())
            .map(|row| {
                self.columns
                    .cols
                    .iter()
                    .map(|col| dict.resolve(col[row]))
                    .collect()
            })
            .collect()
    }

    /// One tuple, materialised.
    pub fn row(&self, row: usize) -> Vec<Value> {
        let dict = self.dict.reader();
        self.columns
            .cols
            .iter()
            .map(|col| dict.resolve(col[row]))
            .collect()
    }

    /// The value at (`row`, `col`).
    pub fn value_at(&self, row: usize, col: usize) -> Value {
        self.dict.resolve(self.columns.id_at(row, col))
    }

    /// The interned ids of one column.
    pub fn column_ids(&self, index: usize) -> &[ValueId] {
        self.columns.column(index)
    }

    /// The id at (`row`, `col`).
    pub fn id_at(&self, row: usize, col: usize) -> ValueId {
        self.columns.id_at(row, col)
    }

    /// The columnar storage.
    pub fn columns(&self) -> &Columns {
        &self.columns
    }

    /// The relation's cached content fingerprint, computed with `compute` on
    /// first use and memoized until the next mutation (`push*`, `dedup`).
    ///
    /// `compute` must be a pure function of the *columns* (arity, row count,
    /// ids) — not of the name: [`Relation::renamed`] shares the cached value
    /// with the original.  The trie cache of the join engine uses this to
    /// avoid re-hashing a relation's columns on every cache lookup.
    pub fn fingerprint_with(&self, compute: impl FnOnce(&Relation) -> (u64, u64)) -> (u64, u64) {
        *self.fingerprint.get_or_init(|| compute(self))
    }

    /// Appends a tuple of values (interning each one).
    ///
    /// # Panics
    ///
    /// Panics if the tuple arity does not match the relation arity.
    pub fn push(&mut self, tuple: Vec<Value>) {
        match self.try_push(tuple) {
            Ok(()) => {}
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible variant of [`Relation::push`].
    pub fn try_push(&mut self, tuple: Vec<Value>) -> Result<(), ArityError> {
        if tuple.len() != self.arity {
            return Err(ArityError {
                relation: self.name.clone(),
                expected: self.arity,
                found: tuple.len(),
                row: self.len(),
            });
        }
        let ids: Vec<ValueId> = tuple.iter().map(|&v| self.dict.intern(v)).collect();
        self.columns.push_row(&ids);
        self.fingerprint = std::sync::OnceLock::new();
        Ok(())
    }

    /// Appends a row of already-interned ids (the fast ingestion path used by
    /// the forward reduction and the join engine).
    ///
    /// # Panics
    ///
    /// Panics if the row length does not match the relation arity.
    pub fn push_ids(&mut self, row: &[ValueId]) {
        assert_eq!(
            row.len(),
            self.arity,
            "tuple arity mismatch for relation {}: id row has {} values, expected {}",
            self.name,
            row.len(),
            self.arity
        );
        self.columns.push_row(row);
        self.fingerprint = std::sync::OnceLock::new();
    }

    /// Sorts the tuples (by value order) and removes duplicates (set
    /// semantics).
    pub fn dedup(&mut self) {
        let n = self.len();
        if n <= 1 {
            return;
        }
        self.fingerprint = std::sync::OnceLock::new();
        if self.arity == 0 {
            // All zero-arity rows are identical.
            self.columns.len = 1;
            return;
        }
        // Sort row indices by the resolved value order (id order is interning
        // order, which would not be deterministic across construction paths).
        let resolved: Vec<Vec<Value>> = {
            let dict = self.dict.reader();
            self.columns
                .cols
                .iter()
                .map(|col| col.iter().map(|&id| dict.resolve(id)).collect())
                .collect()
        };
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_unstable_by(|&a, &b| {
            for col in &resolved {
                match col[a].cmp(&col[b]) {
                    std::cmp::Ordering::Equal => continue,
                    other => return other,
                }
            }
            std::cmp::Ordering::Equal
        });
        order.dedup_by(|a, b| {
            let (a, b) = (*a, *b);
            self.columns.cols.iter().all(|col| col[a] == col[b])
        });
        self.columns = gather_columns(&self.columns, &order);
    }

    /// Projects the relation onto the given column indices (keeping
    /// duplicates; call [`Relation::dedup`] afterwards for set semantics).
    pub fn project(&self, columns: &[usize], name: impl Into<String>) -> Relation {
        let cols: Vec<Vec<ValueId>> = columns
            .iter()
            .map(|&c| self.columns.cols[c].clone())
            .collect();
        Relation {
            name: name.into(),
            arity: columns.len(),
            columns: Columns {
                len: self.len(),
                cols,
            },
            dict: self.dict.clone(),
            fingerprint: std::sync::OnceLock::new(),
        }
    }

    /// A copy of the relation under a new name (columns are cloned wholesale,
    /// no per-row work).
    pub fn renamed(&self, name: impl Into<String>) -> Relation {
        Relation {
            name: name.into(),
            arity: self.arity,
            columns: self.columns.clone(),
            dict: self.dict.clone(),
            // Same columns, so the already-computed fingerprint carries over.
            fingerprint: self.fingerprint.clone(),
        }
    }

    /// Keeps the rows at the given indices, in the given order.
    pub fn gather(&self, rows: &[usize], name: impl Into<String>) -> Relation {
        Relation {
            name: name.into(),
            arity: self.arity,
            columns: gather_columns(&self.columns, rows),
            dict: self.dict.clone(),
            fingerprint: std::sync::OnceLock::new(),
        }
    }

    /// [`Relation::gather`] over `u32` row indices (the index width produced
    /// by the scan kernels), gathered column-wise with
    /// [`kernels::gather_ids`](crate::kernels::gather_ids).
    pub fn gather32(&self, rows: &[u32], name: impl Into<String>) -> Relation {
        let cols: Vec<Vec<ValueId>> = self
            .columns
            .cols
            .iter()
            .map(|col| {
                let mut out = Vec::new();
                crate::kernels::gather_ids(col, rows, &mut out);
                out
            })
            .collect();
        Relation {
            name: name.into(),
            arity: self.arity,
            columns: Columns {
                len: rows.len(),
                cols,
            },
            dict: self.dict.clone(),
            fingerprint: std::sync::OnceLock::new(),
        }
    }

    /// An iterator over the values of a single column.
    ///
    /// Resolves the whole column eagerly (one dictionary read lock, one
    /// `Vec` allocation) before yielding — cheap relative to any per-element
    /// resolve loop, but not free: hoist out of loops and prefer
    /// [`Relation::column_ids`] when ids suffice.
    pub fn column(&self, index: usize) -> impl Iterator<Item = Value> + '_ {
        let dict = self.dict.reader();
        let values: Vec<Value> = self.columns.cols[index]
            .iter()
            .map(|&id| dict.resolve(id))
            .collect();
        values.into_iter()
    }
}

/// Row-gather over columnar storage.
fn gather_columns(columns: &Columns, rows: &[usize]) -> Columns {
    let cols: Vec<Vec<ValueId>> = columns
        .cols
        .iter()
        .map(|col| rows.iter().map(|&r| col[r]).collect())
        .collect();
    Columns {
        len: rows.len(),
        cols,
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}({} tuples, arity {})",
            self.name,
            self.len(),
            self.arity
        )
    }
}

/// A database: a collection of named relations, plus the dictionary handle
/// relations added through [`Database::insert_tuples`] intern into.
#[derive(Debug, Clone)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
    dict: SharedDictionary,
}

impl Default for Database {
    fn default() -> Self {
        Database::new()
    }
}

impl PartialEq for Database {
    /// Content equality: the relations, by name.  The dictionary handle is
    /// ignored, like in [`Relation`]'s equality.
    fn eq(&self, other: &Self) -> bool {
        self.relations == other.relations
    }
}

impl Database {
    /// Creates an empty database whose relations intern into the
    /// process-global dictionary ([`Database::new_in`] scopes it).
    pub fn new() -> Self {
        Database::new_in(SharedDictionary::global().clone())
    }

    /// Creates an empty database interning into an explicit — typically
    /// workspace-scoped — dictionary.  The forward reduction writes its
    /// transformed database into the same dictionary as its input database,
    /// so evaluation of a scoped database never touches the global store.
    pub fn new_in(dict: SharedDictionary) -> Self {
        Database {
            relations: BTreeMap::new(),
            dict,
        }
    }

    /// The dictionary relations of this database intern into.
    pub fn dictionary(&self) -> &SharedDictionary {
        &self.dict
    }

    /// Inserts (or replaces) a relation.  The relation keeps its own
    /// dictionary handle; for the ids to be join-compatible with the rest of
    /// the database it must be the database's dictionary.
    ///
    /// # Panics
    ///
    /// Panics if the relation interns into a different dictionary than this
    /// database: equal ids from unrelated dictionaries denote unrelated
    /// values, so letting the mix through would silently corrupt every join
    /// touching the relation.  The check is one pointer comparison, so it is
    /// enforced in release builds too.
    pub fn insert(&mut self, relation: Relation) {
        assert!(
            relation.dictionary() == self.dictionary(),
            "relation `{}` interns into a different dictionary than its database \
             (build it from the same workspace, or re-intern it via import)",
            relation.name()
        );
        self.relations.insert(relation.name().to_string(), relation);
    }

    /// Adds a relation built from tuples, interned into the database's
    /// dictionary.
    ///
    /// # Panics
    ///
    /// Panics with a message naming the relation and the offending row if the
    /// tuples do not all have exactly `arity` values.
    pub fn insert_tuples(&mut self, name: &str, arity: usize, tuples: Vec<Vec<Value>>) {
        self.insert(Relation::from_tuples_in(name, arity, tuples, &self.dict));
    }

    /// Fallible variant of [`Database::insert_tuples`].
    pub fn try_insert_tuples(
        &mut self,
        name: &str,
        arity: usize,
        tuples: Vec<Vec<Value>>,
    ) -> Result<(), ArityError> {
        self.insert(Relation::try_from_tuples_in(
            name, arity, tuples, &self.dict,
        )?);
        Ok(())
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Mutable lookup.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    /// All relations (sorted by name).
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Relation names.
    pub fn relation_names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Total number of tuples across all relations (the database size `N`).
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// The distinct-left-endpoint transformation of Appendix G.1: shifts the
    /// intervals of the `i`-th relation (in the supplied order, 1-based) by
    /// `+i·ε` on the left endpoint and `+n·ε` on the right endpoint, where
    /// `ε` is small enough not to change any intersection relationship.
    /// After the transformation any two intervals from *different* relations
    /// have distinct left endpoints while every intersection join result is
    /// preserved.
    ///
    /// Relations named in `order` must exist; relations not named are left
    /// untouched.
    pub fn shift_left_endpoints(&mut self, order: &[&str]) {
        let n = order.len();
        if n == 0 {
            return;
        }
        // ε must satisfy n·ε < the smallest positive distance between any two
        // distinct endpoint values.
        let mut endpoints: Vec<f64> = Vec::new();
        for name in order {
            if let Some(rel) = self.relations.get(*name) {
                for t in rel.tuples() {
                    for v in t {
                        if let Some(iv) = v.as_interval() {
                            endpoints.push(iv.lo());
                            endpoints.push(iv.hi());
                        }
                    }
                }
            }
        }
        endpoints.sort_by(f64::total_cmp);
        endpoints.dedup();
        let mut min_gap = f64::INFINITY;
        for w in endpoints.windows(2) {
            let gap = w[1] - w[0];
            if gap > 0.0 && gap < min_gap {
                min_gap = gap;
            }
        }
        if !min_gap.is_finite() {
            min_gap = 1.0;
        }
        let eps = min_gap / (2.0 * (n as f64 + 1.0));

        for (i, name) in order.iter().enumerate() {
            let index = (i + 1) as f64;
            if let Some(rel) = self.relations.get_mut(*name) {
                let arity = rel.arity();
                let tuples: Vec<Vec<Value>> = rel
                    .tuples()
                    .iter()
                    .map(|t| {
                        t.iter()
                            .map(|v| match v.as_interval() {
                                Some(iv) => Value::Interval(iv.shift(index * eps, n as f64 * eps)),
                                None => *v,
                            })
                            .collect()
                    })
                    .collect();
                let dict = rel.dictionary().clone();
                *rel = Relation::from_tuples_in(rel.name().to_string(), arity, tuples, &dict);
            }
        }
    }

    /// Collects every interval value appearing in the given column of the
    /// given relations — the interval set `I` over which the forward
    /// reduction builds a segment tree for one interval variable.
    pub fn collect_intervals(&self, sources: &[(&str, usize)]) -> Vec<Interval> {
        let mut out = Vec::new();
        for (name, column) in sources {
            if let Some(rel) = self.relations.get(*name) {
                for v in rel.column(*column) {
                    if let Some(iv) = v.as_interval() {
                        out.push(iv);
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in self.relations.values() {
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Value {
        Value::interval(lo, hi)
    }

    #[test]
    fn relation_basics() {
        let mut r = Relation::new("R", 2);
        r.push(vec![iv(0.0, 1.0), iv(2.0, 3.0)]);
        r.push(vec![iv(0.0, 1.0), iv(2.0, 3.0)]);
        assert_eq!(r.len(), 2);
        r.dedup();
        assert_eq!(r.len(), 1);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.column(0).count(), 1);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_is_rejected() {
        let mut r = Relation::new("R", 2);
        r.push(vec![iv(0.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn ragged_from_tuples_is_rejected() {
        let _ = Relation::from_tuples(
            "R",
            2,
            vec![vec![iv(0.0, 1.0), iv(2.0, 3.0)], vec![iv(0.0, 1.0)]],
        );
    }

    #[test]
    fn try_from_tuples_reports_the_offending_row() {
        let err = Relation::try_from_tuples(
            "R",
            2,
            vec![vec![iv(0.0, 1.0), iv(2.0, 3.0)], vec![iv(0.0, 1.0)], vec![]],
        )
        .unwrap_err();
        assert_eq!(err.relation, "R");
        assert_eq!(err.expected, 2);
        assert_eq!(err.found, 1);
        assert_eq!(err.row, 1);
        assert!(err.to_string().contains("row 1"));
        // Errors are detected before anything is ingested.
        let mut db = Database::new();
        assert!(db
            .try_insert_tuples("R", 2, vec![vec![iv(0.0, 1.0)]])
            .is_err());
        assert!(db.relation("R").is_none());
    }

    #[test]
    fn interned_columns_expose_ids() {
        let r = Relation::from_tuples(
            "R",
            2,
            vec![
                vec![Value::point(1.0), Value::point(2.0)],
                vec![Value::point(1.0), Value::point(3.0)],
            ],
        );
        // The repeated value 1.0 gets the same id in both rows.
        assert_eq!(r.column_ids(0)[0], r.column_ids(0)[1]);
        assert_ne!(r.column_ids(1)[0], r.column_ids(1)[1]);
        assert_eq!(r.id_at(1, 1).resolve(), Value::point(3.0));
        assert_eq!(r.value_at(0, 1), Value::point(2.0));
        // Gather keeps the selected rows in order.
        let g = r.gather(&[1, 0], "G");
        assert_eq!(g.tuples()[0], vec![Value::point(1.0), Value::point(3.0)]);
        assert_eq!(g.tuples()[1], vec![Value::point(1.0), Value::point(2.0)]);
    }

    #[test]
    fn fingerprint_cache_memoizes_and_invalidates_on_mutation() {
        let mut r = Relation::new("R", 1);
        r.push(vec![Value::point(1.0)]);
        assert_eq!(r.fingerprint_with(|_| (1, 1)), (1, 1));
        // Memoized: a different closure is not called again.
        assert_eq!(r.fingerprint_with(|_| (2, 2)), (1, 1));
        r.push(vec![Value::point(2.0)]);
        assert_eq!(r.fingerprint_with(|_| (3, 3)), (3, 3));
        r.dedup();
        assert_eq!(r.fingerprint_with(|_| (4, 4)), (4, 4));
        // Renaming shares the cached value; equality ignores the cache.
        let s = r.renamed("S");
        assert_eq!(s.fingerprint_with(|_| (5, 5)), (4, 4));
        let mut fresh = Relation::new("R", 1);
        fresh.push(vec![Value::point(1.0)]);
        fresh.push(vec![Value::point(2.0)]);
        assert_eq!(r, fresh);
    }

    #[test]
    fn column_views_cover_the_rows_exactly_once() {
        let r = Relation::from_tuples(
            "R",
            2,
            (0..7)
                .map(|i| vec![Value::point(i as f64), Value::point(-(i as f64))])
                .collect(),
        );
        for k in [1usize, 2, 3, 7, 9] {
            let views = r.columns().chunks(k);
            assert_eq!(views.len(), k.min(7));
            assert!(views.iter().all(|v| !v.is_empty()));
            let mut covered = 0;
            for v in &views {
                assert_eq!(v.start(), covered);
                assert_eq!(v.column(0), &r.column_ids(0)[v.start()..v.end()]);
                assert_eq!(v.id_at(0, 1), r.id_at(v.start(), 1));
                covered = v.end();
            }
            assert_eq!(covered, r.len());
        }
        // An empty relation yields one empty view.
        let empty = Relation::new("E", 2);
        let views = empty.columns().chunks(4);
        assert_eq!(views.len(), 1);
        assert!(views[0].is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn column_view_out_of_bounds_panics() {
        let r = Relation::new("R", 1);
        let _ = r.columns().view(0, 1);
    }

    #[test]
    fn from_id_columns_builds_without_re_interning() {
        let dict = SharedDictionary::new();
        let a = dict.intern(Value::point(1.0));
        let b = dict.intern(Value::point(2.0));
        let r = Relation::from_id_columns_in("R", 2, vec![vec![a, a], vec![b, a]], &dict);
        assert_eq!(r.len(), 2);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.dictionary(), &dict);
        assert_eq!(r.tuples()[1], vec![Value::point(1.0), Value::point(1.0)]);
        // Zero-arity relations keep their explicit multiplicity.
        let guard = Relation::from_id_columns_in("E", 3, vec![], &dict);
        assert_eq!(guard.len(), 3);
        assert_eq!(guard.arity(), 0);
    }

    #[test]
    #[should_panic(expected = "expected 2")]
    fn from_id_columns_rejects_ragged_columns() {
        let dict = SharedDictionary::new();
        let a = dict.intern(Value::point(1.0));
        let _ = Relation::from_id_columns_in("R", 2, vec![vec![a], vec![a, a]], &dict);
    }

    #[test]
    fn zero_arity_relations_track_multiplicity() {
        let mut r = Relation::new("E", 0);
        assert!(r.is_empty());
        r.push(vec![]);
        r.push(vec![]);
        assert_eq!(r.len(), 2);
        r.dedup();
        assert_eq!(r.len(), 1);
        assert_eq!(r.tuples(), vec![Vec::<Value>::new()]);
    }

    #[test]
    fn projection_keeps_selected_columns() {
        let r = Relation::from_tuples(
            "R",
            3,
            vec![
                vec![Value::point(1.0), Value::point(2.0), Value::point(3.0)],
                vec![Value::point(4.0), Value::point(5.0), Value::point(6.0)],
            ],
        );
        let p = r.project(&[2, 0], "P");
        assert_eq!(p.arity(), 2);
        assert_eq!(p.tuples()[0], vec![Value::point(3.0), Value::point(1.0)]);
        assert_eq!(p.tuples()[1], vec![Value::point(6.0), Value::point(4.0)]);
    }

    #[test]
    fn database_insert_and_lookup() {
        let mut db = Database::new();
        db.insert_tuples("R", 2, vec![vec![iv(0.0, 1.0), iv(0.0, 2.0)]]);
        db.insert_tuples("S", 1, vec![vec![iv(0.0, 1.0)], vec![iv(5.0, 6.0)]]);
        assert_eq!(db.num_relations(), 2);
        assert_eq!(db.total_tuples(), 3);
        assert_eq!(db.relation("R").unwrap().arity(), 2);
        assert!(db.relation("T").is_none());
        assert_eq!(db.relation_names(), vec!["R".to_string(), "S".to_string()]);
    }

    #[test]
    fn collect_intervals_gathers_the_right_columns() {
        let mut db = Database::new();
        db.insert_tuples("R", 2, vec![vec![iv(0.0, 1.0), iv(10.0, 11.0)]]);
        db.insert_tuples("S", 1, vec![vec![iv(5.0, 6.0)]]);
        let intervals = db.collect_intervals(&[("R", 0), ("S", 0)]);
        assert_eq!(intervals.len(), 2);
        assert!(intervals.contains(&Interval::new(0.0, 1.0)));
        assert!(intervals.contains(&Interval::new(5.0, 6.0)));
    }

    #[test]
    fn shift_left_endpoints_preserves_intersections() {
        // R and S each hold one interval per tuple; verify that intersection
        // relationships across relations are unchanged and that left
        // endpoints become pairwise distinct across relations.
        let r_ivs = [
            Interval::new(0.0, 2.0),
            Interval::new(3.0, 5.0),
            Interval::new(2.0, 3.0),
        ];
        let s_ivs = [
            Interval::new(2.0, 4.0),
            Interval::new(0.0, 0.5),
            Interval::new(5.0, 7.0),
        ];
        let mut db = Database::new();
        db.insert_tuples(
            "R",
            1,
            r_ivs.iter().map(|&i| vec![Value::Interval(i)]).collect(),
        );
        db.insert_tuples(
            "S",
            1,
            s_ivs.iter().map(|&i| vec![Value::Interval(i)]).collect(),
        );
        db.shift_left_endpoints(&["R", "S"]);

        let r_new: Vec<Interval> = db
            .relation("R")
            .unwrap()
            .column(0)
            .map(|v| v.as_interval().unwrap())
            .collect();
        let s_new: Vec<Interval> = db
            .relation("S")
            .unwrap()
            .column(0)
            .map(|v| v.as_interval().unwrap())
            .collect();
        for (i, &r_old) in r_ivs.iter().enumerate() {
            for (j, &s_old) in s_ivs.iter().enumerate() {
                assert_eq!(
                    r_old.intersects(s_old),
                    r_new[i].intersects(s_new[j]),
                    "intersection changed for R[{i}], S[{j}]"
                );
            }
        }
        // Left endpoints are now distinct across the two relations.
        for r in &r_new {
            for s in &s_new {
                assert_ne!(r.lo(), s.lo());
            }
        }
    }

    #[test]
    fn shift_left_endpoints_handles_empty_order_and_missing_relations() {
        let mut db = Database::new();
        db.insert_tuples("R", 1, vec![vec![iv(0.0, 1.0)]]);
        let before = db.clone();
        db.shift_left_endpoints(&[]);
        assert_eq!(db, before);
        db.shift_left_endpoints(&["Missing"]);
        assert_eq!(db.relation("R").unwrap().len(), 1);
    }
}
