//! Relations and databases.

use crate::Value;
use ij_segtree::Interval;
use std::collections::BTreeMap;
use std::fmt;

/// A relation: a named multiset of tuples of fixed arity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Relation {
    name: String,
    arity: usize,
    tuples: Vec<Vec<Value>>,
}

impl Relation {
    /// Creates an empty relation with the given name and arity.
    pub fn new(name: impl Into<String>, arity: usize) -> Self {
        Relation { name: name.into(), arity, tuples: Vec::new() }
    }

    /// Creates a relation from a list of tuples.
    ///
    /// # Panics
    ///
    /// Panics if the tuples do not all have the same arity.
    pub fn from_tuples(name: impl Into<String>, arity: usize, tuples: Vec<Vec<Value>>) -> Self {
        let mut r = Relation::new(name, arity);
        for t in tuples {
            r.push(t);
        }
        r
    }

    /// The relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of attributes.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// The tuples.
    pub fn tuples(&self) -> &[Vec<Value>] {
        &self.tuples
    }

    /// Appends a tuple.
    ///
    /// # Panics
    ///
    /// Panics if the tuple arity does not match the relation arity.
    pub fn push(&mut self, tuple: Vec<Value>) {
        assert_eq!(tuple.len(), self.arity, "tuple arity mismatch for relation {}", self.name);
        self.tuples.push(tuple);
    }

    /// Sorts the tuples and removes duplicates (set semantics).
    pub fn dedup(&mut self) {
        self.tuples.sort_unstable();
        self.tuples.dedup();
    }

    /// Projects the relation onto the given column indices (keeping
    /// duplicates; call [`Relation::dedup`] afterwards for set semantics).
    pub fn project(&self, columns: &[usize], name: impl Into<String>) -> Relation {
        let mut out = Relation::new(name, columns.len());
        for t in &self.tuples {
            out.push(columns.iter().map(|&c| t[c]).collect());
        }
        out
    }

    /// An iterator over the values of a single column.
    pub fn column(&self, index: usize) -> impl Iterator<Item = Value> + '_ {
        self.tuples.iter().map(move |t| t[index])
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}({} tuples, arity {})", self.name, self.tuples.len(), self.arity)
    }
}

/// A database: a collection of named relations.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Database {
    relations: BTreeMap<String, Relation>,
}

impl Database {
    /// Creates an empty database.
    pub fn new() -> Self {
        Database::default()
    }

    /// Inserts (or replaces) a relation.
    pub fn insert(&mut self, relation: Relation) {
        self.relations.insert(relation.name().to_string(), relation);
    }

    /// Adds a relation built from tuples.
    pub fn insert_tuples(&mut self, name: &str, arity: usize, tuples: Vec<Vec<Value>>) {
        self.insert(Relation::from_tuples(name, arity, tuples));
    }

    /// Looks up a relation by name.
    pub fn relation(&self, name: &str) -> Option<&Relation> {
        self.relations.get(name)
    }

    /// Mutable lookup.
    pub fn relation_mut(&mut self, name: &str) -> Option<&mut Relation> {
        self.relations.get_mut(name)
    }

    /// All relations (sorted by name).
    pub fn relations(&self) -> impl Iterator<Item = &Relation> {
        self.relations.values()
    }

    /// Relation names.
    pub fn relation_names(&self) -> Vec<String> {
        self.relations.keys().cloned().collect()
    }

    /// Number of relations.
    pub fn num_relations(&self) -> usize {
        self.relations.len()
    }

    /// Total number of tuples across all relations (the database size `N`).
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(|r| r.len()).sum()
    }

    /// The distinct-left-endpoint transformation of Appendix G.1: shifts the
    /// intervals of the `i`-th relation (in the supplied order, 1-based) by
    /// `+i·ε` on the left endpoint and `+n·ε` on the right endpoint, where
    /// `ε` is small enough not to change any intersection relationship.
    /// After the transformation any two intervals from *different* relations
    /// have distinct left endpoints while every intersection join result is
    /// preserved.
    ///
    /// Relations named in `order` must exist; relations not named are left
    /// untouched.
    pub fn shift_left_endpoints(&mut self, order: &[&str]) {
        let n = order.len();
        if n == 0 {
            return;
        }
        // ε must satisfy n·ε < the smallest positive distance between any two
        // distinct endpoint values.
        let mut endpoints: Vec<f64> = Vec::new();
        for name in order {
            if let Some(rel) = self.relations.get(*name) {
                for t in rel.tuples() {
                    for v in t {
                        if let Some(iv) = v.as_interval() {
                            endpoints.push(iv.lo());
                            endpoints.push(iv.hi());
                        }
                    }
                }
            }
        }
        endpoints.sort_by(f64::total_cmp);
        endpoints.dedup();
        let mut min_gap = f64::INFINITY;
        for w in endpoints.windows(2) {
            let gap = w[1] - w[0];
            if gap > 0.0 && gap < min_gap {
                min_gap = gap;
            }
        }
        if !min_gap.is_finite() {
            min_gap = 1.0;
        }
        let eps = min_gap / (2.0 * (n as f64 + 1.0));

        for (i, name) in order.iter().enumerate() {
            let index = (i + 1) as f64;
            if let Some(rel) = self.relations.get_mut(*name) {
                let arity = rel.arity();
                let tuples: Vec<Vec<Value>> = rel
                    .tuples()
                    .iter()
                    .map(|t| {
                        t.iter()
                            .map(|v| match v.as_interval() {
                                Some(iv) => {
                                    Value::Interval(iv.shift(index * eps, n as f64 * eps))
                                }
                                None => *v,
                            })
                            .collect()
                    })
                    .collect();
                *rel = Relation::from_tuples(rel.name().to_string(), arity, tuples);
            }
        }
    }

    /// Collects every interval value appearing in the given column of the
    /// given relations — the interval set `I` over which the forward
    /// reduction builds a segment tree for one interval variable.
    pub fn collect_intervals(&self, sources: &[(&str, usize)]) -> Vec<Interval> {
        let mut out = Vec::new();
        for (name, column) in sources {
            if let Some(rel) = self.relations.get(*name) {
                for t in rel.tuples() {
                    if let Some(iv) = t[*column].as_interval() {
                        out.push(iv);
                    }
                }
            }
        }
        out
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in self.relations.values() {
            write!(f, "{r}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(lo: f64, hi: f64) -> Value {
        Value::interval(lo, hi)
    }

    #[test]
    fn relation_basics() {
        let mut r = Relation::new("R", 2);
        r.push(vec![iv(0.0, 1.0), iv(2.0, 3.0)]);
        r.push(vec![iv(0.0, 1.0), iv(2.0, 3.0)]);
        assert_eq!(r.len(), 2);
        r.dedup();
        assert_eq!(r.len(), 1);
        assert_eq!(r.arity(), 2);
        assert_eq!(r.column(0).count(), 1);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_mismatch_is_rejected() {
        let mut r = Relation::new("R", 2);
        r.push(vec![iv(0.0, 1.0)]);
    }

    #[test]
    fn projection_keeps_selected_columns() {
        let r = Relation::from_tuples(
            "R",
            3,
            vec![
                vec![Value::point(1.0), Value::point(2.0), Value::point(3.0)],
                vec![Value::point(4.0), Value::point(5.0), Value::point(6.0)],
            ],
        );
        let p = r.project(&[2, 0], "P");
        assert_eq!(p.arity(), 2);
        assert_eq!(p.tuples()[0], vec![Value::point(3.0), Value::point(1.0)]);
        assert_eq!(p.tuples()[1], vec![Value::point(6.0), Value::point(4.0)]);
    }

    #[test]
    fn database_insert_and_lookup() {
        let mut db = Database::new();
        db.insert_tuples("R", 2, vec![vec![iv(0.0, 1.0), iv(0.0, 2.0)]]);
        db.insert_tuples("S", 1, vec![vec![iv(0.0, 1.0)], vec![iv(5.0, 6.0)]]);
        assert_eq!(db.num_relations(), 2);
        assert_eq!(db.total_tuples(), 3);
        assert_eq!(db.relation("R").unwrap().arity(), 2);
        assert!(db.relation("T").is_none());
        assert_eq!(db.relation_names(), vec!["R".to_string(), "S".to_string()]);
    }

    #[test]
    fn collect_intervals_gathers_the_right_columns() {
        let mut db = Database::new();
        db.insert_tuples("R", 2, vec![vec![iv(0.0, 1.0), iv(10.0, 11.0)]]);
        db.insert_tuples("S", 1, vec![vec![iv(5.0, 6.0)]]);
        let intervals = db.collect_intervals(&[("R", 0), ("S", 0)]);
        assert_eq!(intervals.len(), 2);
        assert!(intervals.contains(&Interval::new(0.0, 1.0)));
        assert!(intervals.contains(&Interval::new(5.0, 6.0)));
    }

    #[test]
    fn shift_left_endpoints_preserves_intersections() {
        // R and S each hold one interval per tuple; verify that intersection
        // relationships across relations are unchanged and that left
        // endpoints become pairwise distinct across relations.
        let r_ivs = [Interval::new(0.0, 2.0), Interval::new(3.0, 5.0), Interval::new(2.0, 3.0)];
        let s_ivs = [Interval::new(2.0, 4.0), Interval::new(0.0, 0.5), Interval::new(5.0, 7.0)];
        let mut db = Database::new();
        db.insert_tuples("R", 1, r_ivs.iter().map(|&i| vec![Value::Interval(i)]).collect());
        db.insert_tuples("S", 1, s_ivs.iter().map(|&i| vec![Value::Interval(i)]).collect());
        db.shift_left_endpoints(&["R", "S"]);

        let r_new: Vec<Interval> =
            db.relation("R").unwrap().column(0).map(|v| v.as_interval().unwrap()).collect();
        let s_new: Vec<Interval> =
            db.relation("S").unwrap().column(0).map(|v| v.as_interval().unwrap()).collect();
        for (i, &r_old) in r_ivs.iter().enumerate() {
            for (j, &s_old) in s_ivs.iter().enumerate() {
                assert_eq!(
                    r_old.intersects(s_old),
                    r_new[i].intersects(s_new[j]),
                    "intersection changed for R[{i}], S[{j}]"
                );
            }
        }
        // Left endpoints are now distinct across the two relations.
        for r in &r_new {
            for s in &s_new {
                assert_ne!(r.lo(), s.lo());
            }
        }
    }

    #[test]
    fn shift_left_endpoints_handles_empty_order_and_missing_relations() {
        let mut db = Database::new();
        db.insert_tuples("R", 1, vec![vec![iv(0.0, 1.0)]]);
        let before = db.clone();
        db.shift_left_endpoints(&[]);
        assert_eq!(db, before);
        db.shift_left_endpoints(&["Missing"]);
        assert_eq!(db.relation("R").unwrap().len(), 1);
    }
}
