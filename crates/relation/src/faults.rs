//! Deterministic, std-only failpoint registry for fault-injection tests.
//!
//! The pipeline is instrumented with **named sites** — `"trie-build"`,
//! `"cache-insert"`, `"shard-worker"`, `"reduction-transform"` — each a
//! single [`point`] call on a hot path.  In a normal build [`point`]
//! compiles to nothing.  With the `failpoints` cargo feature (enabled only
//! by the fault-injection tests and never by default), a test can *arm* a
//! site ([`configure`]) so that its N-th execution injects a panic or a
//! delay, then assert that the evaluation either returns the correct answer
//! or a typed error — never a wrong answer, never a hang — and that the
//! workspace stays consistent afterwards.
//!
//! Schedules are deterministic: an armed site fires on an exact occurrence
//! count and disarms itself after firing, so a seed-driven test sweep
//! reproduces byte-for-byte.  Tests arming sites must serialise on a lock
//! (the registry is process-global) and [`clear`] it when done.
//!
//! # Writing a failpoint test
//!
//! ```
//! use ij_relation::faults;
//!
//! // Arm the site so its first hit panics…
//! faults::configure("trie-build", 0, faults::FaultAction::Panic);
//! // …run the evaluation under test; the injected panic is isolated by the
//! // engine's catch_unwind boundary and surfaces as EvalError::WorkerPanicked.
//! // (Without the `failpoints` feature, configure/point are no-ops.)
//! faults::clear();
//! ```

#[cfg(feature = "failpoints")]
use crate::sync::lock_recover;

/// Lock class of the failpoint registry (`sync::lock_order`).  Acquired
/// under the trie cache's map write lock (the `cache-insert` site), so
/// the registry itself must never acquire engine locks while held — it
/// never does: injected actions run after the guard is dropped.
#[cfg(feature = "failpoints")]
const FAILPOINT_REGISTRY: &str = "failpoint-registry";
#[cfg(feature = "failpoints")]
use std::collections::HashMap;
#[cfg(feature = "failpoints")]
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// The declared failpoint sites.
///
/// Every `faults::point(..)` / `faults::configure(..)` call site in
/// production code and the fault-injection tests must name one of these
/// constants' values — the `ij-analysis` failpoint-coherence pass parses
/// this module and flags any literal that is not declared here, so a typo
/// like `"cache-isnert"` fails `check` instead of silently never firing.
pub mod sites {
    /// Inside the per-shard trie build loop (`TrieBuild::build_sharded`).
    pub const TRIE_BUILD: &str = "trie-build";
    /// Under the trie cache's map write lock, just before a built trie is
    /// published into its slot.
    pub const CACHE_INSERT: &str = "cache-insert";
    /// At the top of each generic-join enumeration shard worker.
    pub const SHARD_WORKER: &str = "shard-worker";
    /// Inside the reduction rewrite that transforms an input relation.
    pub const REDUCTION_TRANSFORM: &str = "reduction-transform";
}

/// What an armed failpoint injects when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// Panic with a message naming the site (isolated by the evaluation's
    /// `catch_unwind` boundaries and surfaced as `WorkerPanicked`).
    Panic,
    /// Sleep for the given duration (models a stalled worker; exercises the
    /// deadline and watchdog paths).
    Delay(Duration),
}

#[cfg(feature = "failpoints")]
#[derive(Debug, Default)]
struct Site {
    /// Total executions of this site since the last [`clear`].
    hits: usize,
    /// Armed schedule: fire when `hits` passes `at`, then disarm.
    armed: Option<(usize, FaultAction)>,
}

#[cfg(feature = "failpoints")]
fn registry() -> &'static Mutex<HashMap<String, Site>> {
    static REGISTRY: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Arms `site` to fire `action` on its `after`-th subsequent execution
/// (`after = 0` fires on the very next hit).  Occurrence counting starts
/// from the site's current hit count, and the site disarms itself after
/// firing once.  No-op without the `failpoints` feature.
#[cfg(feature = "failpoints")]
pub fn configure(site: &str, after: usize, action: FaultAction) {
    let mut reg = lock_recover(registry(), FAILPOINT_REGISTRY);
    let entry = reg.entry(site.to_string()).or_default();
    entry.armed = Some((entry.hits + after, action));
}

/// Arms `site` (no-op twin: the `failpoints` feature is disabled).
#[cfg(not(feature = "failpoints"))]
pub fn configure(_site: &str, _after: usize, _action: FaultAction) {}

/// Disarms every site and resets all hit counters.  No-op without the
/// `failpoints` feature.
#[cfg(feature = "failpoints")]
pub fn clear() {
    lock_recover(registry(), FAILPOINT_REGISTRY).clear();
}

/// Disarms every site (no-op twin: the `failpoints` feature is disabled).
#[cfg(not(feature = "failpoints"))]
pub fn clear() {}

/// Executions of `site` since the last [`clear`].  Always 0 without the
/// `failpoints` feature.
#[cfg(feature = "failpoints")]
pub fn hits(site: &str) -> usize {
    lock_recover(registry(), FAILPOINT_REGISTRY)
        .get(site)
        .map_or(0, |s| s.hits)
}

/// Executions of `site` (no-op twin: always 0, the `failpoints` feature is
/// disabled).
#[cfg(not(feature = "failpoints"))]
pub fn hits(_site: &str) -> usize {
    0
}

/// A named failpoint site: counts the execution and fires the armed action
/// if its occurrence has come.  The registry lock is released **before**
/// the action runs, so an injected panic never poisons the registry and an
/// injected delay never blocks other sites.
#[cfg(feature = "failpoints")]
pub fn point(site: &str) {
    let action = {
        let mut reg = lock_recover(registry(), FAILPOINT_REGISTRY);
        let entry = reg.entry(site.to_string()).or_default();
        let hit = entry.hits;
        entry.hits += 1;
        match entry.armed {
            Some((at, action)) if hit >= at => {
                entry.armed = None;
                Some(action)
            }
            _ => None,
        }
    };
    match action {
        Some(FaultAction::Panic) => panic!("failpoint `{site}` injected a panic"),
        Some(FaultAction::Delay(d)) => std::thread::sleep(d),
        None => {}
    }
}

/// A named failpoint site (no-op twin: compiles to nothing, the
/// `failpoints` feature is disabled).
#[cfg(not(feature = "failpoints"))]
#[inline(always)]
pub fn point(_site: &str) {}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    // The registry is process-global; these tests serialise on it.
    fn serial() -> crate::sync::LockGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        lock_recover(&LOCK, "failpoint-test-serial")
    }

    #[test]
    fn fires_on_the_scheduled_occurrence_then_disarms() {
        let _g = serial();
        clear();
        configure("t", 2, FaultAction::Panic);
        point("t");
        point("t");
        assert!(std::panic::catch_unwind(|| point("t")).is_err());
        // Disarmed: later hits are clean.
        point("t");
        assert_eq!(hits("t"), 4);
        clear();
    }

    #[test]
    fn delay_sleeps_without_panicking() {
        let _g = serial();
        clear();
        configure("d", 0, FaultAction::Delay(Duration::from_millis(1)));
        let start = std::time::Instant::now();
        point("d");
        assert!(start.elapsed() >= Duration::from_millis(1));
        clear();
    }

    #[test]
    fn scheduling_counts_from_the_current_hit_count() {
        let _g = serial();
        clear();
        point("s");
        point("s");
        configure("s", 1, FaultAction::Panic);
        point("s"); // skipped: fires after one more
        assert!(std::panic::catch_unwind(|| point("s")).is_err());
        clear();
    }
}
