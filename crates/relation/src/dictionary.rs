//! The value dictionary: interning of [`Value`]s into dense 32-bit ids.
//!
//! Every value stored in a [`Relation`](crate::Relation) is interned exactly
//! once into an interning dictionary and represented as a [`ValueId`] from
//! then on.  All layers of the pipeline — the forward reduction, the hash
//! tries of the equality-join engine and the Yannakakis semijoins — operate
//! on these dense `u32` ids instead of full [`Value`] structs: equality of
//! ids coincides with equality of values, so join processing never needs to
//! hash or compare a `Value` again after ingestion.
//!
//! # Scoping: [`SharedDictionary`] handles
//!
//! Dictionaries are owned by [`SharedDictionary`] handles — cheap `Arc`
//! clones of one striped store.  Every [`Relation`](crate::Relation) carries
//! the handle its ids point into; ids are join-compatible exactly between
//! relations sharing a handle.  Two handles exist in practice:
//!
//! * [`SharedDictionary::global`] — the process-wide default, used by every
//!   `Relation::new`-style constructor for backwards compatibility.  It lives
//!   for the process, so its interned values are never reclaimed.
//! * [`SharedDictionary::new`] — a **scoped** dictionary, owned by a
//!   `Workspace` (see the `ij-engine` crate).  The forward reduction interns
//!   the transformed database into the dictionary of its *input* database, so
//!   a workspace's evaluations never touch the global store, and dropping the
//!   workspace (together with the relations built in it) frees every value it
//!   interned — the scoping/eviction story for a long-running multi-tenant
//!   service.
//!
//! Within one handle ids are never re-assigned: an id stays valid for as long
//! as its dictionary is alive.  Ids from *different* handles are meaningless
//! to each other; never mix relations from different workspaces in one join.
//!
//! # Concurrency: hash-striped locks
//!
//! Every dictionary is **striped**: [`STRIPE_COUNT`] independent
//! [`Dictionary`] stores, each behind its own [`RwLock`], with a value's
//! stripe chosen by a deterministic hash of the value.  Interning takes a
//! read lock on one stripe (the already-interned fast path) and upgrades to
//! that stripe's write lock only on a genuine miss, so parallel ingestion
//! threads serialize only when two values collide on a stripe instead of on
//! one dictionary-wide lock.  Evaluation-time code only *reads* ids already
//! stored in relations, so the parallel disjunct evaluation of the engine
//! runs lock-free on the hot path; bulk materialisation
//! ([`Relation::tuples`](crate::Relation::tuples)) pins all stripes once via
//! [`SharedDictionary::reader`] instead of locking per value.
//!
//! Ids stay **globally unique** across stripes by construction: the stripe
//! index lives in the low [`STRIPE_BITS`] bits of the id and the
//! stripe-local dense index in the high bits, so each stripe owns a disjoint
//! id subspace (and may hold up to 2²⁸ − 1 distinct values; the top local
//! index is reserved so the [`ValueId::dummy`] sentinel is unrepresentable —
//! see [`MAX_STRIPE_VALUES`]).

use crate::sync::{read_recover, write_recover, ReadGuard};

/// Lock class of every dictionary stripe (for the `sync::lock_order`
/// detector).  One class for all 16 stripes: intra-class nesting is
/// exempt from cycle detection, and `DictReader` — the only multi-stripe
/// holder — pins read guards in index order with writers never holding
/// more than one stripe.
const DICT_STRIPE: &str = "dict-stripe";
use crate::Value;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};
use std::sync::{Arc, OnceLock, RwLock};

/// Number of independent stripes of the shared dictionary (a power of two).
pub const STRIPE_COUNT: usize = 16;

/// Bits of a [`ValueId`] reserved for the stripe index (`log2(STRIPE_COUNT)`).
pub const STRIPE_BITS: u32 = STRIPE_COUNT.trailing_zeros();

/// Maximum number of distinct values one stripe may hold: the top
/// stripe-local index is **reserved** so that no legal id ever equals the
/// [`ValueId::dummy`] sentinel (`u32::MAX`, which would otherwise be the
/// encoding of local index `2^28 - 1` in the last stripe).
pub const MAX_STRIPE_VALUES: u32 = (1 << (32 - STRIPE_BITS)) - 1;

/// A dense identifier of an interned [`Value`].
///
/// Ids are only meaningful relative to the shared dictionary; two ids are
/// equal if and only if the values they intern are equal.  The `Ord` on ids
/// is an arbitrary stable order (stripe, then interning order within the
/// stripe), not the value order — sort by resolved values when value order
/// matters.
///
/// The representation is `#[repr(transparent)]` over the raw `u32`: the SIMD
/// kernels ([`crate::kernels`]) rely on this to reinterpret `&[ValueId]` as
/// `&[u32]` for vector loads, and the `Ord` above is exactly the unsigned
/// order of the raw ids, so comparing raw words agrees with comparing ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct ValueId(u32);

impl ValueId {
    /// Interns `value` in the process-global dictionary
    /// ([`SharedDictionary::global`]).  Scoped callers should intern through
    /// their own handle ([`SharedDictionary::intern`]) instead.
    pub fn intern(value: Value) -> ValueId {
        SharedDictionary::global().intern(value)
    }

    /// Resolves the id against the process-global dictionary
    /// ([`SharedDictionary::global`]; one stripe read lock — bulk resolves
    /// should use [`SharedDictionary::reader`] instead of calling this per
    /// id).  Ids interned into a scoped dictionary must be resolved through
    /// that handle, not here.
    ///
    /// # Panics
    ///
    /// Panics if the id was not produced by the global dictionary.
    pub fn resolve(self) -> Value {
        SharedDictionary::global().resolve(self)
    }

    /// The raw index.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Reconstructs an id from a raw index (the inverse of [`ValueId::raw`];
    /// the caller is responsible for the index having come from the shared
    /// dictionary).
    pub fn from_raw(raw: u32) -> ValueId {
        ValueId(raw)
    }

    /// A placeholder id used to pre-size buffers.  The sentinel is
    /// **unrepresentable**: striped dictionaries reserve the top stripe-local
    /// index ([`MAX_STRIPE_VALUES`]) and standalone [`Dictionary`] stores
    /// reserve the top dense id, so no interned value is ever assigned
    /// `u32::MAX` and the placeholder can never alias a real id.  Resolving
    /// it always panics.
    pub fn dummy() -> ValueId {
        ValueId(u32::MAX)
    }
}

/// The stripe a value hashes to.  The hash is deterministic within a process
/// (`DefaultHasher` with fixed keys), so a value's stripe — and hence its id
/// — does not depend on which thread interns it first.
fn stripe_of(value: &Value) -> usize {
    let mut hasher = std::collections::hash_map::DefaultHasher::new();
    value.hash(&mut hasher);
    (hasher.finish() as usize) & (STRIPE_COUNT - 1)
}

/// Combines a stripe-local dense id with its stripe index into a global id.
///
/// The top local index is reserved ([`MAX_STRIPE_VALUES`]): without the
/// reservation, a full last stripe would hand out `u32::MAX` — the
/// [`ValueId::dummy`] sentinel — as a legal id, silently aliasing every
/// buffer placeholder in the system.
fn encode(local: ValueId, stripe: usize) -> ValueId {
    assert!(
        local.0 < MAX_STRIPE_VALUES,
        "dictionary stripe overflow: more than {MAX_STRIPE_VALUES} distinct values in one \
         stripe (the top local index is reserved for the ValueId::dummy sentinel)"
    );
    ValueId((local.0 << STRIPE_BITS) | stripe as u32)
}

/// Splits a global id back into (stripe index, stripe-local id).
fn decode(id: ValueId) -> (usize, ValueId) {
    (
        (id.0 & (STRIPE_COUNT as u32 - 1)) as usize,
        ValueId(id.0 >> STRIPE_BITS),
    )
}

/// An owning handle to a striped interning dictionary.
///
/// Cloning is cheap (an `Arc` bump) and yields a handle to the *same* store:
/// ids are join-compatible exactly between holders of clones of one handle.
/// [`SharedDictionary::global`] is the process-wide default every
/// `Relation::new`-style constructor uses; [`SharedDictionary::new`] creates
/// a **scoped** dictionary whose values are reclaimed when the last clone
/// (including the clones carried by the relations built in it) drops — see
/// the module docs.
#[derive(Clone)]
pub struct SharedDictionary {
    stripes: Arc<[RwLock<Dictionary>; STRIPE_COUNT]>,
}

impl std::fmt::Debug for SharedDictionary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The stores can hold millions of values; print identity + size only.
        f.debug_struct("SharedDictionary")
            .field("global", &self.is_global())
            .field("len", &self.len())
            .finish()
    }
}

impl Default for SharedDictionary {
    fn default() -> Self {
        SharedDictionary::new()
    }
}

impl PartialEq for SharedDictionary {
    /// Handles are equal iff they name the same store (ids interchangeable).
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.stripes, &other.stripes)
    }
}

impl Eq for SharedDictionary {}

impl SharedDictionary {
    /// A fresh, empty scoped dictionary.
    pub fn new() -> Self {
        SharedDictionary {
            stripes: Arc::new(std::array::from_fn(|_| RwLock::new(Dictionary::new()))),
        }
    }

    /// The process-wide dictionary ([`ValueId::intern`] /
    /// [`ValueId::resolve`] delegate here).  Clone the returned handle to own
    /// a reference to it.
    pub fn global() -> &'static SharedDictionary {
        static GLOBAL: OnceLock<SharedDictionary> = OnceLock::new();
        GLOBAL.get_or_init(SharedDictionary::new)
    }

    /// True if this handle names the process-wide dictionary.
    pub fn is_global(&self) -> bool {
        self == SharedDictionary::global()
    }

    /// Interns `value`: returns the existing id when the value was seen
    /// before (taking only a stripe *read* lock), otherwise assigns the next
    /// id of the value's stripe under that stripe's write lock.
    pub fn intern(&self, value: Value) -> ValueId {
        let stripe = stripe_of(&value);
        let lock = &self.stripes[stripe];
        if let Some(local) = read_recover(lock, DICT_STRIPE).lookup(&value) {
            return encode(local, stripe);
        }
        let local = write_recover(lock, DICT_STRIPE).intern(value);
        encode(local, stripe)
    }

    /// Resolves an id interned through this handle (one stripe read lock;
    /// bulk resolves should use [`SharedDictionary::reader`]).
    ///
    /// # Panics
    ///
    /// Panics if the id was not produced by this dictionary.
    pub fn resolve(&self, id: ValueId) -> Value {
        let (stripe, local) = decode(id);
        read_recover(&self.stripes[stripe], DICT_STRIPE).resolve(local)
    }

    /// The id of a value, if it has been interned through this handle.
    pub fn lookup(&self, value: &Value) -> Option<ValueId> {
        let stripe = stripe_of(value);
        read_recover(&self.stripes[stripe], DICT_STRIPE)
            .lookup(value)
            .map(|local| encode(local, stripe))
    }

    /// Total number of distinct values interned through this handle (sums
    /// the stripes; a snapshot under concurrent interning).
    pub fn len(&self) -> usize {
        self.stripes
            .iter()
            .map(|lock| read_recover(lock, DICT_STRIPE).len())
            .sum()
    }

    /// True if nothing has been interned through this handle.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated heap bytes of the interned values **and** their index maps,
    /// summed over every stripe ([`Dictionary::heap_bytes`]; one stripe read
    /// lock each — a snapshot under concurrent interning).  Surfaced as
    /// `Workspace::dictionary_bytes` so an operator can meter a workspace's
    /// interned residency in bytes, not just distinct-value counts.
    pub fn heap_bytes(&self) -> usize {
        self.stripes
            .iter()
            .map(|lock| read_recover(lock, DICT_STRIPE).heap_bytes())
            .sum()
    }

    /// Pins every stripe under a read lock at once, for bulk resolves and
    /// lookups: one lock acquisition per stripe instead of one per value.
    ///
    /// Writers never hold more than one stripe lock at a time, so acquiring
    /// all stripes here cannot deadlock against concurrent interning.  While
    /// the reader is held, resolve ids through **it** — a concurrent
    /// per-value resolve on the same handle may deadlock against a queued
    /// writer (see [`DictReader`]).
    pub fn reader(&self) -> DictReader<'_> {
        DictReader {
            guards: self
                .stripes
                .iter()
                .map(|lock| read_recover(lock, DICT_STRIPE))
                .collect(),
        }
    }
}

/// An interning dictionary mapping [`Value`]s to dense [`ValueId`]s and back.
///
/// This is the single-store building block: a [`SharedDictionary`] is
/// [`STRIPE_COUNT`] of these behind per-stripe locks (see the module docs),
/// and tests / tools can use standalone instances directly.  Standalone
/// instances assign plain dense ids `0, 1, 2, …` with no stripe encoding.
#[derive(Debug, Default)]
pub struct Dictionary {
    values: Vec<Value>,
    index: HashMap<Value, u32>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Interns a value: returns the existing id if the value was seen before,
    /// otherwise assigns the next dense id.
    pub fn intern(&mut self, value: Value) -> ValueId {
        if let Some(&id) = self.index.get(&value) {
            return ValueId(id);
        }
        // The top dense id is reserved: assigning `u32::MAX` would alias the
        // `ValueId::dummy()` buffer-placeholder sentinel.
        let id = u32::try_from(self.values.len())
            .ok()
            .filter(|&id| id != u32::MAX)
            .expect(
                "dictionary overflow: the dense id space is exhausted (the top id is \
                     reserved for the ValueId::dummy sentinel)",
            );
        self.values.push(value);
        self.index.insert(value, id);
        ValueId(id)
    }

    /// The id of a value, if it has been interned.
    pub fn lookup(&self, value: &Value) -> Option<ValueId> {
        self.index.get(value).copied().map(ValueId)
    }

    /// Estimated heap bytes held by this store: the interned values vector
    /// plus the value→id index map (bucket array accounted at capacity, with
    /// one byte of control metadata per bucket).  An estimate from container
    /// capacities, not an allocator measurement — the same fidelity as
    /// `AtomTrie::heap_bytes`, and good enough for an operator to alert on a
    /// growing tenant before it OOMs.
    pub fn heap_bytes(&self) -> usize {
        self.values.capacity() * std::mem::size_of::<Value>()
            + self.index.capacity()
                * (std::mem::size_of::<(Value, u32)>() + std::mem::size_of::<u8>())
    }

    /// The value behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id was not produced by this dictionary.
    pub fn resolve(&self, id: ValueId) -> Value {
        self.values[id.0 as usize]
    }

    /// Pins every stripe of the **process-global** dictionary under a read
    /// lock at once (see [`SharedDictionary::reader`], which this delegates
    /// to; scoped dictionaries use their handle's method).
    pub fn reader() -> DictReader<'static> {
        SharedDictionary::global().reader()
    }

    /// Total number of distinct values interned in the process-global
    /// dictionary (sums the stripes; a snapshot under concurrent interning).
    pub fn shared_len() -> usize {
        SharedDictionary::global().len()
    }
}

/// A read pin over every stripe of one dictionary (see
/// [`SharedDictionary::reader`]).  Holding one blocks interning of *new*
/// values into that dictionary.
///
/// While a reader is held, resolve ids through **it** ([`DictReader::resolve`])
/// — not through [`ValueId::resolve`] or [`SharedDictionary::resolve`] on the
/// same store, which acquire a second read lock on a stripe this reader
/// already holds: `std`'s `RwLock` may deadlock on such recursive read
/// acquisition when a writer is queued in between.
pub struct DictReader<'d> {
    guards: Vec<ReadGuard<'d, Dictionary>>,
}

impl DictReader<'_> {
    /// The value behind an id of the pinned dictionary.
    ///
    /// # Panics
    ///
    /// Panics if the id was not produced by the pinned dictionary.
    pub fn resolve(&self, id: ValueId) -> Value {
        let (stripe, local) = decode(id);
        self.guards[stripe].resolve(local)
    }

    /// The pinned dictionary's id of a value, if it has been interned.
    pub fn lookup(&self, value: &Value) -> Option<ValueId> {
        let stripe = stripe_of(value);
        self.guards[stripe].lookup(value).map(|l| encode(l, stripe))
    }
}

/// A multiply-mix hasher for [`ValueId`] keys (FxHash-style): the hot join
/// loops key hash maps by `u32` ids, where SipHash's preimage resistance buys
/// nothing and costs measurably.
#[derive(Debug, Default, Clone)]
pub struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (used when hashing compound keys of ids).
        for &b in bytes {
            self.write_u8(b);
        }
    }

    fn write_u8(&mut self, b: u8) {
        self.write_u64(b as u64)
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64)
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64)
    }
}

/// Hasher state for id-keyed maps.
pub type IdBuildHasher = BuildHasherDefault<IdHasher>;

/// A hash map keyed by interned ids (or tuples thereof).
pub type IdHashMap<K, V> = HashMap<K, V, IdBuildHasher>;

/// A hash set of interned ids (or tuples thereof).
pub type IdHashSet<K> = std::collections::HashSet<K, IdBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_resolve_round_trip() {
        let mut dict = Dictionary::new();
        let values = [
            Value::point(1.0),
            Value::interval(0.0, 2.0),
            Value::point(-3.5),
            Value::point(1.0),
        ];
        let ids: Vec<ValueId> = values.iter().map(|&v| dict.intern(v)).collect();
        for (&v, &id) in values.iter().zip(&ids) {
            assert_eq!(dict.resolve(id), v);
        }
        // Duplicates dedup to the same id.
        assert_eq!(ids[0], ids[3]);
        assert_eq!(dict.len(), 3);
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let mut dict = Dictionary::new();
        let a = dict.intern(Value::point(1.0));
        let b = dict.intern(Value::point(2.0));
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw(), 1);
        // Interning more values never changes existing assignments.
        for i in 0..100 {
            dict.intern(Value::point(i as f64));
        }
        assert_eq!(dict.intern(Value::point(1.0)), a);
        assert_eq!(dict.intern(Value::point(2.0)), b);
        assert_eq!(dict.lookup(&Value::point(2.0)), Some(b));
        assert_eq!(dict.lookup(&Value::point(-9.0)), None);
    }

    #[test]
    fn shared_ids_encode_their_stripe() {
        let values: Vec<Value> = (0..100).map(|i| Value::point(7000.0 + i as f64)).collect();
        let ids: Vec<ValueId> = values.iter().map(|&v| ValueId::intern(v)).collect();
        // Lock-per-id resolves, *before* pinning the stripes: ValueId::resolve
        // must never run under a held DictReader (recursive read locks can
        // deadlock against a queued writer).
        for (&v, &id) in values.iter().zip(&ids) {
            assert_eq!(id.resolve(), v);
        }
        let reader = Dictionary::reader();
        for (&v, &id) in values.iter().zip(&ids) {
            let (stripe, _) = decode(id);
            assert_eq!(stripe, stripe_of(&v));
            assert_eq!(reader.resolve(id), v);
            assert_eq!(reader.lookup(&v), Some(id));
        }
        drop(reader);
        // Distinct values get distinct ids even across stripes.
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), ids.len());
        assert!(Dictionary::shared_len() >= ids.len());
    }

    #[test]
    fn scoped_dictionaries_are_independent_of_the_global_store() {
        let scoped = SharedDictionary::new();
        assert!(!scoped.is_global());
        assert!(scoped.is_empty());
        let global_before = Dictionary::shared_len();
        let values: Vec<Value> = (0..50).map(|i| Value::point(9_000.5 + i as f64)).collect();
        let ids: Vec<ValueId> = values.iter().map(|&v| scoped.intern(v)).collect();
        // Scoped interning never touches the global store.
        assert_eq!(Dictionary::shared_len(), global_before);
        assert_eq!(scoped.len(), values.len());
        for (&v, &id) in values.iter().zip(&ids) {
            assert_eq!(scoped.resolve(id), v);
            assert_eq!(scoped.lookup(&v), Some(id));
        }
        let reader = scoped.reader();
        for (&v, &id) in values.iter().zip(&ids) {
            assert_eq!(reader.resolve(id), v);
        }
        drop(reader);
        // Clones name the same store; fresh dictionaries do not.
        let clone = scoped.clone();
        assert_eq!(clone, scoped);
        assert_eq!(clone.lookup(&values[0]), Some(ids[0]));
        assert_ne!(SharedDictionary::new(), scoped);
        // A second scoped dictionary starts from an empty id space.
        let second = SharedDictionary::new();
        let re_interned = second.intern(values[0]);
        assert_eq!(second.resolve(re_interned), values[0]);
        assert_eq!(second.len(), 1);
    }

    #[test]
    fn the_dummy_sentinel_is_unrepresentable() {
        // Regression: `encode(local = 2^28 - 1, stripe = 15)` used to equal
        // `u32::MAX` — exactly `ValueId::dummy()` — so a full last stripe
        // would hand the sentinel out as a real id.  The top local index is
        // now reserved: the largest legal id in every stripe stays strictly
        // below the sentinel.
        for stripe in 0..STRIPE_COUNT {
            let max_legal = encode(ValueId(MAX_STRIPE_VALUES - 1), stripe);
            assert_ne!(max_legal, ValueId::dummy(), "stripe {stripe}");
            assert!(max_legal.raw() < u32::MAX, "stripe {stripe}");
            // The encoding still round-trips at the reserved boundary.
            assert_eq!(decode(max_legal), (stripe, ValueId(MAX_STRIPE_VALUES - 1)));
        }
    }

    #[test]
    #[should_panic(expected = "reserved for the ValueId::dummy sentinel")]
    fn the_reserved_local_index_is_rejected() {
        // The local index that would encode to the sentinel (in the last
        // stripe) trips the overflow assert instead of aliasing it.
        let _ = encode(ValueId(MAX_STRIPE_VALUES), STRIPE_COUNT - 1);
    }

    #[test]
    fn heap_bytes_grow_with_interned_values() {
        let mut dict = Dictionary::new();
        let empty = dict.heap_bytes();
        for i in 0..1000 {
            dict.intern(Value::point(i as f64));
        }
        let filled = dict.heap_bytes();
        assert!(
            filled >= empty + 1000 * std::mem::size_of::<Value>(),
            "1000 values must account at least their own storage: {empty} -> {filled}"
        );

        let scoped = SharedDictionary::new();
        let baseline = scoped.heap_bytes();
        for i in 0..1000 {
            scoped.intern(Value::point(i as f64));
        }
        assert!(
            scoped.heap_bytes() >= baseline + 1000 * std::mem::size_of::<Value>(),
            "striped accounting must cover every stripe"
        );
    }

    #[test]
    fn shared_dictionary_is_consistent_across_threads() {
        let values: Vec<Value> = (0..64).map(|i| Value::point(1000.0 + i as f64)).collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let values = values.clone();
                std::thread::spawn(move || {
                    values
                        .iter()
                        .map(|&v| ValueId::intern(v))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<ValueId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for ids in &results[1..] {
            assert_eq!(ids, &results[0]);
        }
        for (&v, &id) in values.iter().zip(&results[0]) {
            assert_eq!(id.resolve(), v);
        }
    }
}
