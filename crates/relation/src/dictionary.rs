//! The value dictionary: interning of [`Value`]s into dense 32-bit ids.
//!
//! Every value stored in a [`Relation`](crate::Relation) is interned exactly
//! once into the process-wide shared [`Dictionary`] and represented as a
//! [`ValueId`] from then on.  All layers of the pipeline — the forward
//! reduction, the hash tries of the equality-join engine and the Yannakakis
//! semijoins — operate on these dense `u32` ids instead of full [`Value`]
//! structs: equality of ids coincides with equality of values, so join
//! processing never needs to hash or compare a `Value` again after ingestion.
//!
//! The dictionary is shared process-wide (rather than carried by each
//! [`Database`](crate::Database)) so that ids remain join-compatible across
//! databases; the forward reduction writes a *transformed* database whose
//! relations must be comparable with each other and with ad-hoc relations
//! built by the evaluator (projections, materialised bags).  Ids are assigned
//! densely in first-intern order and are never re-assigned, so an id obtained
//! at any point stays valid for the lifetime of the process.
//!
//! The dictionary never evicts: ids stay valid for the process lifetime, so
//! dropping a [`Database`](crate::Database) does not reclaim its interned
//! values.  That is the right trade-off for the current
//! reduce-evaluate-report pipelines; a long-running multi-tenant service
//! would want per-database scoping or epoch-based compaction (tracked in
//! ROADMAP "Open items").
//!
//! Concurrency: the shared dictionary sits behind an [`RwLock`].  Ingestion
//! (interning) takes the write lock; evaluation-time code only *reads* ids
//! already stored in relations, so the parallel disjunct evaluation of the
//! engine runs lock-free on the hot path and takes short read locks only when
//! materialising values (e.g. [`Relation::tuples`](crate::Relation::tuples)).

use crate::Value;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::{OnceLock, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A dense identifier of an interned [`Value`].
///
/// Ids are only meaningful relative to the shared [`Dictionary`]; two ids are
/// equal if and only if the values they intern are equal.  The `Ord` on ids
/// is the *interning order*, not the value order — sort by resolved values
/// when value order matters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ValueId(u32);

impl ValueId {
    /// Interns `value` in the shared dictionary (see [`Dictionary::intern`]).
    pub fn intern(value: Value) -> ValueId {
        Dictionary::write_shared().intern(value)
    }

    /// Resolves the id against the shared dictionary.
    ///
    /// # Panics
    ///
    /// Panics if the id was not produced by the shared dictionary.
    pub fn resolve(self) -> Value {
        Dictionary::read_shared().resolve(self)
    }

    /// The raw index.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Reconstructs an id from a raw index (the inverse of [`ValueId::raw`];
    /// the caller is responsible for the index having come from the shared
    /// dictionary).
    pub fn from_raw(raw: u32) -> ValueId {
        ValueId(raw)
    }

    /// A placeholder id used to pre-size buffers; resolving it is only valid
    /// if it happens to be interned.
    pub fn dummy() -> ValueId {
        ValueId(u32::MAX)
    }
}

/// An interning dictionary mapping [`Value`]s to dense [`ValueId`]s and back.
#[derive(Debug, Default)]
pub struct Dictionary {
    values: Vec<Value>,
    index: HashMap<Value, u32>,
}

impl Dictionary {
    /// An empty dictionary.
    pub fn new() -> Self {
        Dictionary::default()
    }

    /// Number of distinct interned values.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Interns a value: returns the existing id if the value was seen before,
    /// otherwise assigns the next dense id.
    pub fn intern(&mut self, value: Value) -> ValueId {
        if let Some(&id) = self.index.get(&value) {
            return ValueId(id);
        }
        let id = u32::try_from(self.values.len())
            .expect("dictionary overflow: more than 2^32 distinct values");
        self.values.push(value);
        self.index.insert(value, id);
        ValueId(id)
    }

    /// The id of a value, if it has been interned.
    pub fn lookup(&self, value: &Value) -> Option<ValueId> {
        self.index.get(value).copied().map(ValueId)
    }

    /// The value behind an id.
    ///
    /// # Panics
    ///
    /// Panics if the id was not produced by this dictionary.
    pub fn resolve(&self, id: ValueId) -> Value {
        self.values[id.0 as usize]
    }

    /// The process-wide shared dictionary.
    pub fn shared() -> &'static RwLock<Dictionary> {
        static SHARED: OnceLock<RwLock<Dictionary>> = OnceLock::new();
        SHARED.get_or_init(|| RwLock::new(Dictionary::new()))
    }

    /// Read access to the shared dictionary (bulk resolves should hold this
    /// guard across the loop instead of calling [`ValueId::resolve`] per id).
    pub fn read_shared() -> RwLockReadGuard<'static, Dictionary> {
        Dictionary::shared()
            .read()
            .unwrap_or_else(|e| e.into_inner())
    }

    /// Write access to the shared dictionary (bulk interns should hold this
    /// guard across the loop).
    pub fn write_shared() -> RwLockWriteGuard<'static, Dictionary> {
        Dictionary::shared()
            .write()
            .unwrap_or_else(|e| e.into_inner())
    }
}

/// A multiply-mix hasher for [`ValueId`] keys (FxHash-style): the hot join
/// loops key hash maps by `u32` ids, where SipHash's preimage resistance buys
/// nothing and costs measurably.
#[derive(Debug, Default, Clone)]
pub struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Generic fallback (used when hashing compound keys of ids).
        for &b in bytes {
            self.write_u8(b);
        }
    }

    fn write_u8(&mut self, b: u8) {
        self.write_u64(b as u64)
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64)
    }

    fn write_u64(&mut self, v: u64) {
        self.0 = (self.0.rotate_left(5) ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64)
    }
}

/// Hasher state for id-keyed maps.
pub type IdBuildHasher = BuildHasherDefault<IdHasher>;

/// A hash map keyed by interned ids (or tuples thereof).
pub type IdHashMap<K, V> = HashMap<K, V, IdBuildHasher>;

/// A hash set of interned ids (or tuples thereof).
pub type IdHashSet<K> = std::collections::HashSet<K, IdBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_resolve_round_trip() {
        let mut dict = Dictionary::new();
        let values = [
            Value::point(1.0),
            Value::interval(0.0, 2.0),
            Value::point(-3.5),
            Value::point(1.0),
        ];
        let ids: Vec<ValueId> = values.iter().map(|&v| dict.intern(v)).collect();
        for (&v, &id) in values.iter().zip(&ids) {
            assert_eq!(dict.resolve(id), v);
        }
        // Duplicates dedup to the same id.
        assert_eq!(ids[0], ids[3]);
        assert_eq!(dict.len(), 3);
    }

    #[test]
    fn ids_are_dense_and_stable() {
        let mut dict = Dictionary::new();
        let a = dict.intern(Value::point(1.0));
        let b = dict.intern(Value::point(2.0));
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw(), 1);
        // Interning more values never changes existing assignments.
        for i in 0..100 {
            dict.intern(Value::point(i as f64));
        }
        assert_eq!(dict.intern(Value::point(1.0)), a);
        assert_eq!(dict.intern(Value::point(2.0)), b);
        assert_eq!(dict.lookup(&Value::point(2.0)), Some(b));
        assert_eq!(dict.lookup(&Value::point(-9.0)), None);
    }

    #[test]
    fn shared_dictionary_is_consistent_across_threads() {
        let values: Vec<Value> = (0..64).map(|i| Value::point(1000.0 + i as f64)).collect();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let values = values.clone();
                std::thread::spawn(move || {
                    values
                        .iter()
                        .map(|&v| ValueId::intern(v))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<Vec<ValueId>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for ids in &results[1..] {
            assert_eq!(ids, &results[0]);
        }
        for (&v, &id) in values.iter().zip(&results[0]) {
            assert_eq!(id.resolve(), v);
        }
    }
}
