//! Cooperative cancellation and deadlines for the evaluation pipeline.
//!
//! A [`CancellationToken`] is the signal every long-running loop of the
//! pipeline polls: the generic-join search, sharded trie builds, the forward
//! reduction's per-relation transform loops, and the engine's disjunct worker
//! pool.  Polling happens at bounded intervals (every *K* candidates / *K*
//! rows — [`CancellationToken::with_check_interval`]), so cancellation
//! latency is a measurable constant of the workload, not "whenever the
//! current atom finishes".
//!
//! Cancellation is **one-way down a token tree**: cancelling a token cancels
//! every [child](CancellationToken::child) derived from it, but cancelling a
//! child never signals its parent.  This is what lets a panicking worker
//! cancel its *siblings* (they all share one pool-local child token) without
//! poisoning the caller-supplied token for later evaluations.
//!
//! Failures surface as the typed [`EvalError`] taxonomy: [`EvalError::Cancelled`],
//! [`EvalError::DeadlineExceeded`] and [`EvalError::WorkerPanicked`].
//!
//! # Example
//!
//! ```
//! use ij_relation::{CancellationToken, EvalError};
//!
//! let token = CancellationToken::new();
//! assert!(token.checkpoint().is_ok());
//! token.cancel();
//! assert_eq!(token.checkpoint(), Err(EvalError::Cancelled));
//!
//! // Deadlines are budgets relative to the token's creation:
//! let deadline = CancellationToken::new().with_budget(std::time::Duration::ZERO);
//! assert!(matches!(
//!     deadline.checkpoint(),
//!     Err(EvalError::DeadlineExceeded { .. })
//! ));
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The default poll interval: a cooperative loop calls
/// [`CancellationToken::checkpoint`] once every this many units of work
/// (candidates intersected, rows inserted, …) unless the token overrides it
/// ([`CancellationToken::with_check_interval`]).
pub const DEFAULT_CHECK_INTERVAL: u32 = 1024;

/// The cancel signal: a generation counter bumped by every `cancel()`.
#[derive(Debug, Default)]
struct Signal {
    epoch: AtomicU64,
}

/// A shareable cancellation + deadline token.
///
/// Cloning is cheap and shares the signal: any clone's
/// [`cancel`](CancellationToken::cancel) trips every other clone.  Children
/// ([`child`](CancellationToken::child) /
/// [`with_budget`](CancellationToken::with_budget) on a clone) observe their
/// ancestors' cancellation but cancel independently.
#[derive(Debug, Clone)]
pub struct CancellationToken {
    signal: Arc<Signal>,
    /// The signal epoch this token was born at; the token is cancelled when
    /// the epoch has moved past it.
    born: u64,
    parent: Option<Arc<CancellationToken>>,
    start: Instant,
    budget: Option<Duration>,
    check_interval: u32,
}

impl Default for CancellationToken {
    fn default() -> Self {
        CancellationToken::new()
    }
}

impl CancellationToken {
    /// A fresh, uncancelled token with no deadline and the
    /// [default check interval](DEFAULT_CHECK_INTERVAL).
    pub fn new() -> Self {
        CancellationToken {
            signal: Arc::new(Signal::default()),
            born: 0,
            parent: None,
            start: Instant::now(),
            budget: None,
            check_interval: DEFAULT_CHECK_INTERVAL,
        }
    }

    /// This token with a deadline `budget` measured from **now**: once
    /// `budget` has elapsed, [`checkpoint`](CancellationToken::checkpoint)
    /// returns [`EvalError::DeadlineExceeded`].
    pub fn with_budget(mut self, budget: Duration) -> Self {
        self.start = Instant::now();
        self.budget = Some(budget);
        self
    }

    /// This token polling its signal every `interval` units of work instead
    /// of the default.  `interval` is clamped to at least 1.  Smaller
    /// intervals tighten the cancellation-latency bound at the cost of more
    /// frequent atomic loads in the hot loops.
    pub fn with_check_interval(mut self, interval: u32) -> Self {
        self.check_interval = interval.max(1);
        self
    }

    /// The poll interval cooperative loops should use with this token.
    pub fn check_interval(&self) -> u32 {
        self.check_interval
    }

    /// The deadline budget, if any (measured from the token's creation or
    /// the last [`with_budget`](CancellationToken::with_budget) call).
    pub fn budget(&self) -> Option<Duration> {
        self.budget
    }

    /// Time elapsed since this token's deadline clock started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// A child token: it observes this token's cancellation (and deadline),
    /// but cancelling the child never signals this token.  The engine's
    /// worker pool runs under a child so a panicking worker can cancel its
    /// siblings without poisoning the caller's token.
    pub fn child(&self) -> Self {
        CancellationToken {
            signal: Arc::new(Signal::default()),
            born: 0,
            parent: Some(Arc::new(self.clone())),
            start: Instant::now(),
            budget: None,
            check_interval: self.check_interval,
        }
    }

    /// A child token with its own deadline `budget` from now — the
    /// composition [`child`](CancellationToken::child) +
    /// [`with_budget`](CancellationToken::with_budget): whichever of the
    /// parent's signal, the parent's deadline, or this budget trips first
    /// wins.
    pub fn bounded_by(&self, budget: Duration) -> Self {
        self.child().with_budget(budget)
    }

    /// Cancels this token (and every clone and child of it).  Idempotent;
    /// never blocks.
    pub fn cancel(&self) {
        self.signal.epoch.fetch_add(1, Ordering::Release);
    }

    /// Whether the token (or an ancestor) has been cancelled.  Does **not**
    /// consider the deadline — use
    /// [`checkpoint`](CancellationToken::checkpoint) for the full check.
    pub fn is_cancelled(&self) -> bool {
        self.signal.epoch.load(Ordering::Acquire) != self.born
            || self.parent.as_ref().is_some_and(|p| p.is_cancelled())
    }

    /// The cooperative poll: returns the typed error if this token (or an
    /// ancestor) has been cancelled or has exceeded its deadline budget, and
    /// `Ok(())` otherwise.  Loops call this every
    /// [`check_interval`](CancellationToken::check_interval) units of work
    /// (see [`CancelTicker`]).
    pub fn checkpoint(&self) -> Result<(), EvalError> {
        if let Some(parent) = &self.parent {
            parent.checkpoint()?;
        }
        if self.signal.epoch.load(Ordering::Acquire) != self.born {
            return Err(EvalError::Cancelled);
        }
        if let Some(budget) = self.budget {
            let elapsed = self.start.elapsed();
            if elapsed > budget {
                return Err(EvalError::DeadlineExceeded { elapsed, budget });
            }
        }
        Ok(())
    }
}

/// A zero-cost countdown wrapper amortising
/// [`CancellationToken::checkpoint`] over a loop: [`tick`](CancelTicker::tick)
/// is a decrement-and-branch until the token's check interval elapses, at
/// which point the token is actually polled.  With no token it is a no-op.
///
/// Pass one ticker `&mut` through a recursive search so the countdown is
/// shared across frames — that is what makes the latency bound hold during
/// deep backtracking, where each individual frame touches few candidates.
#[derive(Debug)]
pub struct CancelTicker<'t> {
    token: Option<&'t CancellationToken>,
    interval: u32,
    left: u32,
}

impl<'t> CancelTicker<'t> {
    /// A ticker polling `token` (if any) at the token's check interval.
    pub fn new(token: Option<&'t CancellationToken>) -> Self {
        let interval = token.map_or(u32::MAX, |t| t.check_interval());
        CancelTicker {
            token,
            interval,
            left: interval,
        }
    }

    /// The token this ticker polls, for handing to sub-loops.
    pub fn token(&self) -> Option<&'t CancellationToken> {
        self.token
    }

    /// Counts one unit of work; polls the token once every
    /// `check_interval` calls.
    #[inline]
    pub fn tick(&mut self) -> Result<(), EvalError> {
        let Some(token) = self.token else {
            return Ok(());
        };
        self.left -= 1;
        if self.left == 0 {
            self.left = self.interval;
            token.checkpoint()
        } else {
            Ok(())
        }
    }
}

/// Why an evaluation stopped without producing an answer.
///
/// The typed taxonomy every fallible entry point of the pipeline returns:
/// cooperative cancellation ([`EvalError::Cancelled`]), a deadline budget
/// running out ([`EvalError::DeadlineExceeded`]), or a worker panic isolated
/// by `catch_unwind` ([`EvalError::WorkerPanicked`]).  None of these leave
/// shared state (trie cache, dictionary, tenant ledgers) inconsistent: a
/// subsequent clean evaluation on the same workspace returns the correct
/// answer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// The evaluation's [`CancellationToken`] was cancelled.
    Cancelled,
    /// The evaluation's deadline budget ran out.
    DeadlineExceeded {
        /// Time elapsed when the deadline was detected.
        elapsed: Duration,
        /// The configured budget that was exceeded.
        budget: Duration,
    },
    /// A worker (disjunct evaluator or shard trie builder) panicked; the
    /// panic was caught, its siblings were cancelled, and shared state was
    /// left consistent.
    WorkerPanicked {
        /// What the worker was evaluating: a relation name for shard/trie
        /// builders, a `disjunct <i>` label for disjunct workers.
        atom: String,
        /// The stringified panic payload.
        payload: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Cancelled => write!(f, "evaluation cancelled"),
            EvalError::DeadlineExceeded { elapsed, budget } => write!(
                f,
                "evaluation deadline exceeded: {elapsed:?} elapsed of a {budget:?} budget"
            ),
            EvalError::WorkerPanicked { atom, payload } => {
                write!(f, "evaluation worker panicked on `{atom}`: {payload}")
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// Renders a caught panic payload (`Box<dyn Any>`) into the string carried
/// by [`EvalError::WorkerPanicked`].
pub fn panic_payload_string(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_signal() {
        let a = CancellationToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
        assert_eq!(b.checkpoint(), Err(EvalError::Cancelled));
    }

    #[test]
    fn children_observe_parents_but_not_vice_versa() {
        let parent = CancellationToken::new();
        let child = parent.child();
        child.cancel();
        assert!(child.is_cancelled());
        assert!(!parent.is_cancelled(), "child cancel must not leak upward");
        assert!(parent.checkpoint().is_ok());

        let parent = CancellationToken::new();
        let child = parent.child();
        parent.cancel();
        assert!(child.is_cancelled(), "parent cancel reaches the child");
        assert_eq!(child.checkpoint(), Err(EvalError::Cancelled));
    }

    #[test]
    fn deadlines_report_elapsed_and_budget() {
        let token = CancellationToken::new().with_budget(Duration::ZERO);
        std::thread::sleep(Duration::from_millis(1));
        match token.checkpoint() {
            Err(EvalError::DeadlineExceeded { elapsed, budget }) => {
                assert_eq!(budget, Duration::ZERO);
                assert!(elapsed > Duration::ZERO);
            }
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // A generous budget does not trip.
        let token = CancellationToken::new().with_budget(Duration::from_secs(3600));
        assert!(token.checkpoint().is_ok());
    }

    #[test]
    fn bounded_by_composes_signal_and_budget() {
        let parent = CancellationToken::new();
        let bounded = parent.bounded_by(Duration::from_secs(3600));
        assert!(bounded.checkpoint().is_ok());
        parent.cancel();
        assert_eq!(bounded.checkpoint(), Err(EvalError::Cancelled));
    }

    #[test]
    fn ticker_polls_only_every_interval() {
        let token = CancellationToken::new().with_check_interval(4);
        let mut ticker = CancelTicker::new(Some(&token));
        token.cancel();
        // The first interval-1 ticks do not poll; the K-th does.
        assert!(ticker.tick().is_ok());
        assert!(ticker.tick().is_ok());
        assert!(ticker.tick().is_ok());
        assert_eq!(ticker.tick(), Err(EvalError::Cancelled));
        // Tokenless tickers never fail.
        let mut idle = CancelTicker::new(None);
        for _ in 0..10_000 {
            assert!(idle.tick().is_ok());
        }
    }

    #[test]
    fn check_interval_is_clamped_to_one() {
        let token = CancellationToken::new().with_check_interval(0);
        assert_eq!(token.check_interval(), 1);
    }

    #[test]
    fn payload_rendering_covers_str_string_and_opaque() {
        let caught = std::panic::catch_unwind(|| panic!("boom {}", 7)).expect_err("panic expected");
        assert_eq!(panic_payload_string(caught.as_ref()), "boom 7");
        let s: Box<dyn std::any::Any + Send> = Box::new("static");
        assert_eq!(panic_payload_string(s.as_ref()), "static");
        let opaque: Box<dyn std::any::Any + Send> = Box::new(42_u32);
        assert_eq!(
            panic_payload_string(opaque.as_ref()),
            "opaque panic payload"
        );
    }

    #[test]
    fn display_is_stable() {
        assert_eq!(EvalError::Cancelled.to_string(), "evaluation cancelled");
        let e = EvalError::WorkerPanicked {
            atom: "R".into(),
            payload: "boom".into(),
        };
        assert_eq!(e.to_string(), "evaluation worker panicked on `R`: boom");
    }
}
