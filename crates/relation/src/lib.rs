//! The data model: values, relations, databases and the query AST.
//!
//! * [`Value`] — points, intervals and segment-tree bitstrings;
//! * [`Relation`] / [`Database`] — named multisets of tuples and collections
//!   thereof, with the distinct-left-endpoint transformation of Appendix G.1;
//! * [`Query`] — Boolean conjunctive queries with equality joins, intersection
//!   joins, or both (Definition 3.3), convertible to the hypergraph
//!   representation used by the structural machinery.
//!
//! # Example
//!
//! ```
//! use ij_relation::{Database, Query, Value};
//!
//! let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
//! assert!(q.is_ij());
//!
//! let mut db = Database::new();
//! db.insert_tuples("R", 2, vec![vec![Value::interval(0.0, 2.0), Value::interval(1.0, 3.0)]]);
//! assert_eq!(db.total_tuples(), 1);
//! ```

mod csv;
mod query;
mod relation;
mod value;

pub use csv::{field_to_value, value_to_field, CsvError};
pub use query::{Atom, Query, QueryParseError};
pub use relation::{Database, Relation};
pub use value::Value;
