//! The data model: values, the value dictionary, interned columnar relations,
//! databases and the query AST.
//!
//! * [`Value`] — points, intervals and segment-tree bitstrings;
//! * [`Dictionary`] / [`SharedDictionary`] / [`ValueId`] — interning of
//!   values into dense `u32` ids; every layer of the pipeline joins on ids,
//!   never on full values.  Dictionaries are owned by cheap-to-clone
//!   [`SharedDictionary`] handles: the process-global one is the
//!   compatibility default, workspace-scoped ones bound residency (dropping
//!   the scope reclaims its interned values);
//! * [`Relation`] / [`Database`] — named multisets of tuples stored as
//!   columnar id vectors ([`Columns`]), with a row-oriented compatibility
//!   layer and the distinct-left-endpoint transformation of Appendix G.1;
//! * [`kernels`] — SIMD-friendly chunked scan primitives over id slices
//!   (equal-pair masks, selection-by-mask, gathers, key packing) shared by
//!   the trie builds and semijoins of the join engine;
//! * [`Query`] — Boolean conjunctive queries with equality joins, intersection
//!   joins, or both (Definition 3.3), convertible to the hypergraph
//!   representation used by the structural machinery;
//! * [`CancellationToken`] / [`EvalError`] — cooperative cancellation and
//!   deadlines polled by every long-running loop of the pipeline, plus the
//!   typed taxonomy of evaluation failures;
//! * [`sync`] — poison-recovering lock helpers for the shared multi-tenant
//!   state, and [`faults`] — the feature-gated failpoint registry driving
//!   the fault-injection test harness.
//!
//! # Example
//!
//! ```
//! use ij_relation::{Database, Query, Value};
//!
//! let q = Query::parse("R([A],[B]) & S([B],[C]) & T([A],[C])").unwrap();
//! assert!(q.is_ij());
//!
//! let mut db = Database::new();
//! db.insert_tuples("R", 2, vec![vec![Value::interval(0.0, 2.0), Value::interval(1.0, 3.0)]]);
//! assert_eq!(db.total_tuples(), 1);
//! ```

mod cancel;
mod csv;
mod dictionary;
pub mod faults;
pub mod kernels;
mod query;
mod relation;
pub mod sync;
mod value;

pub use cancel::{
    panic_payload_string, CancelTicker, CancellationToken, EvalError, DEFAULT_CHECK_INTERVAL,
};
pub use csv::{field_to_value, value_to_field, CsvError};
pub use dictionary::{
    DictReader, Dictionary, IdBuildHasher, IdHashMap, IdHashSet, IdHasher, SharedDictionary,
    ValueId, MAX_STRIPE_VALUES, STRIPE_BITS, STRIPE_COUNT,
};
pub use query::{Atom, Query, QueryParseError};
pub use relation::{ArityError, Columns, ColumnsView, Database, Relation};
pub use value::Value;
